"""Kernel-level run problems surfaced through the harness and the CLI.

Satellite coverage for the robustness layer: a workload that deadlocks or
blows the step budget must surface as a *typed, diagnosable* error --
:class:`DeadlockError` / :class:`StepLimitExceeded` through
``harness.run_program``, and exit code 2 with a problem string (or JSON
payload) through ``vyrd run`` -- never a hang or a bare stack dump.
"""

import dataclasses
import json

import pytest

from repro.concurrency import DeadlockError, StepLimitExceeded
from repro.concurrency.primitives import Lock
from repro.harness import run_program
from repro.harness.workload import PROGRAMS, Program
from repro.tools.cli import main


def _deadlock_program() -> Program:
    """A registry-shaped program whose workers wedge deterministically.

    The first worker to run acquires the shared lock and finishes *without
    releasing it*; every later worker blocks on acquire forever.  With two
    or more threads this deadlocks under every schedule.
    """
    base = PROGRAMS["multiset-vector"]

    def build(buggy, num_threads):
        built = base.build(buggy, num_threads)
        lock = Lock("dl.lock")

        def make_worker(vds, rng, index, calls):
            def body(ctx):
                yield lock.acquire()

            return body

        return dataclasses.replace(
            built, make_worker=make_worker, daemons=()
        )

    return Program(
        name="deadlock-demo",
        bug="intentional deadlock (test fixture)",
        build=build,
    )


@pytest.fixture
def deadlock_registered():
    program = _deadlock_program()
    PROGRAMS[program.name] = program
    try:
        yield program
    finally:
        del PROGRAMS[program.name]


def test_run_program_raises_deadlock_error(deadlock_registered):
    with pytest.raises(DeadlockError) as excinfo:
        run_program("deadlock-demo", num_threads=2, calls_per_thread=1)
    assert "deadlock" in str(excinfo.value).lower()


def test_run_program_raises_step_limit():
    with pytest.raises(StepLimitExceeded) as excinfo:
        run_program("multiset-vector", num_threads=2, calls_per_thread=2,
                    max_steps=50)
    assert "50" in str(excinfo.value)


def test_cli_run_deadlock_exits_2(deadlock_registered, capsys):
    code = main([
        "run", "--program", "deadlock-demo", "--threads", "2", "--calls", "1",
    ])
    captured = capsys.readouterr()
    assert code == 2
    assert "run failed" in captured.err
    assert "DeadlockError" in captured.err


def test_cli_run_deadlock_json(deadlock_registered, capsys):
    code = main([
        "run", "--program", "deadlock-demo", "--threads", "2", "--calls", "1",
        "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["ok"] is False
    assert payload["error_type"] == "DeadlockError"
    assert payload["problem"]


def test_cli_run_step_limit_json(capsys):
    code = main([
        "run", "--program", "multiset-vector", "--threads", "2",
        "--calls", "2", "--max-steps", "50", "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["ok"] is False
    assert payload["error_type"] == "StepLimitExceeded"
    assert "step limit" in payload["problem"]


def test_cli_run_json_success_payload(capsys):
    code = main([
        "run", "--program", "multiset-vector", "--threads", "2",
        "--calls", "3", "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["records"] > 0
    assert payload["refinement"]["ok"] is True
    assert payload["well_formed"] is True
