"""Harness extensions: scheduler injection, atomicity logging, PCT daemons."""

from repro.atomicity import check_atomicity
from repro.concurrency import Kernel, PCTScheduler, RoundRobinScheduler
from repro.core import verify_all_schedules
from repro.harness import run_program


def test_scheduler_factory_injects_policy():
    rr = run_program("multiset-tree", num_threads=3, calls_per_thread=10, seed=5,
                     scheduler_factory=lambda seed: RoundRobinScheduler())
    default = run_program("multiset-tree", num_threads=3, calls_per_thread=10, seed=5)
    assert rr.vyrd.check_offline().ok
    assert default.vyrd.check_offline().ok
    # different policies, same seed: different interleavings (almost surely)
    assert list(rr.log) != list(default.log)


def test_pct_scheduler_with_daemons_terminates():
    """PCT gives daemons floor priority, so the compression daemon cannot
    starve the application into the step limit."""
    result = run_program(
        "multiset-tree", num_threads=4, calls_per_thread=15, seed=3,
        scheduler_factory=lambda seed: PCTScheduler(seed, depth=3,
                                                    expected_steps=10_000),
        max_steps=2_000_000,
    )
    assert result.vyrd.check_offline().ok


def test_pct_daemon_floor_priority():
    scheduler = PCTScheduler(seed=1)
    kernel = Kernel(scheduler=scheduler)

    def app(ctx):
        yield ctx.checkpoint()

    def daemon(ctx):
        while True:
            yield ctx.checkpoint()

    app_thread = kernel.spawn(app)
    daemon_thread = kernel.spawn(daemon, daemon=True)
    assert daemon_thread.priority < app_thread.priority
    kernel.run()


def test_run_program_with_atomicity_logging():
    result = run_program("multiset-vector", num_threads=3, calls_per_thread=10,
                         seed=2, log_locks=True, log_reads=True)
    kinds = {type(a).__name__ for a in result.log}
    assert "AcquireAction" in kinds and "ReadAction" in kinds
    # refinement ignores the extra events entirely
    assert result.vyrd.check_offline().ok
    # and the atomicity baseline consumes them
    outcome = check_atomicity(result.log)
    assert outcome.executions_checked > 0


def test_exhaustive_exploration_of_small_blinktree_scenario():
    """Bounded exploration of two concurrent B-link-tree inserts that force
    a split: every explored schedule must verify clean and keep structure."""
    from repro import Vyrd
    from repro.boxwood import BLinkTree, BLinkTreeSpec, blinktree_view

    trees = []

    def make_run(scheduler):
        vyrd = Vyrd(spec_factory=BLinkTreeSpec, mode="view",
                    impl_view_factory=blinktree_view)
        kernel = Kernel(scheduler=scheduler, tracer=vyrd.tracer)
        tree = BLinkTree(order=2)
        trees.append(tree)
        vt = vyrd.wrap(tree)

        def worker(ctx, keys):
            for key in keys:
                yield from vt.insert(ctx, key, key)

        kernel.spawn(worker, [1, 2])
        kernel.spawn(worker, [3])
        kernel.run()
        return vyrd

    result = verify_all_schedules(make_run, max_runs=400)
    assert result.all_ok, result.summary()
    assert result.schedules_run == 400 or result.exhausted
    for tree in trees:
        assert tree.check_structure() == []
        assert tree.contents() == {1: (1, 1), 2: (2, 1), 3: (3, 1)}
