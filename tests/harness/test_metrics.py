"""Measurement helpers: clock-explicit timers, honest mean, table alignment."""

import time

from repro.harness import (
    CpuTimer,
    WallTimer,
    fmt,
    mean,
    render_table,
    time_call_cpu,
    time_call_wall,
)


# -- timers: the cpu/wall split -----------------------------------------------


def test_cpu_timer_accumulates_busy_work():
    timer = CpuTimer()
    with timer.measure():
        sum(range(200_000))
    first = timer.elapsed
    assert first > 0.0
    with timer.measure():
        sum(range(200_000))
    assert timer.elapsed > first  # accumulates across uses


def test_wall_timer_sees_sleeps_cpu_timer_does_not():
    cpu = CpuTimer()
    wall = WallTimer()
    with cpu.measure(), wall.measure():
        time.sleep(0.05)
    assert wall.elapsed >= 0.045
    # process_time does not advance while sleeping
    assert cpu.elapsed < wall.elapsed


def test_time_call_variants_return_result_and_seconds():
    result, cpu_seconds = time_call_cpu(sum, range(1000))
    assert result == 499500 and cpu_seconds >= 0.0
    result, wall_seconds = time_call_wall(time.sleep, 0.02)
    assert result is None and wall_seconds >= 0.015


# -- mean ---------------------------------------------------------------------


def test_mean_skips_none_and_reports_empty_as_none():
    assert mean([1.0, None, 3.0]) == 2.0
    assert mean([None, None]) is None
    assert mean([]) is None
    assert mean(iter([2.0, 4.0])) == 3.0  # any iterable, single pass


# -- table rendering ----------------------------------------------------------


def test_fmt_pads_and_rounds():
    assert fmt(None, width=5) == "    -"
    assert fmt(1.23456, width=8) == "   1.235"
    assert fmt(42, width=4) == "  42"


def test_render_table_right_aligns_numeric_columns_golden():
    table = render_table(
        "golden",
        ("name", "runs", "ms"),
        [
            ("short", 7, 1.5),
            ("a-much-longer-name", 1234, None),
        ],
    )
    assert table == "\n".join([
        "== golden ==",
        "name               | runs | ms   ",
        "-" * 33,
        "short              |    7 | 1.500",
        "a-much-longer-name | 1234 |     -",
    ])


def test_render_table_keeps_string_columns_left_aligned():
    table = render_table(
        "mixed", ("col",), [("x",), (10,)],
    )
    # one string cell makes the whole column textual: everything left-aligned
    lines = table.splitlines()
    assert lines[-1].startswith("10 ") or lines[-1] == "10 "


def test_render_table_all_none_column_stays_left_aligned():
    table = render_table("nones", ("v",), [(None,), (None,)])
    # nothing to align as numbers; the placeholder hugs the left edge
    for line in table.splitlines()[3:]:
        assert line.startswith("-")


def test_render_table_booleans_are_not_numeric():
    table = render_table("flags", ("ok",), [(True,), (False,)])
    assert "True" in table and "False" in table
    assert table.splitlines()[-1].startswith("False")
