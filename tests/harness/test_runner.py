"""Experiment drivers: detection, logging-overhead and breakdown results."""

from repro.harness import (
    breakdown_experiment,
    detection_experiment,
    logging_overhead_experiment,
    render_table,
    run_program,
)


def test_detection_experiment_shapes():
    result = detection_experiment(
        "multiset-vector", num_threads=4, calls_per_thread=40, seeds=range(4)
    )
    assert result.runs == 4
    assert result.view_detections, "view refinement should detect the FindSlot bug"
    assert result.view_mean is not None
    if result.io_mean is not None:
        assert result.view_mean <= result.io_mean
    assert result.cpu_ratio is not None and result.cpu_ratio > 0


def test_detection_experiment_observer_bug_equal_modes():
    result = detection_experiment(
        "java-vector", num_threads=4, calls_per_thread=50, seeds=range(4),
        require_both=True,
    )
    if result.io_detections:
        assert result.io_detections == result.view_detections


def test_logging_overhead_ordering():
    result = logging_overhead_experiment(
        "cache", num_threads=4, calls_per_thread=25, seeds=range(2)
    )
    assert result.program_alone > 0
    # overhead fields are clamped non-negative by construction; totals
    # therefore dominate the bare program time
    assert result.io_logging >= 0 and result.view_logging >= 0
    assert result.io_total >= result.program_alone
    assert result.view_total >= result.program_alone
    # the work ordering is asserted on record counts rather than CPU-time
    # deltas, which jitter far beyond the gap on a loaded machine
    by_level = {
        level: run_program(
            "cache", False, 4, 25, 0, log_level=level
        ).log
        for level in ("none", "io", "view")
    }
    assert len(by_level["none"]) == 0
    assert len(by_level["view"]) > len(by_level["io"]) > 0


def test_breakdown_ordering():
    result = breakdown_experiment(
        "stringbuffer", num_threads=4, calls_per_thread=20, seeds=range(2)
    )
    assert result.prog_alone > 0
    assert result.prog_logging >= result.prog_alone * 0.5  # same order of magnitude
    # online checking adds work on top of logging
    assert result.prog_logging_online_vyrd > result.prog_logging
    assert result.vyrd_offline > 0


def test_online_run_detects_buggy_program():
    detected = False
    for seed in range(30):
        result = run_program(
            "multiset-vector", buggy=True, num_threads=4, calls_per_thread=40,
            seed=seed, online=True,
        )
        if not result.online_outcome.ok:
            detected = True
            break
    assert detected


def test_render_table_formats_rows():
    text = render_table(
        "Demo", ["prog", "value"], [["a", 1.5], ["b", None]]
    )
    assert "== Demo ==" in text
    assert "prog" in text and "a" in text
