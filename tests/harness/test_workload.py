"""Harness workloads: program registry and correctness of correct builds."""

import pytest

from repro.harness import PROGRAMS, ShrinkingPool, run_program


def test_registry_covers_table1_rows():
    assert set(PROGRAMS) >= {
        "multiset-vector",
        "multiset-tree",
        "java-vector",
        "stringbuffer",
        "blinktree",
        "cache",
    }
    assert PROGRAMS["cache"].bug == "Writing an unprotected dirty cache entry"


def test_shrinking_pool_focuses_over_time():
    import random

    pool = ShrinkingPool(100, random.Random(0), min_size=5)
    early = [pool.draw() for _ in range(50)]
    for _ in range(2000):
        pool.draw()
    late = [pool.draw() for _ in range(50)]
    assert max(late) < 100
    assert max(late) <= max(max(early), 25)  # focused on the low region


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_correct_programs_pass_verification(name):
    result = run_program(name, buggy=False, num_threads=4, calls_per_thread=25, seed=5)
    outcome = result.vyrd.check_offline()
    assert outcome.ok, str(outcome.first_violation)
    assert outcome.methods_checked > 0


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_runs_are_reproducible(name):
    first = run_program(name, buggy=False, num_threads=3, calls_per_thread=15, seed=9)
    second = run_program(name, buggy=False, num_threads=3, calls_per_thread=15, seed=9)
    assert list(first.log) == list(second.log)


def test_logging_level_none_produces_empty_log():
    result = run_program("multiset-tree", num_threads=2, calls_per_thread=10,
                         seed=0, log_level="none")
    assert len(result.log) == 0


def test_io_level_log_subset_of_view_level():
    io_run = run_program("multiset-tree", num_threads=2, calls_per_thread=10,
                         seed=0, log_level="io")
    view_run = run_program("multiset-tree", num_threads=2, calls_per_thread=10,
                           seed=0, log_level="view")
    assert 0 < len(io_run.log) < len(view_run.log)
