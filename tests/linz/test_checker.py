"""Unit tests for the annotation-free linearizability checker."""

import json

import pytest

from repro.core.actions import CallAction, ReturnAction
from repro.core.log import Log
from repro.linz import (
    HistoryError,
    LinzChecker,
    SearchBudgetExceeded,
    check_linearizability,
    extract_history,
    strict_lookup_divergence_log,
)
from repro.multiset import MultisetSpec
from repro.multiset.spec import SUCCESS
from repro.obs import MetricsRecorder


def _log(actions):
    log = Log()
    for action in actions:
        log.append(action)
    return log


def _call(tid, op_id, method, *args):
    return CallAction(tid=tid, op_id=op_id, method=method, args=args)


def _ret(tid, op_id, method, result):
    return ReturnAction(tid=tid, op_id=op_id, method=method, result=result)


def test_sequential_history_is_linearizable():
    log = _log([
        _call(0, 0, "insert", 1), _ret(0, 0, "insert", SUCCESS),
        _call(0, 1, "lookup", 1), _ret(0, 1, "lookup", True),
        _call(0, 2, "delete", 1), _ret(0, 2, "delete", True),
        _call(0, 3, "lookup", 1), _ret(0, 3, "lookup", False),
    ])
    outcome = check_linearizability(log, MultisetSpec)
    assert outcome.ok
    assert outcome.linearization == [0, 1, 2, 3]
    assert outcome.completed == 4


def test_overlapping_reordering_found():
    # lookup(7) -> True overlaps the insert(7) whose effect it sees: the
    # witness must linearize the insert before the lookup despite the
    # lookup being called first.
    log = _log([
        _call(0, 0, "lookup", 7),
        _call(1, 1, "insert", 7), _ret(1, 1, "insert", SUCCESS),
        _ret(0, 0, "lookup", True),
    ])
    outcome = check_linearizability(log, MultisetSpec)
    assert outcome.ok
    assert outcome.linearization == [1, 0]


def test_strict_lookup_divergence_log_violates_strict_spec():
    outcome = check_linearizability(
        strict_lookup_divergence_log(), MultisetSpec
    )
    assert not outcome.ok
    violation = outcome.first_violation
    assert violation.kind.value == "linearizability"
    assert "lookup" in str(violation)
    assert outcome.detection_method_count is not None
    # the schema round-trips through JSON
    json.dumps(outcome.to_dict())


def test_strict_lookup_divergence_log_ok_under_permissive_spec():
    outcome = check_linearizability(
        strict_lookup_divergence_log(),
        lambda: MultisetSpec(permissive_lookup=True),
    )
    assert outcome.ok
    assert sorted(outcome.linearization) == [0, 1, 2, 3, 4]


def test_incomplete_mutator_is_optional_and_usable():
    # the insert never returned, but the lookup saw its effect: the only
    # witness linearizes the incomplete insert (candidate result SUCCESS).
    log = _log([
        _call(1, 0, "insert", 3),
        _call(0, 1, "lookup", 3), _ret(0, 1, "lookup", True),
    ])
    outcome = check_linearizability(log, MultisetSpec)
    assert outcome.ok
    assert outcome.incomplete_ops == 1
    assert outcome.linearization == [0, 1]

    # ... and skippable: the lookup here requires the insert NOT to have
    # taken effect.
    log = _log([
        _call(1, 0, "insert", 3),
        _call(0, 1, "lookup", 3), _ret(0, 1, "lookup", False),
    ])
    outcome = check_linearizability(log, MultisetSpec)
    assert outcome.ok
    assert outcome.linearization == [1]


def test_incomplete_observer_is_dropped():
    log = _log([
        _call(0, 0, "lookup", 9),  # no return: unconstrainable, dropped
        _call(1, 1, "insert", 9), _ret(1, 1, "insert", SUCCESS),
    ])
    outcome = check_linearizability(log, MultisetSpec)
    assert outcome.ok
    assert outcome.incomplete_ops == 1
    assert outcome.linearization == [1]


def test_memo_agrees_with_unmemoized_search():
    log = strict_lookup_divergence_log()
    with_memo = check_linearizability(log, MultisetSpec, memo=True)
    without = check_linearizability(log, MultisetSpec, memo=False)
    assert with_memo.ok == without.ok is False
    assert with_memo.stats["memo"] is True
    assert without.stats["memo"] is False
    assert without.stats["memo_hits"] == 0


def _overlapping_inserts(width):
    """``width`` fully-overlapping commuting inserts ending in an
    unsatisfiable lookup: the search must exhaust every order."""
    actions = [_call(j, j, "insert", j) for j in range(width)]
    actions += [_ret(j, j, "insert", SUCCESS) for j in range(width)]
    actions += [
        _call(width, width, "lookup", 999),
        _ret(width, width, "lookup", True),
    ]
    return _log(actions)


def test_memo_prunes_commuting_reconvergence():
    log = _overlapping_inserts(5)
    with_memo = check_linearizability(log, MultisetSpec, memo=True)
    without = check_linearizability(log, MultisetSpec, memo=False)
    assert not with_memo.ok and not without.ok
    assert with_memo.stats["memo_hits"] > 0
    assert without.stats["nodes"] >= 5 * with_memo.stats["nodes"]


def test_search_budget_surfaces_as_error_not_verdict():
    with pytest.raises(SearchBudgetExceeded):
        check_linearizability(
            _overlapping_inserts(6), MultisetSpec, memo=False, max_nodes=50
        )


def test_malformed_log_raises_history_error():
    with pytest.raises(HistoryError):
        extract_history(_log([_ret(0, 0, "insert", SUCCESS)]))
    with pytest.raises(HistoryError):
        extract_history(_log([
            _call(0, 0, "insert", 1), _call(0, 0, "insert", 2),
        ]))


def test_obs_counters_and_span_recorded():
    obs = MetricsRecorder()
    checker = LinzChecker(MultisetSpec, obs=obs)
    checker.check(strict_lookup_divergence_log())
    assert obs.counters["linz.checks"] == 1
    assert obs.counters["linz.nodes"] >= 1
    assert obs.counters["linz.exhausted_searches"] == 1
    assert "linz.search_depth" in obs.histograms
    assert "linz.pending_width" in obs.histograms
