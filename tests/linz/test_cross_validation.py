"""Cross-validation gate: refinement and linearizability verdicts agree.

The annotation-free linearization search and the commit-annotated
refinement checker are two independent oracles for the same question.  On
every registry program's default variant they must return the same verdict
-- the only tested exception is the documented strict-lookup divergence of
the vector multiset (:data:`repro.linz.EXPECTED_DIVERGENCES`).
"""

import pytest

from repro.core.refinement import CheckOutcome  # noqa: F401  (doc link)
from repro.harness import run_program
from repro.harness.workload import PROGRAMS
from repro.linz import (
    EXPECTED_DIVERGENCES,
    LinzChecker,
    expected_divergence,
    linz_config,
    linz_variants,
    strict_lookup_divergence_log,
)
from repro.multiset import MultisetSpec

#: Every program at a fixed small shape; verdicts must agree (all clean).
GATE_SHAPE = dict(num_threads=3, calls_per_thread=12, seed=3)

#: The three seeded bugs with schedule seeds that both oracles catch.
SEEDED_BUGS = [
    ("java-vector", 3, 12, 7),    # Vector.lastIndexOf reads stale count
    ("stringbuffer", 3, 12, 1),   # StringBuffer.append torn read
    ("cache", 3, 10, 2),          # COPY-TO-CACHE lost-update window
]


@pytest.mark.parametrize("program", sorted(PROGRAMS))
def test_registry_verdicts_agree_on_clean_runs(program):
    result = run_program(program, linearizability=True, **GATE_SHAPE)
    ref = result.vyrd.check_offline_with_mode("io")
    linz = result.linz_outcome
    assert linz is not None
    assert expected_divergence(program, "default") is None
    assert ref.ok and linz.ok, (
        f"{program}: refinement ok={ref.ok} linz ok={linz.ok}"
    )
    assert linz.linearization is not None


@pytest.mark.parametrize("program,threads,calls,seed", SEEDED_BUGS)
def test_seeded_bugs_detected_both_ways(program, threads, calls, seed):
    result = run_program(
        program, buggy=True, num_threads=threads, calls_per_thread=calls,
        seed=seed, linearizability=True,
    )
    ref = result.vyrd.check_offline_with_mode("io")
    linz = result.linz_outcome
    assert not ref.ok, f"{program} seed {seed}: refinement missed the bug"
    assert not linz.ok, f"{program} seed {seed}: linz missed the bug"
    assert linz.first_violation.kind.value == "linearizability"


def test_expected_divergence_list_is_exactly_strict_lookup():
    assert [
        (config.program, config.variant) for config in EXPECTED_DIVERGENCES
    ] == [("multiset-vector", "strict-lookup")]
    assert linz_variants("multiset-vector") == ("default", "strict-lookup")
    config = linz_config("multiset-vector", "strict-lookup")
    assert config.expected_divergence


def test_strict_lookup_divergence_witness_diverges_as_documented():
    """The canonical witness: refinement-spec OK, linz-spec violation."""
    log = strict_lookup_divergence_log()
    config = linz_config("multiset-vector", "strict-lookup")
    permissive = LinzChecker(config.refinement_spec_factory).check(log)
    strict = LinzChecker(config.linz_spec_factory).check(log)
    assert permissive.ok          # the permissive spec explains the False
    assert not strict.ok          # the strict spec cannot: genuine divergence


def test_default_variant_uses_registry_spec():
    config = linz_config("multiset-vector")
    spec = config.linz_spec_factory()
    assert isinstance(spec, MultisetSpec)
    assert config.refinement_spec_factory is None
    assert config.expected_divergence is None
