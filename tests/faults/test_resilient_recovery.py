"""Injected worker faults against the resilient parallel explorers.

The contract under test is the tentpole acceptance criterion: a campaign
that survives injected crashes and hangs must produce a
:meth:`ExplorationResult.signature` **bit-identical** to the fault-free
serial run, with the incident trail on ``interruptions``; a schedule that
can never complete must surface as a diagnosable
:class:`ExplorationTimeout` run record instead of wedging the campaign.
"""

import multiprocessing

import pytest

from repro.concurrency import Kernel, SharedCell
from repro.concurrency.parallel import (
    ExplorationTimeout,
    parallel_exhaustive,
    parallel_swarm,
)
from repro.faults import CRASH, HANG, Fault, FaultPlan, TaskFaults
from repro.harness import ProgramSpec

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault-injection tests need fork-start workers",
)

SPEC = ProgramSpec("multiset-vector", num_threads=2, calls_per_thread=3)


def _racy_counter(scheduler):
    """Two unsynchronized increments (picklable toy with a small schedule
    tree, so exhaustive campaigns finish quickly)."""
    cell = SharedCell("c", 0)

    def body(ctx):
        value = yield cell.read()
        yield cell.write(value + 1)

    kernel = Kernel(scheduler=scheduler)
    kernel.spawn(body, name="a")
    kernel.spawn(body, name="b")
    kernel.run()
    return cell.peek()


class HangEveryAttempt:
    """Plan-shaped injector that hangs one serial on *every* attempt.

    ``FaultPlan`` deliberately only targets first attempts; exhausting the
    retry budget needs a fault that survives retries, which this fixture
    provides (the explorers only require ``task_faults`` duck-typing).
    """

    def __init__(self, serial, seconds=30.0):
        self.serial = serial
        self.seconds = seconds

    def task_faults(self, serial, attempt):
        if serial == self.serial:
            return TaskFaults(Fault(HANG, task=serial, seconds=self.seconds))
        return None


@pytest.fixture(scope="module")
def serial_swarm():
    return parallel_swarm(SPEC, num_runs=12, jobs=1)


def test_crash_recovery_is_signature_identical(serial_swarm):
    plan = FaultPlan(seed=1, faults=(Fault(CRASH, task=1),))
    result = parallel_swarm(
        SPEC, num_runs=12, jobs=2, faults=plan,
        timeout=10.0, max_retries=2, backoff_base=0.01,
    )
    assert result.signature() == serial_swarm.signature()
    kinds = {event["kind"] for event in result.interruptions}
    assert "pool_broken" in kinds and "retry" in kinds


def test_hang_recovery_via_watchdog(serial_swarm):
    plan = FaultPlan(seed=2, faults=(Fault(HANG, task=2, seconds=30.0),))
    result = parallel_swarm(
        SPEC, num_runs=12, jobs=2, faults=plan,
        timeout=1.5, max_retries=2, backoff_base=0.01,
    )
    assert result.signature() == serial_swarm.signature()
    kinds = {event["kind"] for event in result.interruptions}
    assert "timeout" in kinds and "retry" in kinds


def test_crash_and_hang_together(serial_swarm):
    plan = FaultPlan(seed=3, faults=(Fault(CRASH, task=0),
                                     Fault(HANG, task=3, seconds=30.0)))
    result = parallel_swarm(
        SPEC, num_runs=12, jobs=2, faults=plan,
        timeout=1.5, max_retries=2, backoff_base=0.01,
    )
    assert result.signature() == serial_swarm.signature()
    assert result.interruptions  # something was survived, and recorded


def test_terminal_hang_becomes_exploration_timeout():
    result = parallel_swarm(
        SPEC, num_runs=2, jobs=2, chunk_size=1,
        faults=HangEveryAttempt(0), timeout=0.7, max_retries=1,
        backoff_base=0.01,
    )
    # every requested schedule is accounted for; the stuck one failed
    assert result.num_runs == 2
    timeouts = [r for r in result.runs
                if isinstance(r.error, ExplorationTimeout)]
    assert len(timeouts) == 1
    record = timeouts[0]
    assert record.schedule == 0  # the replay handle survives
    assert record.error.attempts == 2
    kinds = {event["kind"] for event in result.interruptions}
    assert "gave_up" in kinds
    # the healthy schedule still completed normally
    assert any(not r.failed for r in result.runs)


def test_split_isolation_rescues_the_healthy_majority(serial_swarm):
    # Hang one *chunk* serial on every attempt: the pool splits the chunk
    # into singletons (fresh serials -> no longer targeted), so every seed
    # still completes and the signature stays serial-identical.
    result = parallel_swarm(
        SPEC, num_runs=12, jobs=2, faults=HangEveryAttempt(1),
        timeout=0.7, max_retries=1, backoff_base=0.01,
    )
    assert result.signature() == serial_swarm.signature()
    kinds = {event["kind"] for event in result.interruptions}
    assert "split" in kinds


def test_exhaustive_crash_recovery_matches_serial():
    serial = parallel_exhaustive(_racy_counter, max_runs=5000, jobs=1)
    assert serial.exhausted
    plan = FaultPlan(seed=4, faults=(Fault(CRASH, task=1),))
    faulted = parallel_exhaustive(
        _racy_counter, max_runs=5000, jobs=2, chunk_size=4, faults=plan,
        timeout=10.0, max_retries=2, backoff_base=0.01,
    )
    assert faulted.exhausted
    assert faulted.signature() == serial.signature()
    assert any(e["kind"] == "pool_broken" for e in faulted.interruptions)


def test_exhaustive_terminal_hang_marks_non_exhausted():
    result = parallel_exhaustive(
        _racy_counter, max_runs=5000, jobs=2, chunk_size=4,
        faults=HangEveryAttempt(0), timeout=0.7, max_retries=0,
        backoff_base=0.01,
    )
    timeouts = [r for r in result.runs
                if isinstance(r.error, ExplorationTimeout)]
    assert timeouts
    # an abandoned prefix means an unenumerated subtree
    assert not result.exhausted


def test_interruptions_do_not_change_signature(serial_swarm):
    # signature() must ignore the incident trail: equal runs, equal digest
    plan = FaultPlan(seed=1, faults=(Fault(CRASH, task=1),))
    faulted = parallel_swarm(
        SPEC, num_runs=12, jobs=2, faults=plan,
        timeout=10.0, max_retries=2, backoff_base=0.01,
    )
    assert faulted.interruptions != serial_swarm.interruptions
    assert faulted.signature() == serial_swarm.signature()
    # ...but to_dict() keeps them, for reporting
    assert faulted.to_dict()["interruptions"]
