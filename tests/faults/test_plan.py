"""FaultPlan generation, resolution and the raw log injectors."""

import pickle

from repro.core import load_log, recover_log, save_log
from repro.faults import (
    CRASH,
    HANG,
    TORN_LOG,
    Fault,
    FaultPlan,
    TaskFaults,
    apply_log_faults,
    bitflip,
    resolve_offset,
    tear,
)
from repro.harness import run_program


def test_generate_is_deterministic():
    one = FaultPlan.generate(42, tasks=8, slow_ios=1)
    two = FaultPlan.generate(42, tasks=8, slow_ios=1)
    assert one == two
    assert FaultPlan.generate(43, tasks=8, slow_ios=1) != one


def test_generate_mix_matches_request():
    plan = FaultPlan.generate(5, tasks=10, crashes=2, hangs=1, torn=3,
                              bitflips=2, slow_ios=1)
    counts = plan.describe()
    assert counts["crashes"] == 2
    assert counts["hangs"] == 1
    assert counts["torn_logs"] == 3
    assert counts["bitflips"] == 2
    assert counts["slow_ios"] == 1
    # crash/hang targets are distinct task serials inside the horizon
    targets = [f.task for f in plan.worker_faults]
    assert len(set(targets)) == len(targets) == 3
    assert all(0 <= t < 10 for t in targets)
    # log fault positions are fractions
    assert all(0.0 <= f.frac < 1.0 for f in plan.log_faults)


def test_task_faults_target_first_attempt_only():
    plan = FaultPlan(seed=0, faults=(Fault(CRASH, task=3),
                                     Fault(HANG, task=5, seconds=9.0)))
    assert plan.task_faults(3, attempt=0).fault.kind == CRASH
    assert plan.task_faults(5, attempt=0).fault.kind == HANG
    # retries always run clean (transient-fault model)
    assert plan.task_faults(3, attempt=1) is None
    assert plan.task_faults(5, attempt=2) is None
    # untargeted serials get nothing
    assert plan.task_faults(0, attempt=0) is None


def test_plan_and_task_faults_pickle_round_trip():
    plan = FaultPlan.generate(7, slow_ios=1)
    assert pickle.loads(pickle.dumps(plan)) == plan
    resolved = TaskFaults(Fault(HANG, task=1, seconds=2.0))
    clone = pickle.loads(pickle.dumps(resolved))
    assert clone == resolved


def test_hang_apply_sleeps_briefly():
    # apply() of a short hang returns (and a no-fault apply is free)
    TaskFaults(Fault(HANG, task=0, seconds=0.0)).apply()
    TaskFaults(None).apply()


def test_resolve_offset_stays_inside_payload():
    fault = Fault(TORN_LOG, frac=0.0)
    assert resolve_offset(fault, 0) == 0
    assert resolve_offset(fault, 2) == 0
    for frac in (0.0, 0.25, 0.999):
        for size in (3, 10, 1000):
            offset = resolve_offset(Fault(TORN_LOG, frac=frac), size)
            assert 1 <= offset <= size - 1


def test_tear_and_bitflip_modify_the_file(tmp_path):
    path = tmp_path / "victim.bin"
    path.write_bytes(bytes(range(100)))
    lost = tear(str(path), 60)
    assert lost == 40
    assert path.read_bytes() == bytes(range(60))
    flipped_at = bitflip(str(path), 10, bit=3)
    assert flipped_at == 10
    data = path.read_bytes()
    assert data[10] == 10 ^ 0b1000
    assert len(data) == 60
    # flip it back -> original prefix restored
    bitflip(str(path), 10, bit=3)
    assert path.read_bytes() == bytes(range(60))


def test_apply_log_faults_damages_a_real_log(tmp_path):
    run = run_program("multiset-vector", num_threads=2, calls_per_thread=3)
    path = str(tmp_path / "run.vlog")
    save_log(run.log, path)
    pristine = [repr(a) for a in load_log(path)]
    plan = FaultPlan(seed=0, faults=(Fault(TORN_LOG, frac=0.5),))
    applied = apply_log_faults(path, plan)
    assert applied and applied[0]["kind"] == TORN_LOG
    assert applied[0]["lost"] > 0
    recovered = recover_log(path)
    assert not recovered.complete
    salvaged = [repr(a) for a in recovered.log]
    assert salvaged == pristine[: len(salvaged)]
    assert len(salvaged) < len(pristine)


def test_crash_fault_exits_the_process(tmp_path):
    # os._exit must not run in the test process: exercise it in a child.
    import multiprocessing

    ctx = multiprocessing.get_context(
        "fork" if "fork" in multiprocessing.get_all_start_methods() else None
    )
    proc = ctx.Process(
        target=TaskFaults(Fault(CRASH, task=0)).apply
    )
    proc.start()
    proc.join(30)
    assert proc.exitcode == 13
