"""LogWriter(sync=True): acknowledged records survive an abrupt crash.

The producer protocol is write-batch / flush / acknowledge; ``sync=True``
makes the flush an fsync barrier, so a worker killed with the fault
injector's ``os._exit`` crash (no cleanup, no atexit, buffered file data
discarded) can never lose a record that was acknowledged.
"""

import multiprocessing
import os

from repro.core import WriteAction, recover_log
from repro.core.log import LogWriter
from repro.faults import CRASH, Fault, TaskFaults


def _record(i):
    return WriteAction(i % 3, i, f"r{i % 4}", None, i)


def _crashing_writer(path, ack_path, batch, crash_after):
    """Child: write chained+synced batches, acknowledge each flush, crash."""
    writer = LogWriter(path, chained=True, sync=True)
    for i in range(crash_after):
        writer.write(_record(i))
        if (i + 1) % batch == 0:
            writer.flush()
            with open(ack_path, "w") as handle:
                handle.write(str(i + 1))
                handle.flush()
                os.fsync(handle.fileno())
    # Crash mid-batch with unflushed records, via the campaign's injector:
    # a real abrupt death, not an exception unwind.
    TaskFaults(fault=Fault(CRASH)).apply()


def test_acknowledged_records_survive_worker_crash(tmp_path):
    path = str(tmp_path / "shard.vlog2")
    ack_path = str(tmp_path / "acked")
    ctx = multiprocessing.get_context("fork")
    child = ctx.Process(
        target=_crashing_writer, args=(path, ack_path, 16, 100)
    )
    child.start()
    child.join(timeout=60)
    assert child.exitcode == 13  # the injector's crash exit
    acked = int(open(ack_path).read())
    assert acked == 96  # 6 full batches acknowledged, 4 records in flight
    recovered = recover_log(path)
    # Every acknowledged record is there...
    assert recovered.records >= acked
    # ...and whatever is there is exactly a prefix of what was written.
    expected = [repr(_record(i)) for i in range(100)]
    salvaged = [repr(action) for action in recovered.log]
    assert salvaged == expected[: len(salvaged)]


def test_sync_flush_reaches_the_device(tmp_path, monkeypatch):
    """Every flush under sync=True must fsync the underlying descriptor."""
    import repro.core.log as log_module

    synced = []
    real_fsync = os.fsync
    monkeypatch.setattr(
        log_module.os, "fsync", lambda fd: (synced.append(fd), real_fsync(fd))
    )
    path = str(tmp_path / "synced.vlog2")
    with LogWriter(path, chained=True, sync=True) as writer:
        for i in range(30):
            writer.write(_record(i))
            if (i + 1) % 10 == 0:
                writer.flush()
    # three explicit batch flushes + the close() flush
    assert len(synced) == 4


def test_unsynced_writer_never_fsyncs(tmp_path, monkeypatch):
    import repro.core.log as log_module

    synced = []
    monkeypatch.setattr(log_module.os, "fsync", lambda fd: synced.append(fd))
    path = str(tmp_path / "unsynced.vlog")
    with LogWriter(path) as writer:
        for i in range(20):
            writer.write(_record(i))
        writer.flush()
    assert synced == []
