"""The end-to-end fault campaign and its CLI/benchmark surfaces."""

import json
import multiprocessing

import pytest

from repro.faults import FaultPlan, run_fault_campaign
from repro.tools.cli import main

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fault campaigns need fork-start workers",
)


@pytest.fixture(scope="module")
def report():
    return run_fault_campaign(
        seed=7, jobs=2, num_runs=12, timeout=1.5, backoff_base=0.01
    )


def test_campaign_survives_and_matches_serial(report):
    assert report.signatures_match
    assert report.baseline_signature == report.faulted_signature
    assert report.interruptions  # the plan's crash/hang actually fired


def test_campaign_salvages_every_corruption(report):
    assert report.recovery_ok
    assert len(report.recoveries) == 2  # one tear + one bitflip planned
    for entry in report.recoveries:
        assert entry["ok"]
        assert entry["prefix_exact"]
        # damaged streams report where parsing stopped
        if not entry["complete"]:
            assert entry["error_offset"] is not None
            assert entry["cause"]


def test_campaign_latency_injection_is_schedule_invariant(report):
    assert report.tracer_log_identical is True


def test_campaign_checkpoint_round_kill_resume_identity(report):
    assert report.checkpoint_ok
    # clean and seeded-bug variants both exercised
    assert [entry["buggy"] for entry in report.checkpoint_checks] == [False, True]
    for entry in report.checkpoint_checks:
        assert entry["resumed_identical"]
        assert entry["corrupt_rejected"] and "hash" in entry["rejection"]
        assert entry["fallback_identical"]
    # the buggy variant actually produced a violating verdict to compare
    assert report.checkpoint_checks[1]["verdict_ok"] is False


def test_campaign_linz_verdict_stable_under_recovery(report):
    # the annotation-free linearizability verdict on every salvaged prefix
    # equals the verdict on the same pristine prefix
    assert report.linz_ok
    assert report.linz_checks  # the tear + bitflip corruptions, at least
    for entry in report.linz_checks:
        assert entry["verdict_stable"]
        assert entry["salvaged_records"] > 0
    assert report.to_dict()["linz_ok"] is True


def test_campaign_report_round_trips_to_json(report):
    assert report.ok
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["ok"] is True
    assert payload["signatures_match"] is True
    assert payload["plan"]["seed"] == 7
    assert payload["incidents"]
    assert payload["overhead"] is None or payload["overhead"] > 0


def test_explicit_plan_replays(report):
    # rebuilding the plan from the report's JSON reproduces the campaign
    from repro.faults import Fault

    plan = FaultPlan(
        seed=report.plan["seed"],
        faults=tuple(
            Fault(kind=f["kind"], task=f["task"], frac=f["frac"],
                  bit=f["bit"], seconds=f["seconds"], every=f["every"])
            for f in report.plan["faults"]
        ),
    )
    replay = run_fault_campaign(
        seed=7, plan=plan, jobs=2, num_runs=12, timeout=1.5,
        backoff_base=0.01,
    )
    assert replay.ok
    assert replay.baseline_signature == report.baseline_signature


def test_cli_faults_json(capsys):
    code = main([
        "faults", "--seed", "7", "--jobs", "2", "--seeds", "12",
        "--timeout", "1.5", "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["signatures_match"] is True
    assert payload["recovery_ok"] is True
    assert payload["seconds"] > 0


def test_cli_faults_human_output_and_plan_replay(tmp_path, capsys):
    code = main([
        "faults", "--seed", "3", "--jobs", "2", "--seeds", "12",
        "--timeout", "1.5", "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    plan_path = tmp_path / "plan.json"
    plan_path.write_text(json.dumps(payload["plan"]))
    code = main([
        "faults", "--seed", "3", "--plan", str(plan_path), "--jobs", "2",
        "--seeds", "12", "--timeout", "1.5",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "survived" in out
    assert "verdict: OK" in out
    assert "recovery [ok]" in out


def test_bench_fault_soak_smoke(tmp_path, capsys):
    import importlib.util
    import os

    bench_path = os.path.join(
        os.path.dirname(__file__), "..", "..", "benchmarks",
        "bench_fault_soak.py",
    )
    spec = importlib.util.spec_from_file_location("bench_fault_soak", bench_path)
    bench_fault_soak = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(bench_fault_soak)

    out_path = tmp_path / "BENCH_fault_soak.json"
    code = bench_fault_soak.main(["--smoke", "--out", str(out_path)])
    assert code == 0
    report = json.loads(out_path.read_text())
    assert report["benchmark"] == "fault_soak"
    assert report["all_ok"] is True
    assert report["campaigns_diverged"] == 0
    assert report["recoveries_failed"] == 0
    assert len(report["rows"]) == 2
    assert report["serve_verdict_divergences"] == 0
    assert report["restarts_bounded"] is True
    assert report["producer_restarts_total"] >= len(report["rows"])
    assert report["store_giveups_total"] == 0
    assert report["store_retries_total"] > 0


def test_campaign_producer_kill_round_restart_identity(report):
    assert report.producer_kill_ok
    assert [e["buggy"] for e in report.producer_kill_checks] == [False, True]
    for entry in report.producer_kill_checks:
        assert entry["ok"]
        assert entry["stream_ok"]
        assert 1 <= entry["restarts"] <= 2  # bounded: restarted, not flailing
        assert not entry["gave_up"]
        assert entry["signature_identical"]
        assert entry["verdict_identical"]
        assert 1 <= entry["kill_after"] < entry["records"]
    # the buggy variant's violation survived the mid-session death
    assert report.producer_kill_checks[1]["verdict_ok"] is False


def test_campaign_store_brownout_absorbed_by_retry(report):
    assert report.brownout_ok
    for entry in report.brownout_checks:
        assert entry["ok"]
        assert entry["injected_failures"] > 0   # the brownout actually bit
        assert entry["retries_absorbed"] > 0    # and the wrapper absorbed it
        assert entry["giveups"] == 0
        assert entry["signature_identical"]
        assert entry["verdict_identical"]


def test_campaign_degraded_catchup_verdict_identity(report):
    assert report.catchup_ok
    for entry in report.catchup_checks:
        assert entry["ok"]
        assert entry["degraded"]
        assert "checker" in (entry["degraded_reason"] or "")
        assert entry["catchup_records"] > 0
        assert entry["signature_identical"]
        assert entry["verdict_identical"]


def test_campaign_new_rounds_round_trip_and_gate_ok(report):
    payload = json.loads(json.dumps(report.to_dict()))
    assert payload["producer_kill_ok"] is True
    assert payload["brownout_ok"] is True
    assert payload["catchup_ok"] is True
    assert len(payload["producer_kill_checks"]) == 2
    assert len(payload["brownout_checks"]) == 2
    assert len(payload["catchup_checks"]) == 2
