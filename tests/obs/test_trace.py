"""Chrome trace-event export: schema validity is enforced, not assumed."""

import json

from repro.obs import (
    MetricsRecorder,
    trace_events,
    validate_trace_events,
    validate_trace_file,
    write_trace,
)


def _recorder_with_activity():
    recorder = MetricsRecorder()
    step = [0]
    recorder.bind_step_clock(lambda: step[0])
    with recorder.span("kernel.step", cat="kernel", tid=1):
        step[0] = 2
    recorder.instant("tracer.append", cat="log", tid=2, action="CallAction")
    return recorder


def test_trace_events_validate_clean():
    events = trace_events(_recorder_with_activity())
    assert validate_trace_events(events) == []


def test_trace_includes_metadata_threads_and_wall_counters():
    events = trace_events(_recorder_with_activity())
    phases = [event["ph"] for event in events]
    assert "M" in phases and "X" in phases and "C" in phases
    names = [event["name"] for event in events]
    assert "process_name" in names
    # one thread_name metadata record per sim-thread that emitted events
    assert "thread_name" in names
    assert any(name.startswith("wall:") for name in names)


def test_write_trace_round_trips_through_file_validation(tmp_path):
    path = tmp_path / "run.trace.json"
    write_trace(_recorder_with_activity(), path)
    assert validate_trace_file(path) == []
    # and the file is the plain JSON-array flavor viewers load directly
    events = json.loads(path.read_text())
    assert isinstance(events, list) and events


def test_validator_rejects_non_array():
    problems = validate_trace_events({"traceEvents": []})
    assert problems and "array" in problems[0]


def test_validator_flags_malformed_events():
    problems = validate_trace_events([
        "not an object",
        {"ph": "X", "pid": 1, "tid": 0, "ts": 0, "dur": 1},   # missing name
        {"name": "e", "ph": "?", "pid": 1, "tid": 0},         # unknown phase
        {"name": "e", "ph": "X", "pid": 1, "tid": 0,
         "ts": -5, "dur": 1},                                  # negative ts
        {"name": "e", "ph": "X", "pid": 1, "tid": 0, "ts": 0},  # missing dur
        {"name": "e", "ph": "i", "pid": 1, "tid": 0, "ts": 0,
         "args": "nope"},                                      # args not dict
    ])
    assert len(problems) == 6


def test_validate_trace_file_reports_bad_json(tmp_path):
    path = tmp_path / "broken.json"
    path.write_text("{not json")
    problems = validate_trace_file(path)
    assert problems and "not valid JSON" in problems[0]
