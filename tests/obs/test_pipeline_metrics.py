"""End-to-end observability: determinism, honesty, serial==parallel merge."""

from repro.harness import explore_program, run_program
from repro.obs import MetricsRecorder


def _profiled_run(seed=3, **kwargs):
    recorder = MetricsRecorder()
    result = run_program(
        "multiset-vector", num_threads=2, calls_per_thread=4, seed=seed,
        obs=recorder, **kwargs,
    )
    result.vyrd.check_offline()
    return result, recorder


def test_metrics_are_deterministic_for_a_seed():
    _, first = _profiled_run()
    _, second = _profiled_run()
    assert first.counters_snapshot() == second.counters_snapshot()


def test_log_action_counters_match_the_log():
    result, recorder = _profiled_run()
    assert recorder.counters["log.actions"] == len(result.log)
    by_type = {
        name.split(".", 2)[2]: value
        for name, value in recorder.counters.items()
        if name.startswith("log.actions.")
    }
    assert sum(by_type.values()) == len(result.log)
    observed = {type(action).__name__ for action in result.log}
    assert set(by_type) == observed


def test_kernel_step_counters_sum_over_threads():
    _, recorder = _profiled_run()
    per_thread = sum(
        value for name, value in recorder.counters.items()
        if name.startswith("kernel.steps.t")
    )
    assert per_thread == recorder.counters["kernel.steps"] > 0


def test_checker_phases_are_attributed():
    _, recorder = _profiled_run()
    assert recorder.counters["checker.commits_checked"] > 0
    for phase in ("checker.feed", "checker.witness_commit",
                  "checker.observer_reeval", "checker.view_refresh",
                  "kernel.run", "kernel.step"):
        assert recorder.phase_wall[phase] >= 0.0
    assert recorder.histograms["view.units_recomputed"].count > 0
    assert recorder.histograms["replay.overlay_locs"].count > 0


def test_online_run_records_verifier_spans():
    recorder = MetricsRecorder()
    result = run_program(
        "multiset-vector", num_threads=2, calls_per_thread=4, seed=3,
        online=True, obs=recorder,
    )
    assert result.online_outcome.ok
    assert recorder.counters["verifier.polls"] > 0
    assert recorder.counters["span.verifier.consume"] > 0


def test_run_result_carries_the_recorder():
    result, recorder = _profiled_run()
    assert result.obs is recorder
    # and a plain run carries none
    plain = run_program("multiset-vector", num_threads=2, calls_per_thread=2)
    assert plain.obs is None


def test_explore_metrics_default_off():
    result = explore_program(
        "multiset-vector", num_runs=2, num_threads=2, calls_per_thread=2,
    )
    assert result.metrics is None
    assert result.to_dict()["metrics"] is None


def test_explore_metrics_identical_serial_vs_parallel():
    kwargs = dict(num_runs=6, num_threads=2, calls_per_thread=3, metrics=True)
    serial = explore_program("multiset-vector", jobs=1, **kwargs)
    parallel = explore_program("multiset-vector", jobs=2, **kwargs)
    assert serial.metrics is not None
    assert serial.metrics == parallel.metrics
    # metrics never perturb the campaign itself
    assert serial.signature() == parallel.signature()
    assert serial.metrics["counters"]["kernel.steps"] > 0


def test_exhaustive_explore_merges_metrics_too():
    # Serial==parallel equality only holds for campaigns that cover the same
    # schedules; a budget-cut exhaustive DFS shards the frontier differently
    # per engine, so here we pin determinism per engine and presence on both.
    kwargs = dict(mode="exhaustive", max_runs=4, num_threads=2,
                  calls_per_thread=1, metrics=True)
    serial = explore_program("multiset-vector", jobs=1, **kwargs)
    again = explore_program("multiset-vector", jobs=1, **kwargs)
    assert serial.metrics is not None
    assert serial.metrics == again.metrics
    assert serial.metrics["counters"]["kernel.steps"] > 0
    parallel = explore_program("multiset-vector", jobs=2, **kwargs)
    assert parallel.metrics is not None
    assert parallel.metrics["counters"]["kernel.steps"] > 0


def test_metrics_do_not_change_the_explored_outcomes():
    kwargs = dict(num_runs=4, num_threads=2, calls_per_thread=3, jobs=1)
    bare = explore_program("multiset-vector", **kwargs)
    measured = explore_program("multiset-vector", metrics=True, **kwargs)
    assert bare.signature() == measured.signature()


def test_fault_campaign_records_phase_spans():
    from repro.faults import run_fault_campaign

    recorder = MetricsRecorder()
    report = run_fault_campaign(
        program="multiset-vector", seed=0, jobs=2, num_runs=4,
        num_threads=2, calls_per_thread=2, obs=recorder,
    )
    assert report.ok
    for phase in ("campaign.baseline", "campaign.faulted",
                  "campaign.corruption", "campaign.latency"):
        assert recorder.phase_wall[phase] >= 0.0
    assert recorder.counters["recovery.salvaged_records"] >= 0
