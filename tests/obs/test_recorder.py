"""Recorder unit semantics: counters, histograms, spans, caps, merging."""

from repro.obs import (
    NULL_RECORDER,
    Histogram,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    TICKS_PER_STEP,
    merge_snapshots,
)


# -- the null recorder (the default everything wires to) ----------------------


def test_null_recorder_is_disabled_and_inert():
    recorder = NullRecorder()
    assert recorder.enabled is False
    recorder.count("x")
    recorder.observe("y", 1.0)
    recorder.instant("z")
    recorder.bind_step_clock(lambda: 0)
    with recorder.span("phase"):
        pass
    # the shared no-op span is reused, not allocated per call
    assert recorder.span("a") is recorder.span("b")


def test_shared_null_instance_is_a_recorder():
    assert isinstance(NULL_RECORDER, Recorder)
    assert NULL_RECORDER.enabled is False


def test_null_span_does_not_swallow_exceptions():
    try:
        with NULL_RECORDER.span("phase"):
            raise ValueError("boom")
    except ValueError:
        pass
    else:  # pragma: no cover
        raise AssertionError("exception swallowed by null span")


# -- counters and histograms --------------------------------------------------


def test_counters_accumulate():
    recorder = MetricsRecorder()
    recorder.count("a")
    recorder.count("a", 4)
    recorder.count("b", 2)
    assert recorder.counters == {"a": 5, "b": 2}


def test_histogram_streaming_summary():
    histogram = Histogram()
    assert histogram.mean is None
    for value in (3.0, 1.0, 2.0):
        histogram.observe(value)
    assert histogram.count == 3
    assert histogram.min == 1.0 and histogram.max == 3.0
    assert histogram.mean == 2.0
    data = histogram.to_dict()
    assert data == {"count": 3, "total": 6.0, "min": 1.0, "max": 3.0, "mean": 2.0}


def test_histogram_merge_folds_extremes_and_counts():
    left = Histogram()
    left.observe(5.0)
    right = Histogram()
    right.observe(1.0)
    right.observe(9.0)
    left.merge(right.to_dict())
    assert left.count == 3
    assert left.min == 1.0 and left.max == 9.0
    assert left.total == 15.0
    # merging an empty snapshot is a no-op
    left.merge(Histogram().to_dict())
    assert left.count == 3 and left.min == 1.0


def test_observe_builds_histograms_by_name():
    recorder = MetricsRecorder()
    recorder.observe("sizes", 2)
    recorder.observe("sizes", 4)
    assert recorder.histograms["sizes"].mean == 3


# -- spans and the step-keyed clock -------------------------------------------


def test_span_accumulates_wall_and_counts():
    recorder = MetricsRecorder()
    with recorder.span("phase", cat="test"):
        pass
    with recorder.span("phase", cat="test"):
        pass
    assert recorder.counters["span.phase"] == 2
    assert recorder.phase_wall["phase"] >= 0.0
    assert len(recorder.events) == 2
    event = recorder.events[0]
    assert event["ph"] == "X" and event["name"] == "phase"
    assert "wall_us" in event["args"]


def test_span_timestamps_follow_the_bound_step_clock():
    recorder = MetricsRecorder()
    step = [7]
    recorder.bind_step_clock(lambda: step[0])
    with recorder.span("phase"):
        step[0] = 9
    event = recorder.events[0]
    assert event["ts"] == 7 * TICKS_PER_STEP
    assert event["dur"] == 2 * TICKS_PER_STEP


def test_events_within_one_step_are_sequenced():
    recorder = MetricsRecorder()
    recorder.bind_step_clock(lambda: 3)
    recorder.instant("a")
    recorder.instant("b")
    ts_a, ts_b = (event["ts"] for event in recorder.events)
    assert ts_a < ts_b
    # both stay within the step's tick window
    assert ts_b < 4 * TICKS_PER_STEP


def test_max_events_cap_drops_events_but_not_aggregates():
    recorder = MetricsRecorder(max_events=2)
    for _ in range(5):
        recorder.instant("tick")
    assert len(recorder.events) == 2
    assert recorder.dropped_events == 3
    # the per-span counter keeps counting past the cap
    assert recorder.counters["span.tick"] == 5


def test_max_events_zero_keeps_counters_only():
    recorder = MetricsRecorder(max_events=0)
    with recorder.span("phase"):
        pass
    recorder.instant("i")
    assert recorder.events == []
    assert recorder.dropped_events == 2
    assert recorder.counters["span.phase"] == 1
    assert recorder.phase_wall["phase"] >= 0.0


# -- snapshots and cross-process merging --------------------------------------


def test_counters_snapshot_excludes_wall_clock():
    recorder = MetricsRecorder()
    recorder.count("a")
    recorder.observe("h", 1.0)
    with recorder.span("phase"):
        pass
    snapshot = recorder.counters_snapshot()
    assert set(snapshot) == {"counters", "histograms"}
    assert snapshot["counters"]["a"] == 1
    assert snapshot["histograms"]["h"]["count"] == 1


def test_merge_counts_folds_a_snapshot_in():
    worker = MetricsRecorder()
    worker.count("a", 2)
    worker.observe("h", 5.0)
    coordinator = MetricsRecorder()
    coordinator.count("a", 1)
    coordinator.merge_counts(worker.counters_snapshot())
    coordinator.merge_counts(None)  # tolerated: worker without metrics
    assert coordinator.counters["a"] == 3
    assert coordinator.histograms["h"].count == 1


def test_merge_snapshots_is_order_insensitive_and_none_safe():
    a = MetricsRecorder()
    a.count("x", 1)
    a.observe("h", 1.0)
    b = MetricsRecorder()
    b.count("x", 2)
    b.observe("h", 3.0)
    forward = merge_snapshots([a.counters_snapshot(), None, b.counters_snapshot()])
    backward = merge_snapshots([b.counters_snapshot(), a.counters_snapshot()])
    assert forward == backward
    assert forward["counters"]["x"] == 3
    assert merge_snapshots([None, None]) is None
    assert merge_snapshots([]) is None


def test_to_dict_is_json_ready_and_sorted():
    import json

    recorder = MetricsRecorder()
    recorder.count("b")
    recorder.count("a")
    recorder.observe("h", 2.5)
    with recorder.span("phase"):
        pass
    data = recorder.to_dict()
    json.dumps(data)  # must serialize
    assert list(data["counters"]) == sorted(data["counters"])
    assert data["trace_events"] == 1
    assert data["dropped_events"] == 0
