"""Golden test: every bundled registry program lints clean.

This is the analyzer's anchor to reality -- the eight Table 1
implementations are correct instrumentation by construction (their logs
pass refinement checking across the rest of the suite), so any finding
here is an analyzer false positive, and any *silent* regression in their
annotations would surface as a diff against this zero baseline.
"""

import pytest

from repro.harness.workload import PROGRAMS
from repro.lint import lint_class, lint_program, lint_registry


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_program_lints_clean(name):
    assert lint_program(name) == []


def test_registry_helper_covers_every_program():
    reports = lint_registry()
    assert set(reports) == set(PROGRAMS)
    assert all(findings == [] for findings in reports.values())


def test_lint_class_accepts_class_and_instance():
    from repro.multiset.vector_multiset import VectorMultiset

    assert lint_class(VectorMultiset) == []
    assert lint_class(VectorMultiset(size=4)) == []
