"""The static effect & commutativity analyzer (:mod:`repro.lint.effects`).

Feeds :func:`analyze_class_source` small synthetic implementation classes
and asserts the per-operation summaries, the pairwise independence matrix
and the VY007/VY008 findings; finishes with registry smoke checks that pin
the matrices the schedule reducer actually consumes.
"""

import textwrap

from repro.lint.effects import analyze_class_source, analyze_program

DISJOINT = """
class Thing:
    @operation
    def put(self, ctx, x):
        yield self.lock_a.acquire()
        yield self.a.write(x, commit=True)
        yield self.lock_a.release()

    @operation
    def bump(self, ctx):
        yield self.lock_b.acquire()
        value = yield self.b.read()
        yield self.b.write(value + 1, commit=True)
        yield self.lock_b.release()

    @operation
    def peek(self, ctx):
        value = yield self.a.read()
        return value

    VYRD_METHODS = {"put": "mutator", "bump": "mutator", "peek": "observer"}
"""


def analyze(source):
    return analyze_class_source(textwrap.dedent(source), classname="Thing")


def test_summaries_bound_footprints_and_locks():
    effects = analyze(DISJOINT)
    assert effects.operations == ("bump", "peek", "put")
    put = effects.summaries["put"]
    assert put.complete
    assert put.writes == {("a",)}
    assert put.locks == {("lock_a", "x")}
    assert put.commit_kinds == {"write-commit"}
    peek = effects.summaries["peek"]
    assert peek.role == "observer"
    assert peek.reads == {("a",)} and not peek.writes


def test_matrix_verdicts_disjoint_vs_overlapping():
    effects = analyze(DISJOINT)
    assert effects.verdict("put", "bump") == "independent"
    assert effects.verdict("bump", "peek") == "independent"
    # peek reads what put writes: ordered
    assert effects.verdict("put", "peek") == "dependent"
    assert effects.verdict("put", "put") == "dependent"
    # symmetric lookup through the (min, max) canonical key
    assert effects.verdict("bump", "put") == effects.verdict("put", "bump")


def test_starred_paths_yield_conditional_verdicts():
    effects = analyze("""
    class Thing:
        @operation
        def set_slot(self, ctx, i, x):
            yield self.slots[i].lock.acquire()
            yield self.slots[i].cell.write(x, commit=True)
            yield self.slots[i].lock.release()

        @operation
        def get_slot(self, ctx, i):
            yield self.slots[i].lock.acquire()
            value = yield self.slots[i].cell.read()
            yield self.slots[i].lock.release()
            return value

        VYRD_METHODS = {"set_slot": "mutator", "get_slot": "observer"}
    """)
    # same structure, possibly-distinct elements: commutes per concrete run
    for pair in [("set_slot", "set_slot"), ("get_slot", "set_slot"),
                 ("get_slot", "get_slot")]:
        assert effects.verdict(*pair) == "conditional", pair


def test_vy008_incomplete_footprint_pessimises_every_pair():
    effects = analyze("""
    class Thing:
        @operation
        def put(self, ctx, x):
            yield self.a.write(x, commit=True)

        @operation
        def sneak(self, ctx, x):
            self.stash.append(x)
            yield self.b.write(x, commit=True)

        VYRD_METHODS = {"put": "mutator", "sneak": "mutator"}
    """)
    assert effects.incomplete_operations() == {"sneak"}
    assert any(
        f.rule_id == "VY008" and f.method == "sneak" for f in effects.findings
    )
    # disjoint cells, but the unbounded footprint forces dependent
    assert effects.verdict("put", "sneak") == "dependent"
    assert "VY008" in effects.matrix[("put", "sneak")].reason


def test_confluent_helper_keeps_summary_complete():
    effects = analyze("""
    class Thing:
        VYRD_CONFLUENT_HELPERS = ("_note",)

        def _note(self, x):
            self.seen.append(x)

        @operation
        def touch(self, ctx, x):
            self._note(x)
            yield self.cell.write(x, commit=True)

        @operation
        def spy(self, ctx, x):
            self.seen.append(x)
            yield self.cell.write(x, commit=True)

        VYRD_METHODS = {"touch": "mutator", "spy": "mutator"}
    """)
    touch = effects.summaries["touch"]
    assert touch.complete
    # the helper's hidden path still enters the footprint, py:-prefixed...
    assert ("py:", "seen") in touch.footprint_writes()
    assert effects.verdict("touch", "touch") == "dependent"
    # ...while the same write inline in an operation stays incomplete
    assert effects.incomplete_operations() == {"spy"}
    assert effects.confluent_helpers == {"_note"}


def test_vy007_inconsistent_lockset_and_atomic_exemption():
    locked_writer = """
    class Thing:
        {declarations}
        @operation
        def put(self, ctx, x):
            yield self.lock.acquire()
            yield self.a.write(x, commit=True)
            yield self.lock.release()

        @operation
        def peek(self, ctx):
            value = yield self.a.read()
            return value

        VYRD_METHODS = {{"put": "mutator", "peek": "observer"}}
    """
    flagged = analyze(locked_writer.format(declarations=""))
    assert any(f.rule_id == "VY007" for f in flagged.findings)
    exempt = analyze(
        locked_writer.format(declarations='VYRD_ATOMIC_FIELDS = ("a",)')
    )
    assert not any(f.rule_id == "VY007" for f in exempt.findings)
    assert exempt.atomic_fields == {"a"}


def test_to_dict_schema():
    payload = analyze(DISJOINT).to_dict()
    assert set(payload) == {
        "class", "file", "operations", "matrix", "atomic_fields",
        "confluent_helpers", "incomplete_operations",
    }
    assert set(payload["operations"]) == {"bump", "peek", "put"}
    summary = payload["operations"]["put"]
    assert summary["writes"] == ["a"] and summary["locks"] == ["lock_a"]
    cell = payload["matrix"]["bump x put"]
    assert cell == {
        "verdict": "independent",
        "reason": "disjoint footprints and locksets",
    }


def test_analyze_program_blinktree_matrix():
    """Pin the registry matrix the schedule reducer runs on: lookups are
    the only independent pair, inserts (root writes) order with everything,
    deletes touch starred data cells (conditional)."""
    effects = analyze_program("blinktree")
    assert effects.class_name == "BLinkTree"
    assert not effects.incomplete_operations()
    assert effects.verdict("lookup", "lookup") == "independent"
    assert effects.verdict("delete", "lookup") == "conditional"
    assert effects.verdict("delete", "delete") == "conditional"
    assert effects.verdict("insert", "lookup") == "dependent"
    assert effects.verdict("insert", "insert") == "dependent"


def test_static_reducer_built_from_registry_effects():
    from repro.concurrency.reduction import StaticReducer

    effects = analyze_program("blinktree")
    reducer = StaticReducer.from_effects(effects)
    assert reducer.allows("lookup", "lookup")
    assert reducer.allows("delete", "lookup")
    assert not reducer.allows("insert", "lookup")
    # picklable (the parallel frontier ships it to workers) and stable
    import pickle

    assert pickle.loads(pickle.dumps(reducer)) == reducer
