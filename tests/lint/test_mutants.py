"""Mutation tests: break the vector multiset's instrumentation, one
annotation at a time, and assert the right rule fires.

Each mutant is derived textually from the *real*
:class:`~repro.multiset.vector_multiset.VectorMultiset` source, so these
tests double as a regression net for the analyzer's handling of idiomatic
implementation code (helpers, loops, commit blocks, failure paths).
"""

import inspect
import textwrap

from repro.lint import lint_class_source
from repro.multiset.vector_multiset import VectorMultiset

SOURCE = textwrap.dedent(inspect.getsource(VectorMultiset))


def lint(source):
    return lint_class_source(source, classname="VectorMultiset")


def mutate(old, new):
    assert old in SOURCE, f"mutation anchor not found: {old!r}"
    mutated = SOURCE.replace(old, new, 1)
    assert mutated != SOURCE
    return mutated


def test_unmutated_source_is_clean():
    assert lint(SOURCE) == []


def test_stripped_yield_fires_vy001():
    # insert's commit write loses its yield: the syscall never reaches the
    # kernel (VY001) and the success path loses its commit point (VY002)
    mutant = mutate(
        "yield slot.valid.write(True, commit=True)",
        "slot.valid.write(True, commit=True)",
    )
    findings = lint(mutant)
    assert {f.rule_id for f in findings} == {"VY001", "VY002"}
    assert {f.method for f in findings} == {"insert"}


def test_deleted_failure_commit_fires_vy002():
    # delete's scan-found-nothing path no longer commits
    mutant = mutate(
        "        yield ctx.commit()  # failure path\n",
        "",
    )
    findings = lint(mutant)
    assert [f.rule_id for f in findings] == ["VY002"]
    assert findings[0].method == "delete"


def test_extra_commit_fires_vy003():
    # insert's success path already committed on the valid-bit write
    mutant = mutate(
        "        yield slot.lock.release()\n        return SUCCESS",
        "        yield slot.lock.release()\n"
        "        yield ctx.commit()\n"
        "        return SUCCESS",
    )
    findings = lint(mutant)
    assert [f.rule_id for f in findings] == ["VY003"]
    assert findings[0].method == "insert"
    assert findings[0].severity == "warn"


def test_removed_end_commit_block_fires_vy004():
    # insert_pair's Fig. 4 commit block is never closed (which also strips
    # the success path's commit action)
    mutant = mutate(
        "        yield ctx.end_commit_block(commit=True)"
        "  # line 13: the commit action\n",
        "",
    )
    findings = lint(mutant)
    rules = {f.rule_id for f in findings}
    assert "VY004" in rules
    assert {f.method for f in findings} == {"insert_pair"}


def test_direct_slot_write_fires_vy005():
    mutant = mutate(
        "        slot = self.slots[i]\n        yield slot.lock.acquire()",
        "        slot = self.slots[i]\n"
        "        slot.reserved = True\n"
        "        yield slot.lock.acquire()",
    )
    findings = lint(mutant)
    assert [f.rule_id for f in findings] == ["VY005"]
    assert findings[0].method == "insert"
    assert "slot.reserved" in findings[0].message


def test_commit_in_lookup_fires_vy006():
    # lookup is declared an observer in VYRD_METHODS
    mutant = mutate(
        "                return True\n        return False",
        "                yield ctx.commit()\n"
        "                return True\n        return False",
    )
    findings = lint(mutant)
    assert [f.rule_id for f in findings] == ["VY006"]
    assert findings[0].method == "lookup"
