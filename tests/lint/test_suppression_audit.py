"""The ``# vyrd: ignore[...]`` suppression audit.

A pragma hides a diagnostic forever, so :func:`collect_suppressions` turns
every active one into an auditable record (file, lines, rules, whether a
justification follows) and :func:`audit_suppressions` does it per registry
program -- the CLI's ``lint --json`` payload surfaces both so CI can track
suppression growth.
"""

import textwrap

from repro.lint import audit_suppressions, collect_suppressions

SOURCE = textwrap.dedent("""
    class Thing:
        def one(self):
            self.a = 1  # vyrd: ignore[VY005] -- rebuilt under the lock
            self.b = 2  # vyrd: ignore[vy005, VY007]
            # vyrd: ignore[VY001]
            self.c = 3
            self.d = 4  # vyrd: ignore
""").strip("\n")


def test_collect_suppressions_schema_and_targets():
    audit = collect_suppressions(SOURCE, filename="thing.py", first_line=10)
    assert [sorted(entry) for entry in audit] == [
        ["file", "has_reason", "line", "rules", "target_line"]
    ] * 4
    by_line = {entry["line"]: entry for entry in audit}
    assert set(by_line) == {12, 13, 14, 16}
    assert all(entry["file"] == "thing.py" for entry in audit)

    inline = by_line[12]
    assert inline["target_line"] == 12
    assert inline["rules"] == ["VY005"]
    assert inline["has_reason"]  # "-- rebuilt under the lock"

    multi = by_line[13]
    assert multi["rules"] == ["VY005", "VY007"]  # normalized + sorted
    assert not multi["has_reason"]

    standalone = by_line[14]
    assert standalone["target_line"] == 15  # next non-comment line
    assert standalone["rules"] == ["VY001"]

    bare = by_line[16]
    assert bare["rules"] == ["*"]
    assert not bare["has_reason"]


def test_audit_suppressions_points_into_real_sources():
    audit = audit_suppressions("multiset-vector")
    assert audit, "the vector multiset carries a documented VY007 pragma"
    for entry in audit:
        assert entry["file"].endswith("vector_multiset.py")
        assert entry["line"] <= entry["target_line"]
        assert entry["rules"] and all(
            rule == "*" or rule.startswith("VY") for rule in entry["rules"]
        )


def test_lint_json_payload_carries_the_audit(capsys):
    import json

    from repro.tools.cli import main

    assert main(["lint", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    block = payload["suppressions"]
    assert set(block) == {"total", "without_reason", "programs"}
    assert block["total"] == sum(
        len(entries) for entries in block["programs"].values()
    )
    assert block["without_reason"] <= block["total"]
    flat = [e for entries in block["programs"].values() for e in entries]
    assert block["total"] == len(flat) > 0
    assert all(
        set(e) == {"file", "line", "target_line", "rules", "has_reason"}
        for e in flat
    )
