"""Per-rule unit tests for the static instrumentation analyzer.

Each test feeds :func:`repro.lint.lint_class_source` a small synthetic
implementation class and asserts the precise rule, method and behaviour.
The classes are parsed, never executed, so the ``@operation`` decorator and
the cells need no imports.
"""

import textwrap

import pytest

from repro.lint import RULES, LintFinding, lint_class_source, severity_at_least


def lint(source):
    return lint_class_source(textwrap.dedent(source), classname="Thing")


CLEAN = """
class Thing:
    @operation
    def put(self, ctx, x):
        yield self.cell.lock.acquire()
        yield self.cell.write(x, commit=True)
        yield self.cell.lock.release()
        return True

    @operation
    def get(self, ctx):
        yield self.cell.lock.acquire()
        value = yield self.cell.read()
        yield self.cell.lock.release()
        return value

    VYRD_METHODS = {"put": "mutator", "get": "observer"}
"""


def test_clean_class_is_silent():
    assert lint(CLEAN) == []


# -- VY001 missing-yield ----------------------------------------------------


def test_vy001_unyielded_cell_read():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            value = self.cell.read()
            yield self.cell.write(x, commit=True)
            return value
    """)
    assert [f.rule_id for f in findings] == ["VY001"]
    assert findings[0].method == "put"
    assert "self.cell.read(...)" in findings[0].message


def test_vy001_unyielded_ctx_commit():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            yield self.cell.write(x, commit=True)
            ctx.commit()
            return True
    """)
    assert [f.rule_id for f in findings] == ["VY001"]
    assert "ctx.commit(...)" in findings[0].message


def test_vy001_tracks_taint_through_locals():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            slot = self.slots[0]
            slot.lock.acquire()
            yield self.cell.write(x, commit=True)
            return True
    """)
    assert [f.rule_id for f in findings] == ["VY001"]
    assert "slot.lock.acquire(...)" in findings[0].message


def test_vy001_untainted_receiver_is_fine():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            handle = open("x")
            data = handle.read()
            yield self.cell.write(data, commit=True)
            return True
    """)
    assert findings == []


# -- VY002 commit-reachability ----------------------------------------------


def test_vy002_uncommitted_return_path():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            free = yield self.cell.read()
            if free:
                yield self.cell.write(x, commit=True)
                return True
            return False
    """)
    assert [f.rule_id for f in findings] == ["VY002"]
    assert findings[0].method == "put"


def test_vy002_exception_edges_are_exempt():
    # an aborted operation never logs a return, so a raising path needs
    # no commit point
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            free = yield self.cell.read()
            if not free:
                raise ValueError(x)
            yield self.cell.write(x, commit=True)
            return True
    """)
    assert findings == []


def test_vy002_satisfied_by_always_committing_helper():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            yield from self._commit_write(ctx, x)
            return True

        def _commit_write(self, ctx, x):
            yield self.cell.write(x, commit=True)
    """)
    assert findings == []


def test_vy002_not_applied_to_helpers():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            yield from self._reserve(ctx, x)
            yield self.cell.write(x, commit=True)
            return True

        def _reserve(self, ctx, x):
            yield self.cell.write(x)
            return True
    """)
    assert findings == []


# -- VY003 multi-commit-path ------------------------------------------------


def test_vy003_double_commit_on_one_path():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            yield self.cell.write(x, commit=True)
            yield ctx.commit()
            return True
    """)
    assert [f.rule_id for f in findings] == ["VY003"]
    assert findings[0].severity == "warn"


def test_vy003_suppressed_inside_commit_blocks():
    # internal commits inside an open commit block are the documented
    # pattern for compression moves
    findings = lint("""
    class Thing:
        @operation
        def move(self, ctx, x):
            yield ctx.begin_commit_block()
            yield self.cell.write(x)
            yield ctx.commit()
            yield ctx.end_commit_block(commit=True)
            return True
    """)
    assert [f.rule_id for f in findings] == []


def test_vy003_branches_commit_once_each_is_fine():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            free = yield self.cell.read()
            if free:
                yield self.cell.write(x, commit=True)
                return True
            yield ctx.commit()
            return False
    """)
    assert findings == []


# -- VY004 commit-block balance ---------------------------------------------


def test_vy004_block_open_at_return():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            yield ctx.begin_commit_block()
            yield self.cell.write(x)
            if x:
                yield ctx.end_commit_block(commit=True)
                return True
            yield ctx.commit()
            return False
    """)
    rules = {f.rule_id for f in findings}
    assert "VY004" in rules
    assert any("return path" in f.message for f in findings)


def test_vy004_block_open_at_exception_edge():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            yield ctx.begin_commit_block()
            yield self.cell.write(x)
            raise RuntimeError(x)
    """)
    assert {f.rule_id for f in findings} == {"VY004"}
    assert any("exception edge" in f.message for f in findings)


def test_vy004_try_finally_closes_on_all_paths():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            yield ctx.begin_commit_block()
            try:
                yield self.cell.write(x)
            finally:
                yield ctx.end_commit_block(commit=True)
            return True
    """)
    assert findings == []


def test_vy004_end_without_begin():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            yield self.cell.write(x)
            yield ctx.end_commit_block(commit=True)
            return True
    """)
    assert {f.rule_id for f in findings} == {"VY004"}
    assert any("without a matching" in f.message for f in findings)


def test_vy004_nested_blocks():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            yield ctx.begin_commit_block()
            yield ctx.begin_commit_block()
            yield self.cell.write(x)
            yield ctx.end_commit_block(commit=True)
            yield ctx.end_commit_block(commit=True)
            return True
    """)
    assert any(
        f.rule_id == "VY004" and "must not nest" in f.message for f in findings
    )


# -- VY005 unlogged-shared-write --------------------------------------------


def test_vy005_direct_attribute_write_via_taint():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            slot = self.slots[0]
            slot.value = x
            yield self.cell.write(x, commit=True)
            return True
    """)
    assert [f.rule_id for f in findings] == ["VY005"]
    assert "slot.value" in findings[0].message
    assert findings[0].severity == "warn"


def test_vy005_subscript_write_on_self():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            self.table[x] = x
            yield self.cell.write(x, commit=True)
            return True
    """)
    # the untracked write is both unlogged (VY005) and makes the effect
    # footprint unboundable (VY008)
    assert sorted(f.rule_id for f in findings) == ["VY005", "VY008"]


def test_vy005_local_container_write_is_fine():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            scratch = [0]
            scratch[0] = x
            yield self.cell.write(x, commit=True)
            return True
    """)
    assert findings == []


# -- VY006 observer-commits -------------------------------------------------


def test_vy006_observer_with_ctx_commit():
    findings = lint("""
    class Thing:
        @operation
        def get(self, ctx):
            value = yield self.cell.read()
            yield ctx.commit()
            return value

        VYRD_METHODS = {"get": "observer"}
    """)
    assert [f.rule_id for f in findings] == ["VY006"]
    assert findings[0].method == "get"


def test_vy006_observer_with_commit_kwarg():
    findings = lint("""
    class Thing:
        @operation
        def get(self, ctx):
            value = yield self.cell.read()
            yield self.cell.write(value, commit=True)
            return value

        VYRD_METHODS = {"get": "observer"}
    """)
    assert [f.rule_id for f in findings] == ["VY006"]


# -- suppressions ------------------------------------------------------------


def test_inline_suppression_silences_the_rule():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            self.table[x] = x  # vyrd: ignore[VY005, VY008] -- checker-invisible
            yield self.cell.write(x, commit=True)
            return True
    """)
    assert findings == []


def test_standalone_comment_suppresses_next_line():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            # vyrd: ignore[VY005, VY008] -- allocator bookkeeping, see DESIGN.md
            self.table[x] = x
            yield self.cell.write(x, commit=True)
            return True
    """)
    assert findings == []


def test_bare_suppression_silences_every_rule():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            self.table[x] = x  # vyrd: ignore
            yield self.cell.write(x, commit=True)
            return True
    """)
    assert findings == []


def test_suppression_for_a_different_rule_does_not_apply():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            self.table[x] = x  # vyrd: ignore[VY001]
            yield self.cell.write(x, commit=True)
            return True
    """)
    assert sorted(f.rule_id for f in findings) == ["VY005", "VY008"]


# -- model plumbing ----------------------------------------------------------


def test_findings_carry_rule_severity_and_render():
    findings = lint("""
    class Thing:
        @operation
        def put(self, ctx, x):
            value = self.cell.read()
            yield self.cell.write(x, commit=True)
            return value
    """)
    (finding,) = findings
    assert isinstance(finding, LintFinding)
    assert finding.severity == RULES[finding.rule_id].severity
    payload = finding.to_dict()
    assert payload["rule"] == "VY001"
    assert payload["method"] == "put"
    assert isinstance(payload["line"], int)
    rendered = finding.render()
    assert "VY001" in rendered and "put" in rendered


def test_severity_ordering():
    assert severity_at_least("error", "warn")
    assert severity_at_least("warn", "warn")
    assert not severity_at_least("warn", "error")


def test_missing_class_is_an_error():
    with pytest.raises(ValueError):
        lint_class_source("x = 1", classname="Nope")
