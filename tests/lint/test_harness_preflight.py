"""The harness-side lint pre-flight: ``run_program(lint=...)``."""

import pytest

from repro.concurrency import SharedCell
from repro.concurrency.errors import SimulationError
from repro.core import operation
from repro.harness.runner import run_program
from repro.harness.workload import BuiltProgram, Program
from repro.lint import LintError


class _BrokenImpl:
    """The commit write is not yielded: VY001 + VY002."""

    def __init__(self):
        self.cell = SharedCell("b.cell", 0)

    @operation
    def put(self, ctx, x):
        self.cell.write(x, commit=True)
        yield ctx.checkpoint()
        return True

    VYRD_METHODS = {"put": "mutator"}


def _broken_program():
    def build(buggy, num_threads):
        return BuiltProgram(
            impl=_BrokenImpl(),
            spec_factory=None,
            view_factory=None,
            make_worker=None,
        )

    return Program(name="broken-lint", bug="unyielded commit write", build=build)


def test_preflight_clean_program_records_empty_findings():
    result = run_program(
        "multiset-tree", num_threads=2, calls_per_thread=4, seed=1, lint="warn"
    )
    assert result.lint_findings == ()


def test_preflight_rejects_unknown_threshold():
    with pytest.raises(ValueError):
        run_program("multiset-tree", num_threads=1, calls_per_thread=1,
                    lint="strict")


def test_preflight_blocks_broken_impl_before_the_run():
    with pytest.raises(LintError) as info:
        run_program(_broken_program(), num_threads=1, calls_per_thread=1,
                    lint="error")
    findings = info.value.findings
    assert {f.rule_id for f in findings} == {"VY001", "VY002"}
    assert all(f.method == "put" for f in findings)
    # pre-existing exit-2 plumbing (run --json) catches it as a run problem
    assert isinstance(info.value, SimulationError)
    assert "VY001" in str(info.value)
