"""Instrumentation layer: tracer levels, op bracketing, the wrapper."""

import pytest

from repro.concurrency import Kernel, SharedCell
from repro.core import (
    InstrumentationError,
    InstrumentedDataStructure,
    VyrdTracer,
    operation,
)


class Toy:
    """Minimal instrumentable structure."""

    def __init__(self):
        self.cell = SharedCell("toy.value", 0)

    @operation
    def bump(self, ctx, amount):
        value = yield self.cell.read()
        yield self.cell.write(value + amount, commit=True)
        return value + amount

    @operation
    def peek_op(self, ctx):
        value = yield self.cell.read()
        return value

    def helper(self, ctx):
        yield ctx.checkpoint()


def _run(level):
    tracer = VyrdTracer(level=level)
    toy = Toy()
    wrapped = InstrumentedDataStructure(toy, tracer)
    kernel = Kernel(tracer=tracer)

    def body(ctx):
        yield from wrapped.bump(ctx, 5)
        yield from wrapped.peek_op(ctx)
        yield ctx.begin_commit_block()
        yield ctx.end_commit_block()
        yield ctx.replay("tag", 1)

    kernel.spawn(body)
    kernel.run()
    return tracer.log


def test_view_level_logs_everything():
    log = _run("view")
    kinds = [type(a).__name__ for a in log]
    assert kinds == [
        "CallAction", "WriteAction", "CommitAction", "ReturnAction",
        "CallAction", "ReturnAction",
        "BeginCommitBlockAction", "EndCommitBlockAction", "ReplayAction",
    ]


def test_io_level_logs_only_call_return_commit():
    log = _run("io")
    kinds = {type(a).__name__ for a in log}
    assert kinds == {"CallAction", "CommitAction", "ReturnAction"}
    assert len(log) == 5


def test_none_level_logs_nothing():
    assert len(_run("none")) == 0


def test_unknown_level_rejected():
    with pytest.raises(ValueError):
        VyrdTracer(level="debug")


def test_op_ids_link_call_commit_return():
    log = _run("view")
    call, write, commit, ret = log[0], log[1], log[2], log[3]
    assert call.op_id == write.op_id == commit.op_id == ret.op_id
    assert call.method == ret.method == "bump"
    assert call.args == (5,)
    assert ret.result == 5


def test_actions_outside_ops_have_no_op_id():
    log = _run("view")
    assert log[6].op_id is None  # begin block after the ops finished
    assert log[8].op_id is None  # replay action


def test_nested_public_operations_rejected():
    tracer = VyrdTracer(level="io")
    toy = Toy()
    wrapped = InstrumentedDataStructure(toy, tracer)
    kernel = Kernel(tracer=tracer)

    def body(ctx):
        frame = tracer.begin_op(ctx.tid, "outer", ())
        yield ctx.checkpoint()
        with pytest.raises(InstrumentationError):
            yield from wrapped.bump(ctx, 1)
        tracer.end_op(ctx.tid, frame, None)

    kernel.spawn(body)
    kernel.run()


def test_wrapper_exposes_only_operations():
    toy = Toy()
    wrapped = InstrumentedDataStructure(toy, VyrdTracer())
    assert wrapped.operations == {"bump", "peek_op"}
    with pytest.raises(AttributeError):
        wrapped.helper
    with pytest.raises(AttributeError):
        wrapped._private
    assert wrapped.impl is toy


def test_wrapper_requires_operations():
    class Empty:
        pass

    with pytest.raises(InstrumentationError):
        InstrumentedDataStructure(Empty(), VyrdTracer())


def test_explicit_method_set_overrides_discovery():
    toy = Toy()
    wrapped = InstrumentedDataStructure(toy, VyrdTracer(), methods={"bump"})
    assert wrapped.operations == {"bump"}
    with pytest.raises(AttributeError):
        wrapped.peek_op


def test_mismatched_end_op_rejected():
    tracer = VyrdTracer()
    frame_a = tracer.begin_op(0, "a", ())
    with pytest.raises(InstrumentationError):
        tracer.end_op(1, frame_a, None)  # wrong thread
