"""Log behavior, serialization round-trips and well-formedness checking."""

import io
import pickle
import time

from repro.core import (
    AcquireAction,
    BeginCommitBlockAction,
    CallAction,
    CommitAction,
    EndCommitBlockAction,
    JoinAction,
    Log,
    LogReader,
    LogView,
    LogWriter,
    ReadAction,
    ReleaseAction,
    ReturnAction,
    Signature,
    SpawnAction,
    WriteAction,
    load_log,
    save_log,
    validate_well_formed,
)


def _simple_log():
    return Log([
        CallAction(0, 0, "insert", (3,)),
        WriteAction(0, 0, "A[0].elt", None, 3),
        CommitAction(0, 0),
        ReturnAction(0, 0, "insert", "success"),
    ])


def test_log_append_and_indexing():
    log = Log()
    assert len(log) == 0
    seq = log.append(CallAction(1, 7, "m", ()))
    assert seq == 0
    assert log[0].method == "m"
    assert log.append(ReturnAction(1, 7, "m", None)) == 1
    assert len(log) == 2


def test_log_since_cursor():
    log = _simple_log()
    tail = log.since(2)
    assert len(tail) == 2
    assert isinstance(tail[0], CommitAction)
    assert log.since(len(log)) == []


def test_since_returns_bounded_view_over_shared_storage():
    log = _simple_log()
    view = log.since(1)
    assert isinstance(view, LogView)
    assert (view.start, view.stop) == (1, 4)
    assert view[0] is log[1]          # same record objects, no copy
    assert view[-1] is log[3]
    assert list(view) == list(log)[1:]
    assert view[1:3] == list(log)[2:4]
    assert view == list(log)[1:]
    # the view is a snapshot: appends after creation fall outside its bounds
    log.append(CommitAction(0, None))
    assert len(view) == 3
    assert log.since(0).stop == 5


def test_since_is_not_quadratic_on_long_logs():
    """Regression: an online verifier that drains one record per poll used
    to re-copy the whole remaining tail each time (O(n^2) total).  With the
    bounded view the same access pattern is O(n)."""
    n = 30_000
    log = Log(CommitAction(0, None) for _ in range(n))
    start = time.perf_counter()
    cursor = 0
    consumed = 0
    while cursor < len(log):
        tail = log.since(cursor)
        consumed += 1 if len(tail) else 0
        cursor += 1
    elapsed = time.perf_counter() - start
    assert consumed == n
    # view construction is O(1); the copying implementation shuffles ~450M
    # list slots here and blows far past this bound on any hardware
    assert elapsed < 1.5


def test_file_round_trip(tmp_path):
    log = _simple_log()
    path = tmp_path / "run.vyrdlog"
    save_log(log, path)
    restored = load_log(path)
    assert list(restored) == list(log)


def _sync_log():
    """A log exercising every synchronization-event record kind."""
    return Log([
        SpawnAction(0, None, 2),
        CallAction(2, 0, "insert", (3,)),
        AcquireAction(2, 0, "A[0]"),
        ReadAction(2, 0, "A[0].elt"),
        WriteAction(2, 0, "A[0].elt", None, 3),
        ReleaseAction(2, 0, "A[0]"),
        AcquireAction(2, 0, "rw", "r"),
        ReleaseAction(2, 0, "rw", "r"),
        CommitAction(2, 0),
        ReturnAction(2, 0, "insert", "success"),
        JoinAction(0, None, 2),
    ])


def test_sync_records_file_round_trip(tmp_path):
    log = _sync_log()
    path = tmp_path / "sync.vyrdlog"
    save_log(log, path)
    restored = load_log(path)
    assert list(restored) == list(log)


def test_acquire_release_round_trip_fields(tmp_path):
    log = Log([
        AcquireAction(4, 9, "tree.n3", "w"),
        ReleaseAction(4, 9, "tree.n3", "w"),
        AcquireAction(5, None, "guard"),
        ReleaseAction(5, None, "guard"),
    ])
    path = tmp_path / "locks.vyrdlog"
    save_log(log, path)
    acquire, release, plain_acquire, plain_release = load_log(path)
    assert (acquire.tid, acquire.op_id, acquire.lock, acquire.mode) == (
        4, 9, "tree.n3", "w"
    )
    assert (release.tid, release.op_id, release.lock, release.mode) == (
        4, 9, "tree.n3", "w"
    )
    assert plain_acquire.mode == "x" and plain_release.mode == "x"
    assert plain_acquire.op_id is None


def test_read_round_trip_fields(tmp_path):
    log = Log([ReadAction(7, 11, "cache.entry[2]"), ReadAction(0, None, "d")])
    path = tmp_path / "reads.vyrdlog"
    save_log(log, path)
    read, internal = load_log(path)
    assert (read.tid, read.op_id, read.loc) == (7, 11, "cache.entry[2]")
    assert (internal.tid, internal.op_id, internal.loc) == (0, None, "d")


def test_spawn_join_round_trip_fields(tmp_path):
    log = Log([SpawnAction(1, 3, 6), JoinAction(1, 3, 6)])
    path = tmp_path / "forks.vyrdlog"
    save_log(log, path)
    spawn, join = load_log(path)
    assert (spawn.tid, spawn.op_id, spawn.child_tid) == (1, 3, 6)
    assert (join.tid, join.op_id, join.child_tid) == (1, 3, 6)


def test_sync_records_are_well_formed_passthrough():
    assert validate_well_formed(_sync_log()) == []


def test_stream_round_trip_in_memory():
    log = _simple_log()
    buffer = io.BytesIO()
    with LogWriter(buffer) as writer:
        writer.write_all(log)
    buffer.seek(0)
    with LogReader(buffer) as reader:
        assert list(reader) == list(log)


def test_framed_records_are_independently_loadable(tmp_path):
    """The stream pickler's memo is cleared per record, so every record is a
    self-contained pickle frame: a fresh Unpickler at any record boundary
    must succeed, even with payload objects repeated across records.
    (``framed=False`` is the legacy bare-pickle format; the default framed
    format wraps each of these same pickles in a length+CRC header.)"""
    payload = ("shared-payload", 7)
    log = Log(CallAction(0, i, "m", (payload,)) for i in range(6))
    path = tmp_path / "framed.vyrdlog"
    save_log(log, path, framed=False)
    restored = []
    with open(path, "rb") as handle:
        while True:
            try:
                restored.append(pickle.Unpickler(handle).load())
            except EOFError:
                break
    assert restored == list(log)


def test_reader_loads_legacy_per_record_dumps(tmp_path):
    """Files written record-at-a-time with plain pickle.dump (the pre-framing
    format) load unchanged through the persistent-unpickler reader."""
    log = _sync_log()
    path = tmp_path / "legacy.vyrdlog"
    with open(path, "wb") as handle:
        for action in log:
            pickle.dump(action, handle, protocol=pickle.HIGHEST_PROTOCOL)
    assert list(load_log(path)) == list(log)


def test_interleaved_write_and_write_all_round_trip(tmp_path):
    log = _sync_log()
    path = tmp_path / "mixed.vyrdlog"
    with LogWriter(path) as writer:
        writer.write(log[0])
        writer.write_all(log[1:5])
        writer.write(log[5])
        writer.write_all(log[6:])
    assert list(load_log(path)) == list(log)


def test_signature_str():
    sig = Signature(2, "lookup", (5,), True)
    assert str(sig) == "t2:lookup(5) -> True"


def test_well_formed_log_passes():
    assert validate_well_formed(_simple_log()) == []


def test_call_while_open_is_flagged():
    log = Log([
        CallAction(0, 0, "a", ()),
        CallAction(0, 1, "b", ()),
    ])
    problems = validate_well_formed(log)
    assert any("still open" in p for p in problems)


def test_unmatched_return_is_flagged():
    log = Log([ReturnAction(0, 5, "a", None)])
    problems = validate_well_formed(log)
    assert any("does not match" in p for p in problems)


def test_commit_outside_window_is_flagged():
    log = Log([
        CallAction(0, 0, "a", ()),
        ReturnAction(0, 0, "a", None),
        CommitAction(0, 0),
    ])
    problems = validate_well_formed(log)
    assert any("outside its call/return window" in p for p in problems)


def test_double_commit_is_flagged():
    log = Log([
        CallAction(0, 0, "a", ()),
        CommitAction(0, 0),
        CommitAction(0, 0),
        ReturnAction(0, 0, "a", None),
    ])
    problems = validate_well_formed(log)
    assert any("more than once" in p for p in problems)


def test_internal_commit_is_not_flagged():
    log = Log([CommitAction(3, None)])
    assert validate_well_formed(log) == []


def test_unbalanced_commit_block_is_flagged():
    log = Log([BeginCommitBlockAction(0, None)])
    problems = validate_well_formed(log)
    assert any("commit block" in p for p in problems)

    log2 = Log([EndCommitBlockAction(0, None)])
    problems2 = validate_well_formed(log2)
    assert any("never began" in p for p in problems2)


def test_missing_return_at_end_is_flagged():
    log = Log([CallAction(0, 0, "a", ())])
    problems = validate_well_formed(log)
    assert any("never returned" in p for p in problems)


def test_op_id_reuse_is_flagged():
    log = Log([
        CallAction(0, 0, "a", ()),
        ReturnAction(0, 0, "a", None),
        CallAction(1, 0, "a", ()),
        ReturnAction(1, 0, "a", None),
    ])
    problems = validate_well_formed(log)
    assert any("reused" in p for p in problems)
