"""Log behavior, serialization round-trips and well-formedness checking."""

import io

from repro.core import (
    AcquireAction,
    BeginCommitBlockAction,
    CallAction,
    CommitAction,
    EndCommitBlockAction,
    JoinAction,
    Log,
    LogReader,
    LogWriter,
    ReadAction,
    ReleaseAction,
    ReturnAction,
    Signature,
    SpawnAction,
    WriteAction,
    load_log,
    save_log,
    validate_well_formed,
)


def _simple_log():
    return Log([
        CallAction(0, 0, "insert", (3,)),
        WriteAction(0, 0, "A[0].elt", None, 3),
        CommitAction(0, 0),
        ReturnAction(0, 0, "insert", "success"),
    ])


def test_log_append_and_indexing():
    log = Log()
    assert len(log) == 0
    seq = log.append(CallAction(1, 7, "m", ()))
    assert seq == 0
    assert log[0].method == "m"
    assert log.append(ReturnAction(1, 7, "m", None)) == 1
    assert len(log) == 2


def test_log_since_cursor():
    log = _simple_log()
    tail = log.since(2)
    assert len(tail) == 2
    assert isinstance(tail[0], CommitAction)
    assert log.since(len(log)) == []


def test_file_round_trip(tmp_path):
    log = _simple_log()
    path = tmp_path / "run.vyrdlog"
    save_log(log, path)
    restored = load_log(path)
    assert list(restored) == list(log)


def _sync_log():
    """A log exercising every synchronization-event record kind."""
    return Log([
        SpawnAction(0, None, 2),
        CallAction(2, 0, "insert", (3,)),
        AcquireAction(2, 0, "A[0]"),
        ReadAction(2, 0, "A[0].elt"),
        WriteAction(2, 0, "A[0].elt", None, 3),
        ReleaseAction(2, 0, "A[0]"),
        AcquireAction(2, 0, "rw", "r"),
        ReleaseAction(2, 0, "rw", "r"),
        CommitAction(2, 0),
        ReturnAction(2, 0, "insert", "success"),
        JoinAction(0, None, 2),
    ])


def test_sync_records_file_round_trip(tmp_path):
    log = _sync_log()
    path = tmp_path / "sync.vyrdlog"
    save_log(log, path)
    restored = load_log(path)
    assert list(restored) == list(log)


def test_acquire_release_round_trip_fields(tmp_path):
    log = Log([
        AcquireAction(4, 9, "tree.n3", "w"),
        ReleaseAction(4, 9, "tree.n3", "w"),
        AcquireAction(5, None, "guard"),
        ReleaseAction(5, None, "guard"),
    ])
    path = tmp_path / "locks.vyrdlog"
    save_log(log, path)
    acquire, release, plain_acquire, plain_release = load_log(path)
    assert (acquire.tid, acquire.op_id, acquire.lock, acquire.mode) == (
        4, 9, "tree.n3", "w"
    )
    assert (release.tid, release.op_id, release.lock, release.mode) == (
        4, 9, "tree.n3", "w"
    )
    assert plain_acquire.mode == "x" and plain_release.mode == "x"
    assert plain_acquire.op_id is None


def test_read_round_trip_fields(tmp_path):
    log = Log([ReadAction(7, 11, "cache.entry[2]"), ReadAction(0, None, "d")])
    path = tmp_path / "reads.vyrdlog"
    save_log(log, path)
    read, internal = load_log(path)
    assert (read.tid, read.op_id, read.loc) == (7, 11, "cache.entry[2]")
    assert (internal.tid, internal.op_id, internal.loc) == (0, None, "d")


def test_spawn_join_round_trip_fields(tmp_path):
    log = Log([SpawnAction(1, 3, 6), JoinAction(1, 3, 6)])
    path = tmp_path / "forks.vyrdlog"
    save_log(log, path)
    spawn, join = load_log(path)
    assert (spawn.tid, spawn.op_id, spawn.child_tid) == (1, 3, 6)
    assert (join.tid, join.op_id, join.child_tid) == (1, 3, 6)


def test_sync_records_are_well_formed_passthrough():
    assert validate_well_formed(_sync_log()) == []


def test_stream_round_trip_in_memory():
    log = _simple_log()
    buffer = io.BytesIO()
    with LogWriter(buffer) as writer:
        writer.write_all(log)
    buffer.seek(0)
    with LogReader(buffer) as reader:
        assert list(reader) == list(log)


def test_signature_str():
    sig = Signature(2, "lookup", (5,), True)
    assert str(sig) == "t2:lookup(5) -> True"


def test_well_formed_log_passes():
    assert validate_well_formed(_simple_log()) == []


def test_call_while_open_is_flagged():
    log = Log([
        CallAction(0, 0, "a", ()),
        CallAction(0, 1, "b", ()),
    ])
    problems = validate_well_formed(log)
    assert any("still open" in p for p in problems)


def test_unmatched_return_is_flagged():
    log = Log([ReturnAction(0, 5, "a", None)])
    problems = validate_well_formed(log)
    assert any("does not match" in p for p in problems)


def test_commit_outside_window_is_flagged():
    log = Log([
        CallAction(0, 0, "a", ()),
        ReturnAction(0, 0, "a", None),
        CommitAction(0, 0),
    ])
    problems = validate_well_formed(log)
    assert any("outside its call/return window" in p for p in problems)


def test_double_commit_is_flagged():
    log = Log([
        CallAction(0, 0, "a", ()),
        CommitAction(0, 0),
        CommitAction(0, 0),
        ReturnAction(0, 0, "a", None),
    ])
    problems = validate_well_formed(log)
    assert any("more than once" in p for p in problems)


def test_internal_commit_is_not_flagged():
    log = Log([CommitAction(3, None)])
    assert validate_well_formed(log) == []


def test_unbalanced_commit_block_is_flagged():
    log = Log([BeginCommitBlockAction(0, None)])
    problems = validate_well_formed(log)
    assert any("commit block" in p for p in problems)

    log2 = Log([EndCommitBlockAction(0, None)])
    problems2 = validate_well_formed(log2)
    assert any("never began" in p for p in problems2)


def test_missing_return_at_end_is_flagged():
    log = Log([CallAction(0, 0, "a", ())])
    problems = validate_well_formed(log)
    assert any("never returned" in p for p in problems)


def test_op_id_reuse_is_flagged():
    log = Log([
        CallAction(0, 0, "a", ()),
        ReturnAction(0, 0, "a", None),
        CallAction(1, 0, "a", ()),
        ReturnAction(1, 0, "a", None),
    ])
    problems = validate_well_formed(log)
    assert any("reused" in p for p in problems)
