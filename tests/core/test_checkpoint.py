"""Checkpoint format, integrity rejection, and checker save/restore parity."""

import pytest

from repro.core import (
    CallAction,
    Checkpoint,
    CheckpointError,
    CommitAction,
    RefinementChecker,
    ReturnAction,
    WriteAction,
    checkpoint_blob_name,
)
from repro.core.checkpoint import FORMAT_VERSION, MAGIC

from test_refinement_unit import RegisterSpec, _op, register_view


def _checker():
    return RefinementChecker(
        RegisterSpec(), mode="view", impl_view=register_view()
    )


def _log(n=6):
    actions = []
    for index in range(n):
        actions.extend(
            _op(0, index, "set", (index,), True,
                seq_actions=[WriteAction(0, index, "reg", None, index)])
        )
    return actions


# -- the serialized format ---------------------------------------------------


def test_round_trip_through_bytes():
    original = Checkpoint(payload={"x": (1, 2)}, meta={"resume_seq": 7})
    restored = Checkpoint.from_bytes(original.to_bytes())
    assert restored.payload == original.payload
    assert restored.resume_seq == 7


def test_save_load_file(tmp_path):
    path = str(tmp_path / "c.vyrdckpt")
    Checkpoint(payload={"k": "v"}, meta={}).save(path)
    assert Checkpoint.load(path).payload == {"k": "v"}


def test_bad_magic_rejected():
    blob = Checkpoint(payload={}, meta={}).to_bytes()
    with pytest.raises(CheckpointError):
        Checkpoint.from_bytes(b"NOTACKPT1\n" + blob[len(MAGIC):])


def test_flipped_payload_byte_rejected_by_hash():
    blob = bytearray(Checkpoint(payload={"k": "v"}, meta={}).to_bytes())
    blob[-1] ^= 0xFF
    with pytest.raises(CheckpointError, match="hash"):
        Checkpoint.from_bytes(bytes(blob))


def test_unsupported_version_rejected():
    blob = Checkpoint(payload={}, meta={}).to_bytes()
    bumped = blob.replace(
        f'"version": {FORMAT_VERSION}'.encode(),
        f'"version": {FORMAT_VERSION + 1}'.encode(),
    )
    with pytest.raises(CheckpointError, match="version"):
        Checkpoint.from_bytes(bumped)


def test_truncated_blob_rejected():
    blob = Checkpoint(payload={"k": "v"}, meta={}).to_bytes()
    with pytest.raises(CheckpointError):
        Checkpoint.from_bytes(blob[: len(blob) // 2])


def test_missing_file_is_typed_error(tmp_path):
    with pytest.raises(CheckpointError):
        Checkpoint.load(str(tmp_path / "nope.vyrdckpt"))


def test_blob_name_is_per_session():
    assert checkpoint_blob_name("run-7") == "run-7/CHECKPOINT.vyrdckpt"


# -- checker save/restore ----------------------------------------------------


def test_checkpoint_mid_log_resume_matches_straight_run():
    log = _log(8)
    straight = _checker()
    straight.feed(log)
    expected = straight.finish().to_dict()

    cut = len(log) // 2
    first = _checker()
    first.feed(log[:cut])
    checkpoint = Checkpoint.from_bytes(first.checkpoint().to_bytes())

    resumed = _checker()
    resumed.restore(checkpoint)
    assert checkpoint.resume_seq == cut
    resumed.feed(log[checkpoint.resume_seq:])
    assert resumed.finish().to_dict() == expected


def test_restore_requires_fresh_checker():
    first = _checker()
    first.feed(_log(2))
    checkpoint = first.checkpoint()
    used = _checker()
    used.feed(_log(1))
    with pytest.raises(CheckpointError, match="fresh"):
        used.restore(checkpoint)


def test_restore_rejects_mismatched_configuration():
    view_checker = _checker()
    view_checker.feed(_log(2))
    checkpoint = view_checker.checkpoint()
    io_checker = RefinementChecker(RegisterSpec(), mode="io")
    with pytest.raises(CheckpointError, match="config"):
        io_checker.restore(checkpoint)


def test_checkpoint_preserves_buffered_lookahead():
    """A checkpoint taken while a commit is waiting for its return must
    carry the buffered actions: the resumed checker sees the return first."""
    log = (
        [CallAction(0, 0, "set", (1,)),
         WriteAction(0, 0, "reg", None, 1),
         CommitAction(0, 0)]          # buffered: return not yet seen
        + [ReturnAction(0, 0, "set", True)]
    )
    first = _checker()
    first.feed(log[:3])
    checkpoint = Checkpoint.from_bytes(first.checkpoint().to_bytes())
    resumed = _checker()
    resumed.restore(checkpoint)
    resumed.feed(log[3:])
    outcome = resumed.finish()
    assert outcome.ok
    assert outcome.commits_executed == 1


# -- bounded memory (the _ops/_returns leak regression) ----------------------


def test_op_bookkeeping_stays_bounded_over_long_logs():
    """Completed executions must be dropped from the op/return indices;
    before the fix both dicts grew with every execution ever checked."""
    checker = _checker()
    for index in range(500):
        checker.feed(
            _op(0, index, "set", (index,), True,
                seq_actions=[WriteAction(0, index, "reg", index - 1 if index else None, index)])
        )
        assert len(checker._ops) == 0
        assert len(checker._returns) == 0
    # an execution mid-flight is the only thing allowed to occupy a slot
    checker.feed([CallAction(0, 999, "set", (1,))])
    assert len(checker._ops) == 1
