"""CheckOutcome/Violation serialization and report rendering of lock events."""

import json

from repro.core import (
    AcquireAction,
    CallAction,
    CommitAction,
    Log,
    ReadAction,
    ReleaseAction,
    ReturnAction,
    check_log,
    render_trace,
)
from tests.core.test_refinement_unit import RegisterSpec


def test_outcome_to_dict_is_json_serializable_on_pass():
    log = Log([
        CallAction(0, 0, "set", (5,)),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
    ])
    outcome = check_log(log, RegisterSpec(), mode="io")
    payload = json.loads(json.dumps(outcome.to_dict()))
    assert payload["ok"] is True
    assert payload["methods_checked"] == 1
    assert payload["violations"] == []


def test_outcome_to_dict_carries_violation_details():
    log = Log([
        CallAction(0, 0, "set", (5,)),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", "bogus"),
    ])
    outcome = check_log(log, RegisterSpec(), mode="io")
    payload = json.loads(json.dumps(outcome.to_dict()))
    assert payload["ok"] is False
    violation = payload["violations"][0]
    assert violation["kind"] == "io-refinement"
    assert "set" in violation["signature"]
    assert violation["seq"] == 1
    assert isinstance(violation["details"], dict)


def test_render_trace_shows_lock_and_read_events_with_writes():
    log = Log([
        CallAction(0, 0, "m", ()),
        AcquireAction(0, 0, "mylock"),
        ReadAction(0, 0, "x"),
        ReleaseAction(0, 0, "mylock"),
        AcquireAction(0, 0, "rw", "r"),
        ReleaseAction(0, 0, "rw", "r"),
        ReturnAction(0, 0, "m", None),
    ])
    detailed = render_trace(log, include_writes=True)
    assert "acq mylock" in detailed
    assert "r x" in detailed
    assert "rel rw:r" in detailed
    # the default rendering hides them like other fine-grained events
    compact = render_trace(log)
    assert "acq" not in compact and "r x" not in compact
