"""Diagnosing wrong commit-point annotations (paper section 4.1).

"The runtime refinement check could fail either because the implementation
truly does not refine the specification or because the witness interleaving
obtained using the commit actions is wrong."  These tests exercise the
second case: a *correct* implementation with a *misplaced* commit annotation
produces violations, and the tooling (trace rendering, witness listing,
program-order diagnostics) pinpoints the annotation rather than the code.
"""

from repro import Kernel, Vyrd
from repro.concurrency import ThreadCtx
from repro.core import build_witness, render_witness, respects_program_order
from repro.multiset import SUCCESS, MultisetSpec, VectorMultiset, multiset_view


class EarlyCommitMultiset(VectorMultiset):
    """Correct code, wrong annotation: insert commits on the *reservation*
    write (before the valid bit is set), so the witness says the element is
    in M before any other thread can observe it."""

    def insert(self, ctx: ThreadCtx, x):
        i = yield from self.find_slot_committing(ctx, x)
        if i == -1:
            yield ctx.commit()
            return "failure"
        slot = self.slots[i]
        yield slot.lock.acquire()
        yield slot.valid.write(True)  # no commit here anymore
        yield slot.lock.release()
        return SUCCESS

    def find_slot_committing(self, ctx: ThreadCtx, x):
        for i in range(self.size):
            slot = self.slots[i]
            yield slot.lock.acquire()
            elt = yield slot.elt.read()
            if elt is None:
                yield slot.elt.write(x, commit=True)  # too early!
                yield slot.lock.release()
                return i
            yield slot.lock.release()
        return -1

    VYRD_METHODS = VectorMultiset.VYRD_METHODS


# re-register the @operation marker lost by overriding
EarlyCommitMultiset.insert._vyrd_operation = True


def _run(ds_class, seed):
    vyrd = Vyrd(spec_factory=MultisetSpec, mode="view",
                impl_view_factory=multiset_view)
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    ds = ds_class(size=8)
    vds = vyrd.wrap(ds)

    def inserter(ctx, x):
        yield from vds.insert(ctx, x)

    def prober(ctx):
        for key in (1, 2):
            yield from vds.lookup(ctx, key)

    kernel.spawn(inserter, 1)
    kernel.spawn(inserter, 2)
    kernel.spawn(prober)
    kernel.run()
    return vyrd


def test_early_commit_annotation_causes_spurious_violations():
    """The early commit makes view refinement flag the (correct) code: at
    the commit, the valid bit is not yet set, so viewI lacks the element the
    spec just inserted."""
    flagged = False
    for seed in range(40):
        vyrd = _run(EarlyCommitMultiset, seed)
        outcome = vyrd.check_offline()
        if not outcome.ok:
            flagged = True
            # the correctly annotated implementation is clean on this seed
            control = _run(VectorMultiset, seed).check_offline()
            assert control.ok, str(control.first_violation)
            break
    assert flagged, "the misplaced commit never produced a violation"


def test_witness_tools_support_the_debugging_loop():
    """The paper's remedy is comparing the witness with the trace; the
    witness utilities must expose commit positions for that comparison."""
    vyrd = _run(EarlyCommitMultiset, 0)
    witness = build_witness(vyrd.log)
    for execution in witness.serialized():
        assert execution.call_seq < execution.commit_seq < execution.return_seq
    listing = render_witness(vyrd.log)
    assert "commit@" in listing
    # program order is still respected (commits inside windows), so the
    # diagnosis points at commit *placement*, not ordering
    assert respects_program_order(witness) == []


def test_commit_annotation_after_return_is_caught_by_well_formedness():
    from repro.core import (
        CallAction,
        CommitAction,
        Log,
        ReturnAction,
        validate_well_formed,
    )

    log = Log([
        CallAction(0, 0, "insert", (1,)),
        ReturnAction(0, 0, "insert", SUCCESS),
        CommitAction(0, 0),  # annotation fired after the return
    ])
    problems = validate_well_formed(log)
    assert any("outside its call/return window" in p for p in problems)
