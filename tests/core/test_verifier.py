"""The Vyrd facade: offline checking, online verification thread, modes."""

import pytest

from repro import Kernel, Vyrd
from repro.multiset import MultisetSpec, VectorMultiset, multiset_view


def _session(mode="view", log_level=None):
    return Vyrd(
        spec_factory=MultisetSpec,
        mode=mode,
        impl_view_factory=multiset_view if mode == "view" else None,
        log_level=log_level,
    )


def _spawn_workload(vyrd, seed=0, buggy=False):
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    ds = VectorMultiset(size=8, buggy_findslot=buggy)
    vds = vyrd.wrap(ds)

    def worker(ctx, values):
        for v in values:
            yield from vds.insert_pair(ctx, v, v + 100)
            yield from vds.lookup(ctx, v)

    kernel.spawn(worker, [1, 2])
    kernel.spawn(worker, [3, 4])
    return kernel


def test_view_mode_requires_view_factory():
    with pytest.raises(ValueError):
        Vyrd(spec_factory=MultisetSpec, mode="view")


def test_log_level_defaults_follow_mode():
    assert _session("view").tracer.level == "view"
    assert _session("io").tracer.level == "io"
    assert _session("view", log_level="none").tracer.level == "none"


def test_offline_check_passes_on_correct_run():
    vyrd = _session()
    kernel = _spawn_workload(vyrd)
    kernel.run()
    outcome = vyrd.check_offline()
    assert outcome.ok
    assert outcome.methods_checked == 8


def test_offline_check_is_repeatable():
    vyrd = _session()
    _spawn_workload(vyrd).run()
    first = vyrd.check_offline()
    second = vyrd.check_offline()
    assert first.ok == second.ok
    assert first.methods_checked == second.methods_checked


def test_check_offline_with_mode_io_on_view_log():
    vyrd = _session("view")
    _spawn_workload(vyrd).run()
    io_outcome = vyrd.check_offline_with_mode("io")
    view_outcome = vyrd.check_offline_with_mode("view")
    assert io_outcome.ok and view_outcome.ok
    assert io_outcome.methods_checked == view_outcome.methods_checked


def test_online_verifier_matches_offline():
    for seed in range(5):
        vyrd = _session()
        kernel = _spawn_workload(vyrd, seed=seed)
        verifier = vyrd.start_online(kernel)
        kernel.run()
        online = verifier.finalize()
        offline = vyrd.check_offline()
        assert online.ok == offline.ok
        assert online.methods_checked == offline.methods_checked


def test_online_verifier_detects_during_run():
    detected_seed = None
    for seed in range(40):
        vyrd = _session()
        kernel = _spawn_workload(vyrd, seed=seed, buggy=True)
        verifier = vyrd.start_online(kernel)
        kernel.run()
        outcome = verifier.finalize()
        if not outcome.ok:
            detected_seed = seed
            assert verifier.detected
            break
    assert detected_seed is not None, "buggy FindSlot never detected online"


def test_online_finalize_idempotent():
    vyrd = _session()
    kernel = _spawn_workload(vyrd)
    verifier = vyrd.start_online(kernel)
    kernel.run()
    assert verifier.finalize() is verifier.finalize()


class _VerifierSlotCounter:
    """Scheduler wrapper counting verifier-thread picks after its checkers
    stopped -- each such pick is a wasted slot the parked daemon must not
    take (regression: the verifier used to spin on checkpoint() forever)."""

    def __init__(self, inner):
        self.inner = inner
        self.verifier = None
        self.slots_after_stop = 0

    def pick(self, runnable, step):
        thread = self.inner.pick(runnable, step)
        if (
            thread.name == "vyrd-verifier"
            and self.verifier is not None
            and self.verifier._done()
        ):
            self.slots_after_stop += 1
        return thread

    def __getattr__(self, name):  # initial_priority etc.
        return getattr(self.inner, name)


def test_online_verifier_parks_after_stop():
    from repro.concurrency.schedulers import RandomScheduler

    parked_somewhere = False
    for seed in range(40):
        vyrd = _session()
        scheduler = _VerifierSlotCounter(RandomScheduler(seed))
        kernel = Kernel(scheduler=scheduler, tracer=vyrd.tracer)
        ds = VectorMultiset(size=8, buggy_findslot=True)
        vds = vyrd.wrap(ds)

        def worker(ctx, values):
            for v in values:
                yield from vds.insert_pair(ctx, v, v + 100)
                yield from vds.lookup(ctx, v)

        kernel.spawn(worker, [1, 2])
        kernel.spawn(worker, [3, 4])
        verifier = vyrd.start_online(kernel)
        scheduler.verifier = verifier
        kernel.run()
        # Once both checkers stop, the daemon generator must finish: zero
        # scheduler slots burned on it for the rest of the run.
        assert scheduler.slots_after_stop == 0
        if verifier.detected:
            # ...and the parked thread really is finished, not just idle.
            assert verifier.thread.finished
            parked_somewhere = True
    assert parked_somewhere, "no seed detected the bug online"


def test_online_verifier_keeps_polling_while_unstopped():
    vyrd = _session()
    kernel = _spawn_workload(vyrd)
    verifier = vyrd.start_online(kernel)
    kernel.run()
    # a clean run never stops the checker, so the daemon stays live
    # throughout and the final tail is consumed by finalize()
    assert not verifier.checker.stopped
    assert verifier.finalize().ok


def test_io_mode_session_produces_smaller_log():
    view_session = _session("view")
    _spawn_workload(view_session).run()
    io_session = _session("io")
    _spawn_workload(io_session).run()
    assert len(io_session.log) < len(view_session.log)
