"""Replayed state reconstruction and commit-block rollback (t-tilde)."""

import pytest

from repro.core import ReplayState


def test_writes_build_state():
    state = ReplayState()
    state.apply_write(0, "x", None, 1)
    state.apply_write(1, "y", None, 2)
    state.apply_write(0, "x", 1, 3)
    assert state.get("x") == 3
    assert state.get("y") == 2
    assert state.get("z", "default") == "default"
    assert len(state) == 2


def test_effective_without_blocks_is_raw():
    state = ReplayState()
    state.apply_write(0, "x", None, 1)
    effective = state.effective(0)
    assert effective["x"] == 1
    assert "x" in effective
    assert dict(effective.items_with_prefix("x")) == {"x": 1}


def test_open_block_rolls_back_for_other_threads():
    state = ReplayState()
    state.apply_write(0, "x", None, "committed")
    state.begin_block(1)
    state.apply_write(1, "x", "committed", "provisional")
    # thread 1's own commit sees its writes
    assert state.effective(1)["x"] == "provisional"
    # any other thread's commit sees the pre-block value
    assert state.effective(0)["x"] == "committed"
    assert state.effective(None)["x"] == "committed"
    state.end_block(1)
    # once the block closes, the writes are permanent
    assert state.effective(0)["x"] == "provisional"


def test_rollback_of_first_write_to_fresh_location():
    state = ReplayState()
    state.begin_block(2)
    state.apply_write(2, "fresh", None, 10)
    other = state.effective(0)
    assert "fresh" not in other
    with pytest.raises(KeyError):
        other["fresh"]
    assert other.get("fresh", "absent") == "absent"
    assert state.effective(2)["fresh"] == 10


def test_undo_keeps_oldest_value_across_multiple_writes():
    state = ReplayState()
    state.apply_write(0, "x", None, "original")
    state.begin_block(0)
    state.apply_write(0, "x", "original", "first")
    state.apply_write(0, "x", "first", "second")
    assert state.effective(1)["x"] == "original"
    assert state.effective(0)["x"] == "second"


def test_open_block_locs_excludes_committing_thread():
    state = ReplayState()
    state.begin_block(0)
    state.begin_block(1)
    state.apply_write(0, "a", None, 1)
    state.apply_write(1, "b", None, 2)
    assert state.open_block_locs(excluding_tid=0) == {"b"}
    assert state.open_block_locs(excluding_tid=1) == {"a"}
    assert state.open_block_locs() == {"a", "b"}


def test_nested_block_errors():
    state = ReplayState()
    state.begin_block(0)
    with pytest.raises(ValueError):
        state.begin_block(0)
    state.end_block(0)
    with pytest.raises(ValueError):
        state.end_block(0)


def test_effective_iteration_merges_overlay():
    state = ReplayState()
    state.apply_write(0, "keep", None, 1)
    state.begin_block(1)
    state.apply_write(1, "hidden", None, 2)
    effective = state.effective(0)
    assert set(effective) == {"keep"}
    assert len(effective) == 1
    raw = state.raw()
    assert set(raw) == {"keep", "hidden"}


# -- coarse-grained replay (section 6.2) -----------------------------------------


def test_replay_routine_mutates_state_and_reports_writes():
    def add_pair(target, payload):
        key, value = payload
        target[f"table[{key}]"] = value

    state = ReplayState({"table.add": add_pair})
    written = state.apply_replay(0, "table.add", ("k", 7))
    assert written == {"table[k]"}
    assert state.get("table[k]") == 7


def test_replay_routine_unknown_tag():
    state = ReplayState()
    with pytest.raises(KeyError):
        state.apply_replay(0, "nope", None)


def test_replay_inside_block_is_rolled_back():
    def set_loc(target, payload):
        target["loc"] = payload

    def del_loc(target, payload):
        del target["loc"]

    state = ReplayState({"set": set_loc, "del": del_loc})
    state.apply_replay(0, "set", "before")
    state.begin_block(1)
    state.apply_replay(1, "set", "during")
    assert state.effective(0)["loc"] == "before"
    assert state.effective(1)["loc"] == "during"
    state.end_block(1)

    state.begin_block(2)
    state.apply_replay(2, "del", None)
    assert state.effective(0)["loc"] == "during"
    assert "loc" not in state.effective(2)


def test_effective_fast_path_without_blocks():
    """No open blocks => no overlay is built; semantics are unchanged."""
    state = ReplayState()
    state.apply_write(0, "x", None, 1)
    effective = state.effective(0)
    assert effective.overlay_size == 0
    assert effective["x"] == 1 and len(effective) == 1


def test_effective_fast_path_when_only_own_block_open():
    state = ReplayState()
    state.begin_block(0)
    state.apply_write(0, "x", None, 1)
    # the committing thread's own block never rolls back
    own = state.effective(0)
    assert own.overlay_size == 0
    assert own["x"] == 1
    # ...but anyone else's commit still pays for the rollback overlay
    other = state.effective(1)
    assert other.overlay_size == 1
    assert "x" not in other


def test_fast_path_overlay_is_never_polluted():
    """The shared empty overlay must stay empty across unrelated commits
    with and without blocks in between."""
    state = ReplayState()
    state.apply_write(0, "x", None, 1)
    first = state.effective(0)
    state.begin_block(1)
    state.apply_write(1, "x", 1, 2)
    assert state.effective(0)["x"] == 1  # slow path, rolls back
    state.end_block(1)
    second = state.effective(0)
    assert first.overlay_size == 0 and second.overlay_size == 0
    assert second["x"] == 2


def test_register_replay_after_construction():
    state = ReplayState()
    state.register_replay("touch", lambda target, payload: target.__setitem__("t", payload))
    state.apply_replay(0, "touch", 5)
    assert state.get("t") == 5
