"""Checker semantics on handcrafted logs (no simulator involved)."""

from repro.core import (
    AnyOf,
    BeginCommitBlockAction,
    CallAction,
    CommitAction,
    ContributionView,
    EndCommitBlockAction,
    FunctionView,
    Invariant,
    Log,
    RefinementChecker,
    ReplayAction,
    ReturnAction,
    SpecReject,
    Specification,
    ViolationKind,
    WriteAction,
    check_log,
    mutator,
    observer,
)


class RegisterSpec(Specification):
    """A single register: set(value) -> True; get() observes it."""

    def __init__(self):
        self.value = None

    @mutator
    def set(self, value, *, result):
        if result is not True:
            raise SpecReject("set always returns True")
        self.value = value

    @observer
    def get(self):
        return self.value

    def view(self):
        return {"reg": self.value}


def register_view():
    return FunctionView(lambda state: {"reg": state.get("reg")})


def _op(tid, op_id, method, args, result, seq_actions=None, commit=True):
    """A complete execution: call [, writes], commit, return."""
    actions = [CallAction(tid, op_id, method, args)]
    actions.extend(seq_actions or [])
    if commit:
        actions.append(CommitAction(tid, op_id))
    actions.append(ReturnAction(tid, op_id, method, result))
    return actions


def test_accepting_run_in_io_mode():
    log = Log(
        _op(0, 0, "set", (5,), True)
        + _op(1, 1, "get", (), 5, commit=False)
    )
    outcome = check_log(log, RegisterSpec(), mode="io")
    assert outcome.ok
    assert outcome.methods_checked == 2
    assert outcome.commits_executed == 1


def test_io_violation_on_rejected_return_value():
    log = Log(_op(0, 0, "set", (5,), False))
    outcome = check_log(log, RegisterSpec(), mode="io")
    assert not outcome.ok
    violation = outcome.first_violation
    assert violation.kind is ViolationKind.IO
    assert outcome.detection_method_count == 0


def test_observer_window_allows_any_commit_point():
    """get() overlapping two sets may return the pre-state, the middle state
    or the final state -- but nothing else (paper Fig. 7)."""

    def log_with_get_result(result):
        return Log([
            CallAction(0, 0, "set", (1,)),
            CommitAction(0, 0),
            ReturnAction(0, 0, "set", True),
            CallAction(2, 9, "get", ()),            # window opens: value=1
            CallAction(0, 1, "set", (2,)),
            CommitAction(0, 1),                     # value=2 inside window
            ReturnAction(0, 1, "set", True),
            CallAction(1, 2, "set", (3,)),
            CommitAction(1, 2),                     # value=3 inside window
            ReturnAction(1, 2, "set", True),
            ReturnAction(2, 9, "get", result),      # window closes
        ])

    for allowed in (1, 2, 3):
        assert check_log(log_with_get_result(allowed), RegisterSpec(), mode="io").ok
    outcome = check_log(log_with_get_result(99), RegisterSpec(), mode="io")
    assert not outcome.ok
    assert outcome.first_violation.kind is ViolationKind.OBSERVER
    assert outcome.first_violation.details["allowed"] == [1, 2, 3]


def test_observer_before_any_commit_sees_initial_state():
    log = Log(_op(1, 0, "get", (), None, commit=False))
    assert check_log(log, RegisterSpec(), mode="io").ok


def test_commit_order_defines_witness_not_call_order():
    """The first caller commits second: the spec must be driven in commit
    order (paper section 2's LookUp example)."""
    log = Log([
        CallAction(0, 0, "set", (1,)),
        CallAction(1, 1, "set", (2,)),
        CommitAction(1, 1),                 # t1 commits first
        CommitAction(0, 0),                 # t0 second: final value 1
        ReturnAction(1, 1, "set", True),
        ReturnAction(0, 0, "set", True),
        CallAction(2, 2, "get", ()),
        ReturnAction(2, 2, "get", 1),
    ])
    assert check_log(log, RegisterSpec(), mode="io").ok


def test_anyof_observer_result():
    class FlakySpec(RegisterSpec):
        @observer
        def get(self):
            return AnyOf({self.value, "maybe"})

    log = Log(_op(0, 0, "get", (), "maybe", commit=False))
    assert check_log(log, FlakySpec(), mode="io").ok


def test_mutator_without_commit_is_instrumentation_error():
    log = Log([
        CallAction(0, 0, "set", (5,)),
        ReturnAction(0, 0, "set", True),
    ])
    outcome = check_log(log, RegisterSpec(), mode="io")
    assert outcome.first_violation.kind is ViolationKind.INSTRUMENTATION
    assert "without a commit" in outcome.first_violation.message


def test_double_commit_is_instrumentation_error():
    log = Log([
        CallAction(0, 0, "set", (5,)),
        CommitAction(0, 0),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
    ])
    outcome = check_log(log, RegisterSpec(), mode="io")
    assert outcome.first_violation.kind is ViolationKind.INSTRUMENTATION
    assert "more than once" in outcome.first_violation.message


def test_observer_with_commit_is_instrumentation_error():
    log = Log([
        CallAction(0, 0, "get", ()),
        CommitAction(0, 0),
        ReturnAction(0, 0, "get", None),
    ])
    outcome = check_log(log, RegisterSpec(), mode="io")
    assert outcome.first_violation.kind is ViolationKind.INSTRUMENTATION


def test_unknown_method_is_instrumentation_error():
    log = Log(_op(0, 0, "frobnicate", (), None))
    outcome = check_log(log, RegisterSpec(), mode="io")
    assert outcome.first_violation.kind is ViolationKind.INSTRUMENTATION


def test_view_refinement_detects_state_divergence():
    """The implementation 'forgets' to write the register: I/O refinement
    passes (set returns True), view refinement catches it at the commit."""
    log = Log([
        CallAction(0, 0, "set", (5,)),
        # no WriteAction: the write was lost
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
    ])
    assert check_log(log, RegisterSpec(), mode="io").ok
    outcome = check_log(log, RegisterSpec(), mode="view", impl_view=register_view())
    assert not outcome.ok
    assert outcome.first_violation.kind is ViolationKind.VIEW
    diff = outcome.first_violation.details["diff"]
    assert diff["differing (viewI, viewS)"] == {"reg": (None, 5)}


def test_view_refinement_accepts_matching_writes():
    log = Log([
        CallAction(0, 0, "set", (5,)),
        WriteAction(0, 0, "reg", None, 5),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
    ])
    assert check_log(log, RegisterSpec(), mode="view", impl_view=register_view()).ok


def test_view_rollback_of_other_threads_open_block():
    """t1 is mid-commit-block on register b when t0 commits on register a:
    t1's partial writes must be invisible to t0's view check (section 5.2).
    (Commit blocks are atomic sections, so two threads never write the same
    location while a block is open -- the registers here are distinct.)"""

    class TwoRegisterSpec(Specification):
        def __init__(self):
            self.regs = {"a": None, "b": None}

        @mutator
        def set(self, name, value, *, result):
            if result is not True:
                raise SpecReject("set always returns True")
            self.regs[name] = value

        def view(self):
            return dict(self.regs)

    def two_view():
        return FunctionView(
            lambda state: {"a": state.get("a"), "b": state.get("b")}
        )

    log = Log([
        # t1 opens a commit block on b and leaves it half-done
        CallAction(1, 1, "set", ("b", 2)),
        BeginCommitBlockAction(1, 1),
        WriteAction(1, 1, "b", None, "garbage"),
        # t0 performs a complete set on a while t1's block is open
        CallAction(0, 0, "set", ("a", 3)),
        WriteAction(0, 0, "a", None, 3),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
        # t1 finishes: fixes b and commits
        WriteAction(1, 1, "b", "garbage", 2),
        EndCommitBlockAction(1, 1),
        CommitAction(1, 1),
        ReturnAction(1, 1, "set", True),
    ])
    outcome = check_log(log, TwoRegisterSpec(), mode="view", impl_view=two_view())
    assert outcome.ok, outcome.first_violation

    # Sanity: with the block markers stripped, t0's commit sees "garbage"
    # and view refinement correctly complains.
    no_blocks = Log([
        action
        for action in log
        if not isinstance(action, (BeginCommitBlockAction, EndCommitBlockAction))
    ])
    outcome = check_log(no_blocks, TwoRegisterSpec(), mode="view", impl_view=two_view())
    assert not outcome.ok
    assert outcome.first_violation.kind is ViolationKind.VIEW


def test_internal_commit_checks_view_unchanged():
    good = Log([
        WriteAction(0, None, "reg", None, None),
        CommitAction(0, None),  # writes None over None: view unchanged
    ])
    assert check_log(good, RegisterSpec(), mode="view", impl_view=register_view()).ok

    bad = Log([
        WriteAction(0, None, "reg", None, 42),
        CommitAction(0, None),  # changes the view with no spec transition
    ])
    outcome = check_log(bad, RegisterSpec(), mode="view", impl_view=register_view())
    assert not outcome.ok
    assert outcome.first_violation.kind is ViolationKind.VIEW
    assert outcome.internal_commits == 0 or outcome.violations


def test_invariant_failure_detected_at_commit():
    invariant = Invariant("reg-nonnegative", lambda state, spec: (state.get("reg") or 0) >= 0)
    log = Log([
        CallAction(0, 0, "set", (-1,)),
        WriteAction(0, 0, "reg", None, -1),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
    ])
    outcome = check_log(log, RegisterSpec(), mode="io", invariants=[invariant])
    assert not outcome.ok
    assert outcome.first_violation.kind is ViolationKind.INVARIANT


def test_incremental_feed_equals_offline():
    actions = (
        _op(0, 0, "set", (5,), True, [WriteAction(0, 0, "reg", None, 5)])
        + _op(1, 1, "get", (), 5, commit=False)
    )
    offline = check_log(Log(actions), RegisterSpec(), mode="view", impl_view=register_view())

    checker = RefinementChecker(RegisterSpec(), mode="view", impl_view=register_view())
    for action in actions:
        checker.feed([action])
    online = checker.finish()
    assert online.ok == offline.ok
    assert online.methods_checked == offline.methods_checked
    assert online.commits_executed == offline.commits_executed


def test_commit_waits_for_return_value():
    """Online: a commit whose return is not yet logged must not execute."""
    checker = RefinementChecker(RegisterSpec(), mode="io")
    checker.feed([CallAction(0, 0, "set", (5,)), CommitAction(0, 0)])
    assert checker.outcome.commits_executed == 0  # waiting for the return
    checker.feed([ReturnAction(0, 0, "set", True)])
    assert checker.outcome.commits_executed == 1
    assert checker.finish().ok


def test_incomplete_log_reported():
    checker = RefinementChecker(RegisterSpec(), mode="io")
    checker.feed([CallAction(0, 0, "set", (5,)), CommitAction(0, 0)])
    outcome = checker.finish()
    assert outcome.incomplete
    assert outcome.stats["unprocessed_actions"] >= 1


def test_stop_at_first_records_method_count():
    log = Log(
        _op(0, 0, "set", (1,), True, [WriteAction(0, 0, "reg", None, 1)])
        + _op(0, 1, "set", (2,), False)   # rejected
        + _op(0, 2, "set", (3,), False)   # would also be rejected
    )
    stopped = check_log(Log(log), RegisterSpec(), mode="io", stop_at_first=True)
    assert len(stopped.violations) == 1
    assert stopped.detection_method_count == 1  # one method completed before

    everything = check_log(Log(log), RegisterSpec(), mode="io", stop_at_first=False)
    assert len(everything.violations) == 2


def test_final_full_check_catches_bad_unit_mapping():
    """An incremental view whose unit mapping misses a location drifts from
    the full recomputation; finish() must flag it."""
    broken_view = ContributionView(
        unit_of=lambda loc: None,  # ignores every write: always empty
        contribute=lambda state, unit: None,
        aggregate="count",
    )
    log = Log([
        CallAction(0, 0, "set", (5,)),
        WriteAction(0, 0, "reg", None, 5),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
    ])

    class DictRegisterSpec(RegisterSpec):
        def view(self):
            return {} if self.value is None else {"reg": self.value}

    outcome = check_log(log, DictRegisterSpec(), mode="view", impl_view=broken_view,
                        stop_at_first=True)
    assert not outcome.ok  # either at the commit or at the final full check


def test_coarse_replay_actions_drive_state_and_view():
    def routine(state, payload):
        state["reg"] = payload

    log = Log([
        CallAction(0, 0, "set", (5,)),
        ReplayAction(0, 0, "reg.update", 5),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
    ])
    outcome = check_log(
        log, RegisterSpec(), mode="view", impl_view=register_view(),
        replay_registry={"reg.update": routine},
    )
    assert outcome.ok, outcome.first_violation


def test_methods_checked_counts_returns():
    log = Log(
        _op(0, 0, "set", (1,), True, [WriteAction(0, 0, "reg", None, 1)])
        + _op(0, 1, "get", (), 1, commit=False)
        + _op(0, 2, "get", (), 1, commit=False)
    )
    outcome = check_log(log, RegisterSpec(), mode="io")
    assert outcome.methods_checked == 3
    assert outcome.actions_processed == len(log)
