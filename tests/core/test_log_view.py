"""LogView edge semantics: foreign equality, stale snapshots, cursor walks."""

from repro.core.actions import CallAction
from repro.core.log import Log, LogView


def _log(n):
    log = Log()
    for i in range(n):
        log.append(CallAction(tid=0, op_id=i, method="m", args=(i,)))
    return log


# -- __eq__: NotImplemented fallback vs foreign sequences ---------------------


def test_eq_returns_notimplemented_for_foreign_types():
    view = _log(3).since(0)
    assert view.__eq__(42) is NotImplemented
    assert view.__eq__("abc") is NotImplemented
    assert view.__eq__({0: "a"}) is NotImplemented
    # a generator is a sequence-of-sorts but not list/tuple/LogView
    assert view.__eq__(iter([])) is NotImplemented


def test_foreign_comparison_falls_back_to_identity_not_crash():
    view = _log(2).since(0)
    # Python turns the NotImplemented pair into plain non-equality
    assert (view == object()) is False
    assert (view != object()) is True
    assert (view == "ab") is False


def test_eq_against_list_tuple_and_view():
    log = _log(3)
    view = log.since(1)
    as_list = [log[1], log[2]]
    assert view == as_list
    assert view == tuple(as_list)
    assert view == log.since(1)
    assert not view == as_list[:1]          # length mismatch
    assert not view == [log[0], log[2]]     # element mismatch
    assert view != [log[0], log[2]]


def test_views_are_unhashable():
    import pytest

    with pytest.raises(TypeError):
        hash(_log(1).since(0))


# -- stale views while the log grows ------------------------------------------


def test_stale_view_is_a_fixed_snapshot_after_growth():
    log = _log(3)
    view = log.since(1)
    assert len(view) == 2
    log.append(CallAction(tid=1, op_id=99, method="late", args=()))
    # bounds were fixed at creation: the late append is invisible
    assert len(view) == 2
    assert view.stop == 3
    assert list(view) == [log[1], log[2]]
    assert view[-1] is log[2]


def test_slicing_a_stale_view_never_leaks_new_records():
    log = _log(4)
    view = log.since(2)
    for i in range(5):
        log.append(CallAction(tid=1, op_id=100 + i, method="late", args=()))
    assert view[:] == [log[2], log[3]]
    assert view[0:99] == [log[2], log[3]]   # slice clamped to the window
    assert view[::-1] == [log[3], log[2]]
    assert view[5:] == []
    # negative indexing stays window-relative
    assert view[-2] is log[2]


def test_out_of_range_index_raises_even_though_storage_grew():
    import pytest

    log = _log(2)
    view = log.since(0)
    log.append(CallAction(tid=0, op_id=9, method="late", args=()))
    with pytest.raises(IndexError):
        view[2]
    with pytest.raises(IndexError):
        view[-3]


# -- cursor advancement under interleaved appends -----------------------------


def test_cursor_advance_to_view_stop_sees_every_record_once():
    log = Log()
    seen = []
    cursor = 0
    total = 10
    pending = [
        CallAction(tid=0, op_id=i, method="m", args=(i,)) for i in range(total)
    ]
    # interleave: after consuming each view, two more records arrive
    log.append(pending.pop(0))
    while cursor < len(log) or pending:
        view = log.since(cursor)
        seen.extend(view)
        cursor = view.stop  # the documented protocol: advance to stop...
        for _ in range(2):
            if pending:
                log.append(pending.pop(0))
    assert [a.op_id for a in seen] == list(range(total))


def test_advancing_to_len_log_instead_would_skip_records():
    # The view is a snapshot: records appended between `since` and the
    # cursor update fall outside it, so `cursor = len(log)` loses them.
    log = _log(2)
    view = log.since(0)
    log.append(CallAction(tid=0, op_id=7, method="late", args=()))
    assert view.stop == 2 < len(log)
    assert len(log.since(view.stop)) == 1  # stop-based cursor catches it


def test_since_beyond_end_is_empty_and_stable():
    log = _log(2)
    view = log.since(5)
    assert len(view) == 0
    assert list(view) == []
    assert view == []
    assert view.start == view.stop == 2
