"""Specification framework: decorators, dispatch, AnyOf, atomized specs."""

import pytest

from repro.core import (
    AnyOf,
    AtomizedSpec,
    SpecError,
    SpecReject,
    Specification,
    allows,
    mutator,
    observer,
)
from repro.multiset import FAILURE, SUCCESS, VectorMultiset


class CounterSpec(Specification):
    def __init__(self):
        self.value = 0

    @mutator
    def increment(self, amount, *, result):
        if result is not True:
            raise SpecReject("increment always succeeds")
        self.value += amount

    @observer
    def get(self):
        return self.value

    def view(self):
        return {"value": self.value}


def test_method_kind_lookup():
    spec = CounterSpec()
    assert spec.method_kind("increment") == "mutator"
    assert spec.method_kind("get") == "observer"
    with pytest.raises(SpecError):
        spec.method_kind("missing")


def test_methods_enumeration():
    assert CounterSpec().methods() == {"increment": "mutator", "get": "observer"}


def test_run_mutator_updates_state():
    spec = CounterSpec()
    spec.run_mutator("increment", (5,), True)
    assert spec.value == 5
    with pytest.raises(SpecReject):
        spec.run_mutator("increment", (1,), False)


def test_run_mutator_wrong_kind():
    spec = CounterSpec()
    with pytest.raises(SpecError):
        spec.run_mutator("get", (), None)
    with pytest.raises(SpecError):
        spec.run_observer("increment", (1,))


def test_run_observer():
    spec = CounterSpec()
    assert spec.run_observer("get", ()) == 0


def test_view_default_raises():
    class NoView(Specification):
        @mutator
        def m(self, *, result):
            pass

    with pytest.raises(SpecError):
        NoView().view()


def test_anyof_matching():
    answers = AnyOf({1, 2})
    assert 1 in answers and 2 in answers and 3 not in answers
    assert allows(answers, 2)
    assert not allows(answers, 3)
    assert allows(5, 5)
    assert not allows(5, 6)
    assert AnyOf({1}) == AnyOf([1])
    assert hash(AnyOf({1})) == hash(AnyOf({1}))


# -- AtomizedSpec (section 4.4) -----------------------------------------------


def _atomized_multiset():
    return AtomizedSpec(
        VectorMultiset(size=4),
        no_op_results=frozenset({FAILURE}),
    )


def test_atomized_spec_accepts_matching_results():
    spec = _atomized_multiset()
    spec.run_mutator("insert", (3,), SUCCESS)
    assert spec.run_observer("lookup", (3,)) is True
    assert spec.run_observer("lookup", (4,)) is False


def test_atomized_spec_rolls_back_allowed_failures():
    spec = _atomized_multiset()
    # atomically, insert succeeds; the observed 'failure' is an allowed
    # contention outcome, so the state must be rolled back
    spec.run_mutator("insert", (7,), FAILURE)
    assert spec.run_observer("lookup", (7,)) is False


def test_atomized_spec_rejects_impossible_results():
    spec = _atomized_multiset()
    with pytest.raises(SpecReject):
        spec.run_mutator("delete", (42,), True)  # deleting an absent element


def test_atomized_spec_method_kinds():
    spec = _atomized_multiset()
    assert spec.method_kind("insert") == "mutator"
    assert spec.method_kind("lookup") == "observer"
    with pytest.raises(SpecError):
        spec.method_kind("nope")
    assert spec.methods() == VectorMultiset.VYRD_METHODS


def test_atomized_spec_view():
    spec = _atomized_multiset()
    spec.run_mutator("insert", (1,), SUCCESS)
    spec.run_mutator("insert", (1,), SUCCESS)
    assert spec.view() == {1: 2}


def test_atomized_spec_genuinely_full_failure():
    spec = AtomizedSpec(VectorMultiset(size=1), no_op_results=frozenset({FAILURE}))
    spec.run_mutator("insert", (1,), SUCCESS)
    # the array is full: the atomized run also fails, results match
    spec.run_mutator("insert", (2,), FAILURE)
    assert spec.run_observer("lookup", (1,)) is True
