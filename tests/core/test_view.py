"""View machinery: full recompute, incremental contributions, canonical forms."""

from repro.core import (
    ContributionView,
    DependencyView,
    FunctionView,
    ReplayState,
    canonical_bag,
    canonical_map,
    prefix_unit,
)


def _bag_view():
    def contribute(state, unit):
        if state.get(f"{unit}.valid"):
            return (state.get(f"{unit}.elt"), 1)
        return None

    return ContributionView(
        unit_of=prefix_unit("A[", stop="."),
        contribute=contribute,
        aggregate="count",
    )


def test_prefix_unit_mapping():
    unit_of = prefix_unit("A[", stop=".")
    assert unit_of("A[3].elt") == "A[3]"
    assert unit_of("A[3].valid") == "A[3]"
    assert unit_of("A[12]") == "A[12]"
    assert unit_of("B[3].elt") is None


def test_canonical_helpers():
    assert canonical_map({"k": 1}) == {"k": (1,)}
    assert canonical_bag({"a": 2, "b": 0}) == {"a": 2}


def test_function_view_recomputes():
    view = FunctionView(lambda state: dict(state.items_with_prefix("x")))
    state = ReplayState()
    state.apply_write(0, "x1", None, 1)
    assert view.refresh(state.effective(None)) == {"x1": 1}
    state.apply_write(0, "x2", None, 2)
    assert view.compute_full(state.effective(None)) == {"x1": 1, "x2": 2}
    view.on_write("x1")  # no-op, but part of the interface


def test_contribution_view_incremental_updates():
    view = _bag_view()
    state = ReplayState()

    def write(loc, value):
        state.apply_write(0, loc, state.get(loc), value)
        view.on_write(loc)

    write("A[0].elt", "x")
    write("A[0].valid", True)
    assert view.refresh(state.effective(None)) == {"x": 1}
    write("A[1].elt", "x")
    write("A[1].valid", True)
    assert view.refresh(state.effective(None)) == {"x": 2}
    write("A[0].valid", False)
    assert view.refresh(state.effective(None)) == {"x": 1}
    # value() returns the cached result without refreshing
    assert view.value() == {"x": 1}


def test_contribution_view_ignores_unrelated_writes():
    view = _bag_view()
    state = ReplayState()
    state.apply_write(0, "other.loc", None, 5)
    view.on_write("other.loc")
    assert view.refresh(state.effective(None)) == {}


def test_contribution_view_full_matches_incremental():
    view = _bag_view()
    state = ReplayState()
    writes = [
        ("A[0].elt", "a"), ("A[0].valid", True),
        ("A[1].elt", "b"), ("A[1].valid", True),
        ("A[2].elt", "a"), ("A[2].valid", True),
        ("A[1].valid", False),
        ("A[2].elt", "c"),
    ]
    for loc, value in writes:
        state.apply_write(0, loc, state.get(loc), value)
        view.on_write(loc)
        incremental = view.refresh(state.effective(None))
        assert incremental == view.compute_full(state.effective(None))


def test_contribution_view_list_aggregate_shows_duplicates():
    def contribute(state, unit):
        value = state.get(f"{unit}.kv")
        return value  # (key, payload) or None

    view = ContributionView(
        unit_of=prefix_unit("n", stop="."),
        contribute=contribute,
        aggregate="list",
    )
    state = ReplayState()
    state.apply_write(0, "n1.kv", None, ("k", "v1"))
    view.on_write("n1.kv")
    state.apply_write(0, "n2.kv", None, ("k", "v2"))
    view.on_write("n2.kv")
    assert view.refresh(state.effective(None)) == {"k": ("v1", "v2")}
    # a spec with unique keys can never produce a two-element tuple
    assert canonical_map({"k": "v2"}) != view.value()


def test_extra_dirty_locs_stay_dirty_until_blocks_close():
    """Locations shadowed by an open commit block are recomputed with the
    rolled-back value at every commit, and again after the block closes."""
    view = _bag_view()
    state = ReplayState()
    state.apply_write(0, "A[0].elt", None, "x")
    state.apply_write(0, "A[0].valid", None, True)
    view.on_write("A[0].elt")
    view.on_write("A[0].valid")
    assert view.refresh(state.effective(None)) == {"x": 1}

    # thread 1 opens a block and flips the slot to y (uncommitted)
    state.begin_block(1)
    state.apply_write(1, "A[0].elt", "x", "y")
    view.on_write("A[0].elt")

    # thread 0 commits: must see x, not y
    extra = state.open_block_locs(excluding_tid=0)
    assert view.refresh(state.effective(0), extra) == {"x": 1}

    # thread 1 commits: sees its own y
    extra = state.open_block_locs(excluding_tid=1)
    assert view.refresh(state.effective(1), extra) == {"y": 1}

    # block closes with no further writes; a later commit must see y
    state.end_block(1)
    extra = state.open_block_locs(excluding_tid=0)
    assert view.refresh(state.effective(0), extra) == {"y": 1}


def test_aggregate_mode_validation():
    import pytest

    with pytest.raises(ValueError):
        ContributionView(unit_of=lambda loc: None, contribute=lambda s, u: None,
                         aggregate="bogus")


# -- DependencyView: linked structures with dynamic read-deps ----------------


def _chain_view():
    """Units are node records ``n<i> = (pairs, next_unit_or_None)``; each
    node's pairs reference separate data locations -- the B-link-tree shape
    in miniature."""

    def expand(reader, unit):
        record = reader.get(unit)
        if record is None:
            return (), ()
        refs, next_unit = record
        pairs = []
        for key, data_loc in refs:
            value = reader.get(data_loc)
            if value is not None:
                pairs.append((key, value))
        links = (next_unit,) if next_unit else ()
        return pairs, links

    return DependencyView(roots=("n0",), expand=expand, sort_key=None)


def _write(state, view, loc, value):
    state.apply_write(0, loc, state.get(loc), value)
    view.on_write(loc)


def test_dependency_view_discovers_linked_units():
    view, state = _chain_view(), ReplayState()
    _write(state, view, "d0", "a")
    _write(state, view, "n1", (((2, "d1"),), None))
    _write(state, view, "d1", "b")
    # n1 and d1 are unreachable until the root links to n1
    _write(state, view, "n0", (((1, "d0"),), "n1"))
    assert view.refresh(state.effective(None)) == {1: ("a",), 2: ("b",)}
    assert view.refresh(state.effective(None)) == view.compute_full(
        state.effective(None)
    )


def test_dependency_view_data_write_dirties_only_reading_unit():
    view, state = _chain_view(), ReplayState()
    _write(state, view, "n0", (((1, "d0"),), "n1"))
    _write(state, view, "n1", (((2, "d1"),), None))
    _write(state, view, "d0", "a")
    _write(state, view, "d1", "b")
    view.refresh(state.effective(None))
    _write(state, view, "d1", "B")
    view.refresh(state.effective(None))
    assert view.last_recomputed == 1  # only n1 re-expanded
    assert view.last_touched_keys == {2}
    assert view.value() == {1: ("a",), 2: ("B",)}


def test_dependency_view_unlink_evicts_cascade():
    view, state = _chain_view(), ReplayState()
    _write(state, view, "n0", ((), "n1"))
    _write(state, view, "n1", (((2, "d1"),), "n2"))
    _write(state, view, "n2", (((3, "d2"),), None))
    _write(state, view, "d1", "b")
    _write(state, view, "d2", "c")
    assert view.refresh(state.effective(None)) == {2: ("b",), 3: ("c",)}
    # root drops its link: n1, n2 and their contributions all disappear
    _write(state, view, "n0", (((1, "d0"),), None))
    _write(state, view, "d0", "a")
    assert view.refresh(state.effective(None)) == {1: ("a",)}
    # writes to evicted units' data no longer dirty anything
    _write(state, view, "d1", "zombie")
    view.refresh(state.effective(None))
    assert view.last_recomputed == 0


def test_dependency_view_matches_full_walk_under_random_mutation():
    import random

    rng = random.Random(11)
    view, state = _chain_view(), ReplayState()
    _write(state, view, "n0", ((), None))
    for step in range(120):
        index = rng.randrange(4)
        if rng.random() < 0.5:
            refs = tuple(
                (rng.randrange(6), f"d{rng.randrange(6)}")
                for _ in range(rng.randrange(3))
            )
            # links point strictly forward: the acyclic contract (see the
            # DependencyView docstring) that B-link right-links satisfy
            later = [f"n{j}" for j in range(index + 1, 5)]
            next_unit = rng.choice(later) if rng.random() < 0.7 else None
            _write(state, view, f"n{index}", (refs, next_unit))
        else:
            _write(state, view, f"d{rng.randrange(6)}",
                   rng.choice([None, "u", "v", "w"]))
        assert view.refresh(state.effective(None)) == view.compute_full(
            state.effective(None)
        )


def test_dependency_view_state_roundtrip():
    view, state = _chain_view(), ReplayState()
    _write(state, view, "n0", (((1, "d0"),), None))
    _write(state, view, "d0", "a")
    view.refresh(state.effective(None))
    clone = _chain_view()
    clone.load_state(view.state_dict())
    assert clone.value() == view.value()
    _write(state, clone, "d0", "A")
    assert clone.refresh(state.effective(None)) == {1: ("A",)}
