"""Report rendering: trace lanes, witness listing, outcome formatting."""

from repro.core import (
    CallAction,
    CommitAction,
    Log,
    ReturnAction,
    Violation,
    ViolationKind,
    WriteAction,
    check_log,
    format_outcome,
    format_violation,
    render_trace,
    render_witness,
)
from tests.core.test_refinement_unit import RegisterSpec


def _log():
    return Log([
        CallAction(0, 0, "set", (1,)),
        WriteAction(0, 0, "reg", None, 1),
        CallAction(1, 1, "get", ()),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
        ReturnAction(1, 1, "get", 1),
        CommitAction(2, None),
    ])


def test_render_trace_has_one_lane_per_thread():
    text = render_trace(_log())
    header = text.splitlines()[0]
    assert "thread 0" in header and "thread 1" in header and "thread 2" in header
    assert "call set(1)" in text
    assert "ret  get = 1" in text
    assert "COMMIT (internal)" in text
    # writes hidden by default
    assert "reg :=" not in text


def test_render_trace_with_writes():
    text = render_trace(_log(), include_writes=True)
    assert "w reg := 1" in text


def test_render_trace_row_limit():
    text = render_trace(_log(), max_rows=2)
    assert "more records" in text


def test_render_witness_lists_commit_order():
    text = render_witness(_log())
    assert "witness interleaving" in text
    assert "t0:set(1) -> True" in text
    assert "uncommitted executions" in text  # the observer
    assert "internal worker-thread commits" in text


def test_format_outcome_pass():
    outcome = check_log(_log(), RegisterSpec(), mode="io")
    text = format_outcome(outcome, title="demo")
    assert "PASS" in text
    assert "methods checked: 2" in text


def test_format_outcome_fail_lists_violations():
    bad = Log([
        CallAction(0, 0, "set", (1,)),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", "nope"),
    ])
    outcome = check_log(bad, RegisterSpec(), mode="io")
    text = format_outcome(outcome)
    assert "FAIL" in text
    assert "io-refinement" in text


def test_format_violation_includes_details():
    violation = Violation(
        ViolationKind.VIEW, 12, "mismatch", None, {"diff": {"k": (1, 2)}}
    )
    text = format_violation(violation)
    assert "view-refinement@12" in text
    assert "diff" in text
