"""Quiescent-point view checking (the section 8 commit-atomicity baseline)."""

import pytest

from repro.core import (
    CallAction,
    CommitAction,
    Log,
    RefinementChecker,
    ReturnAction,
    ViolationKind,
    WriteAction,
    check_log,
)
from tests.core.test_refinement_unit import RegisterSpec, register_view


def _lost_write_log(extra_overlapping=True):
    """set(5) whose write was lost.  With another execution overlapping every
    point of the run, no quiescent state exists until the very end."""
    actions = [
        CallAction(0, 0, "set", (5,)),
        CommitAction(0, 0),  # no WriteAction: the write was lost
    ]
    if extra_overlapping:
        actions = (
            [CallAction(1, 9, "set", (7,))]
            + actions
            + [
                ReturnAction(0, 0, "set", True),
                WriteAction(1, 9, "reg", None, 7),
                CommitAction(1, 9),
                ReturnAction(1, 9, "set", True),
            ]
        )
    else:
        actions += [ReturnAction(0, 0, "set", True)]
    return Log(actions)


def test_commit_mode_detects_at_the_commit():
    log = _lost_write_log(extra_overlapping=False)
    outcome = check_log(log, RegisterSpec(), mode="view", impl_view=register_view())
    assert not outcome.ok
    assert outcome.detection_method_count == 0  # at the commit itself


def test_quiescent_mode_detects_only_at_quiescence():
    log = _lost_write_log(extra_overlapping=False)
    outcome = check_log(log, RegisterSpec(), mode="view",
                        impl_view=register_view(), view_at="quiescent")
    assert not outcome.ok
    # detection only after the return made the run quiescent
    assert outcome.first_violation.message.endswith("quiescent state")


def test_quiescent_mode_can_miss_overwritten_errors():
    """The paper's warning: 'checking only at these points might cause
    errors to be overwritten'.  Here t1's later write fixes the register
    before the first quiescent point, so quiescent checking sees nothing
    (the final state happens to match) while commit checking catches t0's
    lost write."""
    log = Log([
        CallAction(1, 9, "set", (7,)),
        CallAction(0, 0, "set", (7,)),
        CommitAction(0, 0),                   # lost write: state None, spec 7
        ReturnAction(0, 0, "set", True),
        WriteAction(1, 9, "reg", None, 7),
        CommitAction(1, 9),
        ReturnAction(1, 9, "set", True),      # quiescent: state 7, spec 7
    ])
    commit_outcome = check_log(
        log, RegisterSpec(), mode="view", impl_view=register_view()
    )
    assert not commit_outcome.ok
    quiescent_outcome = check_log(
        log, RegisterSpec(), mode="view", impl_view=register_view(),
        view_at="quiescent",
    )
    assert quiescent_outcome.ok  # the error was overwritten before quiescence


def test_quiescent_mode_accepts_correct_runs():
    log = Log([
        CallAction(0, 0, "set", (5,)),
        WriteAction(0, 0, "reg", None, 5),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
    ])
    outcome = check_log(log, RegisterSpec(), mode="view",
                        impl_view=register_view(), view_at="quiescent")
    assert outcome.ok


def test_no_quiescent_point_means_no_state_check_until_finish():
    """Two permanently-overlapping executions: the only state check is the
    final one."""
    log = _lost_write_log(extra_overlapping=True)
    checker = RefinementChecker(
        RegisterSpec(), mode="view", impl_view=register_view(),
        view_at="quiescent", final_full_check=False,
    )
    checker.feed(log)
    outcome = checker.finish()
    # quiescence first occurs at the very last return, where t1's write has
    # already made the state consistent -> the lost write goes unnoticed
    assert outcome.ok


def test_invalid_view_at_rejected():
    with pytest.raises(ValueError):
        RefinementChecker(RegisterSpec(), mode="view",
                          impl_view=register_view(), view_at="sometimes")


def test_io_checking_is_unaffected_by_view_at():
    log = Log([
        CallAction(0, 0, "set", (5,)),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", "bogus"),
    ])
    outcome = check_log(log, RegisterSpec(), mode="view",
                        impl_view=register_view(), view_at="quiescent")
    assert not outcome.ok
    assert outcome.first_violation.kind is ViolationKind.IO
