"""Witness-interleaving construction and program-order diagnostics."""

from repro.core import (
    CallAction,
    CommitAction,
    Log,
    ReturnAction,
    build_witness,
    respects_program_order,
)


def _overlapping_log():
    """Two overlapping sets; the later caller commits first."""
    return Log([
        CallAction(0, 0, "set", (1,)),
        CallAction(1, 1, "set", (2,)),
        CommitAction(1, 1),
        CommitAction(0, 0),
        ReturnAction(1, 1, "set", True),
        ReturnAction(0, 0, "set", True),
    ])


def test_commit_order_serialization():
    witness = build_witness(_overlapping_log())
    assert [e.op_id for e in witness.serialized()] == [1, 0]
    signatures = [str(s) for s in witness.signatures()]
    assert signatures == ["t1:set(2) -> True", "t0:set(1) -> True"]


def test_execution_records_have_positions():
    witness = build_witness(_overlapping_log())
    execution = witness.executions[0]
    assert execution.call_seq == 0
    assert execution.commit_seq == 3
    assert execution.return_seq == 5
    assert execution.committed and execution.returned


def test_overlap_detection():
    witness = build_witness(_overlapping_log())
    a, b = witness.executions[0], witness.executions[1]
    assert a.overlaps(b) and b.overlaps(a)

    sequential = Log([
        CallAction(0, 0, "set", (1,)),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
        CallAction(0, 1, "set", (2,)),
        CommitAction(0, 1),
        ReturnAction(0, 1, "set", True),
    ])
    witness = build_witness(sequential)
    first, second = witness.executions[0], witness.executions[1]
    assert not first.overlaps(second)


def test_uncommitted_executions_listed():
    log = Log([
        CallAction(0, 0, "get", ()),
        ReturnAction(0, 0, "get", 1),
        CallAction(1, 1, "set", (2,)),  # incomplete: no commit, no return
    ])
    witness = build_witness(log)
    assert sorted(witness.uncommitted) == [0, 1]
    assert witness.commit_order == []


def test_internal_commits_collected():
    log = Log([
        CommitAction(9, None),
        CallAction(0, 0, "set", (1,)),
        CommitAction(0, 0),
        ReturnAction(0, 0, "set", True),
        CommitAction(9, None),
    ])
    witness = build_witness(log)
    assert witness.internal_commits == [0, 4]
    assert witness.commit_order == [0]


def test_program_order_respected_for_commit_in_window():
    assert respects_program_order(build_witness(_overlapping_log())) == []


def test_program_order_violation_flagged():
    """A commit logged after the execution's return (a bad annotation)
    can serialize a later, non-overlapping execution first."""
    log = Log([
        CallAction(0, 0, "set", (1,)),
        ReturnAction(0, 0, "set", True),     # finished...
        CallAction(1, 1, "set", (2,)),       # ...before this one starts
        CommitAction(1, 1),
        ReturnAction(1, 1, "set", True),
        CommitAction(0, 0),                  # stray late commit
    ])
    witness = build_witness(log)
    problems = respects_program_order(witness)
    assert problems and "opposite order" in problems[0]
