"""Bounded exhaustive refinement verification over all schedules."""

from repro import Kernel, Vyrd
from repro.core import replay_schedule, verify_all_schedules
from repro.multiset import MultisetSpec, VectorMultiset, multiset_view


def _make_run_factory(buggy: bool):
    def make_run(scheduler):
        vyrd = Vyrd(
            spec_factory=MultisetSpec,
            mode="view",
            impl_view_factory=multiset_view,
        )
        kernel = Kernel(scheduler=scheduler, tracer=vyrd.tracer)
        multiset = VectorMultiset(size=4, buggy_findslot=buggy)
        vds = vyrd.wrap(multiset)

        def inserter(ctx, value):
            yield from vds.insert(ctx, value)

        kernel.spawn(inserter, "a")
        kernel.spawn(inserter, "b")
        kernel.run()
        return vyrd

    return make_run


def test_correct_program_verified_over_all_schedules():
    result = verify_all_schedules(_make_run_factory(False), max_runs=20_000)
    assert result.exhausted, "schedule space should be coverable at this size"
    assert result.all_ok, result.summary()
    assert result.schedules_run > 10  # genuinely many interleavings
    assert "OK" in result.summary()


def test_buggy_program_has_violating_schedules():
    result = verify_all_schedules(_make_run_factory(True), max_runs=20_000)
    assert result.exhausted
    assert not result.all_ok
    # every reported violation carries a refinement outcome (no crashes)
    for violation in result.violations:
        assert violation.outcome is not None
        assert not violation.outcome.ok
    # ...and the correct schedules still pass: not everything violates
    assert len(result.violations) < result.schedules_run


def test_violating_schedule_replays_deterministically():
    result = verify_all_schedules(
        _make_run_factory(True), max_runs=20_000, stop_at_first=True
    )
    assert result.violations
    schedule = result.violations[0].schedule
    vyrd, outcome = replay_schedule(_make_run_factory(True), schedule)
    assert not outcome.ok
    assert (
        str(outcome.first_violation)
        == str(result.violations[0].outcome.first_violation)
    )


def test_stop_at_first_stops_early():
    full = verify_all_schedules(_make_run_factory(True), max_runs=20_000)
    stopped = verify_all_schedules(
        _make_run_factory(True), max_runs=20_000, stop_at_first=True
    )
    assert stopped.schedules_run <= full.schedules_run
    assert len(stopped.violations) == 1


def test_budget_limits_runs():
    result = verify_all_schedules(_make_run_factory(False), max_runs=5)
    assert result.schedules_run == 5
    assert not result.exhausted
