"""Properties of the tamper-evident chained log format (``VYRDLOG2``).

Strategy: write a pristine chained file, compute its frame layout
*structurally* (header walk, independent of :class:`ChainDecoder`), apply
one arbitrary tamper operation -- truncation, bit-flip, record splice, or
long-range reorder -- and require :func:`recover_log` to salvage **exactly**
the longest chain-valid prefix the oracle predicts, and
:func:`verify_chain` anchored at the pristine head to flag the file.

One decoder quirk the oracle must encode: a frame's ``seq`` field is
covered by the *next* frame's prev-digest, not by its own CRC, so a
bit-flip confined to the seq field of frame ``i`` surfaces at frame
``i + 1`` -- and a seq-flip in the *last* frame is chain-valid and only
detectable against a recorded head digest.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    WriteAction,
    load_log,
    recover_log,
    save_log,
    verify_chain,
)
from repro.core.log import (
    _CHAIN_HEADER,
    _DIGEST_SIZE,
    _SHARD_PROLOGUE,
    LOG_MAGIC2,
    Log,
    LogWriter,
)

PROLOGUE = len(LOG_MAGIC2) + _SHARD_PROLOGUE.size
FIXED = _CHAIN_HEADER.size + _DIGEST_SIZE
SEQ_FIELD = 8  # leading <Q of the frame header


def _actions(values):
    return [
        WriteAction(v % 3, i, f"r{v % 4}", None, v)
        for i, v in enumerate(values)
    ]


def _write_chained(path, actions, shard_id=0):
    with LogWriter(path, chained=True, shard_id=shard_id) as writer:
        writer.write_all(actions)
    return path.read_bytes()


def _spans(data):
    """Frame (start, end) offsets from a raw header walk (the oracle's
    own parser -- deliberately not ChainDecoder)."""
    spans = []
    pos = PROLOGUE
    while pos < len(data):
        _, length, _ = _CHAIN_HEADER.unpack_from(data, pos)
        end = pos + FIXED + length
        spans.append((pos, end))
        pos = end
    assert pos == len(data)
    return spans


values_strategy = st.lists(st.integers(0, 255), min_size=1, max_size=14)


@given(values_strategy, st.data())
@settings(max_examples=80, deadline=None)
def test_truncation_salvages_exact_frame_prefix(tmp_path_factory, values, data):
    actions = _actions(values)
    path = tmp_path_factory.mktemp("chain") / "log.vlog2"
    pristine = _write_chained(path, actions)
    spans = _spans(pristine)
    pristine_head = verify_chain(str(path)).head_digest

    cut = data.draw(st.integers(0, len(pristine) - 1))
    path.write_bytes(pristine[:cut])

    if cut < PROLOGUE:
        expected = 0
    else:
        expected = sum(1 for _, end in spans if end <= cut)
    recovered = recover_log(str(path))
    assert recovered.records == expected
    assert list(recovered.log) == actions[:expected]
    boundaries = {PROLOGUE} | {end for _, end in spans}
    if cut >= PROLOGUE:
        # Clean truncation at a frame boundary leaves no decode error --
        # only the head digest betrays it.
        assert recovered.complete == (cut in boundaries)
    report = verify_chain(str(path), expected_head=pristine_head)
    assert report.tampered
    assert report.records == expected


@given(values_strategy, st.data())
@settings(max_examples=80, deadline=None)
def test_bitflip_salvages_exact_chain_valid_prefix(
    tmp_path_factory, values, data
):
    actions = _actions(values)
    path = tmp_path_factory.mktemp("chain") / "log.vlog2"
    pristine = _write_chained(path, actions)
    spans = _spans(pristine)
    pristine_head = verify_chain(str(path)).head_digest

    where = data.draw(st.integers(0, len(pristine) - 1))
    bit = data.draw(st.integers(0, 7))
    mutated = bytearray(pristine)
    mutated[where] ^= 1 << bit
    path.write_bytes(bytes(mutated))

    n = len(spans)
    if where < PROLOGUE:
        # Damaged magic or shard id: genesis no longer matches, nothing
        # after an unidentifiable prologue is trusted.
        expected, complete = 0, None  # completeness depends on misparse mode
    else:
        frame = next(
            i for i, (start, end) in enumerate(spans) if start <= where < end
        )
        if where - spans[frame][0] < SEQ_FIELD:
            # seq is covered by the successor's prev-digest, not this
            # frame's CRC: the flip surfaces one frame late, or never
            # (chain-locally) when it hits the last frame.
            expected = n if frame == n - 1 else frame + 1
            complete = frame == n - 1
        else:
            expected, complete = frame, False

    recovered = recover_log(str(path))
    assert recovered.records == expected
    assert list(recovered.log) == actions[:expected]
    if complete is not None:
        assert recovered.complete == complete
    # Anchored verification catches every single-bit flip, including the
    # chain-locally-valid last-frame seq flip.
    report = verify_chain(str(path), expected_head=pristine_head)
    assert report.tampered
    assert report.records == expected


@given(
    values_strategy.filter(lambda v: len(v) >= 2),
    st.data(),
)
@settings(max_examples=80, deadline=None)
def test_splice_and_reorder_stop_at_first_moved_frame(
    tmp_path_factory, values, data
):
    actions = _actions(values)
    path = tmp_path_factory.mktemp("chain") / "log.vlog2"
    pristine = _write_chained(path, actions)
    spans = _spans(pristine)
    pristine_head = verify_chain(str(path)).head_digest

    n = len(spans)
    i = data.draw(st.integers(0, n - 2))
    j = data.draw(st.integers(i + 1, n - 1))
    frames = [pristine[start:end] for start, end in spans]
    frames[i], frames[j] = frames[j], frames[i]
    path.write_bytes(pristine[:PROLOGUE] + b"".join(frames))

    # Adjacent swap (j == i + 1) is the classic record splice; any j is a
    # long-range reorder.  Either way the chain breaks exactly at i.
    recovered = recover_log(str(path))
    assert recovered.records == i
    assert list(recovered.log) == actions[:i]
    assert not recovered.complete
    assert "chain digest mismatch" in recovered.cause
    report = verify_chain(str(path), expected_head=pristine_head)
    assert report.tampered
    assert report.error_record == i


@given(values_strategy, st.integers(0, 5), st.integers(0, 5))
@settings(max_examples=40, deadline=None)
def test_cross_shard_transplant_rejected_at_genesis(
    tmp_path_factory, values, shard_a, shard_b
):
    """Frames are bound to their shard: a whole-body transplant onto a
    different shard's prologue dies at record 0 (genesis-seeded chain)."""
    actions = _actions(values)
    tmp = tmp_path_factory.mktemp("chain")
    body_a = _write_chained(tmp / "a.vlog2", actions, shard_id=shard_a)
    body_b = _write_chained(tmp / "b.vlog2", actions, shard_id=shard_b)
    franken = tmp / "franken.vlog2"
    franken.write_bytes(body_b[:PROLOGUE] + body_a[PROLOGUE:])

    recovered = recover_log(str(franken))
    if shard_a == shard_b:
        assert recovered.complete and recovered.records == len(actions)
    else:
        assert recovered.records == 0
        assert "chain digest mismatch" in recovered.cause


@given(values_strategy)
@settings(max_examples=40, deadline=None)
def test_legacy_framed_files_still_auto_detect(tmp_path_factory, values):
    """``VYRDLOG1`` files written by older sessions keep loading: magic
    auto-detection must not be disturbed by the chained format."""
    actions = _actions(values)
    path = tmp_path_factory.mktemp("chain") / "log.vyrdlog"
    save_log(Log(actions), str(path))
    assert path.read_bytes()[:8] == b"VYRDLOG1"

    assert list(load_log(str(path))) == actions
    recovered = recover_log(str(path))
    assert recovered.complete
    assert not recovered.chained
    assert list(recovered.log) == actions
    # Unchained files carry no integrity claim -- policy, not tampering.
    report = verify_chain(str(path))
    assert report.ok and not report.chained


@given(values_strategy)
@settings(max_examples=40, deadline=None)
def test_chained_round_trip_is_lossless(tmp_path_factory, values):
    actions = _actions(values)
    path = tmp_path_factory.mktemp("chain") / "log.vlog2"
    _write_chained(path, actions, shard_id=3)
    assert list(load_log(str(path))) == actions
    report = verify_chain(str(path))
    assert report.ok and report.chained and report.shard_id == 3
    assert report.records == len(actions)
