"""Properties of the atomicity baseline over generated structured programs."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.atomicity import check_atomicity
from repro.core.actions import (
    AcquireAction,
    CallAction,
    ReadAction,
    ReleaseAction,
    ReturnAction,
    WriteAction,
)
from repro.core.log import Log

LOCKS = ["l0", "l1", "l2"]
LOCS = ["x", "y", "z"]


# A "critical section" = acquire, some protected accesses, release.
section = st.tuples(
    st.sampled_from(LOCKS),
    st.lists(
        st.tuples(st.sampled_from(["r", "w"]), st.sampled_from(LOCS)),
        min_size=1, max_size=3,
    ),
)


def _section_events(tid, op_id, lock, accesses, lock_of_loc):
    """One well-formed critical region: acquire the section lock and every
    needed guard up front (acquires are right-movers), access, then release
    everything (left-movers) -- the canonical reducible shape."""
    guards = sorted({lock_of_loc[loc] for _, loc in accesses} - {lock})
    events = [AcquireAction(tid, op_id, lock)]
    events.extend(AcquireAction(tid, op_id, guard) for guard in guards)
    for kind, loc in accesses:
        if kind == "r":
            events.append(ReadAction(tid, op_id, loc))
        else:
            events.append(WriteAction(tid, op_id, loc, 0, 1))
    events.extend(ReleaseAction(tid, op_id, guard) for guard in reversed(guards))
    events.append(ReleaseAction(tid, op_id, lock))
    return events


@given(
    st.lists(section, min_size=1, max_size=3),
    st.lists(section, min_size=1, max_size=3),
)
@settings(max_examples=60, deadline=None)
def test_consistently_locked_single_section_methods_are_atomic(sections_a, sections_b):
    """Methods made of ONE critical section each (one section per method
    execution) with consistent per-location locks always reduce."""
    lock_of_loc = {"x": "l0", "y": "l1", "z": "l2"}
    actions = []
    op_id = 0
    for tid, sections in ((0, sections_a), (1, sections_b)):
        for lock, accesses in sections:
            actions.append(CallAction(tid, op_id, "m", ()))
            actions.extend(_section_events(tid, op_id, lock, accesses, lock_of_loc))
            actions.append(ReturnAction(tid, op_id, "m", None))
            op_id += 1
    # interleaving order does not matter for the per-execution analysis;
    # sequential concatenation suffices here
    outcome = check_atomicity(Log(actions))
    assert outcome.ok, [str(v) for v in outcome.violations]
    assert not outcome.racy_locs


@given(st.lists(section, min_size=2, max_size=4))
@settings(max_examples=60, deadline=None)
def test_multi_section_methods_never_reduce(sections):
    """A single method execution containing >= 2 critical sections always
    fails reduction (the W(p) W(q) shape), regardless of protection."""
    lock_of_loc = {"x": "l0", "y": "l1", "z": "l2"}
    actions = [CallAction(0, 0, "m", ())]
    for lock, accesses in sections:
        actions.extend(_section_events(0, 0, lock, accesses, lock_of_loc))
    actions.append(ReturnAction(0, 0, "m", None))
    outcome = check_atomicity(Log(actions))
    assert not outcome.ok
    assert outcome.flagged_methods == {"m"}


@given(st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_unprotected_single_writer_per_loc_is_fine(n_a, n_b):
    """Distinct per-thread locations never become racy, lock-free or not."""
    actions = []
    for tid, count in ((0, n_a), (1, n_b)):
        for i in range(count):
            op_id = tid * 100 + i
            actions.append(CallAction(tid, op_id, "m", ()))
            actions.append(WriteAction(tid, op_id, f"own{tid}", i, i + 1))
            actions.append(ReturnAction(tid, op_id, "m", None))
    outcome = check_atomicity(Log(actions))
    assert outcome.ok
    assert not outcome.racy_locs


@given(st.integers(2, 5))
@settings(max_examples=20, deadline=None)
def test_shared_unprotected_loc_is_racy(writers):
    actions = []
    for tid in range(writers):
        actions.append(CallAction(tid, tid, "m", ()))
        actions.append(WriteAction(tid, tid, "shared", 0, tid))
        actions.append(ReturnAction(tid, tid, "m", None))
    outcome = check_atomicity(Log(actions))
    assert "shared" in outcome.racy_locs
    # one racy access per execution is the allowed non-mover
    assert outcome.ok
