"""Properties of the retrying store over scripted fault schedules.

Strategy: generate an op sequence (put / read / size / list) plus a
per-op count of injected transient failures.  Run it twice -- bare
against a clean in-memory store, and through :class:`RetryingStore` over
a store that fails each op its scripted number of times.  The wrapper
must be **observationally identical** whenever every op's failure count
fits the retry budget, and must raise the *typed*
:exc:`StoreUnavailable` (never a bare backend exception) on the first op
whose schedule exceeds it."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.serve import (
    ObjectStoreStub,
    RetryingStore,
    StoreUnavailable,
    TransientStoreError,
)

RETRIES = 3  # budget under test: first try + RETRIES retries per op


class ScheduledFlaky(ObjectStoreStub):
    """Fails the k-th wrapped op ``schedule[k]`` times before letting it
    through.  ``exc`` picks the backend failure flavour."""

    def __init__(self, schedule, exc):
        super().__init__()
        self.schedule = schedule
        self.exc = exc
        self.op_index = -1
        self.remaining = 0

    def begin_op(self):
        self.op_index += 1
        if self.op_index < len(self.schedule):
            self.remaining = self.schedule[self.op_index]

    def _trip(self):
        if self.remaining > 0:
            self.remaining -= 1
            raise self.exc("scripted transient failure")

    def put_bytes(self, name, data):
        self._trip()
        return super().put_bytes(name, data)

    def read_range(self, name, start, end=None):
        self._trip()
        return super().read_range(name, start, end)

    def size(self, name):
        self._trip()
        return super().size(name)

    def list(self, prefix=""):
        self._trip()
        return super().list(prefix)


class CountingRetryingStore(RetryingStore):
    """Advances the scripted schedule once per *logical* op (not per
    attempt), so retries of one op consume that op's failure quota."""

    def _call(self, op, name, fn, *args):
        self.inner.begin_op()
        return super()._call(op, name, fn, *args)


PUT, READ, SIZE, LIST = "put", "read", "size", "list"

ops = st.lists(
    st.tuples(
        st.sampled_from([PUT, READ, SIZE, LIST]),
        st.integers(min_value=0, max_value=3),     # blob id
        st.binary(min_size=0, max_size=16),        # payload for puts
        st.integers(min_value=0, max_value=RETRIES + 2),  # failures
    ),
    min_size=1,
    max_size=12,
)


def run_op(store, kind, blob, payload):
    name = f"b/{blob}"
    if kind == PUT:
        return store.put_bytes(name, payload)
    if kind == READ:
        try:
            return ("data", store.read_range(name, 0, None))
        except (FileNotFoundError, KeyError):
            return ("missing", name)
    if kind == SIZE:
        return ("size", store.size(name))
    return ("list", tuple(store.list("b/")))


@settings(max_examples=60, deadline=None)
@given(script=ops, exc=st.sampled_from([TransientStoreError, ConnectionError]))
def test_retrying_store_is_observationally_identical_or_typed(script, exc):
    reference = ObjectStoreStub()
    flaky = ScheduledFlaky([f for (_, _, _, f) in script], exc)
    store = CountingRetryingStore(
        flaky, retries=RETRIES, backoff_base=0.0001, backoff_max=0.0005,
        seed=1,
    )
    for kind, blob, payload, failures in script:
        expected = run_op(reference, kind, blob, payload)
        if failures <= RETRIES:
            # Within budget: the wrapper must absorb every failure and
            # answer exactly what the clean store answers.
            assert run_op(store, kind, blob, payload) == expected
        else:
            # Over budget: the typed giveup, carrying the backend error
            # as its cause -- and the bare exception never escapes.
            try:
                run_op(store, kind, blob, payload)
            except StoreUnavailable as err:
                assert err.attempts == RETRIES + 1
                assert isinstance(err.__cause__, exc)
            else:
                raise AssertionError("expected StoreUnavailable")
            return  # store state may now diverge; stop comparing
    assert store.stats["retries"] == sum(
        f for (_, _, _, f) in script if f <= RETRIES
    )
    assert store.stats["giveups"] == 0


@settings(max_examples=30, deadline=None)
@given(
    failures=st.integers(min_value=RETRIES + 1, max_value=RETRIES + 4),
    exc=st.sampled_from([TransientStoreError, ConnectionError, TimeoutError]),
)
def test_exhaustion_is_always_typed_never_bare(failures, exc):
    flaky = ScheduledFlaky([failures], exc)
    store = CountingRetryingStore(
        flaky, retries=RETRIES, backoff_base=0.0001, backoff_max=0.0005,
    )
    try:
        store.put_bytes("x", b"payload")
    except StoreUnavailable as err:
        assert err.op == "put_bytes" and err.blob == "x"
        assert err.attempts == RETRIES + 1
        assert isinstance(err.__cause__, exc)
    except Exception as err:  # pragma: no cover - the property under test
        raise AssertionError(f"bare backend exception leaked: {err!r}")
    else:  # pragma: no cover
        raise AssertionError("expected StoreUnavailable")
    assert store.stats["giveups"] == 1
