"""Property: the memoized linearization search agrees with the brute-force
all-orderings oracle on every small random history.

:class:`repro.linz.LinzChecker` (event cursor, eager observers, failed-state
memoization) and :func:`repro.linz.brute_force_linearizable` (enumerate every
real-time-consistent total order from the definition) share no search
structure, so agreement on arbitrary histories -- overlapping, incomplete,
deliberately wrong results -- is strong evidence both are right.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.actions import CallAction, ReturnAction
from repro.core.log import Log
from repro.linz import brute_force_linearizable, check_linearizability
from repro.multiset import MultisetSpec
from repro.multiset.spec import SUCCESS

MAX_OPS = 6

# (method, plausible results); wrong-for-the-state results are the point --
# they produce non-linearizable histories the verdicts must agree on.
METHODS = [
    ("insert", [SUCCESS]),
    ("delete", [True, False]),
    ("lookup", [True, False]),
]


@st.composite
def histories(draw):
    """A random history over a two-key multiset: random methods, results,
    overlap structure, and completion status."""
    n = draw(st.integers(min_value=1, max_value=MAX_OPS))
    ops = []
    for op_id in range(n):
        method, results = draw(st.sampled_from(METHODS))
        ops.append((
            op_id,
            method,
            draw(st.integers(min_value=0, max_value=1)),   # key
            draw(st.sampled_from(results)),
            draw(st.booleans()),                           # complete?
        ))
    # Event times induce the real-time partial order: each op's call gets a
    # slot, each complete op's return a later slot; ties broken by op id.
    events = []
    for op_id, method, key, result, complete in ops:
        call_t = draw(st.integers(min_value=0, max_value=2 * n))
        events.append((call_t, 0, op_id, "call", method, key, result))
        if complete:
            ret_t = draw(st.integers(min_value=call_t, max_value=2 * n + 1))
            events.append((ret_t, 1, op_id, "ret", method, key, result))
    events.sort(key=lambda e: (e[0], e[1], e[2]))
    log = Log()
    for _, _, op_id, kind, method, key, result in events:
        if kind == "call":
            log.append(CallAction(tid=op_id, op_id=op_id, method=method,
                                  args=(key,)))
        else:
            log.append(ReturnAction(tid=op_id, op_id=op_id, method=method,
                                    result=result))
    return log


@given(histories())
@settings(max_examples=200, deadline=None)
def test_search_verdict_matches_brute_force_oracle(log):
    outcome = check_linearizability(log, MultisetSpec)
    assert outcome.ok == brute_force_linearizable(log, MultisetSpec)


@given(histories())
@settings(max_examples=100, deadline=None)
def test_memoized_and_unmemoized_search_agree(log):
    with_memo = check_linearizability(log, MultisetSpec, memo=True)
    without = check_linearizability(log, MultisetSpec, memo=False)
    assert with_memo.ok == without.ok


@given(histories())
@settings(max_examples=100, deadline=None)
def test_witness_linearization_replays_cleanly(log):
    """Whenever the search reports a witness, the witness really is one:
    replaying it through a fresh spec accepts every result."""
    from repro.core.spec import OBSERVER, allows
    from repro.linz import extract_history

    outcome = check_linearizability(log, MultisetSpec)
    if not outcome.ok:
        return
    history = extract_history(log)
    spec = MultisetSpec()
    for op_id in outcome.linearization:
        op = history.operations[op_id]
        if spec.method_kind(op.method) == OBSERVER:
            assert allows(spec.run_observer(op.method, op.args), op.result)
        elif op.complete:
            spec.run_mutator(op.method, op.args, op.result)
        else:
            # incomplete mutator: the witness does not record which
            # candidate result the search branched on, so the replay is
            # no longer deterministic from here -- stop at the prefix.
            break
