"""Model-based properties: each substrate agrees with its reference model
under random sequential operation sequences, and verifies clean."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Kernel, Vyrd
from repro.bqueue import EMPTY, BoundedQueue, QueueSpec, queue_view
from repro.boxwood import BoxwoodCache, ChunkManager, StoreSpec, cache_invariants, cache_view
from repro.concurrency import RoundRobinScheduler
from repro.javalib import (
    StringBufferSpec,
    StringBufferSystem,
    stringbuffer_view,
)
from repro.scanfs import BlockCache, BlockDevice, FsSpec, ScanFS, scanfs_view


def _run_sequential(vyrd, script):
    kernel = Kernel(scheduler=RoundRobinScheduler(), tracer=vyrd.tracer)
    kernel.spawn(script)
    kernel.run()
    return vyrd.check_offline()


# -- StringBuffer vs str model -------------------------------------------------

sb_ops = st.lists(
    st.one_of(
        st.tuples(st.just("append_str"), st.sampled_from(["dst", "src"]),
                  st.text(alphabet="xyz", min_size=1, max_size=3)),
        st.tuples(st.just("append_buffer"), st.just("dst"), st.just("src")),
        st.tuples(st.just("delete"), st.sampled_from(["dst", "src"]),
                  st.tuples(st.integers(0, 5), st.integers(0, 8))),
    ),
    max_size=20,
)


@given(sb_ops)
@settings(max_examples=50, deadline=None)
def test_stringbuffer_matches_string_model(ops):
    vyrd = Vyrd(spec_factory=lambda: StringBufferSpec(capacity=48), mode="view",
                impl_view_factory=stringbuffer_view)
    system = StringBufferSystem(capacity=48)
    vds = vyrd.wrap(system)
    model = {"dst": "", "src": ""}

    def script(ctx):
        for op, buf, arg in ops:
            if op == "append_str":
                ok = yield from vds.append_str(ctx, buf, arg)
                if ok:
                    model[buf] += arg
            elif op == "append_buffer":
                ok = yield from vds.append_buffer(ctx, "dst", "src")
                if ok:
                    model["dst"] += model["src"]
            else:
                start, end = arg
                ok = yield from vds.delete(ctx, buf, start, end)
                if ok:
                    end = min(end, len(model[buf]))
                    model[buf] = model[buf][:start] + model[buf][end:]

    outcome = _run_sequential(vyrd, script)
    assert outcome.ok, str(outcome.first_violation)
    assert system.text("dst") == model["dst"]
    assert system.text("src") == model["src"]


# -- Bounded queue vs deque model -----------------------------------------------

queue_ops = st.lists(
    st.one_of(
        st.tuples(st.just("enq"), st.integers(0, 99)),
        st.tuples(st.just("deq"), st.just(None)),
        st.tuples(st.just("size"), st.just(None)),
    ),
    max_size=30,
)


@given(queue_ops, st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_queue_matches_deque_model(ops, capacity):
    from collections import deque

    vyrd = Vyrd(spec_factory=lambda: QueueSpec(capacity=capacity), mode="view",
                impl_view_factory=lambda: queue_view(capacity))
    queue = BoundedQueue(capacity=capacity)
    vq = vyrd.wrap(queue)
    model = deque()
    problems = []

    def script(ctx):
        for op, arg in ops:
            if op == "enq":
                ok = yield from vq.try_enqueue(ctx, arg)
                if ok != (len(model) < capacity):
                    problems.append(("enq", ok))
                if ok:
                    model.append(arg)
            elif op == "deq":
                got = yield from vq.try_dequeue(ctx)
                expected = model.popleft() if model else EMPTY
                if got != expected:
                    problems.append(("deq", got, expected))
            else:
                size = yield from vq.size_of(ctx)
                if size != len(model):
                    problems.append(("size", size, len(model)))

    outcome = _run_sequential(vyrd, script)
    assert not problems
    assert outcome.ok, str(outcome.first_violation)
    assert queue.items() == tuple(model)


# -- Cache + ChunkManager vs dict model ---------------------------------------------

cache_ops = st.lists(
    st.one_of(
        st.tuples(st.just("write"), st.integers(0, 2),
                  st.tuples(*([st.integers(0, 9)] * 4))),
        st.tuples(st.just("read"), st.integers(0, 2), st.none()),
        st.tuples(st.just("flush"), st.none(), st.none()),
        st.tuples(st.just("evict"), st.integers(0, 2), st.none()),
    ),
    max_size=25,
)


@given(cache_ops)
@settings(max_examples=40, deadline=None)
def test_cache_matches_dict_model(ops):
    vyrd = Vyrd(spec_factory=StoreSpec, mode="view",
                impl_view_factory=lambda: cache_view(4),
                invariants=cache_invariants(4))
    chunks = ChunkManager()
    cache = BoxwoodCache(chunks, block_size=4)
    vc = vyrd.wrap(cache)
    handles = [chunks.allocate() for _ in range(3)]
    model = {}
    problems = []

    def script(ctx):
        for op, index, buffer in ops:
            if op == "write":
                yield from vc.write(ctx, handles[index], buffer)
                model[handles[index]] = tuple(buffer)
            elif op == "read":
                got = yield from vc.read(ctx, handles[index])
                if got != model.get(handles[index]):
                    problems.append(("read", got, model.get(handles[index])))
            elif op == "flush":
                yield from vc.flush(ctx)
            else:
                yield from vc.evict(ctx, handles[index])

    outcome = _run_sequential(vyrd, script)
    assert not problems
    assert outcome.ok, str(outcome.first_violation)


# -- ScanFS vs dict model -----------------------------------------------------------

fs_ops = st.lists(
    st.one_of(
        st.tuples(st.just("create"), st.sampled_from("abc"), st.none()),
        st.tuples(st.just("write"), st.sampled_from("abc"),
                  st.lists(st.integers(0, 9), max_size=6)),
        st.tuples(st.just("read"), st.sampled_from("abc"), st.none()),
        st.tuples(st.just("delete"), st.sampled_from("abc"), st.none()),
    ),
    max_size=25,
)


@given(fs_ops)
@settings(max_examples=40, deadline=None)
def test_scanfs_matches_dict_model(ops):
    device = BlockDevice(num_blocks=4, block_size=8)
    fs = ScanFS(BlockCache(device))
    vyrd = Vyrd(spec_factory=lambda: FsSpec(num_blocks=4, max_content=7),
                mode="view", impl_view_factory=lambda: scanfs_view(4, 8))
    vfs = vyrd.wrap(fs)
    model = {}
    problems = []

    def script(ctx):
        for op, name, payload in ops:
            if op == "create":
                ok = yield from vfs.create(ctx, name)
                expected = name not in model and len(model) < 4
                if ok != expected:
                    problems.append(("create", name, ok))
                if ok:
                    model[name] = ()
            elif op == "write":
                content = tuple(payload)
                ok = yield from vfs.write_file(ctx, name, content)
                if ok != (name in model):
                    problems.append(("write", name, ok))
                if ok:
                    model[name] = content
            elif op == "read":
                got = yield from vfs.read_file(ctx, name)
                if got != model.get(name):
                    problems.append(("read", name, got, model.get(name)))
            else:
                ok = yield from vfs.delete(ctx, name)
                if ok != (name in model):
                    problems.append(("delete", name, ok))
                model.pop(name, None)

    outcome = _run_sequential(vyrd, script)
    assert not problems
    assert outcome.ok, str(outcome.first_violation)
    assert fs.files() == model
