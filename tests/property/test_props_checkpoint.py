"""Property: checkpoint at any cut, restore from bytes, feed the tail --
the outcome is identical to the straight-through run.

This is the resumability contract of the whole checkpoint payload: spec
state, impl-view caches, comparator mismatch set, replay undo maps,
observer windows and the lookahead buffer all have to survive
serialization for *every* cut point, on clean and seeded-bug runs alike.
"""

import json

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import Checkpoint
from repro.harness.runner import run_program
from repro.serve import session_checkers

# One linked-structure program (the DependencyView path), one
# ContributionView program, one FunctionView fallback program.
PROGRAMS = ["blinktree", "multiset-vector", "java-vector"]


def _verdict(checker) -> str:
    return json.dumps(checker.finish().to_dict(), sort_keys=True)


@given(
    program=st.sampled_from(PROGRAMS),
    buggy=st.booleans(),
    seed=st.integers(0, 3),
    cut_fraction=st.floats(0.0, 1.0),
)
@settings(max_examples=25, deadline=None)
def test_resume_from_arbitrary_cut_is_invisible(program, buggy, seed, cut_fraction):
    run = run_program(
        program, buggy=buggy, num_threads=2, calls_per_thread=4, seed=seed
    )
    log = list(run.log)
    make_checker, _ = session_checkers(program)

    straight = make_checker()
    straight.feed(log)
    expected = _verdict(straight)

    cut = int(len(log) * cut_fraction)
    first = make_checker()
    first.feed(log[:cut])
    checkpoint = Checkpoint.from_bytes(
        first.checkpoint(meta={"program": program}).to_bytes()
    )

    resumed = make_checker()
    resumed.restore(checkpoint)
    resumed.feed(log[checkpoint.resume_seq:])
    assert _verdict(resumed) == expected
