"""Properties of the race detectors over generated feasible logs.

The central containment property: at location granularity, everything the
happens-before detector reports is also reported by the lockset detector
(the two documented Eraser deviations in :mod:`repro.races.lockset` exist
precisely to make this hold).  The generated interleavings keep locked
sections contiguous so the logs stay *feasible* -- mutual exclusion is
respected, which a real kernel run guarantees and the detectors assume.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.actions import (
    AcquireAction,
    ReadAction,
    ReleaseAction,
    WriteAction,
)
from repro.core.log import Log
from repro.races import check_races

LOCKS = ["l0", "l1"]
LOCS = ["x", "y", "z"]

access = st.tuples(st.sampled_from(["r", "w"]), st.sampled_from(LOCS))

# a thread-program item: one bare access, or one complete locked section
item = st.one_of(
    st.tuples(st.just("access"), access),
    st.tuples(
        st.just("section"),
        st.tuples(st.sampled_from(LOCKS), st.lists(access, min_size=1, max_size=3)),
    ),
)

thread_program = st.lists(item, max_size=6)


def _emit(tid, entry):
    kind, payload = entry
    if kind == "access":
        rw, loc = payload
        if rw == "r":
            return [ReadAction(tid, None, loc)]
        return [WriteAction(tid, None, loc, 0, 1)]
    lock, accesses = payload
    events = [AcquireAction(tid, None, lock)]
    for rw, loc in accesses:
        if rw == "r":
            events.append(ReadAction(tid, None, loc))
        else:
            events.append(WriteAction(tid, None, loc, 0, 1))
    events.append(ReleaseAction(tid, None, lock))
    return events


def _interleave(data, programs):
    """Merge per-thread programs into one feasible log; locked sections are
    emitted contiguously, so no lock is ever held by two threads at once."""
    queues = {tid: list(program) for tid, program in programs.items()}
    actions = []
    while any(queues.values()):
        available = sorted(tid for tid, queue in queues.items() if queue)
        tid = data.draw(st.sampled_from(available))
        actions.extend(_emit(tid, queues[tid].pop(0)))
    return Log(actions)


@given(st.data())
@settings(max_examples=80, deadline=None)
def test_lockset_reports_cover_happens_before_reports(data):
    programs = {tid: data.draw(thread_program, label=f"t{tid}") for tid in range(3)}
    outcome = check_races(_interleave(data, programs), detectors="both")
    hb_locs = {race.loc for race in outcome.hb_races}
    lockset_locs = {race.loc for race in outcome.lockset_races}
    assert hb_locs <= lockset_locs, (
        f"happens-before reported {sorted(hb_locs - lockset_locs)} "
        f"that the lockset detector missed"
    )


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_consistent_locking_satisfies_both_detectors(data):
    # every access to a location goes through that location's own lock
    lock_of_loc = {"x": "l0", "y": "l1", "z": "l2"}
    programs = {}
    for tid in range(3):
        accesses = data.draw(st.lists(access, max_size=6), label=f"t{tid}")
        programs[tid] = [
            ("section", (lock_of_loc[loc], [(rw, loc)])) for rw, loc in accesses
        ]
    outcome = check_races(_interleave(data, programs), detectors="both")
    assert outcome.ok, [str(race) for race in outcome.races]


@given(st.integers(2, 4), st.sampled_from(LOCS))
@settings(max_examples=30, deadline=None)
def test_unprotected_multi_writer_loc_is_reported_by_both(writers, loc):
    actions = [WriteAction(tid, None, loc, 0, tid) for tid in range(writers)]
    outcome = check_races(Log(actions), detectors="both")
    assert {race.loc for race in outcome.hb_races} == {loc}
    assert {race.loc for race in outcome.lockset_races} == {loc}
