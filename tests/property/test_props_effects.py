"""Soundness of the static independence matrix against the dynamic HB engine.

The schedule reducer treats a statically ``independent`` operation pair as
licensed for reordering, so the static matrix must over-approximate every
dynamic conflict: if the happens-before race detector ever reports two
accesses from operations ``a`` and ``b``, the matrix must not call
``(a, b)`` independent (``conditional`` is fine -- it defers to the
per-step descriptors, which conflict exactly when the race does).

Swept over *every* registry program, correct and buggy, across seeds."""

import pytest

from repro.core.actions import CallAction
from repro.harness import run_program
from repro.harness.workload import PROGRAMS
from repro.lint.effects import analyze_program

SEEDS = range(4)


def _operation_of(log, site, operations):
    """Map a race's access site to its enclosing @operation, if any."""
    if site.op_id is None:
        return None
    for action in log:
        if (
            isinstance(action, CallAction)
            and action.tid == site.tid
            and action.op_id == site.op_id
        ):
            return action.method if action.method in operations else None
    return None


@pytest.mark.parametrize("name", sorted(PROGRAMS))
@pytest.mark.parametrize("buggy", [False, True])
def test_static_matrix_covers_dynamic_hb_conflicts(name, buggy):
    effects = analyze_program(name)
    operations = set(effects.operations)
    for seed in SEEDS:
        result = run_program(
            name, buggy=buggy, num_threads=3, calls_per_thread=4,
            seed=seed, races="hb",
        )
        outcome = result.race_outcome
        assert outcome is not None
        for race in outcome.races:
            op_a = _operation_of(result.log, race.prior, operations)
            op_b = _operation_of(result.log, race.access, operations)
            if op_a is None or op_b is None:
                # daemon / glue access: statically opaque, never reduced
                continue
            verdict = effects.verdict(op_a, op_b)
            assert verdict != "independent", (
                f"{name} (buggy={buggy}, seed={seed}): dynamic "
                f"{race.kind} conflict on {race.loc!r} between "
                f"{op_a} and {op_b}, but the static matrix calls the "
                f"pair independent -- reduction would be unsound: {race}"
            )
