"""Property: log recovery always salvages exactly the longest valid prefix.

For *any* generated log, *any* truncation offset and *any* single bit flip
past the magic header, :func:`repro.core.log.recover_log` must (a) never
raise, (b) return exactly the records of every frame that precedes the
damage -- computed here from ground-truth frame boundaries, not from the
reader under test -- and (c) report the byte offset where parsing stopped
whenever anything was lost.
"""

import os
import struct
import tempfile

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    CallAction,
    CommitAction,
    Log,
    ReturnAction,
    WriteAction,
    recover_log,
    save_log,
)
from repro.core.log import LOG_MAGIC
from repro.faults import bitflip, tear

_HEADER = struct.Struct("<II")

history_strategy = st.lists(
    st.tuples(
        st.sampled_from(["set", "get"]),
        st.sampled_from(["r0", "r1"]),
        st.integers(0, 9),
    ),
    min_size=1,
    max_size=12,
)


def _history_to_log(history) -> Log:
    actions = []
    for op_id, (op, reg, value) in enumerate(history):
        if op == "set":
            actions.append(CallAction(0, op_id, "set", (reg, value)))
            actions.append(WriteAction(0, op_id, reg, None, value))
            actions.append(CommitAction(0, op_id))
            actions.append(ReturnAction(0, op_id, "set", True))
        else:
            actions.append(CallAction(0, op_id, "get", (reg,)))
            actions.append(ReturnAction(0, op_id, "get", value))
    return Log(actions)


def _frame_boundaries(path) -> list:
    """Ground-truth end offsets of every frame, parsed independently."""
    boundaries = []
    with open(path, "rb") as handle:
        data = handle.read()
    assert data[: len(LOG_MAGIC)] == LOG_MAGIC
    cursor = len(LOG_MAGIC)
    while cursor < len(data):
        length, _crc = _HEADER.unpack_from(data, cursor)
        cursor += _HEADER.size + length
        boundaries.append(cursor)
    assert cursor == len(data)
    return boundaries


def _saved(history):
    log = _history_to_log(history)
    fd, path = tempfile.mkstemp(suffix=".vyrdlog")
    os.close(fd)
    save_log(log, path)
    return log, path


@given(history_strategy, st.data())
@settings(max_examples=80, deadline=None)
def test_truncation_salvages_longest_valid_prefix(history, data):
    log, path = _saved(history)
    try:
        size = os.path.getsize(path)
        boundaries = _frame_boundaries(path)
        offset = data.draw(st.integers(0, size), label="truncate_at")
        tear(path, offset)
        recovered = recover_log(path)  # must never raise
        if offset < len(LOG_MAGIC):
            # the magic header itself is torn: the file is no longer
            # identifiable as a framed log, so nothing can be vouched for --
            # only the no-raise/no-salvage guarantee applies
            assert len(recovered.log) == 0
            return
        expected = sum(1 for end in boundaries if end <= offset)
        assert len(recovered.log) == expected
        assert [repr(a) for a in recovered.log] == [
            repr(a) for a in list(log)[:expected]
        ]
        clean_boundaries = {len(LOG_MAGIC), *boundaries}
        if offset in clean_boundaries:
            # the tear landed exactly between frames: indistinguishable
            # from a shorter-but-complete log
            assert recovered.complete
        else:
            assert not recovered.complete
            assert recovered.error_offset is not None
            # parsing stopped at the last intact frame boundary
            intact = [len(LOG_MAGIC)] + [b for b in boundaries if b <= offset]
            assert recovered.error_offset == max(intact)
    finally:
        os.unlink(path)


@given(history_strategy, st.data())
@settings(max_examples=80, deadline=None)
def test_bitflip_salvages_frames_before_the_damage(history, data):
    log, path = _saved(history)
    try:
        size = os.path.getsize(path)
        boundaries = _frame_boundaries(path)
        # flip anywhere past the magic header (a flipped magic is a format
        # question, covered separately below)
        offset = data.draw(
            st.integers(len(LOG_MAGIC), size - 1), label="flip_at"
        )
        bit = data.draw(st.integers(0, 7), label="bit")
        bitflip(path, offset, bit)
        recovered = recover_log(path)  # must never raise
        # every frame strictly before the damaged one survives; nothing at
        # or after the damaged frame can be trusted
        expected = sum(1 for end in boundaries if end <= offset)
        assert len(recovered.log) == expected
        assert [repr(a) for a in recovered.log] == [
            repr(a) for a in list(log)[:expected]
        ]
        assert not recovered.complete
        assert recovered.error_offset is not None
        intact = [len(LOG_MAGIC)] + [b for b in boundaries if b <= offset]
        assert recovered.error_offset == max(intact)
    finally:
        os.unlink(path)


@given(history_strategy, st.integers(0, 7), st.data())
@settings(max_examples=20, deadline=None)
def test_damaged_magic_never_raises(history, bit, data):
    _log, path = _saved(history)
    try:
        offset = data.draw(st.integers(0, len(LOG_MAGIC) - 1), label="at")
        bitflip(path, offset, bit)
        recovered = recover_log(path)  # must never raise
        # an unidentifiable header salvages nothing it can vouch for
        assert recovered.total_bytes == os.path.getsize(path)
    finally:
        os.unlink(path)
