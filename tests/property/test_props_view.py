"""Property: incremental views always agree with full recomputation."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import ContributionView, ReplayState, prefix_unit

SLOTS = [f"A[{i}]" for i in range(5)]
FIELDS = ["elt", "valid"]


def _make_view():
    def contribute(state, unit):
        if state.get(f"{unit}.valid"):
            return (state.get(f"{unit}.elt"), 1)
        return None

    return ContributionView(
        unit_of=prefix_unit("A[", stop="."),
        contribute=contribute,
        aggregate="count",
    )


write_strategy = st.tuples(
    st.sampled_from(SLOTS),
    st.sampled_from(FIELDS),
    st.one_of(st.booleans(), st.integers(0, 3), st.none()),
)


@given(st.lists(write_strategy, max_size=40))
@settings(max_examples=60, deadline=None)
def test_incremental_equals_full_after_every_refresh(writes):
    view = _make_view()
    state = ReplayState()
    for slot, field, value in writes:
        loc = f"{slot}.{field}"
        state.apply_write(0, loc, state.get(loc), value)
        view.on_write(loc)
        effective = state.effective(None)
        assert view.refresh(effective) == view.compute_full(effective)


@given(
    st.lists(write_strategy, min_size=1, max_size=20),
    st.lists(write_strategy, min_size=1, max_size=10),
)
@settings(max_examples=40, deadline=None)
def test_rollback_view_matches_full_on_effective_state(committed, in_block):
    """Writes inside an open block by thread 1: at thread 0's commit, the
    incremental view over the rolled-back state equals a fresh computation
    over that same state."""
    view = _make_view()
    state = ReplayState()
    for slot, field, value in committed:
        loc = f"{slot}.{field}"
        state.apply_write(0, loc, state.get(loc), value)
        view.on_write(loc)
    view.refresh(state.effective(None))

    state.begin_block(1)
    for slot, field, value in in_block:
        loc = f"{slot}.{field}"
        state.apply_write(1, loc, state.get(loc), value)
        view.on_write(loc)

    effective = state.effective(0)  # thread 0 commits: block rolled back
    extra = state.open_block_locs(excluding_tid=0)
    assert view.refresh(effective, extra) == view.compute_full(effective)

    # and at thread 1's own commit, its writes are visible
    own = state.effective(1)
    extra = state.open_block_locs(excluding_tid=1)
    assert view.refresh(own, extra) == view.compute_full(own)

    # after the block closes, everything is permanent
    state.end_block(1)
    final = state.effective(None)
    assert view.refresh(final, state.open_block_locs(None)) == view.compute_full(final)


@given(st.lists(write_strategy, max_size=30))
@settings(max_examples=40, deadline=None)
def test_replay_state_get_matches_last_write(writes):
    state = ReplayState()
    model = {}
    for slot, field, value in writes:
        loc = f"{slot}.{field}"
        state.apply_write(0, loc, state.get(loc), value)
        model[loc] = value
    for loc, value in model.items():
        assert state.get(loc) == value
    assert dict(state.raw()) == {k: v for k, v in model.items()}
