"""Properties of the log layer and the checker over generated histories.

Strategy: generate random *sequential* histories against a register-file
model, render them as logs, and require the checker to accept them; then
corrupt a single return value and require the checker to reject."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core import (
    CallAction,
    CommitAction,
    Log,
    ReturnAction,
    SpecReject,
    Specification,
    WriteAction,
    check_log,
    load_log,
    mutator,
    observer,
    save_log,
    validate_well_formed,
)
from repro.core.view import FunctionView


class RegisterFileSpec(Specification):
    def __init__(self):
        self.regs = {}

    @mutator
    def set(self, name, value, *, result):
        if result is not True:
            raise SpecReject("set returns True")
        self.regs[name] = value

    @observer
    def get(self, name):
        return self.regs.get(name)

    def view(self):
        return dict(self.regs)


def register_file_view():
    return FunctionView(lambda state: dict(state.items_with_prefix("r")))


history_strategy = st.lists(
    st.tuples(
        st.sampled_from(["set", "get"]),
        st.sampled_from(["r0", "r1", "r2"]),
        st.integers(0, 9),
    ),
    max_size=30,
)


def _history_to_log(history):
    """Render a sequential history as a correct single-thread log."""
    model = {}
    actions = []
    for op_id, (op, reg, value) in enumerate(history):
        if op == "set":
            actions.append(CallAction(0, op_id, "set", (reg, value)))
            actions.append(WriteAction(0, op_id, reg, model.get(reg), value))
            actions.append(CommitAction(0, op_id))
            actions.append(ReturnAction(0, op_id, "set", True))
            model[reg] = value
        else:
            actions.append(CallAction(0, op_id, "get", (reg,)))
            actions.append(ReturnAction(0, op_id, "get", model.get(reg)))
    return Log(actions)


@given(history_strategy)
@settings(max_examples=60, deadline=None)
def test_correct_histories_accepted_in_both_modes(history):
    log = _history_to_log(history)
    assert validate_well_formed(log) == []
    assert check_log(log, RegisterFileSpec(), mode="io").ok
    outcome = check_log(
        log, RegisterFileSpec(), mode="view", impl_view=register_file_view()
    )
    assert outcome.ok, str(outcome.first_violation)


@given(history_strategy.filter(lambda h: any(op == "get" for op, _, _ in h)),
       st.integers(0, 10_000))
@settings(max_examples=60, deadline=None)
def test_corrupting_an_observer_return_is_rejected(history, pick):
    log = _history_to_log(history)
    get_returns = [
        i for i, a in enumerate(log)
        if isinstance(a, ReturnAction) and a.method == "get"
    ]
    index = get_returns[pick % len(get_returns)]
    original = log[index]
    corrupted = ReturnAction(original.tid, original.op_id, "get", "corrupt!")
    actions = list(log)
    actions[index] = corrupted
    outcome = check_log(Log(actions), RegisterFileSpec(), mode="io")
    assert not outcome.ok


@given(history_strategy)
@settings(max_examples=30, deadline=None)
def test_log_file_round_trip_preserves_checking(history):
    import os
    import tempfile

    log = _history_to_log(history)
    fd, path = tempfile.mkstemp(suffix=".vyrdlog")
    os.close(fd)
    try:
        save_log(log, path)
        restored = load_log(path)
    finally:
        os.unlink(path)
    assert list(restored) == list(log)
    assert check_log(restored, RegisterFileSpec(), mode="io").ok


@given(history_strategy, st.data())
@settings(max_examples=40, deadline=None)
def test_dropping_a_commit_is_flagged(history, data):
    log = _history_to_log(history)
    commits = [i for i, a in enumerate(log) if isinstance(a, CommitAction)]
    if not commits:
        return
    index = data.draw(st.sampled_from(commits))
    actions = [a for i, a in enumerate(log) if i != index]
    outcome = check_log(Log(actions), RegisterFileSpec(), mode="io")
    assert not outcome.ok  # mutator without commit -> instrumentation error
