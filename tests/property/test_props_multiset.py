"""Property: multiset implementations agree with a Counter model, and the
checker accepts every correct sequential execution."""

from collections import Counter

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Kernel, Vyrd
from repro.concurrency import RoundRobinScheduler
from repro.multiset import (
    FAILURE,
    SUCCESS,
    MultisetSpec,
    TreeMultiset,
    VectorMultiset,
    multiset_view,
    tree_multiset_view,
)

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "insert_pair", "delete", "lookup"]),
        st.integers(0, 5),
        st.integers(0, 5),
    ),
    max_size=25,
)


def _drive(vds, ops, results):
    def body(ctx):
        for op, x, y in ops:
            if op == "insert":
                results.append((op, x, (yield from vds.insert(ctx, x))))
            elif op == "insert_pair":
                results.append((op, (x, y), (yield from vds.insert_pair(ctx, x, y))))
            elif op == "delete":
                results.append((op, x, (yield from vds.delete(ctx, x))))
            else:
                results.append((op, x, (yield from vds.lookup(ctx, x))))

    return body


def _model(results):
    model = Counter()
    for op, arg, result in results:
        if op == "insert" and result == SUCCESS:
            model[arg] += 1
        elif op == "insert_pair" and result == SUCCESS:
            model[arg[0]] += 1
            model[arg[1]] += 1
        elif op == "delete" and result is True:
            model[arg] -= 1
    return {k: v for k, v in model.items() if v}


@given(ops_strategy)
@settings(max_examples=50, deadline=None)
def test_vector_multiset_sequential_matches_model(ops):
    vyrd = Vyrd(spec_factory=MultisetSpec, mode="view",
                impl_view_factory=multiset_view)
    kernel = Kernel(scheduler=RoundRobinScheduler(), tracer=vyrd.tracer)
    ds = VectorMultiset(size=8)
    vds = vyrd.wrap(ds)
    results = []
    kernel.spawn(_drive(vds, ops, results))
    kernel.run()

    model = _model(results)
    assert ds.contents() == model
    # sequential lookups/deletes are exact
    live = Counter()
    for op, arg, result in results:
        if op == "insert" and result == SUCCESS:
            live[arg] += 1
        elif op == "insert_pair" and result == SUCCESS:
            live[arg[0]] += 1
            live[arg[1]] += 1
        elif op == "delete":
            assert result is (live[arg] > 0)
            if result:
                live[arg] -= 1
        elif op == "lookup":
            assert result is (live[arg] > 0)
    outcome = vyrd.check_offline()
    assert outcome.ok, str(outcome.first_violation)


@given(ops_strategy)
@settings(max_examples=50, deadline=None)
def test_tree_multiset_sequential_matches_model(ops):
    ops = [(op if op != "insert_pair" else "insert", x, y) for op, x, y in ops]
    vyrd = Vyrd(spec_factory=lambda: MultisetSpec(strict_delete=True), mode="view",
                impl_view_factory=tree_multiset_view)
    kernel = Kernel(scheduler=RoundRobinScheduler(), tracer=vyrd.tracer)
    ds = TreeMultiset()
    vds = vyrd.wrap(ds)
    results = []
    kernel.spawn(_drive(vds, ops, results))
    kernel.run()
    assert ds.contents() == _model(results)
    outcome = vyrd.check_offline()
    assert outcome.ok, str(outcome.first_violation)


@given(ops_strategy, st.integers(0, 50))
@settings(max_examples=30, deadline=None)
def test_vector_multiset_insert_never_fails_with_room(ops, seed):
    """With an array at least as large as the number of insert slots needed,
    sequential inserts never fail."""
    needed = sum(2 if op == "insert_pair" else 1 for op, _, _ in ops)
    ds = VectorMultiset(size=max(needed, 1))
    kernel = Kernel(scheduler=RoundRobinScheduler())
    results = []

    def body(ctx):
        for op, x, y in ops:
            if op == "insert":
                results.append((yield from ds.insert(ctx, x)))
            elif op == "insert_pair":
                results.append((yield from ds.insert_pair(ctx, x, y)))

    kernel.spawn(body)
    kernel.run()
    assert FAILURE not in results
