"""Property: frontier-sharded exhaustive exploration == serial DFS.

Hypothesis draws small decision-tree programs (thread/step shapes); for
every draw the parallel engine must cover exactly the serial engine's
schedule set, in the same canonical order, with the same outcomes.
"""

import multiprocessing
from functools import partial

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.concurrency import Kernel, explore_exhaustive
from repro.concurrency.parallel import parallel_exhaustive

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel exploration tests need fork-start workers",
)


def _tree_program(shape, scheduler):
    trace = []

    def worker(label, steps):
        def body(ctx):
            for i in range(steps):
                trace.append((label, i))
                yield ctx.checkpoint()

        return body

    kernel = Kernel(scheduler=scheduler)
    for index, steps in enumerate(shape):
        kernel.spawn(worker(index, steps), name=str(index))
    kernel.run()
    return tuple(trace)


@settings(max_examples=8, deadline=None)
@given(
    shape=st.lists(st.integers(min_value=1, max_value=2), min_size=1, max_size=3),
    jobs=st.sampled_from([2, 3]),
)
def test_parallel_exhaustive_equals_serial_on_decision_trees(shape, jobs):
    program = partial(_tree_program, tuple(shape))
    serial = explore_exhaustive(program, max_runs=5000)
    parallel = parallel_exhaustive(program, max_runs=5000, jobs=jobs)
    assert serial.exhausted and parallel.exhausted
    assert parallel.signature() == serial.signature()
    # distinct interleavings covered, none duplicated
    schedules = [tuple(r.schedule) for r in parallel.runs]
    assert len(set(schedules)) == len(schedules)
    assert parallel.outcomes() == serial.outcomes()
