"""Property: the B-link tree agrees with a dict model and keeps its shape."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro import Kernel, Vyrd
from repro.boxwood import BLinkTree, BLinkTreeSpec, blinktree_view
from repro.concurrency import RandomScheduler, RoundRobinScheduler

ops_strategy = st.lists(
    st.tuples(
        st.sampled_from(["insert", "delete", "lookup"]),
        st.integers(0, 12),
        st.integers(0, 99),
    ),
    max_size=40,
)


@given(ops_strategy, st.integers(min_value=2, max_value=5))
@settings(max_examples=60, deadline=None)
def test_sequential_ops_match_dict_model(ops, order):
    tree = BLinkTree(order=order)
    kernel = Kernel(scheduler=RoundRobinScheduler())
    model = {}
    failures = []

    def body(ctx):
        for op, key, value in ops:
            if op == "insert":
                result = yield from tree.insert(ctx, key, value)
                if result is not True:
                    failures.append(("insert", key))
                if key in model:
                    model[key] = (value, model[key][1] + 1)
                else:
                    model[key] = (value, 1)
            elif op == "delete":
                result = yield from tree.delete(ctx, key)
                if result is not (key in model):
                    failures.append(("delete", key, result))
                model.pop(key, None)
            else:
                result = yield from tree.lookup(ctx, key)
                expected = model[key][0] if key in model else None
                if result != expected:
                    failures.append(("lookup", key, result, expected))

    kernel.spawn(body)
    kernel.run()
    assert not failures
    assert tree.contents() == model
    assert tree.check_structure() == []


@given(ops_strategy, st.integers(0, 30))
@settings(max_examples=40, deadline=None)
def test_compression_never_changes_contents(ops, seed):
    tree = BLinkTree(order=3)
    kernel = Kernel(scheduler=RoundRobinScheduler())

    def body(ctx):
        for op, key, value in ops:
            if op == "insert":
                yield from tree.insert(ctx, key, value)
            elif op == "delete":
                yield from tree.delete(ctx, key)

    kernel.spawn(body)
    kernel.run()
    before = tree.contents()

    kernel2 = Kernel(scheduler=RoundRobinScheduler())

    def compress(ctx):
        while (yield from tree.compression_pass(ctx)):
            pass

    kernel2.spawn(compress)
    kernel2.run()
    assert tree.contents() == before
    assert tree.check_structure() == []


@given(st.integers(0, 10_000), st.integers(min_value=2, max_value=4))
@settings(max_examples=25, deadline=None)
def test_concurrent_runs_verified_clean(seed, order):
    """Random concurrent insert/delete/lookup mixes are always accepted by
    the view checker and leave a structurally sound tree."""
    import random

    vyrd = Vyrd(spec_factory=BLinkTreeSpec, mode="view",
                impl_view_factory=blinktree_view)
    kernel = Kernel(scheduler=RandomScheduler(seed), tracer=vyrd.tracer)
    tree = BLinkTree(order=order)
    vt = vyrd.wrap(tree)

    def worker(index):
        def body(ctx):
            rng = random.Random(seed * 7 + index)
            for i in range(12):
                op = rng.choice(("insert", "insert", "delete", "lookup"))
                key = rng.randrange(10)
                if op == "insert":
                    yield from vt.insert(ctx, key, i)
                elif op == "delete":
                    yield from vt.delete(ctx, key)
                else:
                    yield from vt.lookup(ctx, key)

        return body

    for i in range(3):
        kernel.spawn(worker(i))
    kernel.spawn(tree.compression_thread, daemon=True)
    kernel.run()
    outcome = vyrd.check_offline()
    assert outcome.ok, str(outcome.first_violation)
    assert tree.check_structure() == []
