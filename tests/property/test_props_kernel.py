"""Properties of the concurrency kernel: determinism and lock safety."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.concurrency import (
    Kernel,
    Lock,
    RandomScheduler,
    SharedCell,
    explore_exhaustive,
)


@given(st.integers(0, 10_000), st.integers(min_value=1, max_value=4),
       st.integers(min_value=1, max_value=5))
@settings(max_examples=40, deadline=None)
def test_seeded_runs_are_deterministic(seed, threads, iterations):
    def run():
        cell = SharedCell("c", 0)
        trace = []

        def body(index):
            def gen(ctx):
                for _ in range(iterations):
                    value = yield cell.read()
                    trace.append((index, value))
                    yield cell.write(value + 1)

            return gen

        kernel = Kernel(scheduler=RandomScheduler(seed))
        for i in range(threads):
            kernel.spawn(body(i))
        kernel.run()
        return cell.peek(), tuple(trace)

    assert run() == run()


@given(st.integers(0, 10_000), st.integers(min_value=2, max_value=4))
@settings(max_examples=40, deadline=None)
def test_lock_protected_counter_never_loses_updates(seed, threads):
    lock = Lock("m")
    cell = SharedCell("c", 0)
    per_thread = 8

    def body(ctx):
        for _ in range(per_thread):
            yield lock.acquire()
            value = yield cell.read()
            yield ctx.checkpoint()
            yield cell.write(value + 1)
            yield lock.release()

    kernel = Kernel(scheduler=RandomScheduler(seed))
    for _ in range(threads):
        kernel.spawn(body)
    kernel.run()
    assert cell.peek() == threads * per_thread
    assert lock.owner is None


@given(st.integers(min_value=1, max_value=3))
@settings(max_examples=10, deadline=None)
def test_exhaustive_exploration_of_locked_increments_is_uniform(increments):
    """Every schedule of lock-protected increments yields the same total."""

    def program(scheduler):
        lock = Lock("m")
        cell = SharedCell("c", 0)

        def body(ctx):
            for _ in range(increments):
                yield lock.acquire()
                value = yield cell.read()
                yield cell.write(value + 1)
                yield lock.release()

        kernel = Kernel(scheduler=scheduler)
        kernel.spawn(body)
        kernel.spawn(body)
        kernel.run()
        return cell.peek()

    result = explore_exhaustive(program, max_runs=3000)
    assert result.outcomes() == {2 * increments}
    assert not result.failures
