"""Tree multiset: sequential semantics, lock coupling, compression."""

import random

from repro import Kernel
from repro.concurrency import RoundRobinScheduler
from repro.multiset import MultisetSpec, SUCCESS, TreeMultiset, tree_multiset_view
from tests.conftest import run_session


def _sequential(ds, script):
    kernel = Kernel(scheduler=RoundRobinScheduler())
    results = []

    def body(ctx):
        yield from script(ctx, results)

    kernel.spawn(body)
    kernel.run()
    return results


def test_insert_lookup_delete():
    ds = TreeMultiset()

    def script(ctx, results):
        for key in (5, 3, 8, 5):
            results.append((yield from ds.insert(ctx, key)))
        results.append((yield from ds.lookup(ctx, 5)))
        results.append((yield from ds.delete(ctx, 5)))
        results.append((yield from ds.lookup(ctx, 5)))  # still one 5 left
        results.append((yield from ds.delete(ctx, 5)))
        results.append((yield from ds.lookup(ctx, 5)))
        results.append((yield from ds.delete(ctx, 99)))

    results = _sequential(ds, script)
    assert results == [SUCCESS] * 4 + [True, True, True, True, False, False]
    assert ds.contents() == {3: 1, 8: 1}


def test_bst_shape_via_contents():
    ds = TreeMultiset()
    keys = [50, 25, 75, 10, 30, 60, 90, 25]

    def script(ctx, results):
        for key in keys:
            yield from ds.insert(ctx, key)

    _sequential(ds, script)
    assert ds.contents() == {50: 1, 25: 2, 75: 1, 10: 1, 30: 1, 60: 1, 90: 1}


def test_compression_unlinks_dead_leaves():
    ds = TreeMultiset()

    def script(ctx, results):
        for key in (5, 3, 8):
            yield from ds.insert(ctx, key)
        yield from ds.delete(ctx, 3)
        yield from ds.delete(ctx, 8)
        removed_one = yield from ds.compression_pass(ctx)
        results.append(removed_one)

    results = _sequential(ds, script)
    assert results == [True]
    assert ds.contents() == {5: 1}
    root = ds._nodes[ds.root.peek()]
    children = {root.left.peek(), root.right.peek()}
    assert None in children  # at least one dead leaf unlinked


def test_compression_removes_dead_root():
    ds = TreeMultiset()

    def script(ctx, results):
        yield from ds.insert(ctx, 1)
        yield from ds.delete(ctx, 1)
        results.append((yield from ds.compression_pass(ctx)))

    results = _sequential(ds, script)
    assert results == [True]
    assert ds.root.peek() is None


def test_concurrent_correct_clean_with_strict_spec():
    for seed in range(6):
        ds = TreeMultiset()

        def worker(index):
            def body(ctx, vds):
                rng = random.Random(seed * 10 + index)
                for _ in range(20):
                    op = rng.choice(("insert", "insert", "delete", "lookup"))
                    key = rng.randrange(8)
                    if op == "insert":
                        yield from vds.insert(ctx, key)
                    elif op == "delete":
                        yield from vds.delete(ctx, key)
                    else:
                        yield from vds.lookup(ctx, key)

            return body

        outcome, vyrd, _ = run_session(
            ds,
            lambda: MultisetSpec(strict_delete=True),
            [worker(i) for i in range(4)],
            view_factory=tree_multiset_view,
            seed=seed,
            daemons=(ds.compression_thread,),
        )
        assert outcome.ok, (seed, str(outcome.first_violation))


def test_final_contents_match_spec_model():
    """After a concurrent run, the impl contents equal a sequential replay of
    the witness interleaving."""
    from collections import Counter

    from repro.core import build_witness

    ds = TreeMultiset()

    def worker(index):
        def body(ctx, vds):
            rng = random.Random(index)
            for _ in range(15):
                key = rng.randrange(6)
                if rng.random() < 0.6:
                    yield from vds.insert(ctx, key)
                else:
                    yield from vds.delete(ctx, key)

        return body

    outcome, vyrd, _ = run_session(
        ds,
        lambda: MultisetSpec(strict_delete=True),
        [worker(i) for i in range(3)],
        view_factory=tree_multiset_view,
        seed=11,
    )
    assert outcome.ok
    model = Counter()
    for execution in build_witness(vyrd.log).serialized():
        if execution.method == "insert" and execution.result == SUCCESS:
            model[execution.args[0]] += 1
        elif execution.method == "delete" and execution.result is True:
            model[execution.args[0]] -= 1
    expected = {k: v for k, v in model.items() if v}
    assert ds.contents() == expected
