"""Detection of the seeded multiset bugs (Table 1 rows 1-2, Fig. 6)."""

from repro import Kernel, ViolationKind, Vyrd
from repro.multiset import (
    MultisetSpec,
    TreeMultiset,
    VectorMultiset,
    multiset_view,
    tree_multiset_view,
)
from tests.conftest import find_detecting_seed


def _fig6_run(seed, mode):
    """The paper's Fig. 6 scenario: two InsertPairs race in buggy FindSlot,
    followed by the LookUps that make the error I/O-visible."""
    vyrd = Vyrd(
        spec_factory=MultisetSpec,
        mode=mode,
        impl_view_factory=multiset_view if mode == "view" else None,
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    ds = VectorMultiset(size=8, buggy_findslot=True)
    vds = vyrd.wrap(ds)

    def t1(ctx):
        yield from vds.insert_pair(ctx, 5, 6)
        yield from vds.lookup(ctx, 5)

    def t2(ctx):
        yield from vds.insert_pair(ctx, 7, 8)

    def t3(ctx):
        for key in (5, 6, 7, 8):
            yield from vds.lookup(ctx, key)

    kernel.spawn(t1)
    kernel.spawn(t2)
    kernel.spawn(t3)
    kernel.run()
    return vyrd.check_offline()


def test_fig6_bug_detected_by_view_refinement():
    seed, outcome = find_detecting_seed(lambda s: _fig6_run(s, "view"))
    assert outcome.first_violation.kind in (ViolationKind.VIEW, ViolationKind.OBSERVER)


def test_fig6_bug_detected_by_io_refinement():
    seed, outcome = find_detecting_seed(lambda s: _fig6_run(s, "io"), seeds=range(200))
    assert outcome.first_violation.kind is ViolationKind.OBSERVER


def test_view_detects_fig6_without_any_lookups():
    """Section 5's central claim: with no observer calls at all, I/O
    refinement passes trivially while view refinement still detects the
    corruption."""

    def run(seed, mode):
        vyrd = Vyrd(
            spec_factory=MultisetSpec,
            mode=mode,
            impl_view_factory=multiset_view if mode == "view" else None,
            log_level="view",
        )
        kernel = Kernel(seed=seed, tracer=vyrd.tracer)
        ds = VectorMultiset(size=8, buggy_findslot=True)
        vds = vyrd.wrap(ds)

        def t1(ctx):
            yield from vds.insert_pair(ctx, 5, 6)

        def t2(ctx):
            yield from vds.insert_pair(ctx, 7, 8)

        kernel.spawn(t1)
        kernel.spawn(t2)
        kernel.run()
        return vyrd

    seed, _ = find_detecting_seed(lambda s: run(s, "view").check_offline())
    vyrd = run(seed, "view")
    assert not vyrd.check_offline_with_mode("view").ok
    assert vyrd.check_offline_with_mode("io").ok  # trivially passes


def test_view_detects_earlier_than_io_on_same_trace():
    """On a trace where both detect, view's methods-to-detection is <= IO's."""
    detected = []
    for seed in range(80):
        vyrd = Vyrd(
            spec_factory=MultisetSpec,
            mode="view",
            impl_view_factory=multiset_view,
        )
        kernel = Kernel(seed=seed, tracer=vyrd.tracer)
        ds = VectorMultiset(size=8, buggy_findslot=True)
        vds = vyrd.wrap(ds)

        def t1(ctx):
            yield from vds.insert_pair(ctx, 5, 6)
            yield from vds.lookup(ctx, 5)
            yield from vds.lookup(ctx, 6)

        def t2(ctx):
            yield from vds.insert_pair(ctx, 7, 8)
            yield from vds.lookup(ctx, 7)
            yield from vds.lookup(ctx, 8)

        kernel.spawn(t1)
        kernel.spawn(t2)
        kernel.run()
        io_outcome = vyrd.check_offline_with_mode("io")
        view_outcome = vyrd.check_offline_with_mode("view")
        if not io_outcome.ok and not view_outcome.ok:
            detected.append(
                (view_outcome.detection_method_count, io_outcome.detection_method_count)
            )
    assert detected, "bug never triggered in both modes"
    assert all(view_at <= io_at for view_at, io_at in detected)


def test_tree_bug_detected_and_explains_lost_subtree():
    def run(seed):
        vyrd = Vyrd(
            spec_factory=lambda: MultisetSpec(strict_delete=True),
            mode="view",
            impl_view_factory=tree_multiset_view,
        )
        kernel = Kernel(seed=seed, tracer=vyrd.tracer)
        ds = TreeMultiset(buggy_unlock_parent=True)
        vds = vyrd.wrap(ds)

        def worker(values):
            def body(ctx):
                for value in values:
                    yield from vds.insert(ctx, value)

            return body

        kernel.spawn(worker([3, 1, 5]))
        kernel.spawn(worker([2, 4, 6]))
        kernel.run()
        return vyrd.check_offline()

    seed, outcome = find_detecting_seed(run)
    violation = outcome.first_violation
    assert violation.kind is ViolationKind.VIEW
    diff = violation.details["diff"]
    # the spec has keys the (replayed) implementation lost, or counts differ
    assert diff["only_in_viewS"] or diff["differing (viewI, viewS)"]


def test_correct_variants_pass_same_scenarios():
    """The exact scenarios above, with bugs disabled, are clean."""
    for seed in range(10):
        vyrd = Vyrd(spec_factory=MultisetSpec, mode="view",
                    impl_view_factory=multiset_view)
        kernel = Kernel(seed=seed, tracer=vyrd.tracer)
        ds = VectorMultiset(size=8)
        vds = vyrd.wrap(ds)

        def t1(ctx):
            yield from vds.insert_pair(ctx, 5, 6)
            yield from vds.lookup(ctx, 5)

        def t2(ctx):
            yield from vds.insert_pair(ctx, 7, 8)

        kernel.spawn(t1)
        kernel.spawn(t2)
        kernel.run()
        assert vyrd.check_offline().ok
