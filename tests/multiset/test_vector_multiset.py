"""Vector multiset: sequential semantics, concurrency, compression."""

import random

from repro import Kernel
from repro.concurrency import RoundRobinScheduler
from repro.multiset import FAILURE, SUCCESS, MultisetSpec, VectorMultiset, multiset_view
from tests.conftest import run_session


def _sequential(ds, script):
    """Run a single simulated thread over ``script(ctx, vds-like impl)``."""
    kernel = Kernel(scheduler=RoundRobinScheduler())
    results = []

    def body(ctx):
        yield from script(ctx, results)

    kernel.spawn(body)
    kernel.run()
    return results


def test_insert_lookup_delete_sequence():
    ds = VectorMultiset(size=4)

    def script(ctx, results):
        results.append((yield from ds.insert(ctx, 5)))
        results.append((yield from ds.lookup(ctx, 5)))
        results.append((yield from ds.delete(ctx, 5)))
        results.append((yield from ds.lookup(ctx, 5)))
        results.append((yield from ds.delete(ctx, 5)))

    results = _sequential(ds, script)
    assert results == [SUCCESS, True, True, False, False]
    assert ds.contents() == {}


def test_insert_fails_when_full():
    ds = VectorMultiset(size=2)

    def script(ctx, results):
        results.append((yield from ds.insert(ctx, 1)))
        results.append((yield from ds.insert(ctx, 2)))
        results.append((yield from ds.insert(ctx, 3)))

    results = _sequential(ds, script)
    assert results == [SUCCESS, SUCCESS, FAILURE]
    assert ds.contents() == {1: 1, 2: 1}


def test_insert_pair_all_or_nothing_on_full_array():
    ds = VectorMultiset(size=3)

    def script(ctx, results):
        results.append((yield from ds.insert(ctx, 1)))
        results.append((yield from ds.insert(ctx, 2)))
        # one free slot: x reserves it, y fails, x's slot must be freed
        results.append((yield from ds.insert_pair(ctx, 8, 9)))
        results.append((yield from ds.lookup(ctx, 8)))
        # the freed slot is usable again
        results.append((yield from ds.insert(ctx, 3)))

    results = _sequential(ds, script)
    assert results == [SUCCESS, SUCCESS, FAILURE, False, SUCCESS]
    assert ds.contents() == {1: 1, 2: 1, 3: 1}


def test_duplicates_are_counted():
    ds = VectorMultiset(size=4)

    def script(ctx, results):
        yield from ds.insert_pair(ctx, 7, 7)
        results.append((yield from ds.delete(ctx, 7)))
        results.append((yield from ds.lookup(ctx, 7)))

    results = _sequential(ds, script)
    assert results == [True, True]  # one occurrence left after one delete


def test_compression_pass_moves_elements_down():
    ds = VectorMultiset(size=4)

    def script(ctx, results):
        yield from ds.insert(ctx, 1)
        yield from ds.insert(ctx, 2)
        yield from ds.delete(ctx, 1)       # slot 0 now free
        moved = yield from ds.compression_pass(ctx)
        results.append(moved)

    results = _sequential(ds, script)
    assert results == [True]
    assert ds.slots[0].elt.peek() == 2
    assert ds.slots[0].valid.peek() is True
    assert ds.slots[1].valid.peek() is False
    assert ds.contents() == {2: 1}


def test_compression_noop_when_compact():
    ds = VectorMultiset(size=4)

    def script(ctx, results):
        yield from ds.insert(ctx, 1)
        moved = yield from ds.compression_pass(ctx)
        results.append(moved)

    assert _sequential(ds, script) == [False]


def test_concurrent_correct_runs_clean_with_checker():
    """Unique-key concurrent workload + compression: no violations, and the
    final contents match the spec."""
    for seed in range(6):
        ds = VectorMultiset(size=24)

        def worker(base):
            def body(ctx, vds):
                rng = random.Random(base * 7 + seed)
                for k in range(8):
                    yield from vds.insert(ctx, base + k)
                    if rng.random() < 0.4:
                        yield from vds.delete(ctx, base + rng.randrange(k + 1))
                    yield from vds.lookup(ctx, base + rng.randrange(8))

            return body

        outcome, vyrd, _ = run_session(
            ds,
            MultisetSpec,
            [worker(0), worker(100), worker(200)],
            view_factory=multiset_view,
            seed=seed,
            daemons=(ds.compression_thread,),
        )
        assert outcome.ok, (seed, str(outcome.first_violation))


def test_snapshot_restore_round_trip():
    ds = VectorMultiset(size=3)

    def script(ctx, results):
        yield from ds.insert(ctx, 1)

    _sequential(ds, script)
    snap = ds.snapshot()

    def script2(ctx, results):
        yield from ds.insert(ctx, 2)

    _sequential(ds, script2)
    assert ds.contents() == {1: 1, 2: 1}
    ds.restore(snap)
    assert ds.contents() == {1: 1}
    assert ds.view_atomic() == {1: 1}
