"""Shared helpers for the VYRD reproduction test suite."""

from __future__ import annotations

import random

import pytest

from repro import Kernel, Vyrd


def pytest_configure(config):
    # Per-test wall-clock ceiling: a wedged kernel, a hung worker process or
    # a deadlocked pool must fail the suite, not stall it.  Applied only when
    # pytest-timeout is installed (it is in CI; locally it is optional) and
    # not explicitly overridden on the command line or in the ini file.
    if config.pluginmanager.hasplugin("timeout"):
        if getattr(config.option, "timeout", None) is None:
            config.option.timeout = 120
            config.option.timeout_method = "thread"


def run_session(
    impl,
    spec_factory,
    bodies,
    view_factory=None,
    invariants=(),
    seed=0,
    mode="view",
    daemons=(),
    online=False,
    max_steps=2_000_000,
):
    """Run simulated threads against an instrumented ``impl`` and check.

    ``bodies`` is a list of callables ``body(ctx, vds)`` (generator
    functions); each becomes one application thread.  Returns
    ``(outcome, vyrd, kernel)``.
    """
    vyrd = Vyrd(
        spec_factory=spec_factory,
        mode=mode,
        impl_view_factory=view_factory,
        invariants=invariants,
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer, max_steps=max_steps)
    vds = vyrd.wrap(impl)
    verifier = vyrd.start_online(kernel) if online else None

    def wrap(body):
        def thread_body(ctx):
            result = yield from body(ctx, vds)
            return result

        return thread_body

    for i, body in enumerate(bodies):
        kernel.spawn(wrap(body), name=f"w{i}")
    for daemon in daemons:
        kernel.spawn(daemon, daemon=True)
    kernel.run()
    outcome = verifier.finalize() if verifier else vyrd.check_offline()
    return outcome, vyrd, kernel


def find_detecting_seed(run_once, seeds=range(64)):
    """Return the first seed whose run produces a violation (or fail)."""
    for seed in seeds:
        outcome = run_once(seed)
        if not outcome.ok:
            return seed, outcome
    pytest.fail(f"no violation found in {len(list(seeds))} seeds")


@pytest.fixture
def rng():
    return random.Random(1234)
