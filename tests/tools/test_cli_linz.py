"""CLI surface of the linearizability checker: ``vyrd linz`` and
``check --mode linz|refinement|both`` exit codes and ``--json`` schemas.

Exit-code contract (pinned here):

* refinement modes keep their historic codes (violation -> 1);
* ``linz`` verdicts exit 2 on violation, and hard search errors
  (blown node budget, unreadable log) also exit 2 with a typed problem;
* ``both`` exits 0 when the verdicts agree on OK **or** the disagreement
  is on the documented expected-divergence list, 2 otherwise -- with both
  verdicts in the JSON payload.
"""

import json

import pytest

from repro.core.actions import CallAction, ReturnAction
from repro.core.log import Log, save_log
from repro.linz import strict_lookup_divergence_log
from repro.multiset.spec import SUCCESS
from repro.tools.cli import main

LINZ_SCHEMA_KEYS = {
    "ok", "mode", "operations", "completed", "incomplete",
    "methods_checked", "detection_method_count", "violations",
    "linearization", "search", "program", "variant",
    "well_formed", "well_formedness_problems",
}

BOTH_SCHEMA_KEYS = {
    "ok", "mode", "program", "variant", "agree", "expected_divergence",
    "problem", "refinement", "linz", "well_formed",
    "well_formedness_problems",
}


def _json_out(capsys):
    return json.loads(capsys.readouterr().out)


def test_linz_subcommand_on_clean_program_exits_zero(capsys):
    code = main(["linz", "java-vector", "--threads", "3", "--calls", "12",
                 "--seed", "1"])
    out = capsys.readouterr().out
    assert code == 0
    assert "linearizable" in out


def test_linz_subcommand_on_seeded_bug_exits_two(capsys):
    code = main(["linz", "java-vector", "--buggy", "--threads", "3",
                 "--calls", "12", "--seed", "7", "--json"])
    payload = _json_out(capsys)
    assert code == 2
    assert payload["ok"] is False
    assert set(payload) == LINZ_SCHEMA_KEYS
    assert payload["violations"][0]["kind"] == "linearizability"
    assert "no linearization explains" in payload["violations"][0]["message"]


def test_linz_subcommand_on_log_file(tmp_path, capsys):
    log_path = str(tmp_path / "run.vyrdlog")
    assert main(["run", "--program", "stringbuffer", "--threads", "3",
                 "--calls", "12", "--seed", "4", "--save", log_path]) == 0
    capsys.readouterr()
    code = main(["linz", log_path, "--program", "stringbuffer", "--json"])
    payload = _json_out(capsys)
    assert code == 0
    assert payload["ok"] is True
    assert set(payload) == LINZ_SCHEMA_KEYS
    assert payload["linearization"] is not None


def test_linz_log_file_requires_program(tmp_path, capsys):
    path = tmp_path / "x.vyrdlog"
    path.write_bytes(b"")
    assert main(["linz", str(path)]) == 2
    assert "--program" in capsys.readouterr().err


def test_linz_unreadable_log_is_typed_error(tmp_path, capsys):
    path = tmp_path / "garbage.vyrdlog"
    path.write_bytes(b"not a log at all")
    code = main(["linz", str(path), "--program", "java-vector", "--json"])
    payload = _json_out(capsys)
    assert code == 2
    assert payload["error_type"] == "LogFormatError"


def test_linz_blown_budget_is_typed_error_not_verdict(capsys):
    code = main(["linz", "java-vector", "--threads", "3", "--calls", "12",
                 "--seed", "1", "--max-nodes", "1", "--no-memo", "--json"])
    payload = _json_out(capsys)
    assert code == 2
    assert payload["error_type"] == "SearchBudgetExceeded"
    assert "max_nodes" in payload["problem"]


def test_check_mode_linz_on_divergence_witness(tmp_path, capsys):
    log_path = str(tmp_path / "divergence.vyrdlog")
    save_log(strict_lookup_divergence_log(), log_path)
    # strict spec (the default variant): linearizability violation, exit 2
    code = main(["check", log_path, "--program", "multiset-vector",
                 "--mode", "linz", "--json"])
    payload = _json_out(capsys)
    assert code == 2
    assert payload["ok"] is False
    assert set(payload) == LINZ_SCHEMA_KEYS


def test_check_mode_refinement_is_view_alias(tmp_path, capsys):
    log_path = str(tmp_path / "run.vyrdlog")
    assert main(["run", "--program", "multiset-tree", "--threads", "2",
                 "--calls", "10", "--seed", "1", "--save", log_path]) == 0
    capsys.readouterr()
    assert main(["check", log_path, "--program", "multiset-tree",
                 "--mode", "refinement"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_check_mode_both_agreeing_ok_exits_zero(tmp_path, capsys):
    log_path = str(tmp_path / "run.vyrdlog")
    assert main(["run", "--program", "java-vector", "--threads", "3",
                 "--calls", "12", "--seed", "1", "--save", log_path]) == 0
    capsys.readouterr()
    code = main(["check", log_path, "--program", "java-vector",
                 "--mode", "both", "--json"])
    payload = _json_out(capsys)
    assert code == 0
    assert set(payload) == BOTH_SCHEMA_KEYS
    assert payload["agree"] is True
    assert payload["problem"] is None
    assert payload["refinement"]["ok"] and payload["linz"]["ok"]


def test_check_mode_both_expected_divergence_exits_zero(tmp_path, capsys):
    log_path = str(tmp_path / "divergence.vyrdlog")
    save_log(strict_lookup_divergence_log(), log_path)
    code = main(["check", log_path, "--program", "multiset-vector",
                 "--variant", "strict-lookup", "--mode", "both", "--json"])
    payload = _json_out(capsys)
    assert code == 0
    assert payload["ok"] is True
    assert payload["agree"] is False
    assert payload["expected_divergence"]
    assert payload["refinement"]["ok"] is True
    assert payload["linz"]["ok"] is False


def test_check_mode_both_unexpected_disagreement_exits_two(tmp_path, capsys):
    # A mutator return with no commit annotation: the annotated refinement
    # checker reports an instrumentation violation, the annotation-free
    # search is fine -- a disagreement on no divergence list.
    log = Log()
    log.append(CallAction(tid=0, op_id=0, method="insert", args=(1,)))
    log.append(ReturnAction(tid=0, op_id=0, method="insert", result=SUCCESS))
    log_path = str(tmp_path / "disagree.vyrdlog")
    save_log(log, log_path)
    code = main(["check", log_path, "--program", "multiset-vector",
                 "--mode", "both", "--json"])
    payload = _json_out(capsys)
    assert code == 2
    assert payload["ok"] is False
    assert payload["agree"] is False
    assert payload["expected_divergence"] is None
    assert payload["problem"].startswith("verdict-disagreement:")
    # both verdicts ride along for diagnosis
    assert payload["refinement"]["ok"] is False
    assert payload["linz"]["ok"] is True


def test_check_mode_both_agreed_violation_exits_two(tmp_path, capsys):
    log_path = str(tmp_path / "buggy.vyrdlog")
    for seed in (7, 2, 3):
        code = main(["run", "--program", "java-vector", "--buggy",
                     "--threads", "3", "--calls", "12", "--seed", str(seed),
                     "--save", log_path])
        capsys.readouterr()
        if code == 1:
            break
    else:
        pytest.fail("seeded bug not triggered")
    code = main(["check", log_path, "--program", "java-vector",
                 "--mode", "both", "--json"])
    payload = _json_out(capsys)
    assert code == 2
    assert payload["refinement"]["ok"] is False
    assert payload["linz"]["ok"] is False
    assert payload["problem"]


def test_refinement_violation_exit_code_still_one(tmp_path, capsys):
    """The historic refinement exit codes are untouched by the linz modes."""
    log_path = str(tmp_path / "buggy.vyrdlog")
    for seed in range(20):
        code = main(["run", "--program", "multiset-vector", "--buggy",
                     "--threads", "4", "--calls", "30", "--seed", str(seed),
                     "--save", log_path])
        capsys.readouterr()
        if code == 1:
            break
    else:
        pytest.fail("seeded bug not triggered")
    assert main(["check", log_path, "--program", "multiset-vector"]) == 1
    capsys.readouterr()
