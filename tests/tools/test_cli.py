"""The command-line interface: run/check/trace/witness round trips."""

import pytest

from repro.tools.cli import main


def test_programs_listing(capsys):
    assert main(["programs"]) == 0
    out = capsys.readouterr().out
    assert "multiset-vector" in out
    assert "Moving acquire in FindSlot" in out


def test_run_correct_program_exits_zero(capsys):
    code = main([
        "run", "--program", "multiset-tree", "--threads", "2",
        "--calls", "10", "--seed", "1",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "PASS" in out


def test_run_buggy_program_exits_nonzero(capsys):
    # seed known (from the test below) to trigger; search a few to be safe
    for seed in range(20):
        code = main([
            "run", "--program", "multiset-vector", "--buggy",
            "--threads", "4", "--calls", "30", "--seed", str(seed),
        ])
        if code == 1:
            out = capsys.readouterr().out
            assert "FAIL" in out
            return
        capsys.readouterr()
    pytest.fail("no seed triggered the bug via the CLI")


def test_save_check_trace_witness_round_trip(tmp_path, capsys):
    log_path = str(tmp_path / "run.vyrdlog")
    main([
        "run", "--program", "stringbuffer", "--threads", "3",
        "--calls", "12", "--seed", "4", "--save", log_path,
    ])
    capsys.readouterr()

    assert main(["check", log_path, "--program", "stringbuffer"]) == 0
    assert "PASS" in capsys.readouterr().out

    assert main(["check", log_path, "--program", "stringbuffer",
                 "--mode", "io"]) == 0
    capsys.readouterr()

    assert main(["trace", log_path, "--max-rows", "10"]) == 0
    out = capsys.readouterr().out
    assert "thread 0" in out

    assert main(["witness", log_path]) == 0
    assert "witness interleaving" in capsys.readouterr().out


def test_check_detects_bug_in_saved_log(tmp_path, capsys):
    log_path = str(tmp_path / "buggy.vyrdlog")
    for seed in range(20):
        code = main([
            "run", "--program", "multiset-vector", "--buggy",
            "--threads", "4", "--calls", "30", "--seed", str(seed),
            "--save", log_path,
        ])
        capsys.readouterr()
        if code == 1:
            break
    else:
        pytest.fail("bug not triggered")
    assert main(["check", log_path, "--program", "multiset-vector"]) == 1
    out = capsys.readouterr().out
    assert "FAIL" in out
    # --all collects at least as many violations
    assert main(["check", log_path, "--program", "multiset-vector", "--all"]) == 1


def test_online_flag(capsys):
    code = main([
        "run", "--program", "java-vector", "--threads", "3",
        "--calls", "10", "--seed", "2", "--online",
    ])
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_atomicity_flag_reports_baseline(capsys):
    code = main([
        "run", "--program", "multiset-vector", "--threads", "3",
        "--calls", "15", "--seed", "2", "--atomicity",
    ])
    out = capsys.readouterr().out
    assert code == 0          # refinement passes on the correct program
    assert "atomicity baseline:" in out
    assert "non-atomic" in out  # ...but reduction fails (section 8)


def test_check_json_output(tmp_path, capsys):
    import json

    log_path = str(tmp_path / "run.vyrdlog")
    main([
        "run", "--program", "multiset-tree", "--threads", "2",
        "--calls", "10", "--seed", "1", "--save", log_path,
    ])
    capsys.readouterr()
    code = main(["check", log_path, "--program", "multiset-tree", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["well_formed"] is True
    assert payload["violations"] == []
    assert payload["methods_checked"] > 0


def test_check_json_includes_problem_strings(tmp_path, capsys):
    import json

    log_path = str(tmp_path / "buggy.vyrdlog")
    for seed in range(20):
        code = main([
            "run", "--program", "multiset-vector", "--buggy",
            "--threads", "4", "--calls", "30", "--seed", str(seed),
            "--save", log_path,
        ])
        capsys.readouterr()
        if code == 1:
            break
    else:
        pytest.fail("bug not triggered")
    code = main(["check", log_path, "--program", "multiset-vector", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["ok"] is False
    # every violation carries its human-readable problem string
    assert payload["violations"]
    for violation in payload["violations"]:
        assert isinstance(violation["problem"], str) and violation["problem"]
    # well-formedness problems are always present (strings, empty when clean)
    assert payload["well_formedness_problems"] == []
    assert payload["well_formed"] is True


def test_run_with_races_on_buggy_program(capsys):
    code = main([
        "run", "--program", "multiset-vector", "--buggy",
        "--threads", "4", "--calls", "30", "--seed", "0", "--races",
    ])
    out = capsys.readouterr().out
    assert code == 1
    assert "race detection (both)" in out
    assert "RACES FOUND" in out
    assert "* marks the racing accesses" in out  # Fig. 6-style excerpt


def test_run_with_races_on_correct_program_is_clean(capsys):
    code = main([
        "run", "--program", "stringbuffer", "--threads", "3",
        "--calls", "10", "--seed", "2", "--races", "hb",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "RACE-FREE" in out


def test_run_races_uses_program_atomic_locs(capsys):
    # blinktree's lock-free descents are cache-mediated in real Boxwood;
    # the registry marks blt.* atomic, so no false alarms
    code = main([
        "run", "--program", "blinktree", "--threads", "3",
        "--calls", "12", "--seed", "3", "--races",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "RACE-FREE" in out


def test_races_subcommand_and_json(tmp_path, capsys):
    import json

    log_path = str(tmp_path / "racy.vyrdlog")
    main([
        "run", "--program", "multiset-vector", "--buggy",
        "--threads", "4", "--calls", "30", "--seed", "0", "--races",
        "--save", log_path,
    ])
    capsys.readouterr()

    assert main(["races", log_path]) == 1
    out = capsys.readouterr().out
    assert "RACES FOUND" in out and "* marks the racing accesses" in out

    code = main(["races", log_path, "--detector", "hb", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["ok"] is False
    assert payload["detectors"] == ["happens-before"]
    assert payload["races"] and payload["racy_locs"]
    # the shared --json plumbing attaches well-formedness here too
    assert payload["well_formed"] is True
    assert payload["well_formedness_problems"] == []


def test_races_subcommand_atomic_prefix(tmp_path, capsys):
    log_path = str(tmp_path / "blt.vyrdlog")
    main([
        "run", "--program", "blinktree", "--threads", "3",
        "--calls", "12", "--seed", "3", "--races", "--save", log_path,
    ])
    capsys.readouterr()
    # a saved log knows nothing of the program: without the prefix the
    # lock-free descents look racy, with it the run is clean
    assert main(["races", log_path]) == 1
    capsys.readouterr()
    assert main(["races", log_path, "--atomic-prefix", "blt."]) == 0
    assert "RACE-FREE" in capsys.readouterr().out


def test_check_damaged_log_strict_vs_recover(tmp_path, capsys):
    import json

    log_path = str(tmp_path / "run.vyrdlog")
    main([
        "run", "--program", "multiset-vector", "--threads", "2",
        "--calls", "5", "--seed", "3", "--save", log_path,
    ])
    capsys.readouterr()
    # tear the tail off: strict check refuses with a typed diagnosis...
    data = open(log_path, "rb").read()
    with open(log_path, "wb") as handle:
        handle.write(data[: int(len(data) * 0.6)])
    assert main(["check", log_path, "--program", "multiset-vector"]) == 2
    err = capsys.readouterr().err
    assert "corrupt log stream at byte" in err
    assert "--recover" in err
    # ...the JSON form carries the offset as data...
    assert main(["check", log_path, "--program", "multiset-vector",
                 "--json"]) == 2
    payload = json.loads(capsys.readouterr().out)
    assert payload["ok"] is False
    assert payload["error_type"] == "LogFormatError"
    assert isinstance(payload["offset"], int)
    # ...and --recover checks the salvaged prefix instead
    code = main(["check", log_path, "--program", "multiset-vector",
                 "--recover", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["recovery"]["complete"] is False
    assert payload["recovery"]["records"] > 0
    assert payload["recovery"]["error_offset"] is not None


def test_check_recover_on_intact_log_reports_complete(tmp_path, capsys):
    import json

    log_path = str(tmp_path / "run.vyrdlog")
    main([
        "run", "--program", "multiset-tree", "--threads", "2",
        "--calls", "5", "--seed", "1", "--save", log_path,
    ])
    capsys.readouterr()
    code = main(["check", log_path, "--program", "multiset-tree",
                 "--recover", "--json"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["recovery"]["complete"] is True
    assert payload["recovery"]["error_offset"] is None


def test_explore_swarm_json(capsys):
    import json

    code = main([
        "explore", "--program", "bounded-queue", "--mode", "swarm",
        "--seeds", "4", "--jobs", "1", "--threads", "2", "--calls", "3",
        "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["num_runs"] == 4
    assert payload["requested"] == 4 and payload["skipped"] == 0
    assert payload["num_failures"] == 0
    assert payload["mode"] == "swarm" and payload["jobs"] == 1
    assert payload["runs_per_sec"] > 0
    assert payload["outcomes"]


def test_explore_stop_on_failure_reports_skipped(capsys):
    import json

    # seeds 0..19 include a bug-triggering schedule (see the `run` test above)
    code = main([
        "explore", "--program", "multiset-vector", "--buggy",
        "--seeds", "20", "--threads", "4", "--calls", "30",
        "--stop-on-failure", "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 1
    assert payload["num_failures"] == 1
    assert payload["failures"][0]["error_type"] == "RefinementViolation"
    assert payload["requested"] == 20
    assert payload["skipped"] == 20 - payload["num_runs"]


def test_explore_exhaustive_budget_human_output(capsys):
    code = main([
        "explore", "--program", "multiset-vector", "--mode", "exhaustive",
        "--max-runs", "3", "--threads", "2", "--calls", "2",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "budget reached" in out
    assert "3 runs" in out


def test_explore_reduce_static_json_accounting(capsys):
    import json

    common = [
        "explore", "--program", "blinktree", "--mode", "exhaustive",
        "--no-daemons", "--threads", "2", "--calls", "1",
        "--workload-seed", "7", "--max-runs", "2000", "--fingerprint",
        "--json",
    ]
    assert main(common) == 0
    base = json.loads(capsys.readouterr().out)
    assert main(common + ["--reduce", "static"]) == 0
    red = json.loads(capsys.readouterr().out)
    assert base["exhausted"] and red["exhausted"]
    assert red["reduce"] == "static" and base["reduce"] is None
    assert red["num_runs"] < base["num_runs"]
    assert red["pruned"] > 0 and red["skipped"] == red["pruned"]
    assert red["requested"] == red["num_runs"] + red["skipped"]
    # identical coverage: same distinct HB fingerprints
    assert set(red["outcomes"]) == set(base["outcomes"])


def test_explore_reduce_static_human_output(capsys):
    code = main([
        "explore", "--program", "blinktree", "--mode", "exhaustive",
        "--reduce", "static", "--no-daemons", "--threads", "2",
        "--calls", "1", "--workload-seed", "7", "--max-runs", "2000",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "static reduction cut" in out
    assert "schedule space exhausted" in out


def test_explore_reduce_requires_exhaustive_mode():
    with pytest.raises(ValueError):
        main([
            "explore", "--program", "blinktree", "--mode", "swarm",
            "--reduce", "static", "--seeds", "2",
        ])


# -- the analyze subcommand --------------------------------------------------


def test_analyze_human_output_and_matrix(capsys):
    assert main(["analyze", "blinktree"]) == 0
    out = capsys.readouterr().out
    assert "class BLinkTree" in out
    assert "lookup (observer)" in out
    assert "independence matrix" not in out

    assert main(["analyze", "blinktree", "--matrix"]) == 0
    out = capsys.readouterr().out
    assert "lookup x lookup  independent" in out
    assert "insert x lookup  dependent" in out


def test_analyze_json_schema(capsys):
    import json

    assert main(["analyze", "multiset-vector", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["class"] == "VectorMultiset"
    assert set(payload["operations"]) == {
        "insert", "insert_pair", "delete", "lookup",
    }
    for cell in payload["matrix"].values():
        assert cell["verdict"] in ("independent", "conditional", "dependent")
        assert cell["reason"]
    assert payload["incomplete_operations"] == []


def test_analyze_flags_incomplete_operations(capsys):
    assert main(["analyze", "scanfs"]) == 0
    out = capsys.readouterr().out
    assert "[INCOMPLETE]" in out
    assert "incomplete at line" in out


# -- the lint subcommand and the run --lint pre-flight -----------------------


def test_lint_every_registry_program_is_clean(capsys):
    from repro.harness.workload import PROGRAMS

    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    for name in PROGRAMS:
        assert f"{name}: clean" in out


def test_lint_json_schema(capsys):
    import json

    from repro.harness.workload import PROGRAMS

    code = main(["lint", "--json", "--fail-on", "error"])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["fail_on"] == "error"
    assert set(payload["programs"]) == set(PROGRAMS)
    assert payload["findings"] == 0
    assert payload["gating_findings"] == 0


def test_lint_program_and_rule_filters(capsys):
    import json

    code = main([
        "lint", "--program", "multiset-tree", "--rule", "vy005",
        "--rule", "VY001", "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert list(payload["programs"]) == ["multiset-tree"]


def test_lint_unknown_rule_exits_two(capsys):
    assert main(["lint", "--rule", "VY999"]) == 2
    err = capsys.readouterr().err
    assert "unknown rule id" in err and "VY999" in err


def _broken_lint_program():
    """A registry entry whose implementation fails static lint.

    The class lives in this test module so ``inspect`` can retrieve its
    source; the commit write is not yielded (VY001), which also strips the
    only commit point (VY002).
    """
    from repro.concurrency import SharedCell
    from repro.core import operation
    from repro.harness.workload import BuiltProgram, Program

    class BrokenLintImpl:
        def __init__(self):
            self.cell = SharedCell("b.cell", 0)

        @operation
        def put(self, ctx, x):
            self.cell.write(x, commit=True)
            yield ctx.checkpoint()
            return True

        VYRD_METHODS = {"put": "mutator"}

    def build(buggy, num_threads):
        return BuiltProgram(
            impl=BrokenLintImpl(),
            spec_factory=None,
            view_factory=None,
            make_worker=None,
        )

    return Program(name="broken-lint", bug="unyielded commit write",
                   build=build)


def test_run_lint_preflight_passes_clean_program(capsys):
    code = main([
        "run", "--program", "stringbuffer", "--threads", "2",
        "--calls", "5", "--seed", "1", "--lint", "error",
    ])
    assert code == 0
    assert "PASS" in capsys.readouterr().out


def test_run_lint_preflight_blocks_broken_program(monkeypatch, capsys):
    import json

    from repro.harness.workload import PROGRAMS

    monkeypatch.setitem(PROGRAMS, "broken-lint", _broken_lint_program())
    code = main([
        "run", "--program", "broken-lint", "--lint", "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["ok"] is False
    assert payload["error_type"] == "LintError"
    rules = {finding["rule"] for finding in payload["lint_findings"]}
    assert rules == {"VY001", "VY002"}


# -- observability: the profile subcommand and --metrics/--trace-out ----------


def test_profile_human_output_reports_phases(capsys):
    code = main([
        "profile", "multiset-vector", "--threads", "2", "--calls", "4",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "profiled multiset-vector" in out and "no violation" in out
    assert "wall-clock by phase" in out
    assert "kernel.run" in out and "checker.feed" in out
    assert "log.actions" in out  # counters table
    assert "view.units_recomputed" in out  # distributions table


def test_profile_json_round_trips_the_same_metrics(capsys):
    import json

    from repro.harness import run_program
    from repro.obs import MetricsRecorder

    code = main([
        "profile", "multiset-vector", "--threads", "2", "--calls", "4",
        "--seed", "5", "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] is True
    assert payload["refinement"]["ok"] is True
    # the deterministic part of the metrics equals an identical in-process
    # run: the CLI adds nothing and loses nothing
    recorder = MetricsRecorder()
    result = run_program(
        "multiset-vector", num_threads=2, calls_per_thread=4, seed=5,
        obs=recorder,
    )
    result.vyrd.check_offline()
    snapshot = recorder.counters_snapshot()
    assert payload["metrics"]["counters"] == snapshot["counters"]
    assert payload["metrics"]["histograms"] == snapshot["histograms"]
    assert payload["records"] == len(result.log)


def test_profile_trace_out_is_loadable(tmp_path, capsys):
    from repro.obs import validate_trace_file

    trace_path = str(tmp_path / "prof.trace.json")
    code = main([
        "profile", "multiset-vector", "--threads", "2", "--calls", "4",
        "--trace-out", trace_path,
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert f"trace written to {trace_path}" in out
    assert validate_trace_file(trace_path) == []


def test_profile_online_buggy_exits_one(capsys):
    # any detecting seed works; search like the other buggy-run tests
    for seed in range(20):
        code = main([
            "profile", "multiset-vector", "--buggy", "--threads", "4",
            "--calls", "30", "--seed", str(seed), "--online",
        ])
        out = capsys.readouterr().out
        if code == 1:
            assert "VIOLATION" in out
            assert "verifier.consume" in out  # online spans attributed
            return
    pytest.fail("no seed triggered the bug under profile --online")


def test_run_metrics_flag_json_and_trace(tmp_path, capsys):
    import json

    from repro.obs import validate_trace_file

    trace_path = str(tmp_path / "run.trace.json")
    code = main([
        "run", "--program", "multiset-vector", "--threads", "2",
        "--calls", "4", "--metrics", "--trace-out", trace_path, "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["trace"] == trace_path
    assert payload["metrics"]["counters"]["log.actions"] == payload["records"]
    assert validate_trace_file(trace_path) == []


def test_run_metrics_flag_human_output(capsys):
    code = main([
        "run", "--program", "multiset-vector", "--threads", "2",
        "--calls", "4", "--metrics",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "run profile: wall-clock by phase" in out
    assert "kernel.steps" in out


def test_run_without_metrics_has_no_metrics_key(capsys):
    import json

    code = main([
        "run", "--program", "multiset-vector", "--threads", "2",
        "--calls", "4", "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    assert "metrics" not in payload


def test_explore_metrics_json_merges_worker_counters(capsys):
    import json

    code = main([
        "explore", "--program", "multiset-vector", "--seeds", "4",
        "--jobs", "2", "--threads", "2", "--calls", "3", "--metrics",
        "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    counters = payload["metrics"]["counters"]
    assert counters["kernel.steps"] > 0
    assert counters["span.explore.campaign"] == 1
    # per-run counters crossed the process boundary and merged
    assert counters["log.actions"] > 0


def test_faults_metrics_records_campaign_phases(tmp_path, capsys):
    import json

    from repro.obs import validate_trace_file

    trace_path = str(tmp_path / "faults.trace.json")
    code = main([
        "faults", "--program", "multiset-vector", "--seeds", "4",
        "--jobs", "2", "--threads", "2", "--calls", "2", "--metrics",
        "--trace-out", trace_path, "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 0
    walls = payload["metrics"]["phase_wall_ms"]
    for phase in ("campaign.baseline", "campaign.faulted",
                  "campaign.corruption", "campaign.latency"):
        assert phase in walls
    assert validate_trace_file(trace_path) == []


def _nested_ops_program():
    """A worker that abandons an op frame mid-operation, then starts a
    second public operation on the same thread: begin_op raises
    ``InstrumentationError`` inside the simulated thread."""
    from repro.harness.workload import PROGRAMS, Program

    real = PROGRAMS["multiset-vector"]

    def build(buggy, num_threads):
        built = real.build(buggy, num_threads)

        def make_worker(vds, rng, index, calls):
            def body(ctx):
                next(vds.insert(ctx, 1))       # open the frame, abandon it
                yield from vds.insert(ctx, 2)  # nested begin_op -> error

            return body

        built.make_worker = make_worker
        built.daemons = ()
        return built

    return Program(name="nested-ops", bug="abandoned op frame", build=build)


def test_run_json_surfaces_instrumentation_error(monkeypatch, capsys):
    import json

    from repro.harness.workload import PROGRAMS

    monkeypatch.setitem(PROGRAMS, "nested-ops", _nested_ops_program())
    code = main([
        "run", "--program", "nested-ops", "--threads", "1", "--calls", "1",
        "--json",
    ])
    payload = json.loads(capsys.readouterr().out)
    assert code == 2
    assert payload["ok"] is False
    # the SimThreadError wrapper is unwrapped to the typed cause...
    assert payload["error_type"] == "InstrumentationError"
    # ...which names the offending operation, thread and op id
    assert payload["method"] == "insert"
    assert isinstance(payload["tid"], int)
    assert isinstance(payload["op_id"], int)
    assert "insert" in payload["problem"]


def test_run_human_output_names_instrumentation_context(monkeypatch, capsys):
    from repro.harness.workload import PROGRAMS

    monkeypatch.setitem(PROGRAMS, "nested-ops", _nested_ops_program())
    code = main([
        "run", "--program", "nested-ops", "--threads", "1", "--calls", "1",
    ])
    err = capsys.readouterr().err
    assert code == 2
    assert "InstrumentationError" in err
    assert "method='insert'" in err and "tid=" in err and "op=" in err


# -- the serve and verify-chain subcommands ----------------------------------


def test_serve_verify_direct_round_trip(tmp_path, capsys):
    root = str(tmp_path / "store")
    code = main([
        "serve", "--program", "multiset-vector", "--sessions", "2",
        "--shards", "3", "--threads", "3", "--calls", "6",
        "--root", root, "--verify-direct",
    ])
    out = capsys.readouterr().out
    assert code == 0
    assert "signatures identical to single-process reruns" in out
    assert "[ok] run-00000" in out and "[ok] run-00001" in out

    assert main(["verify-chain", f"{root}/run-00000",
                 f"{root}/run-00001"]) == 0
    out = capsys.readouterr().out
    assert out.count("[ok]") == 6  # 2 sessions x 3 shards
    assert "head matches manifest" in out


def test_serve_json_reports_chain_and_signature(tmp_path, capsys):
    import json as json_module

    root = str(tmp_path / "store")
    code = main([
        "serve", "--program", "multiset-vector", "--sessions", "1",
        "--threads", "3", "--calls", "6", "--root", root,
        "--verify-direct", "--json",
    ])
    payload = json_module.loads(capsys.readouterr().out)
    assert code == 0
    assert payload["ok"] and payload["direct_signature_match"]
    assert payload["records"] > 0 and payload["records_per_sec"]
    session = payload["sessions"][0]
    assert session["signature"] and session["verdict_ok"] is True
    assert len(session["chain"]) == 2  # default --shards
    assert all(entry["ok"] for entry in session["chain"])


def test_verify_chain_pinpoints_flipped_byte(tmp_path, capsys):
    root = str(tmp_path / "store")
    main([
        "serve", "--program", "multiset-vector", "--sessions", "1",
        "--shards", "2", "--threads", "3", "--calls", "6", "--root", root,
    ])
    capsys.readouterr()
    victim = tmp_path / "store" / "run-00000" / "shard-0001.vlog"
    data = bytearray(victim.read_bytes())
    data[len(data) // 2] ^= 0x20
    victim.write_bytes(bytes(data))

    code = main(["verify-chain", f"{root}/run-00000"])
    out = capsys.readouterr().out
    assert code == 1
    assert "[TAMPERED]" in out and "chain breaks at byte" in out
    assert "[ok]" in out  # the untouched shard still verifies


def test_verify_chain_unchained_is_policy_not_tampering(tmp_path, capsys):
    log_path = str(tmp_path / "legacy.vyrdlog")
    main([
        "run", "--program", "multiset-vector", "--threads", "2",
        "--calls", "4", "--save", log_path,
    ])
    capsys.readouterr()
    assert main(["verify-chain", log_path]) == 0
    assert "unchained" in capsys.readouterr().out
    assert main(["verify-chain", "--require-chained", log_path]) == 1
    assert "UNCHAINED" in capsys.readouterr().out


def test_verify_chain_rejects_non_session_directory(tmp_path, capsys):
    assert main(["verify-chain", str(tmp_path)]) == 2
    assert "no MANIFEST.json" in capsys.readouterr().err
