"""Atomicity baseline: reduction patterns, race analysis, and the paper's
refinement-vs-atomicity comparison."""

from repro import Kernel, Vyrd
from repro.atomicity import check_atomicity
from repro.core.actions import (
    AcquireAction,
    CallAction,
    ReadAction,
    ReleaseAction,
    ReturnAction,
    WriteAction,
)
from repro.core.log import Log
from repro.multiset import MultisetSpec, VectorMultiset, multiset_view


def _execution(tid, op_id, method, events):
    """Wrap raw events in call/return records."""
    actions = [CallAction(tid, op_id, method, ())]
    actions.extend(events)
    actions.append(ReturnAction(tid, op_id, method, None))
    return actions


def test_single_critical_section_is_atomic():
    log = Log(_execution(0, 0, "m", [
        AcquireAction(0, 0, "l"),
        ReadAction(0, 0, "x"),
        WriteAction(0, 0, "x", 0, 1),
        ReleaseAction(0, 0, "l"),
    ]))
    outcome = check_atomicity(log)
    assert outcome.ok
    assert outcome.executions_checked == 1


def test_two_critical_sections_fail_reduction():
    """The section 8 ``W(p) W(q)`` pattern: two lock-protected writes in one
    method are not reducible even though each write is race-free."""
    def method_events(tid, op_id):
        return _execution(tid, op_id, "m", [
            AcquireAction(tid, op_id, "lp"),
            WriteAction(tid, op_id, "p", 0, tid),
            ReleaseAction(tid, op_id, "lp"),
            AcquireAction(tid, op_id, "lq"),
            WriteAction(tid, op_id, "q", 0, tid),
            ReleaseAction(tid, op_id, "lq"),
        ])

    log = Log(method_events(0, 0) + method_events(1, 1))
    outcome = check_atomicity(log)
    assert not outcome.ok
    assert outcome.flagged_methods == {"m"}
    assert not outcome.racy_locs  # everything is lock-protected
    assert "right-mover follows a left-mover" in outcome.violations[0].reason


def test_single_racy_access_is_the_allowed_non_mover():
    """One unprotected access inside the critical pattern is tolerated as
    the commit ((R|B)* N (L|B)*)."""
    log = Log(
        _execution(0, 0, "m", [
            AcquireAction(0, 0, "l"),
            WriteAction(0, 0, "racy", 0, 1),  # N, serves as the commit
            ReleaseAction(0, 0, "l"),
        ])
        + _execution(1, 1, "m", [WriteAction(1, 1, "racy", 1, 2)])
    )
    outcome = check_atomicity(log)
    assert "racy" in outcome.racy_locs
    assert outcome.ok


def test_two_racy_accesses_fail():
    log = Log(
        _execution(0, 0, "m", [
            WriteAction(0, 0, "racy", 0, 1),
            WriteAction(0, 0, "racy", 1, 2),
        ])
        + _execution(1, 1, "m", [WriteAction(1, 1, "racy", 2, 3)])
    )
    outcome = check_atomicity(log)
    assert not outcome.ok
    assert "single non-mover" in outcome.violations[0].reason


def test_racy_access_after_release_fails():
    log = Log(
        _execution(0, 0, "m", [
            AcquireAction(0, 0, "l"),
            ReleaseAction(0, 0, "l"),
            WriteAction(0, 0, "racy", 0, 1),  # N in the post phase
        ])
        + _execution(1, 1, "m", [WriteAction(1, 1, "racy", 1, 2)])
    )
    outcome = check_atomicity(log)
    assert not outcome.ok


def test_single_threaded_locations_are_not_racy():
    log = Log(
        _execution(0, 0, "m", [WriteAction(0, 0, "mine", 0, 1)])
        + _execution(0, 1, "m", [WriteAction(0, 1, "mine", 1, 2)])
    )
    outcome = check_atomicity(log)
    assert outcome.ok
    assert not outcome.racy_locs


def test_rw_read_mode_protects_reads_but_not_writes():
    def reader(tid, op_id):
        return _execution(tid, op_id, "r", [
            AcquireAction(tid, op_id, "rw", "r"),
            ReadAction(tid, op_id, "shared"),
            ReleaseAction(tid, op_id, "rw", "r"),
        ])

    # readers only: protected
    log = Log(reader(0, 0) + reader(1, 1))
    assert "shared" not in check_atomicity(log).racy_locs

    # a writer under read-mode (wrong!) makes it racy
    bad_writer = _execution(2, 2, "w", [
        AcquireAction(2, 2, "rw", "r"),
        WriteAction(2, 2, "shared", 0, 1),
        ReleaseAction(2, 2, "rw", "r"),
    ])
    log = Log(reader(0, 0) + bad_writer)
    assert "shared" in check_atomicity(log).racy_locs

    # a writer under write-mode keeps it protected
    good_writer = _execution(2, 2, "w", [
        AcquireAction(2, 2, "rw", "w"),
        WriteAction(2, 2, "shared", 0, 1),
        ReleaseAction(2, 2, "rw", "w"),
    ])
    log = Log(reader(0, 0) + good_writer)
    assert "shared" not in check_atomicity(log).racy_locs


def test_daemon_actions_outside_methods_are_ignored():
    log = Log([
        AcquireAction(9, None, "l"),
        WriteAction(9, None, "x", 0, 1),
        ReleaseAction(9, None, "l"),
    ])
    outcome = check_atomicity(log)
    assert outcome.ok
    assert outcome.executions_checked == 0


def test_stop_at_first():
    def bad(tid, op_id):
        return _execution(tid, op_id, "m", [
            AcquireAction(tid, op_id, "a"),
            ReleaseAction(tid, op_id, "a"),
            AcquireAction(tid, op_id, "b"),
            ReleaseAction(tid, op_id, "b"),
        ])

    log = Log(bad(0, 0) + bad(0, 1))
    assert len(check_atomicity(log).violations) == 2
    assert len(check_atomicity(log, stop_at_first=True).violations) == 1


# -- the paper's comparison, end to end ---------------------------------------


def test_insert_pair_refines_but_is_not_atomic():
    """Sections 2.1/8: InsertPair cannot be proven atomic by reduction, yet
    it refines the multiset spec."""
    vyrd = Vyrd(
        spec_factory=MultisetSpec, mode="view", impl_view_factory=multiset_view,
        log_locks=True, log_reads=True,
    )
    kernel = Kernel(seed=2, tracer=vyrd.tracer)
    multiset = VectorMultiset(size=8)
    vds = vyrd.wrap(multiset)

    def worker(ctx, x, y):
        yield from vds.insert_pair(ctx, x, y)

    kernel.spawn(worker, 1, 2)
    kernel.spawn(worker, 3, 4)
    kernel.run()

    refinement = vyrd.check_offline()
    assert refinement.ok, str(refinement.first_violation)

    atomicity = check_atomicity(vyrd.log)
    assert not atomicity.ok
    assert "insert_pair" in atomicity.flagged_methods


def test_lock_and_read_events_do_not_disturb_refinement_checking():
    vyrd = Vyrd(
        spec_factory=MultisetSpec, mode="view", impl_view_factory=multiset_view,
        log_locks=True, log_reads=True,
    )
    kernel = Kernel(seed=1, tracer=vyrd.tracer)
    multiset = VectorMultiset(size=8)
    vds = vyrd.wrap(multiset)

    def worker(ctx):
        yield from vds.insert(ctx, 7)
        yield from vds.lookup(ctx, 7)

    kernel.spawn(worker)
    kernel.run()
    outcome = vyrd.check_offline()
    assert outcome.ok
    from repro.core import validate_well_formed

    assert validate_well_formed(vyrd.log) == []
