"""Exception dispositions in the serve daemon's ingest/checker loops.

Pins the triage the handlers implement:

* a *transient* checker fault (any plain ``Exception``) degrades to
  record-only mode and is healed by catch-up verification at drain;
* a **fatal** fault (:data:`repro.serve.daemon.FATAL_CHECKER_EXCEPTIONS`:
  ``MergeError`` -- the canonical history itself is corrupt, re-feeding it
  cannot help -- and ``MemoryError``) is *never* retried: no degradation,
  no catch-up, the error surfaces on the result;
* ``KeyboardInterrupt`` / ``SystemExit`` are ``BaseException`` and must
  escape every handler -- a Ctrl-C cannot be absorbed into a "degraded"
  session;
* a failing health write never kills a session, but is counted and carries
  its last error on every later snapshot (no silent swallow).
"""

import pytest

from repro.serve import (
    MergeError,
    ObjectStoreStub,
    ServeSession,
    health_name,
    produce_session,
    session_checkers,
)
from repro.serve.daemon import FATAL_CHECKER_EXCEPTIONS

PROG = "multiset-vector"
WORKLOAD = dict(num_threads=2, calls_per_thread=6)


class _FeedRaises:
    """Checker stand-in whose first ``feed`` raises ``exc`` and which
    otherwise delegates to a real checker."""

    def __init__(self, inner, exc, fail_times=1):
        self._inner = inner
        self._exc = exc
        self._fail_times = fail_times
        self.feeds = 0

    def feed(self, records):
        self.feeds += 1
        if self.feeds <= self._fail_times:
            raise self._exc
        self._inner.feed(records)

    def finish(self):
        return self._inner.finish()

    def __getattr__(self, name):
        return getattr(self._inner, name)


def _session(store, exc, calls):
    """A produced session whose *first* checker instance raises ``exc`` on
    its first feed; rebuilt instances (catch-up) are healthy."""
    produce_session(
        store, "s", PROG, seed=3, num_shards=2, run_kwargs=WORKLOAD,
        throttle=False,
    )
    real_factory, _ = session_checkers(PROG)

    def factory():
        calls.append(1)
        checker = real_factory()
        if len(calls) == 1:
            return _FeedRaises(checker, exc)
        return checker

    return ServeSession(store, "s", 2, checker_factory=factory)


def test_fatal_exception_list_is_exactly_merge_and_memory():
    assert FATAL_CHECKER_EXCEPTIONS == (MergeError, MemoryError)


def test_transient_checker_fault_degrades_and_catch_up_heals():
    calls = []
    result = _session(
        ObjectStoreStub(), RuntimeError("transient checker fault"), calls
    ).run()
    assert result.ok, result.error
    assert result.degraded
    assert "checker crashed" in result.stats["degraded_reason"]
    assert len(calls) == 2                     # live + catch-up rebuild
    assert result.outcome is not None and result.outcome.ok
    assert result.error is None


@pytest.mark.parametrize("exc", [
    MergeError("canonical history corrupt"),
    MemoryError("checker OOM"),
])
def test_fatal_checker_fault_is_not_retried(exc):
    calls = []
    result = _session(ObjectStoreStub(), exc, calls).run()
    assert not result.ok
    assert not result.degraded                 # no shed, no catch-up ...
    assert result.stats["degraded_reason"] is None
    assert len(calls) == 1                     # ... and no rebuilt checker
    assert result.error is not None
    assert type(exc).__name__ in result.error


def test_keyboard_interrupt_escapes_the_checker_loop():
    """`except Exception` in ``_check`` must not absorb a Ctrl-C: driven
    synchronously, the interrupt propagates and nothing records it as a
    mere checker error or degradation."""
    store = ObjectStoreStub()
    produce_session(
        store, "s", PROG, seed=3, num_shards=1, run_kwargs=WORKLOAD,
        throttle=False,
    )
    real_factory, _ = session_checkers(PROG)
    session = ServeSession(store, "s", 1, checker_factory=real_factory)
    checker = _FeedRaises(real_factory(), KeyboardInterrupt())
    session.queue.put([object()])              # one batch to trip feed()
    with pytest.raises(KeyboardInterrupt):
        session._check(checker, None)
    assert session._checker_error is None
    assert not session._checker_shed


def test_system_exit_escapes_the_checker_loop():
    store = ObjectStoreStub()
    produce_session(
        store, "s", PROG, seed=3, num_shards=1, run_kwargs=WORKLOAD,
        throttle=False,
    )
    real_factory, _ = session_checkers(PROG)
    session = ServeSession(store, "s", 1, checker_factory=real_factory)
    checker = _FeedRaises(real_factory(), SystemExit(3))
    session.queue.put([object()])
    with pytest.raises(SystemExit):
        session._check(checker, None)
    assert session._checker_error is None


class _HealthRefusingStore(ObjectStoreStub):
    """Accepts everything except health documents."""

    def __init__(self):
        super().__init__()
        self.refused = 0

    def put_json(self, name, payload):
        if name.endswith("HEALTH.json"):
            self.refused += 1
            raise OSError("health volume full")
        super().put_json(name, payload)


def test_health_write_failure_is_counted_not_swallowed():
    store = _HealthRefusingStore()
    produce_session(
        store, "s", PROG, seed=3, num_shards=2, run_kwargs=WORKLOAD,
        throttle=False,
    )
    checker_factory, _ = session_checkers(PROG)
    result = ServeSession(store, "s", 2, checker_factory=checker_factory).run()
    assert result.ok, result.error             # best-effort: never fatal
    assert store.refused >= 1
    assert result.stats["health_errors"] == store.refused
    assert "health volume full" in result.stats["last_health_error"]
    # the returned (unwritten) snapshot itself carries the evidence
    assert result.health["health_errors"] >= 1
    assert "health volume full" in result.health["last_health_error"]
    assert store.get_json(health_name("s")) is None
