"""ServeSession / serve_campaign: the determinism, parity and failure gates.

The load-bearing property: a session streamed through N shards, merged and
checked by the daemon -- with or without backpressure engaged -- yields the
*byte-identical* canonical-order signature and the same verdict as the
single-process, single-log run of the same program and seed.
"""

import threading

import pytest

from repro.core.log import log_signature
from repro.harness.runner import run_program
from repro.serve import (
    LocalDirectoryStore,
    ObjectStoreStub,
    ServeSession,
    manifest_name,
    produce_session,
    serve_campaign,
    session_checkers,
    shard_name,
)

PROG = "multiset-vector"
WORKLOAD = dict(num_threads=3, calls_per_thread=10)


def direct_reference(seed, **kw):
    run = run_program(PROG, seed=seed, **{**WORKLOAD, **kw})
    return log_signature(list(run.log)), run


def serve_in_process(store, session_name, seed, num_shards=3, **session_kw):
    produce_session(
        store, session_name, PROG, seed=seed, num_shards=num_shards,
        run_kwargs=WORKLOAD, throttle=False,
    )
    checker_factory, _ = session_checkers(PROG)
    session = ServeSession(
        store, session_name, num_shards,
        checker_factory=checker_factory, **session_kw,
    )
    return session.run()


def test_sharded_serve_matches_single_process_run():
    ref_sig, ref = direct_reference(seed=3)
    result = serve_in_process(ObjectStoreStub(), "s", seed=3)
    assert result.ok and result.complete
    assert result.signature == ref_sig
    assert result.records == len(ref.log)
    assert result.outcome.ok == ref.vyrd.check_offline().ok
    assert result.chain_ok


def test_shard_count_does_not_change_signature():
    signatures = set()
    for num_shards in (1, 2, 4):
        result = serve_in_process(
            ObjectStoreStub(), "s", seed=5, num_shards=num_shards
        )
        assert result.ok
        signatures.add(result.signature)
    assert len(signatures) == 1


def test_live_backpressure_preserves_signature():
    """Producer and daemon run concurrently; a tiny queue plus a slow
    checker forces the pause flag up, throttling the producer mid-run --
    and nothing about the history may change."""
    # A workload long enough that the producer is still mid-run when the
    # checker backlog crosses the high watermark: the event-driven queue
    # drains the moment space appears, so the PAUSE window is only as wide
    # as the genuine backlog -- a tiny workload could finish before any of
    # its throttle checks lands inside it.
    workload = {**WORKLOAD, "calls_per_thread": 40}
    ref_sig, _ = direct_reference(seed=3, calls_per_thread=40)
    store = ObjectStoreStub()
    manifests = {}

    def produce():
        manifests["m"] = produce_session(
            store, "s", PROG, seed=3, num_shards=2, batch_records=4,
            throttle=True, throttle_every=8, run_kwargs=workload,
        )

    checker_factory, _ = session_checkers(PROG)
    session = ServeSession(
        store, "s", 2, checker_factory=checker_factory,
        queue_records=16, batch_records=4, checker_delay=0.02,
        timeout=60.0,
    )
    producer = threading.Thread(target=produce)
    producer.start()
    result = session.run()
    producer.join()
    assert result.ok, result.error
    assert result.signature == ref_sig
    assert result.stats["pause_raises"] >= 1
    assert manifests["m"]["throttle_waits"] >= 1


def test_checkpointed_session_resumes_with_identical_verdict():
    """A daemon that checkpointed, died and restarted must re-serve the
    session with the same signature and verdict, skipping already-verified
    records; a corrupted blob must fall back to record zero, still with the
    same verdict."""
    from repro.core import checkpoint_blob_name

    store = ObjectStoreStub()
    produce_session(
        store, "s", PROG, seed=3, num_shards=2, run_kwargs=WORKLOAD,
        throttle=False,
    )
    checker_factory, _ = session_checkers(PROG)

    def serve(**kw):
        return ServeSession(
            store, "s", 2, checker_factory=checker_factory, **kw
        ).run()

    first = serve(checkpoint_every=40)
    assert first.ok and first.stats["checkpoints_saved"] >= 1
    assert store.get_bytes(checkpoint_blob_name("s")) is not None

    resumed = serve(resume=True)
    assert resumed.ok
    assert resumed.stats["resumed_from_seq"] > 0
    assert resumed.signature == first.signature
    assert resumed.outcome.to_dict() == first.outcome.to_dict()

    damaged = bytearray(store.get_bytes(checkpoint_blob_name("s")))
    damaged[-1] ^= 0xFF
    store.put_bytes(checkpoint_blob_name("s"), bytes(damaged))
    fallback = serve(resume=True)
    assert fallback.ok
    assert fallback.stats["resumed_from_seq"] == 0
    assert fallback.stats["checkpoint_rejected"]
    assert fallback.outcome.to_dict() == first.outcome.to_dict()


def test_resume_without_checkpoint_blob_starts_at_zero():
    store = ObjectStoreStub()
    produce_session(
        store, "s", PROG, seed=4, num_shards=2, run_kwargs=WORKLOAD,
        throttle=False,
    )
    checker_factory, _ = session_checkers(PROG)
    result = ServeSession(
        store, "s", 2, checker_factory=checker_factory, resume=True
    ).run()
    assert result.ok
    assert result.stats["resumed_from_seq"] == 0
    assert result.stats["checkpoint_rejected"] is None


def test_campaign_forked_producers_match_reference(tmp_path):
    ref_sig, _ = direct_reference(seed=3)
    store = LocalDirectoryStore(str(tmp_path))
    report = serve_campaign(
        PROG, store, sessions=2, base_seed=3, num_shards=2, jobs=2,
        run_kwargs=WORKLOAD,
    )
    assert report.ok
    by_name = {s.session: s for s in report.sessions}
    assert by_name["run-00003"].signature == ref_sig


def test_campaign_detects_violation_like_direct_run(tmp_path):
    workload = dict(buggy=True, num_threads=4, calls_per_thread=12)
    direct = run_program(PROG, seed=7, **workload)
    direct_outcome = direct.vyrd.check_offline()
    store = LocalDirectoryStore(str(tmp_path))
    report = serve_campaign(
        PROG, store, sessions=1, base_seed=7, num_shards=2, jobs=1,
        run_kwargs=workload,
    )
    session = report.sessions[0]
    assert session.ok  # the *stream* is healthy...
    assert session.outcome.ok == direct_outcome.ok  # ...the program is not
    assert session.signature == log_signature(list(direct.log))


def test_serve_race_detection_matches_direct(tmp_path):
    workload = dict(buggy=True, num_threads=4, calls_per_thread=12)
    direct = run_program(PROG, seed=7, races="both", **workload)
    store = LocalDirectoryStore(str(tmp_path))
    report = serve_campaign(
        PROG, store, sessions=1, base_seed=7, num_shards=2, jobs=1,
        races="both", run_kwargs=workload,
    )
    session = report.sessions[0]
    assert session.race_outcome is not None
    assert (
        len(session.race_outcome.races) == len(direct.race_outcome.races)
    )


def test_tampered_shard_fails_the_session():
    store = ObjectStoreStub()
    produce_session(
        store, "s", PROG, seed=3, num_shards=2, run_kwargs=WORKLOAD,
        throttle=False,
    )
    name = shard_name("s", 0)
    body = bytearray(store.get_bytes(name))
    body[len(body) // 2] ^= 0x01
    store.put_bytes(name, bytes(body))
    checker_factory, _ = session_checkers(PROG)
    session = ServeSession(
        store, "s", 2, checker_factory=checker_factory, timeout=10.0
    )
    result = session.run()
    assert not result.ok
    assert result.error is not None and "shard 0" in result.error
    assert not result.complete


def test_clean_tail_truncation_is_detected():
    """Removing whole frames from a shard tail breaks no chain link; the
    daemon must still refuse: the merge stalls on the missing sequence
    numbers and the audit flags the manifest-head mismatch."""
    store = ObjectStoreStub()
    produce_session(
        store, "s", PROG, seed=3, num_shards=2, run_kwargs=WORKLOAD,
        throttle=False,
    )
    from repro.core import ChainDecoder, verify_chain
    from repro.serve import PROLOGUE_SIZE

    name = shard_name("s", 1)
    body = store.get_bytes(name)
    decoder = ChainDecoder(shard_id=1, base_offset=PROLOGUE_SIZE)
    ends = [end for _seq, _a, end in decoder.feed(body[PROLOGUE_SIZE:])]
    assert decoder.error is None and len(ends) > 1
    # cut at the frame boundary before the last record: chain-clean removal
    store.put_bytes(name, body[: ends[-2]])
    truncated = verify_chain(store.open_read(name))
    checker_factory, _ = session_checkers(PROG)
    session = ServeSession(
        store, "s", 2, checker_factory=checker_factory, timeout=1.0
    )
    result = session.run()
    assert truncated.ok  # chain alone cannot see it...
    assert not result.ok  # ...the daemon can
    assert "timeout" in (result.error or "")


def test_producer_death_without_manifest_is_an_error():
    store = ObjectStoreStub()
    produce_session(
        store, "s", PROG, seed=3, num_shards=2, run_kwargs=WORKLOAD,
        throttle=False,
    )
    store.delete(manifest_name("s"))

    class DeadProcess:
        @staticmethod
        def is_alive():
            return False

    checker_factory, _ = session_checkers(PROG)
    session = ServeSession(
        store, "s", 2, checker_factory=checker_factory, timeout=10.0
    )
    result = session.run(DeadProcess())
    assert not result.ok
    assert "without a manifest" in result.error
    assert result.records > 0  # the salvaged prefix was still merged/checked


def test_unknown_run_kwargs_rejected():
    with pytest.raises(ValueError):
        produce_session(
            ObjectStoreStub(), "s", PROG, run_kwargs={"bogus": 1}
        )


def test_producer_batch_larger_than_queue_bound_cannot_wedge():
    """A producer flush batch bigger than the whole queue bound must still
    stream through (clamped chunking + oversized-put admission), not block
    ingest until the session timeout."""
    ref_sig, _ = direct_reference(seed=2)
    store = ObjectStoreStub()
    produce_session(
        store, "s", PROG, seed=2, num_shards=2, batch_records=64,
        throttle=False, run_kwargs=WORKLOAD,
    )
    checker_factory, _ = session_checkers(PROG)
    session = ServeSession(
        store, "s", 2,
        checker_factory=checker_factory,
        queue_records=8,        # far below the producer's flush batch
        batch_records=256,      # would never fit un-clamped
        timeout=20.0,
    )
    result = session.run()
    assert result.ok and result.complete, result.error
    assert result.signature == ref_sig


def test_bounded_queue_admits_oversized_batch_when_empty():
    from repro.serve import BoundedQueue

    queue = BoundedQueue(4)
    queue.put(list(range(3)))
    done = threading.Event()

    def blocked_put():
        queue.put(list(range(9)))  # larger than the whole bound
        done.set()

    thread = threading.Thread(target=blocked_put)
    thread.start()
    assert not done.wait(0.2)      # backpressure while records are queued
    assert queue.get() == [0, 1, 2]
    assert done.wait(5.0)          # admitted once empty, not wedged
    thread.join()
    assert queue.get() == list(range(9))


def test_idle_deadline_tolerates_slow_steady_producer():
    """The session timeout is an *idle* deadline: a producer dribbling
    records in small increments, each gap well under the timeout, must not
    be killed even though the total run time far exceeds it."""
    import time

    from repro.core.log import ChainDecoder
    from repro.serve.shard import PROLOGUE_SIZE

    source = ObjectStoreStub()
    produce_session(
        source, "s", PROG, seed=3, num_shards=1, run_kwargs=WORKLOAD,
        throttle=False,
    )
    name = shard_name("s", 0)
    blob = source.get_bytes(name)
    decoder = ChainDecoder(shard_id=0, base_offset=PROLOGUE_SIZE)
    ends = [end for _seq, _action, end in decoder.feed(blob[PROLOGUE_SIZE:])]
    assert decoder.error is None and len(ends) >= 10
    manifest_blob = source.get_bytes(manifest_name("s"))

    timeout, step = 0.2, 0.05
    cuts = ends[2::3]              # reveal three frames per step
    if cuts[-1] != ends[-1]:
        cuts.append(ends[-1])
    assert len(cuts) * step > 2 * timeout  # total dribble outlasts timeout

    target = ObjectStoreStub()

    def feed():
        for cut in cuts:
            target.put_bytes(name, blob[:cut])
            time.sleep(step)
        target.put_bytes(manifest_name("s"), manifest_blob)

    checker_factory, _ = session_checkers(PROG)
    session = ServeSession(
        target, "s", 1, checker_factory=checker_factory, timeout=timeout
    )
    feeder = threading.Thread(target=feed)
    feeder.start()
    result = session.run()
    feeder.join()
    assert result.ok, result.error
    assert result.records == len(ends)


def test_truly_idle_session_still_times_out():
    """The idle deadline still fires when nothing arrives at all."""
    store = ObjectStoreStub()
    checker_factory, _ = session_checkers(PROG)
    session = ServeSession(
        store, "nothing", 1, checker_factory=checker_factory, timeout=0.2
    )
    result = session.run()
    assert not result.ok
    assert "idle timeout" in (result.error or "")


class _CrashOnce:
    """Delegating checker that raises after ``crash_at`` fed records."""

    def __init__(self, inner, crash_at):
        self.inner = inner
        self.crash_at = crash_at
        self.fed = 0

    def feed(self, records):
        self.fed += len(records)
        if self.fed >= self.crash_at:
            raise RuntimeError(f"injected checker crash at {self.fed}")
        return self.inner.feed(records)

    def __getattr__(self, attr):
        return getattr(self.inner, attr)


def test_checker_crash_degrades_and_catches_up_from_checkpoint():
    """A checker crash mid-session sheds to record-only mode; the drain
    catch-up restores a fresh checker from the last checkpoint (not from
    genesis) and the verdict matches the never-degraded run."""
    ref_sig, ref = direct_reference(seed=3)
    store = ObjectStoreStub()
    produce_session(
        store, "s", PROG, seed=3, num_shards=2, run_kwargs=WORKLOAD,
        throttle=False,
    )
    checker_factory, _ = session_checkers(PROG)
    armed = {"live": True}

    def factory():
        checker = checker_factory()
        if armed.pop("live", None):
            return _CrashOnce(checker, crash_at=12)
        return checker

    session = ServeSession(
        store, "s", 2, checker_factory=factory, timeout=20.0,
        batch_records=8, checkpoint_every=8,
    )
    result = session.run()
    assert result.ok, result.error
    assert result.degraded
    assert "injected checker crash" in result.stats["degraded_reason"]
    assert result.stats["catchup_from_seq"] > 0   # checkpoint, not genesis
    assert (
        result.stats["catchup_records"]
        == result.records - result.stats["catchup_from_seq"]
    )
    assert result.signature == ref_sig
    assert result.outcome.ok == ref.vyrd.check_offline().ok
    assert result.to_dict()["degraded"]


def test_checker_lag_sheds_to_record_only_and_catches_up():
    """A checker falling persistently behind the lag threshold is shed so
    ingest keeps draining; catch-up resumes the live checker from the last
    fully-verified record and the verdict is unchanged."""
    ref_sig, ref = direct_reference(seed=3)
    store = ObjectStoreStub()
    produce_session(
        store, "s", PROG, seed=3, num_shards=2, run_kwargs=WORKLOAD,
        throttle=False,
    )
    checker_factory, _ = session_checkers(PROG)
    session = ServeSession(
        store, "s", 2, checker_factory=checker_factory, timeout=20.0,
        batch_records=4, checker_delay=0.05,
        degrade_lag=8, degrade_after=0.05,
    )
    result = session.run()
    assert result.ok, result.error
    assert result.degraded
    assert "lag" in result.stats["degraded_reason"]
    assert result.stats["catchup_records"] > 0
    assert result.signature == ref_sig
    assert result.outcome.ok == ref.vyrd.check_offline().ok


def test_degraded_session_still_detects_violations():
    """Record-only shedding must not launder a real refinement violation:
    the offline catch-up re-checks everything the live checker missed."""
    ref_sig, ref = direct_reference(seed=3, buggy=True)
    store = ObjectStoreStub()
    produce_session(
        store, "s", PROG, seed=3, num_shards=2,
        run_kwargs={**WORKLOAD, "buggy": True}, throttle=False,
    )
    checker_factory, _ = session_checkers(PROG)
    armed = {"live": True}

    def factory():
        checker = checker_factory()
        if armed.pop("live", None):
            return _CrashOnce(checker, crash_at=5)
        return checker

    session = ServeSession(
        store, "s", 2, checker_factory=factory, timeout=20.0,
        batch_records=8,
    )
    result = session.run()
    assert result.degraded
    assert result.signature == ref_sig
    direct = ref.vyrd.check_offline()
    assert result.outcome.ok == direct.ok
    assert not result.outcome.ok  # the violation survived degradation


def test_queue_pressure_counters_surface_in_stats():
    store = ObjectStoreStub()
    result = serve_in_process(
        store, "s", seed=3, queue_records=8, batch_records=4,
        checker_delay=0.005, timeout=20.0,
    )
    assert result.ok
    assert result.stats["queue_max_depth"] >= 1
    assert result.stats["queue_put_waits"] >= 1


def test_health_blob_published_on_completion():
    store = ObjectStoreStub()
    result = serve_in_process(store, "s", seed=3, timeout=20.0)
    assert result.ok
    from repro.serve import health_name

    health = store.get_json(health_name("s"))
    assert health is not None
    assert health["state"] == "complete"
    assert health["session"] == "s"
    assert not health["degraded"]
    assert health["ingested"] == result.records
    assert result.health == health
