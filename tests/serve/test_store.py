"""The LogStore contract, exercised over both shipped implementations."""

import pytest

from repro.serve import LocalDirectoryStore, ObjectStoreStub


@pytest.fixture(params=["local", "object"])
def store(request, tmp_path):
    if request.param == "local":
        return LocalDirectoryStore(str(tmp_path / "spool"))
    return ObjectStoreStub()


def test_append_ranged_read_and_size(store):
    assert store.size("a/b.bin") is None
    with store.open_append("a/b.bin") as handle:
        handle.write(b"hello ")
        handle.flush()
        handle.write(b"world")
        handle.flush()
    assert store.size("a/b.bin") == 11
    assert store.read_range("a/b.bin", 0, 5) == b"hello"
    assert store.read_range("a/b.bin", 6) == b"world"
    assert store.get_bytes("a/b.bin") == b"hello world"


def test_append_accumulates_across_handles(store):
    with store.open_append("log") as handle:
        handle.write(b"one")
    with store.open_append("log") as handle:
        handle.write(b"two")
    assert store.get_bytes("log") == b"onetwo"


def test_tail_sees_flushed_bytes_while_writer_open(store):
    handle = store.open_append("grow")
    try:
        handle.write(b"abc")
        handle.flush()
        assert store.read_range("grow", 0, 3) == b"abc"
        handle.write(b"def")
        handle.flush()
        assert store.read_range("grow", 3) == b"def"
    finally:
        handle.close()


def test_list_and_delete(store):
    store.put_bytes("s1/x", b"1")
    store.put_bytes("s1/y", b"2")
    store.put_bytes("s2/z", b"3")
    assert store.list("s1/") == ["s1/x", "s1/y"]
    store.delete("s1/x")
    assert store.list("s1/") == ["s1/y"]
    store.delete("s1/missing")  # deleting a missing blob is a no-op


def test_json_round_trip(store):
    assert store.get_json("m.json") is None
    store.put_json("m.json", {"records": 7, "shards": [1, 2]})
    assert store.get_json("m.json") == {"records": 7, "shards": [1, 2]}


def test_flags(store):
    assert not store.has_flag("s/PAUSE")
    store.set_flag("s/PAUSE")
    assert store.has_flag("s/PAUSE")
    store.clear_flag("s/PAUSE")
    assert not store.has_flag("s/PAUSE")
    store.clear_flag("s/PAUSE")  # idempotent


def test_local_store_rejects_escaping_names(tmp_path):
    store = LocalDirectoryStore(str(tmp_path / "spool"))
    with pytest.raises(ValueError):
        store.open_read("../outside")


def test_local_store_path_object_store_none(tmp_path):
    local = LocalDirectoryStore(str(tmp_path / "spool"))
    local.put_bytes("x", b"")
    assert local.path("x").endswith("/x")
    assert ObjectStoreStub().path("x") is None
