"""Producer supervision: salvage, deterministic restart, bounded give-up.

The load-bearing property: a producer killed abruptly mid-session
(``os._exit`` after N acknowledged records) and restarted by the
supervisor yields byte-identical shards -- and therefore signature, chain
audit and verdict -- to an uninterrupted run of the same seed.
"""

import json
import os

import pytest

from repro.core import verify_chain
from repro.serve import (
    LocalDirectoryStore,
    ProducerSupervisor,
    ServeSession,
    SupervisionPolicy,
    produce_session,
    restarts_name,
    salvage_shard,
    session_checkers,
    shard_name,
)

PROG = "multiset-vector"
WORKLOAD = dict(num_threads=3, calls_per_thread=10)


def reference_serve(root, seed, **workload):
    store = LocalDirectoryStore(root)
    produce_session(
        store, "ref", PROG, seed=seed, num_shards=2,
        run_kwargs={**WORKLOAD, **workload}, throttle=False,
    )
    checker_factory, _ = session_checkers(PROG)
    return ServeSession(
        store, "ref", 2, checker_factory=checker_factory, timeout=30.0
    ).run()


def supervised_serve(root, seed, kill_after, *, max_restarts=2, **workload):
    store = LocalDirectoryStore(root)
    supervisor = ProducerSupervisor(
        store, "sup", PROG, seed, 2,
        run_kwargs={**WORKLOAD, **workload},
        policy=SupervisionPolicy(
            max_restarts=max_restarts, seed=seed, backoff_base=0.01,
        ),
        kill_after=kill_after,
    )
    checker_factory, _ = session_checkers(PROG)
    session = ServeSession(
        store, "sup", 2, checker_factory=checker_factory, timeout=30.0
    )
    supervisor.start()
    try:
        result = session.run(supervisor)
    finally:
        state = supervisor.finish()
    return result, state, store


def test_salvage_truncates_to_chain_valid_prefix(tmp_path):
    store = LocalDirectoryStore(str(tmp_path))
    produce_session(
        store, "s", PROG, seed=3, num_shards=2, run_kwargs=WORKLOAD,
        throttle=False,
    )
    name = shard_name("s", 0)
    intact = store.get_bytes(name)
    full = salvage_shard(store, "s", 0)
    assert full.dropped_bytes == 0 and full.records > 0
    # A torn half-frame at the tail (mid-flush death): salvage drops it.
    store.put_bytes(name, intact + intact[-7:])
    torn = salvage_shard(store, "s", 0)
    assert torn.records == full.records
    assert torn.dropped_bytes == 7
    assert store.get_bytes(name) == intact
    assert verify_chain(store.open_read(name)).ok
    assert torn.head_digest == full.head_digest


def test_salvage_of_missing_or_garbage_shard_is_empty(tmp_path):
    store = LocalDirectoryStore(str(tmp_path))
    assert salvage_shard(store, "s", 0).records == 0
    store.put_bytes(shard_name("s", 1), b"not a shard at all")
    report = salvage_shard(store, "s", 1)
    assert report.records == 0 and report.resume_entry() is None
    assert store.size(shard_name("s", 1)) is None  # deleted


@pytest.mark.parametrize("buggy", [False, True])
def test_mid_session_kill_restart_is_byte_invisible(tmp_path, buggy):
    reference = reference_serve(
        str(tmp_path / "ref"), seed=3, buggy=buggy
    )
    assert reference.ok
    kill_after = reference.records // 2
    result, state, store = supervised_serve(
        str(tmp_path / "sup"), 3, kill_after, buggy=buggy
    )
    assert result.ok, result.error
    assert state.restarts == 1 and not state.gave_up and state.succeeded
    assert result.restarts == 1
    assert result.signature == reference.signature
    assert result.outcome.to_dict() == reference.outcome.to_dict()
    assert result.chain_ok
    # The restart ledger is published and carries the salvage evidence.
    ledger = store.get_json(restarts_name("sup"))
    assert ledger["restarts"] == 1 and ledger["succeeded"]
    (event,) = [e for e in ledger["events"] if e["event"] == "restart"]
    assert event["exitcode"] == 21  # TeeLog's die_after exit code
    assert event["salvaged_records"] == kill_after
    assert event["backoff_seconds"] > 0


def test_kill_before_any_ack_restarts_from_genesis(tmp_path):
    reference = reference_serve(str(tmp_path / "ref"), seed=5)
    result, state, _store = supervised_serve(str(tmp_path / "sup"), 5, 1)
    assert result.ok and state.restarts == 1
    assert result.signature == reference.signature


def test_supervisor_gives_up_after_restart_budget(tmp_path):
    store = LocalDirectoryStore(str(tmp_path))
    supervisor = ProducerSupervisor(
        store, "sup", PROG, 3, 2, run_kwargs=WORKLOAD,
        policy=SupervisionPolicy(max_restarts=0, seed=3),
        kill_after=5,
    )
    checker_factory, _ = session_checkers(PROG)
    session = ServeSession(
        store, "sup", 2, checker_factory=checker_factory, timeout=30.0
    )
    supervisor.start()
    try:
        result = session.run(supervisor)
    finally:
        state = supervisor.finish()
    assert not result.ok
    assert state.gave_up and result.gave_up
    assert "gave up" in (result.error or "")
    ledger = store.get_json(restarts_name("sup"))
    assert ledger["gave_up"]
    assert any(e["event"] == "gave_up" for e in ledger["events"])


def test_supervisor_rejects_non_local_store():
    from repro.serve import ObjectStoreStub

    with pytest.raises(TypeError):
        ProducerSupervisor(ObjectStoreStub(), "s", PROG, 0, 2)


def test_campaign_supervised_kill_matches_reference(tmp_path):
    """The serve_campaign wiring: supervised producer-kill sessions report
    restarts on the result and still match the unsupervised signature."""
    from repro.serve import serve_campaign

    ref_store = LocalDirectoryStore(str(tmp_path / "ref"))
    ref = serve_campaign(
        PROG, ref_store, sessions=1, base_seed=3, jobs=1,
        run_kwargs=WORKLOAD, timeout=30.0,
    ).sessions[0]
    sup_store = LocalDirectoryStore(str(tmp_path / "sup"))
    sup = serve_campaign(
        PROG, sup_store, sessions=1, base_seed=3, jobs=1,
        run_kwargs=WORKLOAD, timeout=30.0,
        supervise=True, kill_producer_after=ref.records // 3,
        store_retries=2,
    ).sessions[0]
    assert sup.ok, sup.error
    assert sup.restarts == 1 and not sup.gave_up
    assert sup.signature == ref.signature
    assert sup.stats["supervisor"]["succeeded"]
    assert sup.to_dict()["restarts"] == 1
