"""Shard writers/tails and the deterministic sequence-number merge."""

import pytest

from repro.core import WriteAction, verify_chain
from repro.serve import (
    MergeError,
    ObjectStoreStub,
    ShardSet,
    ShardTail,
    StreamMerger,
    TeeLog,
    shard_name,
)


def actions(n, tids=(0, 1, 2)):
    return [
        WriteAction(tids[i % len(tids)], i, f"r{i % 4}", None, i)
        for i in range(n)
    ]


def spool(store, session, records, num_shards, **kw):
    shards = ShardSet(store, session, num_shards, **kw)
    for seq, action in enumerate(records):
        shards.append(seq, action)
    return shards.close()


def drain(store, session, num_shards):
    """Tail every shard to exhaustion and merge into canonical order."""
    tails = [ShardTail(store, session, i) for i in range(num_shards)]
    merger = StreamMerger(num_shards)
    out = []
    for _ in range(100):
        moved = False
        for tail in tails:
            items = tail.poll()
            if items:
                merger.push(tail.index, items)
                moved = True
            assert tail.error is None
        out.extend(merger.pop_ready())
        if not moved and merger.buffered == 0:
            break
    return out


def test_shards_round_trip_to_canonical_order():
    store = ObjectStoreStub()
    records = actions(200)
    manifest = spool(store, "s", records, 3)
    assert manifest["records"] == 200
    assert sum(e["records"] for e in manifest["shards"]) == 200
    merged = drain(store, "s", 3)
    assert merged == records


def test_single_shard_and_many_shards_merge_identically():
    records = actions(90)
    merges = []
    for num_shards in (1, 2, 5):
        store = ObjectStoreStub()
        spool(store, "s", records, num_shards)
        merges.append(drain(store, "s", num_shards))
    assert merges[0] == merges[1] == merges[2] == records


def test_tail_verifies_chain_incrementally():
    store = ObjectStoreStub()
    spool(store, "s", actions(60, tids=(0,)), 1)
    name = shard_name("s", 0)
    body = bytearray(store.get_bytes(name))
    body[len(body) // 2] ^= 0xFF
    store.put_bytes(name, bytes(body))
    tail = ShardTail(store, "s", 0)
    got = []
    for _ in range(10):
        got.extend(tail.poll())
        if tail.error is not None:
            break
    assert tail.error is not None
    assert 0 < len(got) < 60  # the clean prefix still came through


def test_tail_rejects_wrong_shard_id():
    store = ObjectStoreStub()
    spool(store, "s", actions(10, tids=(0,)), 1)
    # present shard 0's bytes under shard 1's name
    store.put_bytes(shard_name("s", 1), store.get_bytes(shard_name("s", 0)))
    tail = ShardTail(store, "s", 1)
    assert tail.poll() == []
    assert tail.error is not None and "shard id mismatch" in tail.error.cause


def test_manifest_heads_match_shard_files():
    store = ObjectStoreStub()
    manifest = spool(store, "s", actions(80), 2)
    for entry in manifest["shards"]:
        report = verify_chain(
            store.open_read(entry["name"]), expected_head=entry["head_digest"]
        )
        assert report.ok and report.head_match


def test_merger_flags_duplicate_sequence():
    merger = StreamMerger(2)
    a = actions(3)
    merger.push(0, [(0, a[0]), (1, a[1])])
    merger.push(1, [(1, a[2])])  # seq 1 claimed by both shards
    with pytest.raises(MergeError):
        merger.pop_ready()


def test_merger_flags_regressed_sequence_within_shard():
    merger = StreamMerger(1)
    a = actions(2)
    with pytest.raises(MergeError):
        merger.push(0, [(1, a[0]), (0, a[1])])


def test_merger_waits_on_gap():
    merger = StreamMerger(2)
    a = actions(4)
    merger.push(0, [(0, a[0]), (3, a[3])])
    assert merger.pop_ready() == [a[0]]
    assert merger.gap() == 1
    merger.push(1, [(1, a[1]), (2, a[2])])
    assert merger.pop_ready() == [a[1], a[2], a[3]]
    assert merger.gap() is None


def test_teelog_appends_to_log_and_shards():
    store = ObjectStoreStub()
    shards = ShardSet(store, "s", 2)
    tee = TeeLog(shards)
    records = actions(30)
    for action in records:
        tee.append(action)
    shards.close()
    assert list(tee) == records
    assert drain(store, "s", 2) == records
