"""RetryingStore: bounded retries, typed exhaustion, pass-through answers."""

import pytest

from repro.serve import (
    ObjectStoreStub,
    RetryingStore,
    StoreUnavailable,
    TransientStoreError,
)


class ScriptedFlaky(ObjectStoreStub):
    """An in-memory store whose next N ops raise a chosen exception."""

    def __init__(self):
        super().__init__()
        self.fail_next = 0
        self.exc = TransientStoreError
        self.calls = 0

    def _trip(self):
        self.calls += 1
        if self.fail_next > 0:
            self.fail_next -= 1
            raise self.exc("scripted failure")

    def size(self, name):
        self._trip()
        return super().size(name)

    def put_bytes(self, name, data):
        self._trip()
        return super().put_bytes(name, data)

    def read_range(self, name, start, end=None):
        self._trip()
        return super().read_range(name, start, end)


def retrying(inner, **kw):
    kw.setdefault("retries", 3)
    kw.setdefault("backoff_base", 0.001)
    kw.setdefault("backoff_max", 0.005)
    return RetryingStore(inner, **kw)


def test_transient_failures_absorbed_within_budget():
    inner = ScriptedFlaky()
    store = retrying(inner)
    inner.fail_next = 2
    store.put_bytes("a", b"payload")
    assert store.read_range("a", 0, None) == b"payload"
    assert store.stats["retries"] == 2
    assert store.stats["giveups"] == 0


def test_exhaustion_raises_typed_store_unavailable():
    inner = ScriptedFlaky()
    store = retrying(inner, retries=2)
    inner.put_bytes("a", b"x")  # bypass the wrapper for setup
    inner.fail_next = 10
    with pytest.raises(StoreUnavailable) as info:
        store.size("a")
    err = info.value
    assert err.op == "size" and err.blob == "a"
    assert err.attempts == 3  # first try + 2 retries
    assert isinstance(err.__cause__, TransientStoreError)
    assert store.stats["giveups"] == 1


def test_never_leaks_bare_backend_exception_on_retryable_kinds():
    inner = ScriptedFlaky()
    inner.exc = ConnectionError
    inner.fail_next = 99
    store = retrying(inner, retries=1)
    with pytest.raises(StoreUnavailable):
        store.put_bytes("a", b"x")


def test_missing_blob_answers_pass_through_unretried():
    """FileNotFoundError/KeyError are answers tailing readers poll on --
    they must surface immediately, not burn the retry budget."""

    class MissingBlobStore(ObjectStoreStub):
        def __init__(self):
            super().__init__()
            self.calls = 0

        def read_range(self, name, start, end=None):
            self.calls += 1
            raise FileNotFoundError(name)

    inner = MissingBlobStore()
    store = retrying(inner)
    with pytest.raises(FileNotFoundError):
        store.read_range("nope", 0, None)
    assert inner.calls == 1
    assert store.stats["retries"] == 0


def test_op_deadline_bounds_the_retry_loop():
    inner = ScriptedFlaky()
    inner.fail_next = 99
    store = retrying(
        inner, retries=50, op_timeout=0.02,
        backoff_base=0.01, backoff_max=0.01,
    )
    with pytest.raises(StoreUnavailable):
        store.size("a")
    assert inner.calls < 10  # the deadline, not the retry count, stopped it


def test_wrapped_store_serves_sessions_identically():
    """A RetryingStore over a clean store is observationally invisible to
    the daemon: same signature, same verdict."""
    from repro.serve import ServeSession, produce_session, session_checkers

    inner = ObjectStoreStub()
    produce_session(
        inner, "s", "multiset-vector", seed=3, num_shards=2,
        run_kwargs=dict(num_threads=3, calls_per_thread=10), throttle=False,
    )
    checker_factory, _ = session_checkers("multiset-vector")

    def serve(store):
        return ServeSession(
            store, "s", 2, checker_factory=checker_factory, timeout=20.0
        ).run()

    bare = serve(inner)
    wrapped = serve(retrying(inner))
    assert bare.ok and wrapped.ok
    assert wrapped.signature == bare.signature
    assert wrapped.outcome.to_dict() == bare.outcome.to_dict()
    assert "store" in wrapped.stats and "store" not in bare.stats
