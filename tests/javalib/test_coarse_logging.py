"""Coarse-grained logging (section 6.2) on the StringBuffer system."""

import random

import pytest

from repro import Kernel, Vyrd
from repro.core import WriteAction
from repro.javalib import (
    StringBufferSpec,
    StringBufferSystem,
    stringbuffer_replay_registry,
    stringbuffer_view,
)


def _run(seed: int, coarse: bool):
    vyrd = Vyrd(
        spec_factory=lambda: StringBufferSpec(capacity=64),
        mode="view",
        impl_view_factory=stringbuffer_view,
        replay_registry=stringbuffer_replay_registry() if coarse else None,
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    system = StringBufferSystem(capacity=64, coarse_logging=coarse)
    vds = vyrd.wrap(system)

    def appender(ctx):
        for _ in range(5):
            yield from vds.append_buffer(ctx, "dst", "src")

    def churner(ctx, rng):
        for _ in range(5):
            yield from vds.append_str(ctx, "src", "abcd")
            yield from vds.delete(ctx, "src", 0, rng.randrange(1, 4))

    def auditor(ctx):
        for _ in range(5):
            yield from vds.to_string(ctx, "dst")

    kernel.spawn(appender)
    kernel.spawn(churner, random.Random(seed))
    kernel.spawn(auditor)
    kernel.run()
    return system, vyrd


def test_coarse_logs_replay_actions_instead_of_writes():
    system, vyrd = _run(0, coarse=True)
    kinds = {type(a).__name__ for a in vyrd.log}
    assert "ReplayAction" in kinds
    assert not any(isinstance(a, WriteAction) for a in vyrd.log)


def test_coarse_log_is_much_smaller():
    _, fine = _run(3, coarse=False)
    _, coarse = _run(3, coarse=True)
    assert len(coarse.log) < len(fine.log) / 1.5


def test_coarse_checking_passes_both_modes():
    """Coarse mode performs fewer scheduling points (grouped updates), so the
    interleavings differ from fine mode -- but both must verify clean."""
    for seed in range(6):
        _, fine = _run(seed, coarse=False)
        _, coarse = _run(seed, coarse=True)
        fine_outcome = fine.check_offline()
        coarse_outcome = coarse.check_offline()
        assert fine_outcome.ok, (seed, str(fine_outcome.first_violation))
        assert coarse_outcome.ok, (seed, str(coarse_outcome.first_violation))
        assert fine_outcome.methods_checked == coarse_outcome.methods_checked


def test_checking_coarse_log_without_registry_fails_loudly():
    _, coarse = _run(1, coarse=True)
    session = Vyrd(
        spec_factory=lambda: StringBufferSpec(capacity=64),
        mode="view",
        impl_view_factory=stringbuffer_view,
        # no replay_registry
    )
    checker = session.new_checker()
    with pytest.raises(KeyError):
        checker.feed(coarse.log)


def test_replay_routine_reconstructs_same_view_locations():
    registry = stringbuffer_replay_registry()
    state = {}
    registry["sb.set"](state, ("dst", "hi"))
    assert state == {"sb.dst.data[0]": "h", "sb.dst.data[1]": "i", "sb.dst.len": 2}


def test_buggy_plus_coarse_rejected():
    with pytest.raises(ValueError):
        StringBufferSystem(buggy_append=True, coarse_logging=True)
