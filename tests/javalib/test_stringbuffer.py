"""StringBuffer port: semantics and the unprotected-append bug (Table 1 row 4)."""

from repro import Kernel, ViolationKind, Vyrd
from repro.concurrency import RoundRobinScheduler
from repro.javalib import StringBufferSpec, StringBufferSystem, stringbuffer_view
from tests.conftest import find_detecting_seed


def _sequential(ds, script):
    kernel = Kernel(scheduler=RoundRobinScheduler())
    results = []

    def body(ctx):
        yield from script(ctx, results)

    kernel.spawn(body)
    kernel.run()
    return results


def test_append_str_and_to_string():
    ds = StringBufferSystem(capacity=8)

    def script(ctx, results):
        results.append((yield from ds.append_str(ctx, "dst", "abc")))
        results.append((yield from ds.to_string(ctx, "dst")))
        results.append((yield from ds.length_of(ctx, "dst")))

    assert _sequential(ds, script) == [True, "abc", 3]
    assert ds.text("dst") == "abc"


def test_append_str_respects_capacity():
    ds = StringBufferSystem(capacity=4)

    def script(ctx, results):
        results.append((yield from ds.append_str(ctx, "dst", "abc")))
        results.append((yield from ds.append_str(ctx, "dst", "de")))

    assert _sequential(ds, script) == [True, False]
    assert ds.text("dst") == "abc"


def test_append_buffer_copies_source():
    ds = StringBufferSystem()

    def script(ctx, results):
        yield from ds.append_str(ctx, "src", "hello")
        yield from ds.append_str(ctx, "dst", ">>")
        results.append((yield from ds.append_buffer(ctx, "dst", "src")))
        results.append((yield from ds.to_string(ctx, "dst")))

    assert _sequential(ds, script) == [True, ">>hello"]


def test_delete_shifts_and_leaves_stale_tail():
    ds = StringBufferSystem()

    def script(ctx, results):
        yield from ds.append_str(ctx, "src", "abcdef")
        results.append((yield from ds.delete(ctx, "src", 1, 3)))
        results.append((yield from ds.to_string(ctx, "src")))

    assert _sequential(ds, script) == [True, "adef"]
    # Java-style: characters beyond the new length are stale, not cleared
    assert ds.buffers["src"].data[4].peek() == "e"


def test_delete_invalid_range_fails():
    ds = StringBufferSystem()

    def script(ctx, results):
        yield from ds.append_str(ctx, "src", "ab")
        results.append((yield from ds.delete(ctx, "src", 3, 5)))
        results.append((yield from ds.delete(ctx, "src", 2, 1)))

    assert _sequential(ds, script) == [False, False]


def _buggy_run(seed):
    vyrd = Vyrd(
        spec_factory=lambda: StringBufferSpec(capacity=64),
        mode="view",
        impl_view_factory=stringbuffer_view,
        log_level="view",
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    ds = StringBufferSystem(capacity=64, buggy_append=True)
    vds = vyrd.wrap(ds)

    def appender(ctx):
        for _ in range(6):
            yield from vds.append_buffer(ctx, "dst", "src")

    def shrinker(ctx):
        for _ in range(6):
            yield from vds.append_str(ctx, "src", "abcd")
            yield from vds.delete(ctx, "src", 0, 3)

    def observer_thread(ctx):
        for _ in range(10):
            yield from vds.to_string(ctx, "dst")

    kernel.spawn(appender)
    kernel.spawn(shrinker)
    kernel.spawn(observer_thread)
    kernel.run()
    return vyrd


def test_buggy_append_detected_by_view_refinement():
    seed, outcome = find_detecting_seed(lambda s: _buggy_run(s).check_offline())
    assert outcome.first_violation.kind is ViolationKind.VIEW


def test_state_corrupting_bug_view_no_later_than_io():
    compared = []
    for seed in range(40):
        vyrd = _buggy_run(seed)
        io_outcome = vyrd.check_offline_with_mode("io")
        view_outcome = vyrd.check_offline_with_mode("view")
        if not view_outcome.ok and not io_outcome.ok:
            compared.append(
                (view_outcome.detection_method_count, io_outcome.detection_method_count)
            )
    assert compared
    assert all(view_at <= io_at for view_at, io_at in compared)


def test_correct_append_clean_under_same_contention():
    for seed in range(10):
        vyrd = Vyrd(spec_factory=lambda: StringBufferSpec(capacity=64), mode="view",
                    impl_view_factory=stringbuffer_view)
        kernel = Kernel(seed=seed, tracer=vyrd.tracer)
        ds = StringBufferSystem(capacity=64)
        vds = vyrd.wrap(ds)

        def appender(ctx):
            for _ in range(6):
                yield from vds.append_buffer(ctx, "dst", "src")

        def shrinker(ctx):
            for _ in range(6):
                yield from vds.append_str(ctx, "src", "abcd")
                yield from vds.delete(ctx, "src", 0, 3)

        kernel.spawn(appender)
        kernel.spawn(shrinker)
        kernel.run()
        outcome = vyrd.check_offline()
        assert outcome.ok, (seed, str(outcome.first_violation))
