"""java.util.Vector port: semantics and the lastIndexOf bug (Table 1 row 3)."""

from repro import Kernel, ViolationKind, Vyrd
from repro.concurrency import RoundRobinScheduler
from repro.javalib import IOOBE, JavaVector, VectorSpec, vector_view
from tests.conftest import find_detecting_seed


def _sequential(ds, script):
    kernel = Kernel(scheduler=RoundRobinScheduler())
    results = []

    def body(ctx):
        yield from script(ctx, results)

    kernel.spawn(body)
    kernel.run()
    return results


def test_add_size_element_at():
    ds = JavaVector(capacity=4)

    def script(ctx, results):
        results.append((yield from ds.add_element(ctx, "a")))
        results.append((yield from ds.add_element(ctx, "b")))
        results.append((yield from ds.size(ctx)))
        results.append((yield from ds.element_at(ctx, 1)))
        results.append((yield from ds.element_at(ctx, 5)))

    assert _sequential(ds, script) == [True, True, 2, "b", IOOBE]
    assert ds.contents() == ("a", "b")


def test_add_fails_when_full():
    ds = JavaVector(capacity=1)

    def script(ctx, results):
        results.append((yield from ds.add_element(ctx, 1)))
        results.append((yield from ds.add_element(ctx, 2)))

    assert _sequential(ds, script) == [True, False]


def test_remove_all_clears():
    ds = JavaVector()

    def script(ctx, results):
        yield from ds.add_element(ctx, 1)
        yield from ds.add_element(ctx, 2)
        results.append((yield from ds.remove_all_elements(ctx)))
        results.append((yield from ds.size(ctx)))

    assert _sequential(ds, script) == [None, 0]
    assert ds.contents() == ()


def test_last_index_of_finds_last_occurrence():
    ds = JavaVector()

    def script(ctx, results):
        for value in ("x", "y", "x"):
            yield from ds.add_element(ctx, value)
        results.append((yield from ds.last_index_of(ctx, "x")))
        results.append((yield from ds.last_index_of(ctx, "z")))

    assert _sequential(ds, script) == [2, -1]


def test_empty_vector_last_index_of_is_minus_one_even_buggy():
    ds = JavaVector(buggy_last_index_of=True)

    def script(ctx, results):
        results.append((yield from ds.last_index_of(ctx, "x")))

    assert _sequential(ds, script) == [-1]


def _buggy_run(seed, mode):
    vyrd = Vyrd(
        spec_factory=lambda: VectorSpec(capacity=16),
        mode=mode,
        impl_view_factory=vector_view if mode == "view" else None,
        log_level="view",
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    ds = JavaVector(capacity=16, buggy_last_index_of=True)
    vds = vyrd.wrap(ds)

    def adder(ctx):
        for _ in range(6):
            yield from vds.add_element(ctx, "v")
            yield from vds.remove_all_elements(ctx)

    def reader(ctx):
        for _ in range(8):
            yield from vds.last_index_of(ctx, "v")

    kernel.spawn(adder)
    kernel.spawn(reader)
    kernel.run()
    return vyrd


def test_last_index_of_bug_detected_as_ioobe():
    seed, outcome = find_detecting_seed(
        lambda s: _buggy_run(s, "io").check_offline()
    )
    violation = outcome.first_violation
    assert violation.kind is ViolationKind.OBSERVER
    assert violation.signature.result == IOOBE


def test_observer_bug_gives_view_no_advantage():
    """Table 1's footnote: the Vector bug is in an observer and does not
    corrupt state, so view refinement detects it no earlier than I/O."""
    compared = []
    for seed in range(60):
        vyrd = _buggy_run(seed, "view")
        io_outcome = vyrd.check_offline_with_mode("io")
        view_outcome = vyrd.check_offline_with_mode("view")
        assert io_outcome.ok == view_outcome.ok
        if not io_outcome.ok:
            compared.append(
                (io_outcome.detection_method_count, view_outcome.detection_method_count)
            )
    assert compared, "bug never triggered"
    assert all(io_at == view_at for io_at, view_at in compared)


def test_correct_vector_clean_under_contention():
    for seed in range(8):
        vyrd = Vyrd(spec_factory=lambda: VectorSpec(capacity=16), mode="view",
                    impl_view_factory=vector_view)
        kernel = Kernel(seed=seed, tracer=vyrd.tracer)
        ds = JavaVector(capacity=16)
        vds = vyrd.wrap(ds)

        def adder(ctx):
            for _ in range(6):
                yield from vds.add_element(ctx, "v")
                yield from vds.remove_all_elements(ctx)

        def reader(ctx):
            for _ in range(8):
                yield from vds.last_index_of(ctx, "v")
                yield from vds.element_at(ctx, 0)

        kernel.spawn(adder)
        kernel.spawn(reader)
        kernel.run()
        outcome = vyrd.check_offline()
        assert outcome.ok, (seed, str(outcome.first_violation))
