"""Bounded queue: blocking semantics, FIFO order, duplicate-delivery bug."""

import random

from repro import Kernel, ViolationKind, Vyrd
from repro.bqueue import EMPTY, BoundedQueue, QueueSpec, queue_view
from repro.concurrency import RoundRobinScheduler
from tests.conftest import find_detecting_seed


def _sequential(queue, script):
    kernel = Kernel(scheduler=RoundRobinScheduler())
    results = []

    def body(ctx):
        yield from script(ctx, results)

    kernel.spawn(body)
    kernel.run()
    return results


def test_fifo_order_sequential():
    queue = BoundedQueue(capacity=3)

    def script(ctx, results):
        for i in range(3):
            yield from queue.enqueue(ctx, i)
        for _ in range(3):
            results.append((yield from queue.dequeue(ctx)))

    assert _sequential(queue, script) == [0, 1, 2]
    assert queue.items() == ()


def test_try_variants_report_full_and_empty():
    queue = BoundedQueue(capacity=1)

    def script(ctx, results):
        results.append((yield from queue.try_dequeue(ctx)))
        results.append((yield from queue.try_enqueue(ctx, "a")))
        results.append((yield from queue.try_enqueue(ctx, "b")))
        results.append((yield from queue.size_of(ctx)))
        results.append((yield from queue.try_dequeue(ctx)))

    assert _sequential(queue, script) == [EMPTY, True, False, 1, "a"]


def test_ring_buffer_wraparound():
    queue = BoundedQueue(capacity=2)

    def script(ctx, results):
        for value in "abcde":
            yield from queue.enqueue(ctx, value)
            results.append((yield from queue.dequeue(ctx)))

    assert _sequential(queue, script) == list("abcde")


def test_blocking_enqueue_waits_for_space():
    queue = BoundedQueue(capacity=1)
    order = []

    def producer(ctx):
        yield from queue.enqueue(ctx, 1)
        order.append("p1")
        yield from queue.enqueue(ctx, 2)  # must block until the dequeue
        order.append("p2")

    def consumer(ctx):
        for _ in range(4):
            yield ctx.checkpoint()
        order.append("c")
        yield from queue.dequeue(ctx)

    kernel = Kernel(scheduler=RoundRobinScheduler())
    kernel.spawn(producer)
    kernel.spawn(consumer)
    kernel.run()
    assert order.index("c") < order.index("p2")


def test_blocking_dequeue_waits_for_item():
    queue = BoundedQueue(capacity=2)
    got = []

    def consumer(ctx):
        got.append((yield from queue.dequeue(ctx)))

    def producer(ctx):
        for _ in range(5):
            yield ctx.checkpoint()
        yield from queue.enqueue(ctx, "late")

    kernel = Kernel(scheduler=RoundRobinScheduler())
    kernel.spawn(consumer)
    kernel.spawn(producer)
    kernel.run()
    assert got == ["late"]


def _concurrent_blocking_run(seed, buggy=False, producers=2, consumers=2, per=8):
    """Balanced producers/consumers over the blocking API."""
    vyrd = Vyrd(spec_factory=lambda: QueueSpec(capacity=3), mode="view",
                impl_view_factory=lambda: queue_view(3))
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    queue = BoundedQueue(capacity=3, buggy_nonatomic_dequeue=buggy)
    vq = vyrd.wrap(queue)
    delivered = []

    def producer(ctx, index):
        for i in range(per):
            yield from vq.enqueue(ctx, (index, i))

    def consumer(ctx):
        for _ in range(per * producers // consumers):
            item = yield from vq.dequeue(ctx)
            delivered.append(item)

    for i in range(producers):
        kernel.spawn(producer, i)
    for _ in range(consumers):
        kernel.spawn(consumer)
    kernel.run()
    return vyrd.check_offline(), delivered


def test_concurrent_blocking_correct_is_clean_and_exactly_once():
    for seed in range(10):
        outcome, delivered = _concurrent_blocking_run(seed)
        assert outcome.ok, (seed, str(outcome.first_violation))
        assert len(delivered) == len(set(delivered)) == 16


def test_per_producer_order_preserved():
    for seed in range(5):
        outcome, delivered = _concurrent_blocking_run(seed)
        assert outcome.ok
        for producer_index in (0, 1):
            own = [i for p, i in delivered if p == producer_index]
            assert own == sorted(own)


def _try_run(seed, buggy):
    vyrd = Vyrd(spec_factory=lambda: QueueSpec(capacity=3), mode="view",
                impl_view_factory=lambda: queue_view(3))
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    queue = BoundedQueue(capacity=3, buggy_nonatomic_dequeue=buggy)
    vq = vyrd.wrap(queue)

    def worker(ctx, rng, index):
        for i in range(15):
            if rng.random() < 0.5:
                yield from vq.try_enqueue(ctx, (index, i))
            else:
                yield from vq.try_dequeue(ctx)

    for i in range(4):
        kernel.spawn(worker, random.Random(seed * 11 + i), i)
    kernel.run()
    return vyrd.check_offline()


def test_try_workload_correct_clean():
    for seed in range(10):
        outcome = _try_run(seed, buggy=False)
        assert outcome.ok, (seed, str(outcome.first_violation))


def test_duplicate_delivery_bug_detected():
    seed, outcome = find_detecting_seed(lambda s: _try_run(s, True))
    assert outcome.first_violation.kind in (ViolationKind.IO, ViolationKind.VIEW)


def test_bug_manifests_as_duplicate_or_lost_item():
    """Find an I/O violation and confirm the message names the FIFO breach."""
    for seed in range(80):
        outcome = _try_run(seed, buggy=True)
        if not outcome.ok and outcome.first_violation.kind is ViolationKind.IO:
            message = outcome.first_violation.message
            assert "front" in message or "empty" in message
            return
    # view-only detections are acceptable, but we expect some I/O hits
    import pytest

    pytest.skip("no I/O-mode manifestation in 80 seeds (view caught it first)")
