"""Scan-like file system: semantics, flush daemon, torn-write bug."""

import random

from repro import Kernel, ViolationKind, Vyrd
from repro.concurrency import RoundRobinScheduler
from repro.scanfs import BlockCache, BlockDevice, FsSpec, ScanFS, scanfs_view
from tests.conftest import find_detecting_seed


def _setup(buggy=False, blocks=8):
    device = BlockDevice(num_blocks=blocks, block_size=8)
    cache = BlockCache(device, buggy_dirty_update=buggy)
    return device, cache, ScanFS(cache)


def _sequential(fs, script):
    kernel = Kernel(scheduler=RoundRobinScheduler())
    results = []

    def body(ctx):
        yield from script(ctx, results)

    kernel.spawn(body)
    kernel.run()
    return results


def test_create_write_read_delete_cycle():
    _, _, fs = _setup()

    def script(ctx, results):
        results.append((yield from fs.create(ctx, "a")))
        results.append((yield from fs.write_file(ctx, "a", (1, 2, 3))))
        results.append((yield from fs.read_file(ctx, "a")))
        results.append((yield from fs.delete(ctx, "a")))
        results.append((yield from fs.read_file(ctx, "a")))

    assert _sequential(fs, script) == [True, True, (1, 2, 3), True, None]


def test_create_existing_fails():
    _, _, fs = _setup()

    def script(ctx, results):
        yield from fs.create(ctx, "a")
        results.append((yield from fs.create(ctx, "a")))

    assert _sequential(fs, script) == [False]


def test_create_fails_when_disk_full():
    _, _, fs = _setup(blocks=2)

    def script(ctx, results):
        results.append((yield from fs.create(ctx, "a")))
        results.append((yield from fs.create(ctx, "b")))
        results.append((yield from fs.create(ctx, "c")))

    assert _sequential(fs, script) == [True, True, False]


def test_write_absent_file_fails():
    _, _, fs = _setup()

    def script(ctx, results):
        results.append((yield from fs.write_file(ctx, "ghost", (1,))))

    assert _sequential(fs, script) == [False]


def test_oversized_write_fails():
    _, _, fs = _setup()

    def script(ctx, results):
        yield from fs.create(ctx, "a")
        results.append((yield from fs.write_file(ctx, "a", tuple(range(20)))))

    assert _sequential(fs, script) == [False]


def test_block_reuse_after_delete():
    _, _, fs = _setup(blocks=1)

    def script(ctx, results):
        yield from fs.create(ctx, "a")
        yield from fs.write_file(ctx, "a", (7,))
        yield from fs.delete(ctx, "a")
        results.append((yield from fs.create(ctx, "b")))
        results.append((yield from fs.read_file(ctx, "b")))

    assert _sequential(fs, script) == [True, ()]


def test_flush_and_evict_survive_content():
    device, cache, fs = _setup()

    def script(ctx, results):
        yield from fs.create(ctx, "a")
        yield from fs.write_file(ctx, "a", (4, 5))
        yield from cache.flush_pass(ctx)
        yield from cache.evict_clean(ctx)
        results.append((yield from fs.read_file(ctx, "a")))

    assert _sequential(fs, script) == [(4, 5)]
    assert fs.files() == {"a": (4, 5)}


def _concurrent_run(seed, buggy):
    device, cache, fs = _setup(buggy)
    vyrd = Vyrd(
        spec_factory=lambda: FsSpec(num_blocks=8, max_content=7),
        mode="view",
        impl_view_factory=lambda: scanfs_view(8, 8),
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    vfs = vyrd.wrap(fs)
    names = ["a", "b"]

    def worker(ctx, r):
        for _ in range(12):
            op = r.choice(("create", "write", "write", "write", "read"))
            name = r.choice(names)
            if op == "create":
                yield from vfs.create(ctx, name)
            elif op == "write":
                content = tuple(r.randrange(9) for _ in range(r.randrange(7)))
                yield from vfs.write_file(ctx, name, content)
            else:
                yield from vfs.read_file(ctx, name)

    kernel.spawn(worker, random.Random(seed))
    kernel.spawn(worker, random.Random(seed + 31))
    kernel.spawn(worker, random.Random(seed + 77))
    kernel.spawn(cache.flush_thread, daemon=True)
    kernel.run()
    return vyrd.check_offline()


def test_correct_fs_clean_under_contention():
    for seed in range(10):
        outcome = _concurrent_run(seed, buggy=False)
        assert outcome.ok, (seed, str(outcome.first_violation))


def test_torn_write_bug_detected():
    seed, outcome = find_detecting_seed(
        lambda s: _concurrent_run(s, True), seeds=range(150)
    )
    assert outcome.first_violation.kind in (
        ViolationKind.VIEW,
        ViolationKind.OBSERVER,
    )
