"""Sleep-set schedule reduction: descriptors, the static oracle, and the
reduced exhaustive exploration (serial and parallel)."""

import pytest

from repro.concurrency import (
    Kernel,
    Lock,
    SharedCell,
    explore_exhaustive,
    parallel_exhaustive,
)
from repro.concurrency.reduction import (
    EXIT,
    OTHER,
    PASS,
    ReducedReplayScheduler,
    StaticReducer,
    describe_syscall,
    steps_commute,
)


# -- synthetic two-operation class -----------------------------------------


class _Pair:
    """Two operations on disjoint cells under disjoint locks."""

    def __init__(self):
        self.a = SharedCell("a", 0)
        self.b = SharedCell("b", 0)
        self.lock_a = Lock("la")
        self.lock_b = Lock("lb")

    def op_a(self, ctx):
        yield self.lock_a.acquire()
        value = yield self.a.read()
        yield self.a.write(value + 1, commit=True)
        yield self.lock_a.release()
        return value

    def op_b(self, ctx):
        yield self.lock_b.acquire()
        value = yield self.b.read()
        yield self.b.write(value + 1, commit=True)
        yield self.lock_b.release()
        return value


def _disjoint_program(scheduler):
    obj = _Pair()

    def worker_a(ctx):
        yield from obj.op_a(ctx)

    def worker_b(ctx):
        yield from obj.op_b(ctx)

    kernel = Kernel(scheduler=scheduler)
    kernel.spawn(worker_a, name="a")
    kernel.spawn(worker_b, name="b")
    kernel.run()
    return (obj.a.peek(), obj.b.peek())


def _racy_program(scheduler):
    """Two unsynchronized increments on one cell; outcomes {1, 2}."""
    cell = SharedCell("c", 0)

    def body(ctx):
        value = yield cell.read()
        yield cell.write(value + 1)

    kernel = Kernel(scheduler=scheduler)
    kernel.spawn(body, name="a")
    kernel.spawn(body, name="b")
    kernel.run()
    return cell.peek()


_IND = StaticReducer(
    matrix={
        ("op_a", "op_a"): "dependent",
        ("op_a", "op_b"): "independent",
        ("op_b", "op_b"): "dependent",
    },
    operations=("op_a", "op_b"),
)
_EMPTY = StaticReducer({}, ())


# -- descriptors -----------------------------------------------------------


def test_describe_syscall_classifies_shared_effects():
    cell = SharedCell("c", 0)
    lock = Lock("l")
    assert describe_syscall(cell.read()) == ("read", "c")
    assert describe_syscall(cell.write(1)) == ("write", "c", False)
    assert describe_syscall(cell.write(1, commit=True)) == ("write", "c", True)
    assert describe_syscall(lock.acquire()) == ("lock", "l", False)
    assert describe_syscall(lock.release()) == ("lock", "l", False)
    assert describe_syscall(lock.release(commit=True)) == ("lock", "l", True)
    assert describe_syscall(object()) == OTHER


def test_steps_commute_rules():
    # commit-carrying steps never commute with each other
    assert not steps_commute(("commit",), ("commit",))
    assert not steps_commute(("write", "c", True), ("commit",))
    assert not steps_commute(("write", "c", True), ("lock", "l", True))
    # a commit has no memory effect against non-commit steps
    assert steps_commute(("commit",), ("read", "c"))
    # locks: same name conflicts, different names and lock-vs-cell commute
    assert not steps_commute(("lock", "l", False), ("lock", "l", False))
    assert steps_commute(("lock", "l", False), ("lock", "m", False))
    assert steps_commute(("lock", "l", False), ("write", "l", False))
    # cells: reads always commute, writes need disjoint cells
    assert steps_commute(("read", "c"), ("read", "c"))
    assert not steps_commute(("write", "c", False), ("read", "c"))
    assert steps_commute(("write", "c", False), ("read", "d"))
    assert not steps_commute(("write", "c", False), ("write", "c", False))


def test_static_reducer_gates_on_matrix_and_opaque():
    reducer = StaticReducer(
        matrix={("x", "y"): "conditional", ("x", "z"): "dependent"},
        operations=("x", "y", "z"),
        opaque=("z",),
    )
    assert reducer.allows("x", "y")
    assert reducer.allows("y", "x")  # order-insensitive
    assert not reducer.allows("x", "z")  # dependent verdict
    assert not reducer.allows("z", "z")  # opaque operation
    assert not reducer.allows("x", "unknown")


def test_reducer_independent_requires_method_and_commutation():
    read_a = ("op_a", ("read", "a"))
    read_b = ("op_b", ("read", "b"))
    assert _IND.independent(read_a, read_b)
    # PASS commutes with anything; EXIT/OTHER with nothing
    assert _IND.independent((None, PASS), ("op_a", ("commit",)))
    assert not _IND.independent((None, EXIT), read_b)
    assert not _IND.independent(read_a, (None, OTHER))
    # steps outside any @operation are opaque
    assert not _IND.independent((None, ("read", "a")), read_b)
    # the matrix is the license: op_a x op_a is dependent even on reads
    assert not _IND.independent(read_a, ("op_a", ("read", "z")))
    # and a license without descriptor commutation is not enough
    assert not _IND.independent(
        ("op_a", ("write", "s", False)), ("op_b", ("write", "s", False))
    )


# -- reduced exhaustive exploration ----------------------------------------


def test_reduced_covers_same_outcomes_with_fewer_runs():
    base = explore_exhaustive(_disjoint_program, max_runs=100_000)
    red = explore_exhaustive(_disjoint_program, max_runs=100_000, reducer=_IND)
    assert base.exhausted and red.exhausted
    assert base.outcomes() == red.outcomes()
    assert red.num_runs < base.num_runs
    assert red.pruned > 0


def test_reduced_accounting_invariant():
    red = explore_exhaustive(_disjoint_program, max_runs=100_000, reducer=_IND)
    assert red.skipped == red.pruned
    assert red.requested == red.num_runs + red.skipped
    payload = red.to_dict()
    assert payload["pruned"] == red.pruned
    assert payload["requested"] == payload["num_runs"] + payload["skipped"]


def test_opaque_reducer_never_prunes():
    """Steps outside any known @operation are dependent with everything,
    so an empty reducer must enumerate the exact unreduced tree."""
    base = explore_exhaustive(_racy_program, max_runs=10_000)
    red = explore_exhaustive(_racy_program, max_runs=10_000, reducer=_EMPTY)
    assert red.num_runs == base.num_runs
    assert red.pruned == 0
    assert red.outcomes() == base.outcomes() == {1, 2}


def test_serial_and_parallel_reduced_agree():
    serial = explore_exhaustive(
        _disjoint_program, max_runs=100_000, reducer=_IND
    )
    par = parallel_exhaustive(
        _disjoint_program, max_runs=100_000, jobs=2, chunk_size=4,
        reducer=_IND,
    )
    assert par.signature() == serial.signature()
    assert par.pruned == serial.pruned
    assert par.requested == par.num_runs + par.skipped


def test_kernel_feeds_steps_to_scheduler_hook():
    scheduler = ReducedReplayScheduler(reducer=_IND)
    _disjoint_program(scheduler)
    # every decision produced exactly one executed step, plus the EXIT
    # notifications for finished threads
    assert scheduler.steps
    descrs = [descr for _, _, descr in scheduler.steps]
    assert descrs.count(EXIT) == 2
    assert ("read", "a") in descrs and ("read", "b") in descrs
    # steps inside the operations are attributed to them
    methods = {m for _, m, d in scheduler.steps if d == ("read", "a")}
    assert methods == {"op_a"}


def test_siblings_inherit_sleep_sets():
    scheduler = ReducedReplayScheduler(reducer=_IND)
    _disjoint_program(scheduler)
    entries, pruned = scheduler.siblings()
    assert entries and pruned == 0  # first run of the tree prunes nothing
    # at least one sibling inherits the explored first step in its sleep set
    assert any(sleep for _, sleep in entries)


def test_explore_program_reduce_validation():
    from repro.harness import explore_program

    with pytest.raises(ValueError):
        explore_program("blinktree", mode="exhaustive", reduce="dynamic")
    with pytest.raises(ValueError):
        explore_program("blinktree", mode="swarm", reduce="static")


def test_explore_program_reduce_static_on_registry_program():
    from repro.harness import explore_program

    kwargs = dict(
        mode="exhaustive", max_runs=2_000, num_threads=2,
        calls_per_thread=1, workload_seed=7, daemons=False,
        fingerprint=True,
    )
    base = explore_program("blinktree", **kwargs)
    red = explore_program("blinktree", reduce="static", **kwargs)
    assert base.exhausted and red.exhausted
    assert red.num_runs < base.num_runs
    assert red.outcomes() == base.outcomes()
    assert not base.failures and not red.failures
