"""Condition variables: Mesa semantics, notify/notifyAll, misuse errors."""

import pytest

from repro.concurrency import (
    Condition,
    DeadlockError,
    Kernel,
    Lock,
    LockError,
    RandomScheduler,
    RoundRobinScheduler,
    SimThreadError,
    run_threads,
)


def _handoff(seed):
    lock = Lock("m")
    cond = Condition(lock, "ready")
    box = {}
    received = []

    def producer(ctx):
        yield lock.acquire()
        box["value"] = 42
        yield cond.notify()
        yield lock.release()

    def consumer(ctx):
        yield lock.acquire()
        while "value" not in box:
            yield cond.wait()
        received.append(box["value"])
        yield lock.release()

    run_threads([consumer, producer], seed=seed)
    return received


def test_wait_notify_handoff_all_seeds():
    for seed in range(15):
        assert _handoff(seed) == [42]


def test_wait_releases_the_lock():
    lock = Lock("m")
    cond = Condition(lock)
    progress = []

    def waiter(ctx):
        yield lock.acquire()
        yield cond.wait()  # must release the lock while blocked
        progress.append("woken")
        yield lock.release()

    def prober(ctx):
        yield ctx.checkpoint()
        yield lock.acquire()  # succeeds only if wait released it
        progress.append("probed")
        yield cond.notify()
        yield lock.release()

    run_threads([waiter, prober], scheduler=RoundRobinScheduler())
    assert progress == ["probed", "woken"]


def test_notified_waiter_reacquires_before_resuming():
    lock = Lock("m")
    cond = Condition(lock)
    order = []

    def waiter(ctx):
        yield lock.acquire()
        yield cond.wait()
        assert lock.held_by(ctx.tid)  # Mesa: resumed holding the lock
        order.append("waiter")
        yield lock.release()

    def notifier(ctx):
        yield ctx.checkpoint()
        yield lock.acquire()
        yield cond.notify()
        order.append("notifier-still-owns")
        yield lock.release()

    run_threads([waiter, notifier], scheduler=RoundRobinScheduler())
    assert order == ["notifier-still-owns", "waiter"]


def test_notify_all_wakes_everyone():
    lock = Lock("m")
    cond = Condition(lock)
    state = {"go": False}
    woken = []

    def waiter(name):
        def body(ctx):
            yield lock.acquire()
            while not state["go"]:
                yield cond.wait()
            woken.append(name)
            yield lock.release()

        return body

    def broadcaster(ctx):
        for _ in range(3):
            yield ctx.checkpoint()
        yield lock.acquire()
        state["go"] = True
        yield cond.notify_all()
        yield lock.release()

    run_threads(
        [waiter("a"), waiter("b"), waiter("c"), broadcaster],
        scheduler=RandomScheduler(5),
    )
    assert sorted(woken) == ["a", "b", "c"]


def test_single_notify_with_two_waiters_deadlocks_without_rebroadcast():
    """Classic lost-wakeup shape: one notify, two waiters, no more signals
    -> the second waiter blocks forever and the kernel reports deadlock."""
    lock = Lock("m")
    cond = Condition(lock)
    state = {"tokens": 0}

    def waiter(ctx):
        yield lock.acquire()
        while state["tokens"] == 0:
            yield cond.wait()
        state["tokens"] -= 1
        yield lock.release()

    def producer(ctx):
        yield lock.acquire()
        state["tokens"] += 2
        yield cond.notify()  # should have been notify_all / two notifies
        yield lock.release()

    with pytest.raises(DeadlockError):
        run_threads([waiter, waiter, producer], scheduler=RoundRobinScheduler())


def test_wait_without_lock_is_error():
    lock = Lock("m")
    cond = Condition(lock)

    def body(ctx):
        yield cond.wait()

    with pytest.raises(SimThreadError) as excinfo:
        run_threads([body])
    assert isinstance(excinfo.value.__cause__, LockError)


def test_notify_without_lock_is_error():
    lock = Lock("m")
    cond = Condition(lock)

    def body(ctx):
        yield cond.notify()

    with pytest.raises(SimThreadError) as excinfo:
        run_threads([body])
    assert isinstance(excinfo.value.__cause__, LockError)


def test_wait_with_reentrant_depth_rejected():
    lock = Lock("m")
    cond = Condition(lock)

    def body(ctx):
        yield lock.acquire()
        yield lock.acquire()
        yield cond.wait()

    with pytest.raises(SimThreadError) as excinfo:
        run_threads([body])
    assert isinstance(excinfo.value.__cause__, LockError)


def test_notify_with_no_waiters_is_noop():
    lock = Lock("m")
    cond = Condition(lock)

    def body(ctx):
        yield lock.acquire()
        yield cond.notify()
        yield cond.notify_all()
        yield lock.release()
        return "done"

    kernel = Kernel()
    thread = kernel.spawn(body)
    kernel.run()
    assert thread.result == "done"
