"""Scheduler policies: determinism, coverage, replay."""

from repro.concurrency import (
    PCTScheduler,
    RandomScheduler,
    ReplayScheduler,
    RoundRobinScheduler,
    run_threads,
)


def _trace_program():
    """Three threads each appending their name twice; returns (trace, bodies)."""
    trace = []

    def make(name):
        def body(ctx):
            for _ in range(2):
                trace.append(name)
                yield ctx.checkpoint()

        return body

    return trace, [make("a"), make("b"), make("c")]


def test_round_robin_cycles_fairly():
    trace, bodies = _trace_program()
    run_threads(bodies, scheduler=RoundRobinScheduler())
    assert trace == ["a", "b", "c", "a", "b", "c"]


def test_random_scheduler_deterministic_per_seed():
    traces = []
    for _ in range(2):
        trace, bodies = _trace_program()
        run_threads(bodies, scheduler=RandomScheduler(99))
        traces.append(tuple(trace))
    assert traces[0] == traces[1]


def test_random_scheduler_varies_across_seeds():
    seen = set()
    for seed in range(20):
        trace, bodies = _trace_program()
        run_threads(bodies, scheduler=RandomScheduler(seed))
        seen.add(tuple(trace))
    assert len(seen) > 3


def test_pct_scheduler_completes_and_is_deterministic():
    results = []
    for _ in range(2):
        trace, bodies = _trace_program()
        run_threads(bodies, scheduler=PCTScheduler(seed=5, depth=3, expected_steps=50))
        results.append(tuple(trace))
    assert results[0] == results[1]
    assert sorted(results[0]) == ["a", "a", "b", "b", "c", "c"]


def test_replay_scheduler_records_choices():
    trace, bodies = _trace_program()
    scheduler = ReplayScheduler()
    run_threads(bodies, scheduler=scheduler)
    assert scheduler.trace  # every decision recorded
    assert all(0 <= index < count for index, count in scheduler.trace)


def test_replay_scheduler_reproduces_recorded_schedule():
    trace1, bodies1 = _trace_program()
    recorder = ReplayScheduler(fallback=RandomScheduler(17))
    run_threads(bodies1, scheduler=recorder)
    decisions = [index for index, _ in recorder.trace]

    trace2, bodies2 = _trace_program()
    run_threads(bodies2, scheduler=ReplayScheduler(decisions=decisions))
    assert trace1 == trace2


def test_replay_scheduler_clamps_out_of_range_decision():
    trace, bodies = _trace_program()
    # absurd decisions: must still complete (clamped to last runnable)
    run_threads(bodies, scheduler=ReplayScheduler(decisions=[50] * 10))
    assert sorted(trace) == ["a", "a", "b", "b", "c", "c"]


def test_scheduler_only_sees_runnable_threads():
    from repro.concurrency import Lock

    lock = Lock("l")
    order = []

    def holder(ctx):
        yield lock.acquire()
        for _ in range(3):
            yield ctx.checkpoint()
        order.append("holder-release")
        yield lock.release()

    def waiter(ctx):
        yield ctx.checkpoint()
        yield lock.acquire()
        order.append("waiter-in")
        yield lock.release()

    run_threads([holder, waiter], scheduler=RandomScheduler(3))
    assert order == ["holder-release", "waiter-in"]
