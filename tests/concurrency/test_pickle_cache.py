"""The program source is pickled once per campaign, not once per task.

ProcessPoolExecutor serializes the worker function -- program source
included -- for every dispatched task; `_OncePickledSource` must collapse
that to a single up-front pickle whose bytes are replayed into each task.
A ProgramSpec subclass counts its own coordinator-side pickles to prove it.
"""

import pickle

import pytest

from repro.concurrency.parallel import (
    _OncePickledSource,
    parallel_exhaustive,
    parallel_swarm,
)
from repro.harness import ProgramSpec


class CountingSpec(ProgramSpec):
    """Counts every time this process walks the spec's object graph."""

    pickles = {"n": 0}

    def __getstate__(self):
        type(self).pickles["n"] += 1
        return self.__dict__


@pytest.fixture(autouse=True)
def _reset_counter():
    CountingSpec.pickles["n"] = 0
    yield


def _spec():
    return CountingSpec(
        "multiset-vector", num_threads=2, calls_per_thread=2
    )


def test_wrapper_replays_cached_bytes():
    spec = _spec()
    wrapper = _OncePickledSource(spec)
    assert CountingSpec.pickles["n"] == 1
    for _ in range(5):
        revived = pickle.loads(pickle.dumps(wrapper))
    assert CountingSpec.pickles["n"] == 1  # replays never re-walk the spec
    assert revived == spec
    assert callable(wrapper.resolve_program())


def test_swarm_pickles_spec_once_per_campaign():
    result = parallel_swarm(_spec(), num_runs=8, jobs=2, chunk_size=2)
    assert len(result.runs) == 8
    # 4 chunks dispatched; without the cache this is >= 4.
    assert CountingSpec.pickles["n"] == 1


def test_exhaustive_pickles_spec_once_per_campaign():
    result = parallel_exhaustive(_spec(), max_runs=12, jobs=2, chunk_size=2)
    assert result.runs
    assert CountingSpec.pickles["n"] == 1


def test_cached_source_preserves_campaign_signature():
    cached = parallel_swarm(_spec(), num_runs=6, jobs=2, chunk_size=2)
    serial = parallel_swarm(_spec(), num_runs=6, jobs=1)
    assert cached.signature() == serial.signature()
