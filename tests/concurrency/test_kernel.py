"""Kernel semantics: spawning, scheduling, atomicity, daemons, failures."""

import pytest

from repro.concurrency import (
    DeadlockError,
    Kernel,
    KernelStopped,
    Lock,
    RoundRobinScheduler,
    SharedCell,
    SimThreadError,
    Status,
    StepLimitExceeded,
    run_threads,
)


def test_single_thread_runs_to_completion():
    cell = SharedCell("c", 0)

    def body(ctx):
        value = yield cell.read()
        yield cell.write(value + 41)
        return "done"

    kernel = Kernel(seed=0)
    thread = kernel.spawn(body)
    kernel.run()
    assert thread.status is Status.DONE
    assert thread.result == "done"
    assert cell.peek() == 41


def test_thread_body_must_be_generator():
    kernel = Kernel()
    with pytest.raises(TypeError):
        kernel.spawn(lambda ctx: 42)


def test_code_between_yields_is_atomic():
    """Code between two yields of one thread runs with no interleaving, so a
    read-modify-write expressed without an intervening yield never loses an
    update.  (Note that ``value = yield cell.read()`` delivers the value at
    the *next* resumption -- using it later is a stale read by design.)"""
    cell = SharedCell("c", 0)

    def body(ctx):
        for _ in range(50):
            yield ctx.checkpoint()
            cell.poke(cell.peek() + 1)  # entirely within one step: atomic

    kernel = run_threads([body, body], seed=7)
    assert cell.peek() == 100
    assert kernel.steps > 0


def test_interleaved_read_write_can_lose_updates():
    """With a yield between read and write, lost updates become possible
    under some schedule (the reason shared accesses are preemption points)."""
    lost = False
    for seed in range(20):
        cell = SharedCell("c", 0)

        def body(ctx):
            for _ in range(5):
                value = yield cell.read()
                yield cell.write(value + 1)

        run_threads([body, body], seed=seed)
        if cell.peek() < 10:
            lost = True
            break
    assert lost, "expected at least one seed to exhibit a lost update"


def test_same_seed_same_interleaving():
    def make_program():
        cell = SharedCell("c", 0)

        def body(ctx):
            for _ in range(10):
                value = yield cell.read()
                yield cell.write(value + 1)

        return cell, [body, body, body]

    results = []
    for _ in range(3):
        cell, bodies = make_program()
        run_threads(bodies, seed=42)
        results.append(cell.peek())
    assert len(set(results)) == 1


def test_different_seeds_reach_different_interleavings():
    outcomes = set()
    for seed in range(30):
        cell = SharedCell("c", 0)

        def body(ctx):
            value = yield cell.read()
            yield cell.write(value + 1)

        run_threads([body, body, body], seed=seed)
        outcomes.add(cell.peek())
    assert len(outcomes) > 1


def test_daemon_does_not_block_completion():
    ticks = []

    def daemon(ctx):
        try:
            while True:
                yield ctx.checkpoint()
                ticks.append(1)
        except KernelStopped:
            ticks.append("stopped")
            raise

    def app(ctx):
        for _ in range(5):
            yield ctx.checkpoint()

    kernel = Kernel(seed=3)
    kernel.spawn(daemon, daemon=True)
    kernel.spawn(app)
    kernel.run()
    assert ticks  # the daemon ran
    assert ticks[-1] == "stopped"  # and was shut down cleanly


def test_join_returns_result():
    def child(ctx):
        yield ctx.checkpoint()
        return 99

    collected = []

    def parent(ctx):
        thread = ctx.spawn(child)
        result = yield ctx.join(thread)
        collected.append(result)

    kernel = Kernel(seed=1)
    kernel.spawn(parent)
    kernel.run()
    assert collected == [99]


def test_join_finished_thread_is_immediate():
    def child(ctx):
        return 7
        yield  # pragma: no cover

    def parent(ctx):
        thread = ctx.spawn(child)
        yield ctx.checkpoint()
        yield ctx.checkpoint()
        result = yield ctx.join(thread)
        return result

    kernel = Kernel(scheduler=RoundRobinScheduler())
    parent_thread = kernel.spawn(parent)
    kernel.run()
    assert parent_thread.result == 7


def test_deadlock_detection():
    a, b = Lock("a"), Lock("b")

    def t1(ctx):
        yield a.acquire()
        yield ctx.checkpoint()
        yield b.acquire()

    def t2(ctx):
        yield b.acquire()
        yield ctx.checkpoint()
        yield a.acquire()

    with pytest.raises(DeadlockError) as excinfo:
        run_threads([t1, t2], scheduler=RoundRobinScheduler())
    assert len(excinfo.value.blocked) == 2


def test_crashing_thread_raises_sim_thread_error():
    def body(ctx):
        yield ctx.checkpoint()
        raise ValueError("boom")

    with pytest.raises(SimThreadError) as excinfo:
        run_threads([body])
    assert isinstance(excinfo.value.__cause__, ValueError)


def test_step_limit():
    def spinner(ctx):
        while True:
            yield ctx.checkpoint()

    kernel = Kernel(seed=0, max_steps=100)
    kernel.spawn(spinner)
    with pytest.raises(StepLimitExceeded):
        kernel.run()


def test_non_syscall_yield_is_rejected():
    def body(ctx):
        yield "not a syscall"

    with pytest.raises(SimThreadError) as excinfo:
        run_threads([body])
    assert isinstance(excinfo.value.__cause__, TypeError)


def test_run_not_reentrant():
    kernel = Kernel()

    def body(ctx):
        with pytest.raises(RuntimeError):
            kernel.run()
        yield ctx.checkpoint()

    kernel.spawn(body)
    kernel.run()


def test_kernel_can_run_again_after_completion():
    cell = SharedCell("c", 0)

    def body(ctx):
        value = yield cell.read()
        yield cell.write(value + 1)

    kernel = Kernel(seed=0)
    kernel.spawn(body)
    kernel.run()
    kernel.spawn(body)
    kernel.run()
    assert cell.peek() == 2
