"""Determinism suite: the multi-process explorers match their serial twins.

Every test compares campaign *signatures* (schedules, outcomes, normalized
errors, exhausted flag) between the serial drivers and the parallel engines
at several worker counts -- parallel output must be bit-identical to serial
modulo scheduling, which is what makes the engine trustworthy.

The toy programs live at module level so worker processes can unpickle them
by reference; the suite requires the ``fork`` start method (workers inherit
the loaded test module).
"""

import multiprocessing
from functools import partial

import pytest

from repro.concurrency import Kernel, SharedCell, explore_exhaustive, explore_swarm
from repro.concurrency.parallel import (
    RemoteError,
    parallel_exhaustive,
    parallel_swarm,
    resolve_program,
)
from repro.core import check_program_all_schedules
from repro.harness import ProgramSpec

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel exploration tests need fork-start workers",
)

JOBS = (1, 2, 4)


# ---------------------------------------------------------------------------
# Module-level (picklable) toy programs
# ---------------------------------------------------------------------------


def _racy_counter(scheduler):
    """Two unsynchronized increments; final value depends on the schedule."""
    cell = SharedCell("c", 0)

    def body(ctx):
        value = yield cell.read()
        yield cell.write(value + 1)

    kernel = Kernel(scheduler=scheduler)
    kernel.spawn(body, name="a")
    kernel.spawn(body, name="b")
    kernel.run()
    return cell.peek()


def _failing_on_lost_update(scheduler):
    if _racy_counter(scheduler) == 1:
        raise RuntimeError("lost update")
    return 2


def _tree_program(shape, scheduler):
    """One thread per entry of ``shape``, thread ``t`` taking ``shape[t]``
    checkpointed steps; the outcome is the observed interleaving."""
    trace = []

    def worker(label, steps):
        def body(ctx):
            for i in range(steps):
                trace.append((label, i))
                yield ctx.checkpoint()

        return body

    kernel = Kernel(scheduler=scheduler)
    for index, steps in enumerate(shape):
        kernel.spawn(worker(index, steps), name=str(index))
    kernel.run()
    return tuple(trace)


# ---------------------------------------------------------------------------
# Swarm determinism
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("program", ["multiset-vector", "bounded-queue"])
@pytest.mark.parametrize("jobs", JOBS)
def test_parallel_swarm_matches_serial_on_registry_programs(program, jobs):
    spec = ProgramSpec(program, num_threads=2, calls_per_thread=3)
    serial = explore_swarm(spec.resolve_program(), num_runs=8)
    parallel = parallel_swarm(spec, num_runs=8, jobs=jobs)
    assert parallel.signature() == serial.signature()
    assert parallel.requested == 8 and parallel.skipped == 0


@pytest.mark.parametrize("jobs", JOBS)
def test_parallel_swarm_matches_serial_with_failures(jobs):
    serial = explore_swarm(_failing_on_lost_update, num_runs=30)
    parallel = parallel_swarm(_failing_on_lost_update, num_runs=30, jobs=jobs)
    assert serial.failures  # the racy schedule shows up within 30 seeds
    assert parallel.signature() == serial.signature()
    if jobs > 1:
        revived = parallel.first_failure.error
        assert isinstance(revived, RemoteError)
        assert revived.remote_type == "RuntimeError"


def test_parallel_swarm_stop_on_failure_matches_serial_and_counts():
    serial = explore_swarm(_failing_on_lost_update, num_runs=50, stop_on_failure=True)
    parallel = parallel_swarm(
        _failing_on_lost_update, num_runs=50, stop_on_failure=True, jobs=3
    )
    assert parallel.signature() == serial.signature()
    assert [r.schedule for r in parallel.runs] == [r.schedule for r in serial.runs]
    assert parallel.requested == serial.requested == 50
    assert parallel.skipped == serial.skipped == 50 - parallel.num_runs
    assert parallel.skipped > 0
    assert parallel.runs[-1] is parallel.first_failure


# ---------------------------------------------------------------------------
# Exhaustive determinism (frontier sharding vs. serial backtracking DFS)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "program",
    [_racy_counter, partial(_tree_program, (2, 1)), partial(_tree_program, (1, 1, 1))],
    ids=["racy-counter", "tree-2-1", "tree-1-1-1"],
)
@pytest.mark.parametrize("jobs", JOBS)
def test_parallel_exhaustive_matches_serial(program, jobs):
    serial = explore_exhaustive(program, max_runs=5000)
    parallel = parallel_exhaustive(program, max_runs=5000, jobs=jobs)
    assert serial.exhausted and parallel.exhausted
    assert parallel.signature() == serial.signature()
    # canonical merge order == serial DFS emission order, run for run
    assert [r.schedule for r in parallel.runs] == [r.schedule for r in serial.runs]


def test_parallel_exhaustive_failures_match_serial():
    serial = explore_exhaustive(_failing_on_lost_update, max_runs=5000)
    parallel = parallel_exhaustive(_failing_on_lost_update, max_runs=5000, jobs=2)
    assert serial.failures and serial.exhausted
    assert parallel.signature() == serial.signature()


def test_parallel_exhaustive_stop_on_failure():
    result = parallel_exhaustive(
        _failing_on_lost_update, max_runs=5000, stop_on_failure=True, jobs=2
    )
    failure = result.first_failure
    assert failure is not None
    assert not result.exhausted
    assert result.runs[-1] is failure  # canonical order truncates at the failure


def test_parallel_exhaustive_respects_budget():
    result = parallel_exhaustive(_racy_counter, max_runs=3, jobs=2, chunk_size=1)
    assert result.num_runs <= 3
    assert not result.exhausted


def test_resolve_program_rejects_non_programs():
    with pytest.raises(TypeError):
        resolve_program(42)


# ---------------------------------------------------------------------------
# repro.core wiring
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("jobs", (1, 2))
def test_check_program_all_schedules_over_processes(jobs):
    verification = check_program_all_schedules(
        _failing_on_lost_update, max_runs=5000, jobs=jobs
    )
    assert verification.exhausted
    assert not verification.all_ok
    assert verification.schedules_run > len(verification.violations)
    # crash-style failures carry the error, not a refinement outcome dict
    assert all(v.error is not None for v in verification.violations)
