"""Schedule exploration: exhaustive enumeration and swarm testing."""

from repro.concurrency import (
    Kernel,
    SharedCell,
    explore_exhaustive,
    explore_swarm,
)


def _racy_program(scheduler):
    """Two unsynchronized increments; returns the final counter value."""
    cell = SharedCell("c", 0)

    def body(ctx):
        value = yield cell.read()
        yield cell.write(value + 1)

    kernel = Kernel(scheduler=scheduler)
    kernel.spawn(body, name="a")
    kernel.spawn(body, name="b")
    kernel.run()
    return cell.peek()


def test_exhaustive_finds_both_outcomes():
    result = explore_exhaustive(_racy_program, max_runs=500)
    assert result.exhausted
    assert result.outcomes() == {1, 2}
    assert not result.failures


def test_exhaustive_covers_all_schedules_of_tiny_program():
    """One thread with 2 steps vs one with 1 step: C(3,1) = 3 schedules...
    plus scheduling positions; the enumeration must terminate and visit more
    than one distinct schedule."""

    def program(scheduler):
        trace = []

        def a(ctx):
            trace.append("a1")
            yield ctx.checkpoint()
            trace.append("a2")
            yield ctx.checkpoint()

        def b(ctx):
            trace.append("b1")
            yield ctx.checkpoint()

        kernel = Kernel(scheduler=scheduler)
        kernel.spawn(a)
        kernel.spawn(b)
        kernel.run()
        return tuple(trace)

    result = explore_exhaustive(program, max_runs=1000)
    assert result.exhausted
    # all interleavings of (a1,a2) with b1 preserving program order
    assert result.outcomes() == {
        ("a1", "a2", "b1"),
        ("a1", "b1", "a2"),
        ("b1", "a1", "a2"),
    }


def test_exhaustive_reports_failures():
    def program(scheduler):
        outcome = _racy_program(scheduler)
        if outcome == 1:
            raise AssertionError("lost update")
        return outcome

    result = explore_exhaustive(program, max_runs=500, stop_on_failure=True)
    assert result.first_failure is not None
    assert isinstance(result.first_failure.error, AssertionError)


def test_exhaustive_respects_run_budget():
    result = explore_exhaustive(_racy_program, max_runs=2)
    assert result.num_runs == 2
    assert not result.exhausted


def test_swarm_finds_race():
    result = explore_swarm(_racy_program, num_runs=30)
    assert result.num_runs == 30
    assert result.outcomes() == {1, 2}


def test_swarm_stop_on_failure():
    def program(scheduler):
        if _racy_program(scheduler) == 1:
            raise RuntimeError("found it")

    result = explore_swarm(program, num_runs=100, stop_on_failure=True)
    failure = result.first_failure
    assert failure is not None
    assert result.runs[-1] is failure


def test_swarm_records_requested_and_skipped_counts():
    def program(scheduler):
        if _racy_program(scheduler) == 1:
            raise RuntimeError("found it")

    partial = explore_swarm(program, num_runs=100, stop_on_failure=True)
    assert partial.requested == 100
    assert partial.skipped == 100 - partial.num_runs
    assert partial.skipped > 0

    full = explore_swarm(_racy_program, num_runs=10)
    assert full.requested == 10 and full.skipped == 0

    payload = partial.to_dict()
    assert payload["requested"] == 100
    assert payload["skipped"] == partial.skipped
    assert payload["num_failures"] == 1
    assert payload["failures"][0]["error_type"] == "RuntimeError"
