"""Shared memory: cells, arrays, factories and tracer visibility."""

from repro.concurrency import (
    CellFactory,
    Kernel,
    SharedArray,
    SharedCell,
    Tracer,
)


def test_cell_peek_poke():
    cell = SharedCell("x", 5)
    assert cell.peek() == 5
    cell.poke(9)
    assert cell.peek() == 9
    assert cell.name == "x"


def test_cell_read_write_via_kernel():
    cell = SharedCell("x", 1)

    def body(ctx):
        value = yield cell.read()
        yield cell.write(value * 2)

    kernel = Kernel()
    kernel.spawn(body)
    kernel.run()
    assert cell.peek() == 2


def test_shared_array_naming_and_access():
    array = SharedArray("A", 4, init=0)
    assert len(array) == 4
    assert array[2].name == "A[2]"
    assert [cell.peek() for cell in array] == [0, 0, 0, 0]
    array[1].poke(7)
    assert array.peek_all() == [0, 7, 0, 0]


def test_shared_array_init_fn():
    array = SharedArray("B", 3, init_fn=lambda i: i * i)
    assert array.peek_all() == [0, 1, 4]


def test_cell_factory_unique_names():
    factory = CellFactory("node")
    a = factory.fresh("data")
    b = factory.fresh("data")
    c = factory.fresh()
    assert a.name != b.name
    assert a.name.startswith("node.data#")
    assert c.name.startswith("node#")
    named = factory.named("root", 1)
    assert named.name == "node.root"
    assert named.peek() == 1


def test_writes_reach_tracer_with_old_and_new():
    events = []

    class Spy(Tracer):
        def on_write(self, tid, cell, old, new):
            events.append((tid, cell.name, old, new))

    cell = SharedCell("x", 10)

    def body(ctx):
        yield cell.write(11)
        yield cell.write(12)

    kernel = Kernel(tracer=Spy())
    kernel.spawn(body)
    kernel.run()
    assert events == [(0, "x", 10, 11), (0, "x", 11, 12)]


def test_commit_flag_reaches_tracer_after_write():
    events = []

    class Spy(Tracer):
        def on_write(self, tid, cell, old, new):
            events.append("write")

        def on_commit(self, tid):
            events.append("commit")

    cell = SharedCell("x", 0)

    def body(ctx):
        yield cell.write(1, commit=True)

    kernel = Kernel(tracer=Spy())
    kernel.spawn(body)
    kernel.run()
    assert events == ["write", "commit"]
