"""Lock and RWLock semantics under the simulated kernel."""

import pytest

from repro.concurrency import (
    Kernel,
    Lock,
    LockError,
    RoundRobinScheduler,
    RWLock,
    SharedCell,
    SimThreadError,
    run_threads,
    with_lock,
)


def test_mutual_exclusion():
    lock = Lock("m")
    cell = SharedCell("c", 0)

    def body(ctx):
        for _ in range(20):
            yield lock.acquire()
            value = yield cell.read()
            yield ctx.checkpoint()  # tempt the scheduler
            yield cell.write(value + 1)
            yield lock.release()

    for seed in range(10):
        cell.poke(0)
        run_threads([body, body, body], seed=seed)
        assert cell.peek() == 60, f"lost update under lock at seed {seed}"


def test_reentrant_acquire():
    lock = Lock("m")
    trace = []

    def body(ctx):
        yield lock.acquire()
        yield lock.acquire()
        trace.append("inner")
        yield lock.release()
        assert lock.held_by(ctx.tid)
        yield lock.release()
        trace.append("released")

    run_threads([body])
    assert trace == ["inner", "released"]
    assert lock.owner is None


def test_release_unowned_lock_raises():
    lock = Lock("m")

    def body(ctx):
        yield lock.release()

    with pytest.raises(SimThreadError) as excinfo:
        run_threads([body])
    assert isinstance(excinfo.value.__cause__, LockError)


def test_fifo_handoff():
    lock = Lock("m")
    order = []

    def holder(ctx):
        yield lock.acquire()
        for _ in range(5):
            yield ctx.checkpoint()
        yield lock.release()

    def waiter(name):
        def body(ctx):
            yield lock.acquire()
            order.append(name)
            yield lock.release()

        return body

    kernel = Kernel(scheduler=RoundRobinScheduler())
    kernel.spawn(holder)
    kernel.spawn(waiter("first"))
    kernel.spawn(waiter("second"))
    kernel.run()
    assert order == ["first", "second"]


def test_with_lock_helper_releases_on_exception():
    lock = Lock("m")

    def failing(ctx):
        yield ctx.checkpoint()
        raise RuntimeError("inner failure")

    def body(ctx):
        try:
            yield from with_lock(lock, failing(ctx))
        except RuntimeError:
            pass
        # lock must have been released by the helper's finally
        yield lock.acquire()
        yield lock.release()
        return "recovered"

    kernel = Kernel()
    thread = kernel.spawn(body)
    kernel.run()
    assert thread.result == "recovered"


# -- RWLock ------------------------------------------------------------------


def test_rwlock_concurrent_readers():
    rw = RWLock("r")
    peak = {"value": 0, "current": 0}

    def reader(ctx):
        yield rw.begin_read()
        peak["current"] += 1
        peak["value"] = max(peak["value"], peak["current"])
        yield ctx.checkpoint()
        peak["current"] -= 1
        yield rw.end_read()

    run_threads([reader, reader, reader], scheduler=RoundRobinScheduler())
    assert peak["value"] >= 2, "readers should overlap"


def test_rwlock_writer_excludes_everyone():
    rw = RWLock("r")
    cell = SharedCell("c", 0)

    def writer(ctx):
        for _ in range(10):
            yield rw.begin_write()
            value = yield cell.read()
            yield ctx.checkpoint()
            yield cell.write(value + 1)
            yield rw.end_write()

    for seed in range(8):
        cell.poke(0)
        run_threads([writer, writer], seed=seed)
        assert cell.peek() == 20


def test_rwlock_writer_waits_for_readers_and_gets_preference():
    rw = RWLock("r")
    order = []

    def reader(name, steps):
        def body(ctx):
            yield rw.begin_read()
            for _ in range(steps):
                yield ctx.checkpoint()
            order.append(name)
            yield rw.end_read()

        return body

    def writer(ctx):
        yield rw.begin_write()
        order.append("writer")
        yield rw.end_write()

    def late_reader(ctx):
        # arrives while the writer is already queued behind r1/r2
        yield ctx.checkpoint()
        yield ctx.checkpoint()
        yield rw.begin_read()
        order.append("r3")
        yield rw.end_read()

    kernel = Kernel(scheduler=RoundRobinScheduler())
    kernel.spawn(reader("r1", 6))
    kernel.spawn(reader("r2", 6))
    kernel.spawn(writer)
    kernel.spawn(late_reader)
    kernel.run()
    assert order.index("writer") < order.index("r3")


def test_rwlock_reentrant_read():
    rw = RWLock("r")

    def body(ctx):
        yield rw.begin_read()
        yield rw.begin_read()
        yield rw.end_read()
        yield rw.end_read()
        return "ok"

    kernel = Kernel()
    thread = kernel.spawn(body)
    kernel.run()
    assert thread.result == "ok"
    assert not rw.readers


def test_rwlock_end_read_without_begin_raises():
    rw = RWLock("r")

    def body(ctx):
        yield rw.end_read()

    with pytest.raises(SimThreadError) as excinfo:
        run_threads([body])
    assert isinstance(excinfo.value.__cause__, LockError)


def test_rwlock_end_write_by_non_owner_raises():
    rw = RWLock("r")

    def owner(ctx):
        yield rw.begin_write()
        for _ in range(5):
            yield ctx.checkpoint()
        yield rw.end_write()

    def impostor(ctx):
        yield ctx.checkpoint()
        yield rw.end_write()

    with pytest.raises(SimThreadError) as excinfo:
        run_threads([owner, impostor], scheduler=RoundRobinScheduler())
    assert isinstance(excinfo.value.__cause__, LockError)
