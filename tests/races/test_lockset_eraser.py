"""The Eraser lockset state machine (and its strict sibling)."""

from repro.core.actions import (
    AcquireAction,
    ReadAction,
    ReleaseAction,
    WriteAction,
)
from repro.core.log import Log
from repro.races import LOCKSET_DETECTOR, check_races
from repro.races.lockset import (
    ERASER,
    STRICT,
    HeldLockTracker,
    LocksetEngine,
    compute_racy_locs,
)


def _run(engine, actions):
    races = []
    for seq, action in enumerate(actions):
        race = engine.feed(seq, action)
        if race is not None:
            races.append(race)
    return races


def test_exclusive_initialization_window_never_reports():
    # one thread, no locks: Eraser's init window -- fine
    engine = LocksetEngine(discipline=ERASER)
    races = _run(engine, [
        WriteAction(0, 0, "x", None, 1),
        ReadAction(0, 0, "x"),
        WriteAction(0, 0, "x", 1, 2),
    ])
    assert races == []
    assert engine.racy_locs == set()


def test_consistent_locking_never_reports():
    engine = LocksetEngine(discipline=ERASER)
    actions = []
    for tid in (0, 1, 0, 1):
        actions.extend([
            AcquireAction(tid, tid, "l"),
            WriteAction(tid, tid, "x", None, tid),
            ReleaseAction(tid, tid, "l"),
        ])
    assert _run(engine, actions) == []


def test_unprotected_write_then_foreign_read_is_read_shared():
    engine = LocksetEngine(discipline=ERASER)
    races = _run(engine, [
        WriteAction(0, 0, "x", None, 1),
        ReadAction(1, 1, "x"),
    ])
    assert len(races) == 1
    race = races[0]
    assert race.kind == "read-shared"
    assert race.prior.tid == 0 and race.prior.kind == "write"
    assert race.access.tid == 1 and race.access.kind == "read"


def test_read_shared_silent_without_report_read_shared():
    engine = LocksetEngine(discipline=ERASER, report_read_shared=False)
    races = _run(engine, [
        WriteAction(0, 0, "x", None, 1),
        ReadAction(1, 1, "x"),
        ReadAction(2, 2, "x"),
    ])
    assert races == []


def test_pure_read_sharing_never_reports():
    # no write anywhere: many unprotected readers are fine
    engine = LocksetEngine(discipline=ERASER)
    races = _run(engine, [
        ReadAction(0, 0, "x"),
        ReadAction(1, 1, "x"),
        ReadAction(2, 2, "x"),
    ])
    assert races == []


def test_differently_locked_writes_reach_shared_modified():
    engine = LocksetEngine(discipline=ERASER)
    races = _run(engine, [
        AcquireAction(0, 0, "l0"),
        WriteAction(0, 0, "x", None, 1),
        ReleaseAction(0, 0, "l0"),
        AcquireAction(1, 1, "l1"),
        WriteAction(1, 1, "x", 1, 2),
        ReleaseAction(1, 1, "l1"),
    ])
    assert len(races) == 1
    race = races[0]
    assert race.kind == "write-write"
    assert race.detector == LOCKSET_DETECTOR
    assert {race.prior.tid, race.access.tid} == {0, 1}


def test_one_report_per_location():
    engine = LocksetEngine(discipline=ERASER)
    races = _run(engine, [
        WriteAction(0, 0, "x", None, 1),
        WriteAction(1, 1, "x", 1, 2),
        WriteAction(0, 2, "x", 2, 3),
        WriteAction(1, 3, "x", 3, 4),
    ])
    assert len(races) == 1


def test_read_mode_rw_lock_protects_reads_only():
    # readers under the r-mode lock are consistent...
    engine = LocksetEngine(discipline=ERASER)
    reads = [
        AcquireAction(0, 0, "rw", "r"),
        ReadAction(0, 0, "x"),
        ReleaseAction(0, 0, "rw", "r"),
        AcquireAction(1, 1, "rw", "r"),
        ReadAction(1, 1, "x"),
        ReleaseAction(1, 1, "rw", "r"),
    ]
    assert _run(engine, reads) == []
    # ...but a write inside an r-mode section counts as unprotected
    engine2 = LocksetEngine(discipline=ERASER)
    races = _run(engine2, [
        AcquireAction(0, 0, "rw", "r"),
        WriteAction(0, 0, "x", None, 1),
        ReleaseAction(0, 0, "rw", "r"),
        AcquireAction(1, 1, "rw", "r"),
        WriteAction(1, 1, "x", 1, 2),
        ReleaseAction(1, 1, "rw", "r"),
    ])
    assert len(races) == 1


def test_atomic_locations_are_exempt():
    engine = LocksetEngine(discipline=ERASER, atomic_locs=("blt.",))
    races = _run(engine, [
        WriteAction(0, 0, "blt.n0", None, 1),
        WriteAction(1, 1, "blt.n0", 1, 2),
    ])
    assert races == []
    assert engine.racy_locs == set()


def test_strict_discipline_matches_the_atomizer_semantics():
    # candidate refined from the first access; racy iff it drains with >1
    # accessor -- and feed never *reports* under STRICT
    log = Log([
        AcquireAction(0, 0, "l"),
        WriteAction(0, 0, "x", None, 1),
        ReleaseAction(0, 0, "l"),
        WriteAction(1, 1, "x", 1, 2),      # unprotected -> drains candidate
        WriteAction(0, 2, "only0", None, 1),
        WriteAction(0, 3, "only0", 1, 2),  # single thread: never racy
    ])
    engine = LocksetEngine(discipline=STRICT)
    assert _run(engine, log) == []
    assert engine.racy_locs == {"x"}
    assert compute_racy_locs(log, discipline=STRICT) == {"x"}


def test_held_lock_tracker_modes():
    held = HeldLockTracker()
    held.apply(AcquireAction(0, 0, "l"))
    held.apply(AcquireAction(0, 0, "rw", "r"))
    assert held.write_protection(0) == {"l"}
    assert held.read_protection(0) == {"l", "rw"}
    assert held.held(0) == frozenset({"l", "rw"})
    held.apply(ReleaseAction(0, 0, "l"))
    assert held.write_protection(0) == set()
    assert held.read_protection(0) == {"rw"}


def test_checker_facade_runs_lockset_only():
    outcome = check_races(Log([
        WriteAction(0, 0, "x", None, 1),
        WriteAction(1, 1, "x", 1, 2),
    ]), detectors="lockset")
    assert outcome.detectors == (LOCKSET_DETECTOR,)
    assert len(outcome.lockset_races) == 1
    assert outcome.hb_races == []
