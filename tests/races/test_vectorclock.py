"""Vector clock and epoch primitives of the happens-before detector."""

from repro.races.vectorclock import Epoch, VectorClock


def test_default_components_are_zero():
    vc = VectorClock()
    assert vc.get(0) == 0
    assert vc.get(99) == 0


def test_tick_advances_own_component_only():
    vc = VectorClock({1: 3})
    vc.tick(1)
    assert vc.get(1) == 4
    vc.tick(2)
    assert vc.get(2) == 1
    assert vc.get(1) == 4


def test_join_is_componentwise_max():
    a = VectorClock({0: 2, 1: 5})
    b = VectorClock({1: 3, 2: 7})
    a.join(b)
    assert (a.get(0), a.get(1), a.get(2)) == (2, 5, 7)
    # the argument is unchanged
    assert (b.get(0), b.get(1), b.get(2)) == (0, 3, 7)


def test_copy_is_independent():
    a = VectorClock({0: 1})
    b = a.copy()
    b.tick(0)
    assert a.get(0) == 1
    assert b.get(0) == 2


def test_epoch_and_covers_epoch():
    vc = VectorClock({3: 4})
    epoch = vc.epoch(3)
    assert epoch == Epoch(3, 4)
    assert vc.covers_epoch(epoch)
    assert vc.covers_epoch(Epoch(3, 2))
    assert not vc.covers_epoch(Epoch(3, 5))
    assert not vc.covers_epoch(Epoch(9, 1))  # other thread, unseen


def test_covers_full_clock():
    big = VectorClock({0: 3, 1: 2})
    small = VectorClock({0: 1, 1: 2})
    assert big.covers(small)
    assert not small.covers(big)


def test_equality_ignores_zero_entries():
    assert VectorClock({0: 1, 5: 0}) == VectorClock({0: 1})
    assert VectorClock({0: 1}) != VectorClock({0: 2})
