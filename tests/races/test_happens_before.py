"""The vector-clock happens-before detector on hand-built logs."""

from repro.core.actions import (
    AcquireAction,
    JoinAction,
    ReadAction,
    ReleaseAction,
    SpawnAction,
    WriteAction,
)
from repro.core.log import Log
from repro.races import HB_DETECTOR, check_races
from repro.races.happens_before import HappensBeforeDetector


def _hb(actions, **kwargs):
    return check_races(Log(actions), detectors="hb", **kwargs)


def test_unordered_writes_race():
    outcome = _hb([
        WriteAction(0, 0, "x", None, 1),
        WriteAction(1, 1, "x", None, 2),
    ])
    assert len(outcome.races) == 1
    race = outcome.races[0]
    assert race.detector == HB_DETECTOR
    assert race.kind == "write-write"
    assert race.loc == "x"
    assert (race.prior.tid, race.prior.seq) == (0, 0)
    assert (race.access.tid, race.access.seq) == (1, 1)


def test_release_acquire_orders_accesses():
    outcome = _hb([
        AcquireAction(0, 0, "l"),
        WriteAction(0, 0, "x", None, 1),
        ReleaseAction(0, 0, "l"),
        AcquireAction(1, 1, "l"),
        WriteAction(1, 1, "x", None, 2),
        ReleaseAction(1, 1, "l"),
    ])
    assert outcome.ok


def test_write_before_release_is_ordered_too():
    # the edge covers everything the releaser did before releasing,
    # not only the critical section body
    outcome = _hb([
        WriteAction(0, 0, "x", None, 1),
        AcquireAction(0, 0, "l"),
        ReleaseAction(0, 0, "l"),
        AcquireAction(1, 1, "l"),
        WriteAction(1, 1, "x", None, 2),
    ])
    assert outcome.ok


def test_unordered_write_read_race():
    outcome = _hb([
        WriteAction(0, 0, "x", None, 1),
        ReadAction(1, 1, "x"),
    ])
    assert len(outcome.races) == 1
    assert outcome.races[0].kind == "write-read"


def test_concurrent_reads_do_not_race_but_later_write_does():
    outcome = _hb([
        ReadAction(0, 0, "x"),
        ReadAction(1, 1, "x"),   # read-share promotion, no race yet
        ReadAction(2, 2, "x"),
        WriteAction(2, 2, "x", None, 1),  # races with the other readers
    ])
    assert len(outcome.races) == 1
    race = outcome.races[0]
    assert race.kind == "read-write"
    assert race.access.tid == 2
    assert race.prior.tid in (0, 1)


def test_spawn_edge_orders_parent_before_child():
    ordered = _hb([
        WriteAction(0, None, "x", None, 1),
        SpawnAction(0, None, 5),
        WriteAction(5, None, "x", None, 2),
    ])
    assert ordered.ok
    unordered = _hb([
        WriteAction(0, None, "x", None, 1),
        WriteAction(5, None, "x", None, 2),
    ])
    assert not unordered.ok


def test_join_edge_orders_child_before_joiner():
    outcome = _hb([
        SpawnAction(0, None, 5),
        WriteAction(5, None, "x", None, 1),
        JoinAction(0, None, 5),
        WriteAction(0, None, "x", None, 2),
    ])
    assert outcome.ok


def test_spawn_does_not_order_child_before_parent():
    outcome = _hb([
        SpawnAction(0, None, 5),
        WriteAction(5, None, "x", None, 1),
        WriteAction(0, None, "x", None, 2),  # no join: still concurrent
    ])
    assert not outcome.ok


def test_one_race_reported_per_location():
    outcome = _hb([
        WriteAction(0, 0, "x", None, 1),
        WriteAction(1, 1, "x", None, 2),
        WriteAction(0, 2, "x", None, 3),
        WriteAction(2, 3, "y", None, 1),
        WriteAction(1, 4, "y", None, 2),
    ])
    assert len(outcome.races) == 2
    assert outcome.racy_locs == {"x", "y"}


def test_atomic_locations_synchronize_instead_of_racing():
    # t0 publishes via the atomic cell "a"; t1 consumes it before touching x
    actions = [
        WriteAction(0, None, "x", None, 1),
        WriteAction(0, None, "blt.a", None, 1),   # atomic release
        ReadAction(1, None, "blt.a"),             # atomic acquire
        WriteAction(1, None, "x", None, 2),
    ]
    with_atomics = _hb(actions, atomic_locs=("blt.",))
    assert with_atomics.ok
    # without the declaration both pairs race
    without = _hb(actions)
    assert without.racy_locs == {"x", "blt.a"}


def test_atomic_locations_are_exempt_from_reporting():
    outcome = _hb([
        WriteAction(0, None, "blt.n0", None, 1),
        WriteAction(1, None, "blt.n0", None, 2),
    ], atomic_locs=("blt.",))
    assert outcome.ok


def test_report_all_reports_every_racing_pair():
    detector = HappensBeforeDetector(report_all=True)
    races = [
        detector.feed(0, WriteAction(0, 0, "x", None, 1)),
        detector.feed(1, WriteAction(1, 1, "x", None, 2)),
        detector.feed(2, WriteAction(2, 2, "x", None, 3)),
    ]
    assert races[0] is None
    assert races[1] is not None and races[2] is not None


def test_sites_carry_held_locksets():
    outcome = _hb([
        AcquireAction(0, 0, "l"),
        WriteAction(0, 0, "x", None, 1),
        WriteAction(1, 1, "x", None, 2),
    ])
    race = outcome.races[0]
    assert race.prior.locks == frozenset({"l"})
    assert race.access.locks == frozenset()
