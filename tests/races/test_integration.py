"""Race detection end to end: kernel micro-programs, facade, reports.

The micro-programs run under the deterministic cooperative kernel with a
real :class:`VyrdTracer`, so the detectors consume exactly the records the
instrumentation layer produces (including spawn/join and lock events)."""

import json

import pytest

from repro import Kernel, Lock, RaceChecker, Vyrd, check_races
from repro.concurrency import SharedCell
from repro.core import Log, VyrdTracer
from repro.harness import run_program
from repro.races import (
    format_race_outcome,
    normalize_detectors,
    render_first_race,
    render_race_excerpt,
)


def _traced_kernel(seed=1):
    log = Log()
    tracer = VyrdTracer(log, level="view", log_locks=True, log_reads=True)
    return Kernel(seed=seed, tracer=tracer), log


def _racy_threads(cell):
    def body(ctx):
        value = yield cell.read()
        yield ctx.checkpoint()
        yield cell.write(value + 1)

    return body


def _locked_threads(cell, lock):
    def body(ctx):
        yield lock.acquire()
        value = yield cell.read()
        yield ctx.checkpoint()
        yield cell.write(value + 1)
        yield lock.release()

    return body


def test_racy_micro_program_is_caught_by_hb():
    kernel, log = _traced_kernel(seed=7)
    cell = SharedCell("counter", 0)
    for _ in range(2):
        kernel.spawn(_racy_threads(cell))
    kernel.run()
    outcome = check_races(log, detectors="hb")
    assert not outcome.ok
    race = outcome.races[0]
    assert race.loc == "counter"
    assert race.prior.tid != race.access.tid
    assert race.prior.seq < race.access.seq


def test_lock_protected_micro_program_is_silent():
    kernel, log = _traced_kernel(seed=7)
    cell = SharedCell("counter", 0)
    lock = Lock("guard")
    for _ in range(3):
        kernel.spawn(_locked_threads(cell, lock))
    kernel.run()
    outcome = check_races(log, detectors="both")
    assert outcome.ok, [str(r) for r in outcome.races]
    assert cell.peek() == 3


def test_dynamic_spawn_and_join_order_accesses():
    kernel, log = _traced_kernel(seed=3)
    cell = SharedCell("c", 0)

    def child(ctx):
        yield cell.write(1)

    def parent(ctx):
        yield cell.write(0)
        thread = ctx.spawn(child)
        yield ctx.join(thread)
        value = yield cell.read()
        yield cell.write(value + 1)

    kernel.spawn(parent)
    kernel.run()
    outcome = check_races(log, detectors="hb")
    assert outcome.ok, [str(r) for r in outcome.races]
    assert cell.peek() == 2


def test_unjoined_child_race_is_caught():
    kernel, log = _traced_kernel(seed=3)
    cell = SharedCell("c", 0)

    def child(ctx):
        yield cell.write(1)

    def parent(ctx):
        thread = ctx.spawn(child)  # noqa: F841 -- never joined
        yield ctx.checkpoint()
        yield cell.write(2)

    kernel.spawn(parent)
    kernel.run()
    outcome = check_races(log, detectors="hb")
    assert not outcome.ok
    assert outcome.races[0].loc == "c"


def test_run_program_buggy_reports_races_with_both_sites():
    result = run_program(
        "multiset-vector", buggy=True, num_threads=4, calls_per_thread=30,
        seed=0, races="both",
    )
    outcome = result.race_outcome
    assert not outcome.ok
    assert outcome.hb_races and outcome.lockset_races
    for race in outcome.races:
        assert race.prior.tid != race.access.tid
        assert race.prior.loc == race.access.loc == race.loc


def test_run_program_correct_is_hb_race_free():
    result = run_program(
        "multiset-vector", buggy=False, num_threads=4, calls_per_thread=20,
        seed=0, races="hb",
    )
    assert result.race_outcome.ok


def test_online_race_detection_matches_offline():
    online = run_program(
        "multiset-vector", buggy=True, num_threads=4, calls_per_thread=30,
        seed=0, races="both", online=True,
    )
    offline = check_races(online.log, detectors="both")
    pairs = lambda o: {(r.loc, r.detector, r.kind) for r in o.races}  # noqa: E731
    assert pairs(online.race_outcome) == pairs(offline)
    assert not online.race_outcome.ok


def test_vyrd_facade_check_races_requires_enabling():
    vyrd = Vyrd(spec_factory=lambda: None, mode="io")
    with pytest.raises(ValueError):
        vyrd.check_races()


def test_normalize_detectors_spellings_and_errors():
    assert normalize_detectors(True) == ("happens-before", "lockset")
    assert normalize_detectors("both") == ("happens-before", "lockset")
    assert normalize_detectors("hb") == ("happens-before",)
    assert normalize_detectors("eraser") == ("lockset",)
    assert normalize_detectors(["hb", "lockset"]) == ("happens-before", "lockset")
    with pytest.raises(ValueError):
        normalize_detectors("tsan")
    with pytest.raises(ValueError):
        normalize_detectors([])


def test_race_checker_stop_at_first():
    kernel, log = _traced_kernel(seed=7)
    cell_a, cell_b = SharedCell("a", 0), SharedCell("b", 0)

    def body(ctx):
        yield cell_a.write(1)
        yield ctx.checkpoint()
        yield cell_b.write(1)

    for _ in range(2):
        kernel.spawn(body)
    kernel.run()
    checker = RaceChecker(detectors="hb", stop_at_first=True)
    checker.feed(log)
    assert checker.stopped and checker.detected
    assert len(checker.finish().races) == 1


def test_outcome_to_dict_is_json_serializable():
    result = run_program(
        "multiset-vector", buggy=True, num_threads=4, calls_per_thread=30,
        seed=0, races="both",
    )
    payload = result.race_outcome.to_dict()
    text = json.dumps(payload)
    decoded = json.loads(text)
    assert decoded["ok"] is False
    assert decoded["detectors"] == ["happens-before", "lockset"]
    first = decoded["races"][0]
    assert {"loc", "kind", "detector", "prior", "access", "detail"} <= set(first)
    assert {"tid", "seq", "kind", "loc", "op_id", "locks"} <= set(first["prior"])


def test_reports_render_summary_and_excerpt():
    result = run_program(
        "multiset-vector", buggy=True, num_threads=4, calls_per_thread=30,
        seed=0, races="both",
    )
    outcome = result.race_outcome
    text = format_race_outcome(outcome, max_races=2)
    assert "RACES FOUND" in text
    assert "happens-before races:" in text and "lockset races:" in text
    assert "more race(s)" in text  # capped listing elides the rest

    excerpt = render_first_race(result.log, outcome)
    race = outcome.races[0]
    assert excerpt == render_race_excerpt(result.log, race, context=4)
    assert f"thread {race.prior.tid}" in excerpt
    assert f"thread {race.access.tid}" in excerpt
    assert "* marks the racing accesses" in excerpt
    # both racing rows are marked
    marked = [line for line in excerpt.splitlines() if "* | " in line]
    assert len(marked) == 2


def test_render_first_race_none_when_clean():
    result = run_program(
        "stringbuffer", buggy=False, num_threads=3, calls_per_thread=10,
        seed=2, races="both",
    )
    assert result.race_outcome.ok
    assert render_first_race(result.log, result.race_outcome) is None
    assert "RACE-FREE" in format_race_outcome(result.race_outcome)
