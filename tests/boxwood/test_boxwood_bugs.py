"""Detection of the Boxwood bugs: duplicated data nodes; torn dirty write."""

import random

from repro import Kernel, ViolationKind, Vyrd
from repro.boxwood import BLinkTree, BLinkTreeSpec, blinktree_view
from tests.conftest import find_detecting_seed


def _buggy_tree_run(seed, with_lookups=True):
    vyrd = Vyrd(spec_factory=BLinkTreeSpec, mode="view",
                impl_view_factory=blinktree_view, log_level="view")
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    tree = BLinkTree(order=4, buggy_duplicates=True)
    vt = vyrd.wrap(tree)

    def inserter(index):
        def body(ctx):
            rng = random.Random(seed * 17 + index)
            for i in range(12):
                yield from vt.insert(ctx, rng.randrange(5), (index, i))

        return body

    def reader(ctx):
        rng = random.Random(seed + 5)
        for _ in range(15):
            yield from vt.lookup(ctx, rng.randrange(5))

    kernel.spawn(inserter(0))
    kernel.spawn(inserter(1))
    if with_lookups:
        kernel.spawn(reader)
    kernel.run()
    return vyrd


def test_duplicate_data_nodes_detected_by_view():
    seed, outcome = find_detecting_seed(
        lambda s: _buggy_tree_run(s).check_offline_with_mode("view")
    )
    violation = outcome.first_violation
    assert violation.kind is ViolationKind.VIEW
    diff = violation.details["diff"]
    # a duplicated key shows up as a multi-element contribution tuple or a
    # version/count mismatch between viewI and viewS
    assert diff["differing (viewI, viewS)"] or diff["only_in_viewI"] or diff["only_in_viewS"]


def test_duplicate_data_nodes_eventually_io_visible():
    seed, outcome = find_detecting_seed(
        lambda s: _buggy_tree_run(s).check_offline_with_mode("io"),
        seeds=range(150),
    )
    assert outcome.first_violation.kind in (
        ViolationKind.OBSERVER,
        ViolationKind.IO,
    )


def test_view_beats_io_on_shared_traces():
    pairs = []
    for seed in range(60):
        vyrd = _buggy_tree_run(seed)
        io_outcome = vyrd.check_offline_with_mode("io")
        view_outcome = vyrd.check_offline_with_mode("view")
        if not io_outcome.ok and not view_outcome.ok:
            pairs.append(
                (view_outcome.detection_method_count, io_outcome.detection_method_count)
            )
    assert pairs, "bug never triggered in both modes"
    assert all(view_at <= io_at for view_at, io_at in pairs)
