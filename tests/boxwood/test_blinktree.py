"""B-link tree: sequential semantics, splits, concurrency, compression."""

import random

from repro import Kernel, Vyrd
from repro.boxwood import BLinkTree, BLinkTreeSpec, blinktree_view
from repro.concurrency import RoundRobinScheduler


def _sequential(tree, script):
    kernel = Kernel(scheduler=RoundRobinScheduler())
    results = []

    def body(ctx):
        yield from script(ctx, results)

    kernel.spawn(body)
    kernel.run()
    return results


def test_insert_lookup_delete_roundtrip():
    tree = BLinkTree(order=4)

    def script(ctx, results):
        results.append((yield from tree.insert(ctx, 10, "a")))
        results.append((yield from tree.lookup(ctx, 10)))
        results.append((yield from tree.delete(ctx, 10)))
        results.append((yield from tree.lookup(ctx, 10)))
        results.append((yield from tree.delete(ctx, 10)))

    assert _sequential(tree, script) == [True, "a", True, None, False]


def test_overwrite_bumps_version():
    tree = BLinkTree(order=4)

    def script(ctx, results):
        yield from tree.insert(ctx, 1, "v1")
        yield from tree.insert(ctx, 1, "v2")

    _sequential(tree, script)
    assert tree.contents() == {1: ("v2", 2)}


def test_reinsert_after_delete_restarts_version():
    tree = BLinkTree(order=4)

    def script(ctx, results):
        yield from tree.insert(ctx, 1, "v1")
        yield from tree.delete(ctx, 1)
        yield from tree.insert(ctx, 1, "v3")

    _sequential(tree, script)
    assert tree.contents() == {1: ("v3", 1)}


def test_splits_preserve_contents_and_structure():
    tree = BLinkTree(order=4)
    keys = list(range(40))
    random.Random(7).shuffle(keys)

    def script(ctx, results):
        for key in keys:
            yield from tree.insert(ctx, key, key * 2)

    _sequential(tree, script)
    assert tree.contents() == {k: (k * 2, 1) for k in range(40)}
    assert tree.check_structure() == []
    # splits actually happened: more than one leaf in the chain
    record = tree._nodes[tree.leftmost].cell.peek()
    assert record[4] is not None


def test_lookup_after_splits_finds_everything():
    tree = BLinkTree(order=2)

    def script(ctx, results):
        for key in (5, 1, 9, 3, 7, 2, 8, 4, 6, 0):
            yield from tree.insert(ctx, key, str(key))
        for key in range(10):
            results.append((yield from tree.lookup(ctx, key)))

    results = _sequential(tree, script)
    assert results == [str(k) for k in range(10)]


def test_compression_purges_tombstones():
    tree = BLinkTree(order=4)

    def script(ctx, results):
        for key in range(8):
            yield from tree.insert(ctx, key, key)
        for key in range(0, 8, 2):
            yield from tree.delete(ctx, key)
        results.append((yield from tree.compression_pass(ctx)))

    results = _sequential(tree, script)
    assert results == [True]
    assert tree.contents() == {k: (k, 1) for k in range(1, 8, 2)}
    # tombstoned entries are gone from the leaf chain
    nid = tree.leftmost
    while nid is not None:
        record = tree._nodes[nid].cell.peek()
        for key, dnid in record[2]:
            assert tree._data_cells[dnid].peek()[3], "dead entry survived purge"
        nid = record[4]


def test_concurrent_inserts_with_checker_and_compression():
    for seed in range(6):
        vyrd = Vyrd(spec_factory=BLinkTreeSpec, mode="view",
                    impl_view_factory=blinktree_view)
        kernel = Kernel(seed=seed, tracer=vyrd.tracer)
        tree = BLinkTree(order=4)
        vt = vyrd.wrap(tree)

        def worker(index):
            def body(ctx):
                rng = random.Random(seed * 100 + index)
                for i in range(25):
                    op = rng.choice(("insert", "insert", "delete", "lookup"))
                    key = rng.randrange(25)
                    if op == "insert":
                        yield from vt.insert(ctx, key, (index, i))
                    elif op == "delete":
                        yield from vt.delete(ctx, key)
                    else:
                        yield from vt.lookup(ctx, key)

            return body

        for i in range(4):
            kernel.spawn(worker(i))
        kernel.spawn(tree.compression_thread, daemon=True)
        kernel.run()
        outcome = vyrd.check_offline()
        assert outcome.ok, (seed, str(outcome.first_violation))
        assert tree.check_structure() == []


def test_root_growth_to_multiple_levels():
    tree = BLinkTree(order=2)

    def script(ctx, results):
        for key in range(30):
            yield from tree.insert(ctx, key, key)

    _sequential(tree, script)
    root_record = tree._nodes[tree.root.peek()].cell.peek()
    assert root_record[0] == "index"
    assert root_record[1] >= 2  # at least two index levels
    assert tree.contents() == {k: (k, 1) for k in range(30)}
