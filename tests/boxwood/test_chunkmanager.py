"""Chunk Manager: atomic handle store with versions."""

from repro import Kernel
from repro.boxwood import ChunkManager
from repro.concurrency import RoundRobinScheduler


def _run(script):
    kernel = Kernel(scheduler=RoundRobinScheduler())
    results = []

    def body(ctx):
        yield from script(ctx, results)

    kernel.spawn(body)
    kernel.run()
    return results


def test_allocate_unique_handles():
    chunks = ChunkManager()
    handles = {chunks.allocate() for _ in range(10)}
    assert len(handles) == 10


def test_read_unwritten_handle_is_none():
    chunks = ChunkManager()
    handle = chunks.allocate()

    def script(ctx, results):
        results.append((yield from chunks.read(ctx, handle)))

    assert _run(script) == [None]
    assert chunks.peek(handle) is None


def test_write_then_read_round_trip():
    chunks = ChunkManager()
    handle = chunks.allocate()

    def script(ctx, results):
        yield from chunks.write(ctx, handle, (1, 2, 3))
        results.append((yield from chunks.read(ctx, handle)))

    assert _run(script) == [(1, 2, 3)]
    assert chunks.peek(handle) == (1, 2, 3)
    assert handle in chunks.known_handles()


def test_version_increments_per_write():
    chunks = ChunkManager()
    handle = chunks.allocate()

    def script(ctx, results):
        yield from chunks.write(ctx, handle, (1,))
        yield from chunks.write(ctx, handle, (2,))

    _run(script)
    _, ver_cell = chunks._cells_for(handle)
    assert ver_cell.peek() == 2


def test_concurrent_writes_are_atomic():
    """Whole-chunk writes: a reader never observes a mix of two buffers."""
    chunks = ChunkManager()
    handle = chunks.allocate()

    def writer(value):
        def body(ctx):
            for _ in range(5):
                yield from chunks.write(ctx, handle, (value,) * 4)

        return body

    observed = set()

    def reader(ctx):
        for _ in range(10):
            data = yield from chunks.read(ctx, handle)
            if data is not None:
                observed.add(data)

    for seed in range(10):
        kernel = Kernel(seed=seed)
        kernel.spawn(writer(1))
        kernel.spawn(writer(2))
        kernel.spawn(reader)
        kernel.run()
    assert observed <= {(1, 1, 1, 1), (2, 2, 2, 2)}
