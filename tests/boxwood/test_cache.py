"""Boxwood Cache: Fig. 8 semantics, invariants, and the real bug."""

import random

from repro import Kernel, ViolationKind, Vyrd
from repro.boxwood import (
    BoxwoodCache,
    ChunkManager,
    StoreSpec,
    cache_invariants,
    cache_view,
)
from repro.concurrency import RoundRobinScheduler
from tests.conftest import find_detecting_seed

BLOCK = 4


def _setup(buggy=False):
    chunks = ChunkManager()
    cache = BoxwoodCache(chunks, block_size=BLOCK, buggy_dirty_write=buggy)
    return chunks, cache


def _run(cache, script):
    kernel = Kernel(scheduler=RoundRobinScheduler())
    results = []

    def body(ctx):
        yield from script(ctx, results)

    kernel.spawn(body)
    kernel.run()
    return results


def test_write_read_through_cache():
    chunks, cache = _setup()
    handle = chunks.allocate()

    def script(ctx, results):
        results.append((yield from cache.write(ctx, handle, (1, 2, 3, 4))))
        results.append((yield from cache.read(ctx, handle)))

    assert _run(cache, script) == [True, (1, 2, 3, 4)]
    # dirty: not yet on the chunk manager
    assert chunks.peek(handle) is None


def test_flush_writes_back_and_moves_to_clean():
    chunks, cache = _setup()
    handle = chunks.allocate()

    def script(ctx, results):
        yield from cache.write(ctx, handle, (9, 9, 9, 9))
        yield from cache.flush(ctx)
        results.append((yield from cache.read(ctx, handle)))

    assert _run(cache, script) == [(9, 9, 9, 9)]
    assert chunks.peek(handle) == (9, 9, 9, 9)
    assert cache._dirty_cells[handle].peek() is None
    assert cache._clean_cells[handle].peek() is not None


def test_read_miss_fills_from_chunks():
    chunks, cache = _setup()
    handle = chunks.allocate()

    def prime(ctx, results):
        yield from chunks.write(ctx, handle, (5, 6, 7, 8))

    _run(cache, prime)

    def script(ctx, results):
        results.append((yield from cache.read(ctx, handle)))

    assert _run(cache, script) == [(5, 6, 7, 8)]
    assert cache._clean_cells[handle].peek() is not None  # installed clean


def test_evict_drops_entry_after_writeback():
    chunks, cache = _setup()
    handle = chunks.allocate()

    def script(ctx, results):
        yield from cache.write(ctx, handle, (1, 1, 1, 1))
        yield from cache.evict(ctx, handle)
        results.append((yield from cache.read(ctx, handle)))

    assert _run(cache, script) == [(1, 1, 1, 1)]
    assert chunks.peek(handle) == (1, 1, 1, 1)


def test_reclaim_drops_all_clean_entries():
    chunks, cache = _setup()
    handle = chunks.allocate()

    def script(ctx, results):
        yield from cache.write(ctx, handle, (2, 2, 2, 2))
        yield from cache.flush(ctx)
        yield from cache.reclaim_clean(ctx)

    _run(cache, script)
    assert cache._clean_cells[handle].peek() is None
    assert chunks.peek(handle) == (2, 2, 2, 2)


def test_dirty_rewrite_hits_branch_three():
    chunks, cache = _setup()
    handle = chunks.allocate()

    def script(ctx, results):
        yield from cache.write(ctx, handle, (1, 1, 1, 1))
        yield from cache.write(ctx, handle, (2, 2, 2, 2))  # branch 3
        results.append((yield from cache.read(ctx, handle)))

    assert _run(cache, script) == [(2, 2, 2, 2)]


def _concurrent_run(seed, buggy):
    vyrd = Vyrd(
        spec_factory=StoreSpec,
        mode="view",
        impl_view_factory=lambda: cache_view(BLOCK),
        invariants=cache_invariants(BLOCK),
    )
    kernel = Kernel(seed=seed, tracer=vyrd.tracer)
    chunks, cache = _setup(buggy)
    vc = vyrd.wrap(cache)
    handle = chunks.allocate()

    def writer(ctx, r):
        for _ in range(8):
            yield from vc.write(ctx, handle, tuple(r.randrange(9) for _ in range(BLOCK)))

    def flusher(ctx):
        for _ in range(8):
            yield from vc.flush(ctx)

    kernel.spawn(writer, random.Random(seed))
    kernel.spawn(writer, random.Random(seed + 1000))
    kernel.spawn(flusher)
    kernel.run()
    return vyrd.check_offline()


def test_correct_cache_clean_under_contention():
    for seed in range(15):
        outcome = _concurrent_run(seed, buggy=False)
        assert outcome.ok, (seed, str(outcome.first_violation))


def test_buggy_cache_detected_via_invariant_or_view():
    seed, outcome = find_detecting_seed(lambda s: _concurrent_run(s, True))
    assert outcome.first_violation.kind in (
        ViolationKind.INVARIANT,
        ViolationKind.VIEW,
    )


def test_paper_bug_scenario_clean_matches_chunk_invariant():
    """Force the paper's exact interleaving with a scripted schedule search:
    a dirty re-write torn by a concurrent flush violates invariant (i)."""
    hits = 0
    for seed in range(60):
        outcome = _concurrent_run(seed, buggy=True)
        if not outcome.ok and outcome.first_violation.kind is ViolationKind.INVARIANT:
            assert "clean-matches-chunk" in outcome.first_violation.message
            hits += 1
    assert hits > 0, "invariant (i) never fired across seeds"
