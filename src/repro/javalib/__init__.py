"""Java class-library ports with their known concurrency bugs (section 7.4.1).

* :class:`JavaVector` -- ``java.util.Vector`` subset; the Table 1 bug
  "Taking length non-atomically in lastIndexOf()" is enabled with
  ``buggy_last_index_of=True``.  An observer-only bug: view refinement has
  no edge over I/O refinement here.
* :class:`StringBufferSystem` -- named ``StringBuffer`` family; the Table 1
  bug "Copying from an unprotected StringBuffer" is enabled with
  ``buggy_append=True``.  A state-corrupting bug: view refinement detects it
  at the corrupting commit.
"""

from .spec import StringBufferSpec, VectorSpec
from .stringbuffer import (
    StringBufferSystem,
    stringbuffer_replay_registry,
    stringbuffer_view,
)
from .vector import IOOBE, JavaVector, vector_view

__all__ = [
    "IOOBE",
    "JavaVector",
    "StringBufferSpec",
    "StringBufferSystem",
    "VectorSpec",
    "stringbuffer_replay_registry",
    "stringbuffer_view",
    "vector_view",
]
