"""A port of ``java.util.StringBuffer`` with its known concurrency bug.

The paper (section 7.4.1) checks ``StringBuffer`` against the error reported
by Flanagan/Freund: ``append(StringBuffer sb)`` reads ``sb.length()`` (one
synchronized call) and then copies ``sb``'s characters (a second synchronized
call) **without holding ``sb``'s monitor across the two** -- "Copying from an
unprotected StringBuffer" in Table 1.  If ``sb`` shrinks in between, the copy
reads past ``sb``'s logical length into stale characters (Java's ``delete``
shifts characters left and decrements the count, leaving garbage beyond the
new length), silently corrupting the destination.

This is a *state-corrupting* bug, so view refinement catches it at the
append's commit action, long before any observer happens to read the
corrupted region -- the shape Table 1 reports (e.g. 195 vs 90 methods at 4
threads).

The verified "data structure" is a small system of named buffers
(:class:`StringBufferSystem`), because the bug inherently involves two
instances: a destination being appended to and a source being shrunk.

Shared state: per buffer ``b``, ``sb.<b>.len`` plus ``sb.<b>.data[i]`` cells.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..concurrency import Lock, SharedCell, ThreadCtx
from ..core import FunctionView, operation


class _Buffer:
    __slots__ = ("name", "length", "data", "lock", "capacity")

    def __init__(self, name: str, capacity: int):
        self.name = name
        self.capacity = capacity
        self.length = SharedCell(f"sb.{name}.len", 0)
        self.data = [SharedCell(f"sb.{name}.data[{i}]", "\0") for i in range(capacity)]
        self.lock = Lock(f"sb.{name}")


class StringBufferSystem:
    """A family of named string buffers supporting the paper's scenario.

    ``coarse_logging=True`` switches the mutators to the coarse-grained
    logging of paper section 6.2: instead of one logged write per character,
    each lock-protected group of updates is logged as a *single*
    :class:`~repro.core.actions.ReplayAction` (tag ``"sb.set"``), replayed by
    the routine from :func:`stringbuffer_replay_registry`.  The paper's
    precondition -- the programmer ensures the group is atomic -- holds here
    because every group runs under the buffer's monitor; accordingly the
    coarse mode refuses to combine with ``buggy_append``.
    """

    def __init__(self, names: Tuple[str, ...] = ("dst", "src"), capacity: int = 64,
                 buggy_append: bool = False, coarse_logging: bool = False):
        if buggy_append and coarse_logging:
            raise ValueError(
                "coarse logging presumes the logged groups are atomic; the "
                "buggy append violates exactly that"
            )
        self.capacity = capacity
        self.buggy_append = buggy_append
        self.coarse_logging = coarse_logging
        self.buffers: Dict[str, _Buffer] = {
            name: _Buffer(name, capacity) for name in names
        }

    # -- coarse-grained logging helpers (section 6.2) -----------------------

    def _poke_content(self, buffer: _Buffer, text: str) -> None:
        """Apply new contents directly (atomic within one kernel step; only
        used under the buffer's monitor in coarse mode)."""
        for i, char in enumerate(text):
            buffer.data[i].poke(char)
        buffer.length.poke(len(text))

    def _coarse_set(self, ctx: ThreadCtx, buffer: _Buffer, text: str,
                    commit: bool = False):
        self._poke_content(buffer, text)
        yield ctx.replay("sb.set", (buffer.name, text), commit=commit)

    # -- mutators -----------------------------------------------------------

    @operation
    def append_str(self, ctx: ThreadCtx, buf: str, text: str):
        """Append a constant string to buffer ``buf``.  Fails when full."""
        buffer = self.buffers[buf]
        yield buffer.lock.acquire()
        length = yield buffer.length.read()
        if length + len(text) > buffer.capacity:
            yield ctx.commit()
            yield buffer.lock.release()
            return False
        if self.coarse_logging:
            current = "".join(buffer.data[i].peek() for i in range(length))
            yield from self._coarse_set(ctx, buffer, current + text, commit=True)
        else:
            for offset, char in enumerate(text):
                yield buffer.data[length + offset].write(char)
            yield buffer.length.write(length + len(text), commit=True)
        yield buffer.lock.release()
        return True

    @operation
    def append_buffer(self, ctx: ThreadCtx, dst: str, src: str):
        """``dst.append(src)``: copy ``src``'s current contents onto ``dst``.

        Correct variant: ``src``'s monitor is held across the length read
        and the character copy.  Buggy variant: length and characters are
        fetched by *separate* synchronized calls, so a concurrent
        ``delete`` on ``src`` between them makes the copy read stale
        characters beyond ``src``'s new length.
        """
        destination = self.buffers[dst]
        source = self.buffers[src]
        # The method itself is synchronized on the destination (Java).
        yield destination.lock.acquire()
        if self.buggy_append:
            # sb.length(): its own synchronized call on src ...
            yield source.lock.acquire()
            src_len = yield source.length.read()
            yield source.lock.release()
            # ... then a window in which src may shrink ...
            yield ctx.checkpoint()
            # ... then sb.getChars(0, src_len, ...): synchronized on src
            # again, but the stale src_len is trusted (the bug: characters
            # beyond src's new length are stale garbage).
            yield source.lock.acquire()
            chars = []
            for i in range(src_len):
                char = yield source.data[i].read()
                chars.append(char)
        else:
            # Correct variant: src's monitor is held across the length read,
            # the copy, and the destination commit, so the appended snapshot
            # is exactly src's contents at the commit action.
            yield source.lock.acquire()
            src_len = yield source.length.read()
            chars = []
            for i in range(src_len):
                char = yield source.data[i].read()
                chars.append(char)
        dst_len = yield destination.length.read()
        if dst_len + len(chars) > destination.capacity:
            yield ctx.commit()
            yield source.lock.release()
            yield destination.lock.release()
            return False
        if self.coarse_logging:
            current = "".join(destination.data[i].peek() for i in range(dst_len))
            yield from self._coarse_set(
                ctx, destination, current + "".join(chars), commit=True
            )
        else:
            for offset, char in enumerate(chars):
                yield destination.data[dst_len + offset].write(char)
            yield destination.length.write(dst_len + len(chars), commit=True)
        yield source.lock.release()
        yield destination.lock.release()
        return True

    @operation
    def delete(self, ctx: ThreadCtx, buf: str, start: int, end: int):
        """``delete(start, end)``: shift the tail left, shrink the length.

        Like Java, characters beyond the new length are left in place
        (stale).  The shifts plus the length write are a commit block under
        the buffer's monitor; the length write is the commit action.
        """
        buffer = self.buffers[buf]
        yield buffer.lock.acquire()
        length = yield buffer.length.read()
        if start < 0 or start > end or start > length:
            yield ctx.commit()
            yield buffer.lock.release()
            return False
        end = min(end, length)
        removed = end - start
        if self.coarse_logging:
            current = "".join(buffer.data[i].peek() for i in range(length))
            # Java-style: shift, leaving stale characters beyond the new
            # length in the backing array (poke keeps them, the replay
            # routine only materializes up to the new length -- the view
            # reads no further either way).
            yield from self._coarse_set(
                ctx, buffer, current[:start] + current[end:], commit=True
            )
        else:
            yield ctx.begin_commit_block()
            for i in range(start, length - removed):
                char = yield buffer.data[i + removed].read()
                yield buffer.data[i].write(char)
            yield buffer.length.write(length - removed)
            yield ctx.end_commit_block(commit=True)
        yield buffer.lock.release()
        return True

    # -- observers --------------------------------------------------------------

    @operation
    def to_string(self, ctx: ThreadCtx, buf: str):
        buffer = self.buffers[buf]
        yield buffer.lock.acquire()
        length = yield buffer.length.read()
        chars = []
        for i in range(length):
            char = yield buffer.data[i].read()
            chars.append(char)
        yield buffer.lock.release()
        return "".join(chars)

    @operation
    def length_of(self, ctx: ThreadCtx, buf: str):
        buffer = self.buffers[buf]
        yield buffer.lock.acquire()
        length = yield buffer.length.read()
        yield buffer.lock.release()
        return length

    # -- direct helpers -----------------------------------------------------------

    def text(self, buf: str) -> str:
        """Current contents of ``buf`` (post-run assertions only)."""
        buffer = self.buffers[buf]
        n = buffer.length.peek()
        return "".join(buffer.data[i].peek() for i in range(n))

    VYRD_METHODS = {
        "append_str": "mutator",
        "append_buffer": "mutator",
        "delete": "mutator",
        "to_string": "observer",
        "length_of": "observer",
    }


def stringbuffer_replay_registry() -> dict:
    """Replay routines for the coarse-grained log entries (section 6.2).

    ``"sb.set"`` carries ``(buffer_name, new_text)``; the routine rebuilds
    the same shared-variable names fine-grained logging would have written,
    so :func:`stringbuffer_view` works unchanged on coarse logs."""

    def set_content(state, payload):
        name, text = payload
        for i, char in enumerate(text):
            state[f"sb.{name}.data[{i}]"] = char
        state[f"sb.{name}.len"] = len(text)

    return {"sb.set": set_content}


def stringbuffer_view(names: Tuple[str, ...] = ("dst", "src")) -> FunctionView:
    """``viewI``: the string contents of every buffer."""

    def compute(state) -> dict:
        result = {}
        for name in names:
            length = state.get(f"sb.{name}.len", 0)
            result[name] = "".join(
                state.get(f"sb.{name}.data[{i}]", "\0") for i in range(length)
            )
        return result

    return FunctionView(compute)
