"""Specifications for the Java library ports (paper section 7.4.1).

Both specs are method-atomic and deterministic; exceptional terminations are
special return values (``IOOBE``), which the specs never produce -- observing
one is an I/O refinement violation, exactly how the paper's tests expose the
``lastIndexOf`` bug.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core import VIEW_ABSENT, SpecReject, Specification, mutator, observer
from .vector import IOOBE


class VectorSpec(Specification):
    """Specification of the verified ``java.util.Vector`` subset."""

    tracks_view_delta = True

    def __init__(self, capacity: int = 32):
        self.capacity = capacity
        self.items: list = []

    @mutator
    def add_element(self, obj, *, result):
        if result is True:
            if len(self.items) >= self.capacity:
                raise SpecReject("add_element succeeded on a full vector")
            self.items.append(obj)
            self._touch("contents")
        elif result is False:
            if len(self.items) < self.capacity:
                raise SpecReject("add_element failed though the vector has room")
        else:
            raise SpecReject(f"add_element must return a bool, not {result!r}")

    @mutator
    def remove_all_elements(self, *, result):
        if result is not None:
            raise SpecReject(f"remove_all_elements returns nothing, got {result!r}")
        self.items.clear()
        self._touch("contents")

    def candidate_results(self, method, args):
        """Plausible returns for incomplete operations in recovered logs."""
        if method == "add_element":
            return (True, False)
        if method == "remove_all_elements":
            return (None,)
        return None

    @observer
    def size(self):
        return len(self.items)

    @observer
    def element_at(self, index: int):
        if index < 0 or index >= len(self.items):
            return IOOBE
        return self.items[index]

    @observer
    def last_index_of(self, obj):
        for i in range(len(self.items) - 1, -1, -1):
            if self.items[i] == obj:
                return i
        return -1

    def view(self) -> dict:
        return {"contents": tuple(self.items)}

    def view_at(self, key):
        return tuple(self.items) if key == "contents" else VIEW_ABSENT

    def describe(self) -> str:
        return f"vector = {self.items!r}"


class StringBufferSpec(Specification):
    """Specification of the named-buffer system: each buffer is a string."""

    tracks_view_delta = True

    def __init__(self, names: Tuple[str, ...] = ("dst", "src"), capacity: int = 64):
        self.capacity = capacity
        self.strings: Dict[str, str] = {name: "" for name in names}

    @mutator
    def append_str(self, buf, text, *, result):
        current = self.strings[buf]
        fits = len(current) + len(text) <= self.capacity
        if result is True:
            if not fits:
                raise SpecReject("append_str succeeded past capacity")
            self.strings[buf] = current + text
            self._touch(buf)
        elif result is False:
            if fits:
                raise SpecReject("append_str failed though the buffer has room")
        else:
            raise SpecReject(f"append_str must return a bool, not {result!r}")

    @mutator
    def append_buffer(self, dst, src, *, result):
        addition = self.strings[src]
        current = self.strings[dst]
        fits = len(current) + len(addition) <= self.capacity
        if result is True:
            if not fits:
                raise SpecReject("append_buffer succeeded past capacity")
            self.strings[dst] = current + addition
            self._touch(dst)
        elif result is False:
            if fits:
                raise SpecReject("append_buffer failed though the buffer has room")
        else:
            raise SpecReject(f"append_buffer must return a bool, not {result!r}")

    @mutator
    def delete(self, buf, start, end, *, result):
        current = self.strings[buf]
        valid = 0 <= start <= end and start <= len(current)
        if result is True:
            if not valid:
                raise SpecReject(f"delete({start}, {end}) succeeded on {current!r}")
            end = min(end, len(current))
            self.strings[buf] = current[:start] + current[end:]
            self._touch(buf)
        elif result is False:
            if valid:
                raise SpecReject(f"delete({start}, {end}) failed on {current!r}")
        else:
            raise SpecReject(f"delete must return a bool, not {result!r}")

    def candidate_results(self, method, args):
        """Plausible returns for incomplete operations in recovered logs."""
        if method in ("append_str", "append_buffer", "delete"):
            return (True, False)
        return None

    @observer
    def to_string(self, buf):
        return self.strings[buf]

    @observer
    def length_of(self, buf):
        return len(self.strings[buf])

    def view(self) -> dict:
        return dict(self.strings)

    def view_at(self, buf):
        return self.strings[buf] if buf in self.strings else VIEW_ABSENT

    def describe(self) -> str:
        return f"buffers = {self.strings!r}"
