"""A port of ``java.util.Vector`` with its known concurrency bug.

The paper (section 7.4.1) checks ``java.util.Vector`` against the
concurrency error reported by Flanagan/Freund and Wang/Stoller: the
``lastIndexOf(Object)`` entry point reads ``elementCount`` *outside* any
synchronization and passes ``elementCount - 1`` as the starting index to the
synchronized ``lastIndexOf(Object, int)``.  If another thread's
``removeAllElements`` runs between the read and the lock acquisition, the
inner method's bounds check throws ``IndexOutOfBoundsException`` (modelled
here -- like all exceptional terminations -- as the special return value
:data:`IOOBE`), or a stale index produces a wrong answer.

Table 1 calls this "Taking length non-atomically in lastIndexOf()" and notes
it is an *observer* bug: the data structure state is never corrupted, so
view refinement has no advantage over I/O refinement for it -- a shape our
benchmarks reproduce.

Layout of shared state: ``vec.count`` plus one ``vec.data[i]`` cell per
backing-array slot (the backing array does not shrink, exactly like Java's).
All synchronized methods share the single vector lock.
"""

from __future__ import annotations

from ..concurrency import Lock, SharedCell, ThreadCtx
from ..core import FunctionView, operation

IOOBE = "IndexOutOfBoundsException"


class JavaVector:
    """``java.util.Vector`` subset: add / removeAll / elementAt / size /
    lastIndexOf, with per-instance monitor semantics."""

    def __init__(self, capacity: int = 32, buggy_last_index_of: bool = False):
        self.capacity = capacity
        self.buggy_last_index_of = buggy_last_index_of
        self.count = SharedCell("vec.count", 0)
        self.data = [SharedCell(f"vec.data[{i}]", None) for i in range(capacity)]
        self.lock = Lock("vec")

    # -- mutators ------------------------------------------------------------

    @operation
    def add_element(self, ctx: ThreadCtx, obj):
        """``addElement``: append at index ``count``.  Fails when full."""
        yield self.lock.acquire()
        count = yield self.count.read()
        if count >= self.capacity:
            yield ctx.commit()
            yield self.lock.release()
            return False
        yield self.data[count].write(obj)
        yield self.count.write(count + 1, commit=True)
        yield self.lock.release()
        return True

    @operation
    def remove_all_elements(self, ctx: ThreadCtx):
        """``removeAllElements``: null out references, reset the count.

        The null writes plus the count reset form a commit block (they are
        atomic under the vector lock); the count write is the commit action.
        """
        yield self.lock.acquire()
        count = yield self.count.read()
        yield ctx.begin_commit_block()
        for i in range(count):
            yield self.data[i].write(None)
        yield self.count.write(0)
        yield ctx.end_commit_block(commit=True)
        yield self.lock.release()
        return None

    # -- observers --------------------------------------------------------------

    @operation
    def size(self, ctx: ThreadCtx):
        yield self.lock.acquire()
        count = yield self.count.read()
        yield self.lock.release()
        return count

    @operation
    def element_at(self, ctx: ThreadCtx, index: int):
        """``elementAt``: the element, or :data:`IOOBE` when out of range."""
        yield self.lock.acquire()
        count = yield self.count.read()
        if index < 0 or index >= count:
            yield self.lock.release()
            return IOOBE
        value = yield self.data[index].read()
        yield self.lock.release()
        return value

    @operation
    def last_index_of(self, ctx: ThreadCtx, obj):
        """``lastIndexOf(Object)``: index of the last occurrence, or -1.

        Correct variant: the starting index is derived from ``count``
        *inside* the synchronized region.  Buggy variant (Java's actual
        code): ``count`` is read before synchronizing, so the inner bounds
        check can observe a smaller vector and "throw" :data:`IOOBE`.
        """
        if self.buggy_last_index_of:
            # vyrd: ignore[VY007] -- the seeded Table-1 bug VY007 exists to
            # catch: Java's unsynchronized count read; kept for the harness
            count = yield self.count.read()  # BUG: unsynchronized read
            start = count - 1
            return (yield from self._last_index_of_inner(ctx, obj, start))
        yield self.lock.acquire()
        count = yield self.count.read()
        result = yield from self._scan_down(obj, count - 1)
        yield self.lock.release()
        return result

    def _last_index_of_inner(self, ctx: ThreadCtx, obj, index: int):
        """``lastIndexOf(Object, int)``: synchronized, bounds-checked."""
        yield self.lock.acquire()
        count = yield self.count.read()
        if index >= count:
            yield self.lock.release()
            return IOOBE
        result = yield from self._scan_down(obj, index)
        yield self.lock.release()
        return result

    def _scan_down(self, obj, start: int):
        for i in range(start, -1, -1):
            value = yield self.data[i].read()
            if value == obj:
                return i
        return -1

    # -- direct helpers ---------------------------------------------------------

    def contents(self) -> tuple:
        """Current elements, read directly (post-run assertions only)."""
        n = self.count.peek()
        return tuple(self.data[i].peek() for i in range(n))

    VYRD_METHODS = {
        "add_element": "mutator",
        "remove_all_elements": "mutator",
        "size": "observer",
        "element_at": "observer",
        "last_index_of": "observer",
    }


def vector_view() -> FunctionView:
    """``viewI`` for :class:`JavaVector`: the element sequence up to count."""

    def compute(state) -> dict:
        count = state.get("vec.count", 0)
        return {
            "contents": tuple(state.get(f"vec.data[{i}]") for i in range(count))
        }

    return FunctionView(compute)
