"""An Atomizer-style dynamic atomicity checker (comparison baseline).

The paper positions refinement against *atomicity* checkers such as
Atomizer [Flanagan & Freund, POPL 2004]: atomicity requires every method
execution to be equivalent to some serial execution of the *implementation
itself*, established via Lipton's reduction -- each execution's actions must
fit the pattern ``(R|B)* [N] (L|B)*`` where lock acquires are right-movers
(R), releases are left-movers (L), race-free accesses are both-movers (B)
and racy accesses are non-movers (N).

The paper's central comparative claim (sections 1, 2.1 and 8) is that
reduction is *too strict* for real data structures: a method that performs
lock-protected writes in **two separate critical sections** -- the
``W(p) W(q)`` pattern of section 8, the two ``FindSlot`` reservations of
``InsertPair``, the B-link tree's node restructuring -- cannot be reduced
(an acquire follows a release), yet refines a perfectly good specification
because only one of the writes changes the abstract state.

This module implements the baseline so that claim can be *measured*
(``benchmarks/bench_atomicity_comparison.py``): runs that VYRD's refinement
checker accepts are flagged by the atomicity checker, and the flags
concentrate exactly on the multi-critical-section methods the paper names.

Two passes over a log recorded with ``VyrdTracer(log_locks=True,
log_reads=True)``:

1. **Race analysis**, delegated to the shared lockset engine of
   :mod:`repro.races.lockset` in its ``"strict"`` discipline (no
   initialization or read-share states): for every shared location, the
   candidate lockset is intersected at each access with the locks the
   accessing thread holds -- regular locks and write-mode RW-locks protect
   reads and writes, read-mode RW-locks protect reads only.  A location
   accessed by more than one thread whose candidate set drains empty is
   *racy*; accesses to it are non-movers.  (The full Eraser state machine
   lives in :class:`repro.races.LocksetEngine` too; dynamic race detection
   proper is :mod:`repro.races`.)
2. **Reduction check** per method execution against ``(R|B)* [N] (L|B)*``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Set

from ..core.actions import (
    AcquireAction,
    CallAction,
    ReadAction,
    ReleaseAction,
    ReturnAction,
    Signature,
    WriteAction,
)
from ..core.log import Log
from ..races.lockset import STRICT, compute_racy_locs


@dataclass
class AtomicityViolation:
    """One method execution that could not be reduced to an atomic block."""

    signature: Signature
    seq: int                   # log position of the offending action
    reason: str
    racy_locs: Set[str] = field(default_factory=set)

    def __str__(self) -> str:
        return f"non-atomic@{self.seq} [{self.signature}]: {self.reason}"


@dataclass
class AtomicityOutcome:
    """Result of checking one log for method atomicity."""

    executions_checked: int = 0
    violations: List[AtomicityViolation] = field(default_factory=list)
    racy_locs: Set[str] = field(default_factory=set)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def flagged_methods(self) -> Set[str]:
        return {v.signature.method for v in self.violations}

    def summary(self) -> str:
        if self.ok:
            return f"atomic: {self.executions_checked} executions reduced"
        return (
            f"{len(self.violations)} non-atomic execution(s) out of "
            f"{self.executions_checked}; methods: "
            f"{sorted(self.flagged_methods)}; racy locations: "
            f"{len(self.racy_locs)}"
        )


def _compute_racy_locs(log: Log) -> Set[str]:
    """Pass 1: strict lockset analysis (shared engine, no Eraser states)."""
    return compute_racy_locs(log, discipline=STRICT)


class AtomicityChecker:
    """Dynamic reduction-based atomicity checking of a VYRD log.

    The log must contain lock and read events
    (``VyrdTracer(log_locks=True, log_reads=True)``).  Commit annotations
    and coarse entries are ignored -- atomicity, unlike refinement, knows
    nothing about specifications.
    """

    def __init__(self, stop_at_first: bool = False):
        self.stop_at_first = stop_at_first

    def check(self, log: Log) -> AtomicityOutcome:
        outcome = AtomicityOutcome()
        outcome.racy_locs = _compute_racy_locs(log)

        # phase per open execution: "pre" -> (optional N) -> "post"
        @dataclass
        class _Frame:
            method: str
            args: tuple
            phase: str = "pre"
            used_non_mover: bool = False
            failed: bool = False

        frames: Dict[int, _Frame] = {}  # tid -> open frame

        def flag(tid: int, seq: int, reason: str, racy=frozenset()) -> None:
            frame = frames[tid]
            if frame.failed:
                return
            frame.failed = True
            outcome.violations.append(
                AtomicityViolation(
                    Signature(tid, frame.method, frame.args, None),
                    seq,
                    reason,
                    set(racy),
                )
            )

        for seq, action in enumerate(log):
            tid = getattr(action, "tid", None)
            if isinstance(action, CallAction):
                frames[action.tid] = _Frame(action.method, action.args)
                continue
            if isinstance(action, ReturnAction):
                frames.pop(action.tid, None)
                outcome.executions_checked += 1
                if self.stop_at_first and outcome.violations:
                    return outcome
                continue
            frame = frames.get(tid)
            if frame is None or frame.failed:
                continue  # outside any public method (daemons, setup)
            if isinstance(action, AcquireAction):
                if frame.phase == "post":
                    flag(
                        tid, seq,
                        f"lock {action.lock!r} acquired after a release: a "
                        "right-mover follows a left-mover (the section 8 "
                        "W(p) W(q) pattern; reduction fails)",
                    )
            elif isinstance(action, ReleaseAction):
                frame.phase = "post"
            elif isinstance(action, (ReadAction, WriteAction)):
                if action.loc in outcome.racy_locs:
                    if frame.used_non_mover or frame.phase == "post":
                        flag(
                            tid, seq,
                            f"racy access to {action.loc!r} cannot serve as "
                            "the single non-mover",
                            racy={action.loc},
                        )
                    else:
                        frame.used_non_mover = True
                        frame.phase = "post"
        return outcome


def check_atomicity(log: Log, stop_at_first: bool = False) -> AtomicityOutcome:
    """Convenience wrapper: run the two-pass atomicity check on ``log``."""
    return AtomicityChecker(stop_at_first=stop_at_first).check(log)
