"""Atomicity checking baseline (the paper's section 8 comparison).

An Atomizer-style reduction + lockset checker over VYRD logs recorded with
lock/read events.  Exists to *measure* the paper's claim that atomicity is
strictly more restrictive than refinement on real data structures.
"""

from .atomizer import (
    AtomicityChecker,
    AtomicityOutcome,
    AtomicityViolation,
    check_atomicity,
)

__all__ = [
    "AtomicityChecker",
    "AtomicityOutcome",
    "AtomicityViolation",
    "check_atomicity",
]
