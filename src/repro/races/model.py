"""Data model of the race-detection subsystem.

A *data race* is a pair of accesses to the same shared location by two
different threads, at least one a write, that are unordered by the
happens-before relation (or, under the lockset discipline, not consistently
protected by a common lock).  Both detectors report the same shape:
an :class:`AccessSite` for each end of the pair, wrapped in a :class:`Race`,
collected into a :class:`RaceOutcome`.

Sites carry everything needed to render a Fig. 6-style two-lane excerpt
through :mod:`repro.races.report`: the thread, the log sequence number, the
enclosing method execution and the locks held at the access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Set

#: Race kinds, named after the ordered pair (prior access, racing access).
WRITE_WRITE = "write-write"
WRITE_READ = "write-read"
READ_WRITE = "read-write"
#: Lockset-only kind: the candidate set drained while the location was in
#: the read-shared state (a write-read pair Eraser proper would not report).
READ_SHARED = "read-shared"

HB_DETECTOR = "happens-before"
LOCKSET_DETECTOR = "lockset"


@dataclass(frozen=True)
class AccessSite:
    """One end of a racing pair: who touched what, where in the log."""

    tid: int
    seq: int                      # global log sequence number
    kind: str                     # "read" | "write"
    loc: str
    op_id: Optional[int]          # enclosing method execution, if any
    locks: FrozenSet[str] = frozenset()  # locks held at the access

    def __str__(self) -> str:
        held = "{" + ", ".join(sorted(self.locks)) + "}" if self.locks else "{}"
        op = f" op{self.op_id}" if self.op_id is not None else ""
        return f"t{self.tid}@{self.seq} {self.kind} {self.loc}{op} holding {held}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tid": self.tid,
            "seq": self.seq,
            "kind": self.kind,
            "loc": self.loc,
            "op_id": self.op_id,
            "locks": sorted(self.locks),
        }


@dataclass(frozen=True)
class Race:
    """One reported race: two access sites on ``loc``, unordered/unprotected."""

    loc: str
    kind: str                     # WRITE_WRITE / WRITE_READ / READ_WRITE / READ_SHARED
    prior: AccessSite
    access: AccessSite
    detector: str                 # HB_DETECTOR | LOCKSET_DETECTOR
    detail: str = ""

    def __str__(self) -> str:
        text = (
            f"{self.kind} race on {self.loc!r} [{self.detector}]: "
            f"{self.prior}  <->  {self.access}"
        )
        if self.detail:
            text += f" ({self.detail})"
        return text

    def to_dict(self) -> Dict[str, Any]:
        return {
            "loc": self.loc,
            "kind": self.kind,
            "detector": self.detector,
            "prior": self.prior.to_dict(),
            "access": self.access.to_dict(),
            "detail": self.detail,
        }


@dataclass
class RaceOutcome:
    """Result of running race detection over one log."""

    detectors: tuple = ()
    races: List[Race] = field(default_factory=list)
    actions_processed: int = 0
    locations_tracked: int = 0

    @property
    def ok(self) -> bool:
        return not self.races

    @property
    def racy_locs(self) -> Set[str]:
        return {race.loc for race in self.races}

    def by_detector(self, detector: str) -> List[Race]:
        return [race for race in self.races if race.detector == detector]

    @property
    def hb_races(self) -> List[Race]:
        return self.by_detector(HB_DETECTOR)

    @property
    def lockset_races(self) -> List[Race]:
        return self.by_detector(LOCKSET_DETECTOR)

    def summary(self) -> str:
        if self.ok:
            return (
                f"race-free: {self.actions_processed} records, "
                f"{self.locations_tracked} locations "
                f"({', '.join(self.detectors)})"
            )
        parts = []
        for detector in self.detectors:
            found = self.by_detector(detector)
            parts.append(f"{detector}: {len(found)} race(s)")
        return (
            f"{len(self.races)} race(s) on {len(self.racy_locs)} location(s) "
            f"[{'; '.join(parts)}]"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "ok": self.ok,
            "detectors": list(self.detectors),
            "actions_processed": self.actions_processed,
            "locations_tracked": self.locations_tracked,
            "racy_locs": sorted(self.racy_locs),
            "races": [race.to_dict() for race in self.races],
        }
