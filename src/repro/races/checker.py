"""The :class:`RaceChecker` facade: interchangeable analyses, one feed API.

Mirrors :class:`repro.core.refinement.RefinementChecker`'s incremental
protocol so the online verification thread can drive race detection on the
log tail exactly like refinement checking::

    checker = RaceChecker(detectors="both")
    checker.feed(log.since(cursor))   # any number of times, in log order
    outcome = checker.finish()

The log must contain synchronization and read events
(``VyrdTracer(log_locks=True, log_reads=True)``, or ``Vyrd(races=...)``
which turns them on for you).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

from ..core.actions import Action
from .happens_before import HappensBeforeDetector
from .lockset import ERASER, LocksetEngine
from .model import HB_DETECTOR, LOCKSET_DETECTOR, Race, RaceOutcome

#: Accepted spellings for detector selection.
HB = "hb"
LOCKSET = "lockset"
BOTH = "both"


def normalize_detectors(selection) -> Tuple[str, ...]:
    """Map a user-facing selection to a tuple of canonical detector names.

    Accepts ``True``/``"both"`` (both analyses), ``"hb"``/``"happens-before"``,
    ``"lockset"``/``"eraser"``, or an iterable of those.
    """
    if selection is True or selection == BOTH:
        return (HB_DETECTOR, LOCKSET_DETECTOR)
    if isinstance(selection, str):
        selection = (selection,)
    names = []
    for item in selection:
        if item in (HB, HB_DETECTOR):
            name = HB_DETECTOR
        elif item in (LOCKSET, LOCKSET_DETECTOR, ERASER):
            name = LOCKSET_DETECTOR
        else:
            raise ValueError(
                f"unknown race detector {item!r} "
                f"(choose from {HB!r}, {LOCKSET!r}, {BOTH!r})"
            )
        if name not in names:
            names.append(name)
    if not names:
        raise ValueError("no race detector selected")
    return tuple(names)


class RaceChecker:
    """Incremental dynamic race detection over a VYRD log.

    Parameters
    ----------
    detectors:
        ``"hb"`` (vector-clock happens-before), ``"lockset"`` (full Eraser
        state machine), or ``"both"`` (default).
    stop_at_first:
        Stop analysing after the first race (the online verifier's default
        refinement behaviour is *not* mirrored here: race detection is a
        monitor, so the default keeps going and reports one race per
        location).
    atomic_locs:
        Location-name prefixes whose accesses are atomic by construction
        (volatile, or mediated by an internally-locked layer like Boxwood's
        cache).  They synchronize instead of racing: the happens-before
        detector draws a release-acquire edge per access, and both
        detectors exempt them from race reporting.
    """

    def __init__(self, detectors: Union[bool, str, Iterable[str]] = BOTH,
                 stop_at_first: bool = False, atomic_locs: Iterable[str] = ()):
        self.detectors = normalize_detectors(detectors)
        self.stop_at_first = stop_at_first
        self.atomic_locs = tuple(atomic_locs)
        self._hb: Optional[HappensBeforeDetector] = (
            HappensBeforeDetector(atomic_locs=self.atomic_locs)
            if HB_DETECTOR in self.detectors
            else None
        )
        self._lockset: Optional[LocksetEngine] = (
            LocksetEngine(discipline=ERASER, atomic_locs=self.atomic_locs)
            if LOCKSET_DETECTOR in self.detectors
            else None
        )
        self.races: List[Race] = []
        self._seq = 0
        self._stopped = False
        self._finished: Optional[RaceOutcome] = None

    @property
    def stopped(self) -> bool:
        return self._stopped

    @property
    def detected(self) -> bool:
        return bool(self.races)

    def feed(self, actions: Iterable[Action]) -> List[Race]:
        """Process the next chunk of log records; returns races found in it."""
        found: List[Race] = []
        for action in actions:
            if self._stopped:
                break
            seq = self._seq
            self._seq += 1
            for engine in (self._hb, self._lockset):
                if engine is None:
                    continue
                race = engine.feed(seq, action)
                if race is not None:
                    found.append(race)
                    if self.stop_at_first:
                        self._stopped = True
                        break
        self.races.extend(found)
        return found

    def finish(self) -> RaceOutcome:
        """Wrap up and return the outcome (idempotent)."""
        if self._finished is None:
            tracked = max(
                engine.locations_tracked
                for engine in (self._hb, self._lockset)
                if engine is not None
            )
            self._finished = RaceOutcome(
                detectors=self.detectors,
                races=list(self.races),
                actions_processed=self._seq,
                locations_tracked=tracked,
            )
        return self._finished


def check_races(log, detectors: Union[bool, str, Iterable[str]] = BOTH,
                stop_at_first: bool = False,
                atomic_locs: Iterable[str] = ()) -> RaceOutcome:
    """One-shot convenience: run race detection over a complete log."""
    checker = RaceChecker(detectors=detectors, stop_at_first=stop_at_first,
                          atomic_locs=atomic_locs)
    checker.feed(log)
    return checker.finish()
