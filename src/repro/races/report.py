"""Race reports: summaries and Fig. 6-style two-lane trace excerpts.

A reported race names two access sites; :func:`render_race_excerpt` shows
them the way the paper's Fig. 6 shows a refinement violation -- the two
involved threads as lanes, time flowing downward, the racing accesses
marked -- cropped to a window around the pair so a long log stays readable.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.log import Log
from ..core.report import _describe
from .model import Race, RaceOutcome


def format_race(race: Race) -> str:
    """Multi-line description of one race (both sites on their own lines)."""
    return "\n".join([
        f"{race.kind} race on {race.loc!r} [{race.detector}]",
        f"    prior : {race.prior}",
        f"    access: {race.access}",
    ] + ([f"    note  : {race.detail}"] if race.detail else []))


def format_race_outcome(outcome: RaceOutcome, title: str = "race detection",
                        max_races: Optional[int] = 8) -> str:
    """Full report of a race-detection outcome.

    At most ``max_races`` races are listed in full (``None`` for all); the
    counts per detector always cover everything."""
    lines = [
        f"== {title} ==",
        f"result: {'RACE-FREE' if outcome.ok else 'RACES FOUND'}",
        f"detectors: {', '.join(outcome.detectors)}",
        f"log records processed: {outcome.actions_processed}",
        f"locations tracked: {outcome.locations_tracked}",
    ]
    for detector in outcome.detectors:
        lines.append(f"{detector} races: {len(outcome.by_detector(detector))}")
    shown = outcome.races if max_races is None else outcome.races[:max_races]
    for race in shown:
        lines.append(format_race(race))
    if len(shown) < len(outcome.races):
        lines.append(f"... ({len(outcome.races) - len(shown)} more race(s))")
    return "\n".join(lines)


def render_race_excerpt(
    log: Log,
    race: Race,
    context: int = 4,
    lane_width: int = 30,
) -> str:
    """Render the racing pair as a two-lane excerpt of the log.

    ``context`` rows of each involved thread's actions are kept on either
    side of the pair; everything else is elided.  The racing accesses are
    marked with ``*``.
    """
    tids = sorted({race.prior.tid, race.access.tid})
    columns = {tid: index for index, tid in enumerate(tids)}
    marked = {race.prior.seq, race.access.seq}
    lo, hi = min(marked), max(marked)

    # rows: (seq, tid, text) for actions of the involved threads
    rows: List[tuple] = []
    for seq, action in enumerate(log):
        tid = getattr(action, "tid", None)
        if tid not in columns:
            continue
        text = _describe(action)
        if text is None:
            continue
        rows.append((seq, tid, text))

    first = next((i for i, row in enumerate(rows) if row[0] >= lo), 0)
    last = next(
        (i for i, row in enumerate(rows) if row[0] >= hi), len(rows) - 1
    )
    start = max(0, first - context)
    stop = min(len(rows), last + context + 1)

    header = "seq    | " + " | ".join(
        f"thread {tid}".ljust(lane_width) for tid in tids
    )
    lines = [
        f"{race.kind} race on {race.loc!r} [{race.detector}] "
        f"(* marks the racing accesses)",
        header,
        "-" * len(header),
    ]
    if start > 0:
        lines.append(f"... ({start} earlier row(s) elided)")
    for seq, tid, text in rows[start:stop]:
        mark = "*" if seq in marked else " "
        cells = [" " * lane_width] * len(tids)
        cells[columns[tid]] = text[:lane_width].ljust(lane_width)
        lines.append(f"{seq:<5d}{mark} | " + " | ".join(cells))
    if stop < len(rows):
        lines.append(f"... ({len(rows) - stop} later row(s) elided)")
    return "\n".join(lines)


def render_first_race(log: Log, outcome: RaceOutcome,
                      context: int = 4) -> Optional[str]:
    """Excerpt for the first reported race, or None when race-free."""
    if outcome.ok:
        return None
    return render_race_excerpt(log, outcome.races[0], context=context)
