"""Dynamic data-race detection over the VYRD action log.

The log VYRD records for refinement checking already carries every
shared-variable access and synchronization event (when recorded with
``log_locks=True, log_reads=True``), which is exactly what dynamic race
detectors consume.  This package provides two interchangeable analyses over
that log:

* :class:`HappensBeforeDetector` -- a vector-clock happens-before detector
  (FastTrack-style epochs with read-share promotion; release-acquire,
  fork and join edges).  Precise: a report is a real race *in this
  interleaving*.
* :class:`LocksetEngine` -- the full Eraser lockset discipline with the
  virgin -> exclusive -> shared -> shared-modified state machine.
  Conservative: generalizes over interleavings, may false-alarm.

Both report :class:`Race` records carrying the two access sites, rendered
as Fig. 6-style two-lane excerpts by :mod:`repro.races.report`.  The
:class:`RaceChecker` facade exposes the incremental ``feed``/``finish``
protocol the online verification thread uses, so race detection can run
alongside refinement on the log tail (``Vyrd(races="both")``).

The atomicity baseline (:mod:`repro.atomicity`) delegates its race pass to
the same lockset engine (``discipline="strict"``).
"""

from .checker import BOTH, HB, LOCKSET, RaceChecker, check_races, normalize_detectors
from .happens_before import HappensBeforeDetector
from .lockset import (
    ERASER,
    STRICT,
    HeldLockTracker,
    LocksetEngine,
    compute_racy_locs,
)
from .model import (
    HB_DETECTOR,
    LOCKSET_DETECTOR,
    READ_SHARED,
    READ_WRITE,
    WRITE_READ,
    WRITE_WRITE,
    AccessSite,
    Race,
    RaceOutcome,
)
from .report import (
    format_race,
    format_race_outcome,
    render_first_race,
    render_race_excerpt,
)
from .vectorclock import Epoch, VectorClock

__all__ = [
    "AccessSite",
    "BOTH",
    "ERASER",
    "Epoch",
    "HB",
    "HB_DETECTOR",
    "HappensBeforeDetector",
    "HeldLockTracker",
    "LOCKSET",
    "LOCKSET_DETECTOR",
    "LocksetEngine",
    "Race",
    "RaceChecker",
    "RaceOutcome",
    "READ_SHARED",
    "READ_WRITE",
    "STRICT",
    "VectorClock",
    "WRITE_READ",
    "WRITE_WRITE",
    "check_races",
    "compute_racy_locs",
    "format_race",
    "format_race_outcome",
    "normalize_detectors",
    "render_first_race",
    "render_race_excerpt",
]
