"""Vector-clock happens-before race detection (FastTrack-style).

The detector replays the synchronization skeleton of a VYRD log recorded
with ``log_locks=True, log_reads=True``:

* each thread carries a vector clock ``C_t`` (created on first sight with
  its own component at 1);
* ``ReleaseAction`` publishes ``C_t`` into the lock's clock and ticks the
  thread (a release-acquire edge to every later acquirer, any mode --
  reader-mode edges over-approximate happens-before, which can only hide
  races between accesses inside concurrent read sections, where a write
  would be a locking bug the lockset detector reports anyway);
* ``AcquireAction`` joins the lock's clock into the acquirer;
* ``SpawnAction`` / ``JoinAction`` provide the fork and join edges;
* accesses to *atomic locations* (``atomic_locs`` prefixes -- volatile or,
  as in Boxwood's B-link tree, cache-mediated storage) act as an
  acquire+release of a per-location synchronization object and are exempt
  from race reporting, the standard FastTrack treatment of volatiles.

Per location the detector keeps the last write as an *epoch* ``c@t`` and
the last read(s) as an epoch that is promoted to a full vector clock on
genuinely concurrent reads (FastTrack's read-share adaptation).  An access
races when the recorded epoch is not covered by the accessing thread's
clock.  One race is reported per location (the first), carrying both access
sites with held locksets for the Fig. 6-style excerpt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Union

from ..core.actions import (
    AcquireAction,
    Action,
    JoinAction,
    ReadAction,
    ReleaseAction,
    SpawnAction,
    WriteAction,
)
from .lockset import HeldLockTracker
from .model import (
    HB_DETECTOR,
    READ_WRITE,
    WRITE_READ,
    WRITE_WRITE,
    AccessSite,
    Race,
)
from .vectorclock import Epoch, VectorClock


@dataclass
class _VarState:
    """Per-location FastTrack metadata plus reporting sites."""

    write: Optional[Epoch] = None
    write_site: Optional[AccessSite] = None
    # last read: a single epoch on the fast path, a clock once shared
    read: Union[Epoch, VectorClock, None] = None
    read_sites: Dict[int, AccessSite] = field(default_factory=dict)
    reported: bool = False


class HappensBeforeDetector:
    """Incremental happens-before race detection over log records."""

    name = HB_DETECTOR

    def __init__(self, report_all: bool = False, atomic_locs: tuple = ()):
        self.report_all = report_all
        self.atomic_locs = tuple(atomic_locs)
        self.held = HeldLockTracker()
        self._threads: Dict[int, VectorClock] = {}
        self._locks: Dict[str, VectorClock] = {}
        self._atomics: Dict[str, VectorClock] = {}  # per atomic loc sync clock
        self._vars: Dict[str, _VarState] = {}

    @property
    def locations_tracked(self) -> int:
        return len(self._vars)

    def _clock(self, tid: int) -> VectorClock:
        vc = self._threads.get(tid)
        if vc is None:
            vc = VectorClock({tid: 1})
            self._threads[tid] = vc
        return vc

    # -- per-record processing ---------------------------------------------

    def feed(self, seq: int, action: Action) -> Optional[Race]:
        if isinstance(action, AcquireAction):
            self.held.apply(action)
            lock_vc = self._locks.get(action.lock)
            if lock_vc is not None:
                self._clock(action.tid).join(lock_vc)
            return None
        if isinstance(action, ReleaseAction):
            self.held.apply(action)
            vc = self._clock(action.tid)
            self._locks[action.lock] = vc.copy()
            vc.tick(action.tid)
            return None
        if isinstance(action, SpawnAction):
            parent = self._clock(action.tid)
            child = self._clock(action.child_tid)
            child.join(parent)
            parent.tick(action.tid)
            return None
        if isinstance(action, JoinAction):
            self._clock(action.tid).join(self._clock(action.child_tid))
            return None
        if isinstance(action, (ReadAction, WriteAction)):
            if self.atomic_locs and action.loc.startswith(self.atomic_locs):
                self._sync_access(action.tid, action.loc)
                return None
            if isinstance(action, ReadAction):
                return self._read(seq, action)
            return self._write(seq, action)
        return None

    def _sync_access(self, tid: int, loc: str) -> None:
        """An atomic-location access: acquire+release of its sync object."""
        vc = self._clock(tid)
        sync = self._atomics.get(loc)
        if sync is not None:
            vc.join(sync)
        self._atomics[loc] = vc.copy()
        vc.tick(tid)

    # -- access rules --------------------------------------------------------

    def _site(self, seq: int, action, kind: str) -> AccessSite:
        return AccessSite(
            action.tid, seq, kind, action.loc, action.op_id,
            self.held.held(action.tid),
        )

    def _report(self, var: _VarState, kind: str,
                prior: Optional[AccessSite], site: AccessSite) -> Optional[Race]:
        if prior is None or (var.reported and not self.report_all):
            return None
        var.reported = True
        return Race(
            site.loc, kind, prior, site, HB_DETECTOR,
            "accesses unordered by happens-before",
        )

    def _read(self, seq: int, action: ReadAction) -> Optional[Race]:
        tid = action.tid
        vc = self._clock(tid)
        var = self._vars.setdefault(action.loc, _VarState())
        site = self._site(seq, action, "read")
        race = None
        if (
            var.write is not None
            and var.write.tid != tid
            and not vc.covers_epoch(var.write)
        ):
            race = self._report(var, WRITE_READ, var.write_site, site)
        # update the read state (epoch fast path, clock once shared)
        if isinstance(var.read, VectorClock):
            var.read.set(tid, vc.get(tid))
            var.read_sites[tid] = site
        elif isinstance(var.read, Epoch) and not (
            var.read.tid == tid or vc.covers_epoch(var.read)
        ):
            # concurrent reads: promote to a full clock (read-share)
            shared = VectorClock({var.read.tid: var.read.clock, tid: vc.get(tid)})
            var.read = shared
            var.read_sites[tid] = site
        else:
            var.read = vc.epoch(tid)
            var.read_sites = {tid: site}
        return race

    def _write(self, seq: int, action: WriteAction) -> Optional[Race]:
        tid = action.tid
        vc = self._clock(tid)
        var = self._vars.setdefault(action.loc, _VarState())
        site = self._site(seq, action, "write")
        race = None
        if (
            var.write is not None
            and var.write.tid != tid
            and not vc.covers_epoch(var.write)
        ):
            race = self._report(var, WRITE_WRITE, var.write_site, site)
        if race is None and isinstance(var.read, Epoch):
            if var.read.tid != tid and not vc.covers_epoch(var.read):
                prior = var.read_sites.get(var.read.tid)
                race = self._report(var, READ_WRITE, prior, site)
        elif race is None and isinstance(var.read, VectorClock):
            for reader, clock in var.read.items():
                if reader != tid and clock > vc.get(reader):
                    prior = var.read_sites.get(reader)
                    race = self._report(var, READ_WRITE, prior, site)
                    break
        var.write = vc.epoch(tid)
        var.write_site = site
        # all prior reads are now checked against; restart read tracking
        var.read = None
        var.read_sites = {}
        return race
