"""The shared lockset engine: Eraser's discipline over a VYRD log.

Eraser [Savage et al., TOCS 1997] checks the *locking discipline*: every
shared location should be consistently protected by some lock.  Each
location carries a candidate set ``C(v)``, intersected with the accessing
thread's held locks; an empty candidate set means no common protection.

Two disciplines share this engine:

``STRICT``
    The simplified variant the atomicity baseline has always used (no
    initialization or read-share states): every access refines ``C(v)``
    and a location is racy as soon as the candidate set is empty and more
    than one thread has touched it.  :mod:`repro.atomicity` delegates its
    pass 1 here.

``ERASER``
    The full virgin -> exclusive -> shared -> shared-modified state machine.
    The initialization window (all accesses by the first thread) and
    read-sharing (many readers, no writer after the transition) do not
    report, which removes the classic false alarms on init-then-share data.
    Two deliberate deviations from the 1997 paper, both making the report
    set a superset of the happens-before detector's (a property the test
    suite checks):

    * ``C(v)`` is refined from the *first* access onward, not only after
      leaving the exclusive state, so a racy pair involving the very first
      access is still caught;
    * with ``report_read_shared`` (default), draining the candidate set in
      the read-shared state reports a ``read-shared`` race against the last
      write instead of staying silent -- Eraser proper trades this false
      negative away.

Reported races carry both access sites (the engine remembers the last
access per thread and the last write per location).  Locations matching an
``atomic_locs`` prefix (volatile / cache-mediated storage, declared per
program) are exempt from the discipline, as Eraser's annotations exempt
volatiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set

from ..core.actions import (
    AcquireAction,
    Action,
    ReadAction,
    ReleaseAction,
    WriteAction,
)
from .model import (
    LOCKSET_DETECTOR,
    READ_SHARED,
    READ_WRITE,
    WRITE_READ,
    WRITE_WRITE,
    AccessSite,
    Race,
)

STRICT = "strict"
ERASER = "eraser"

# location protection states (ERASER discipline)
_VIRGIN = "virgin"             # implicit: no entry yet
_EXCLUSIVE = "exclusive"       # one thread only (initialization window)
_SHARED = "shared"             # many readers, writes only by first thread
_SHARED_MODIFIED = "shared-modified"


class HeldLockTracker:
    """Locks currently held per thread, split by protection strength.

    Regular locks and write-mode RW-locks protect reads and writes;
    read-mode RW-locks protect reads only.
    """

    __slots__ = ("_exclusive", "_shared")

    def __init__(self):
        self._exclusive: Dict[int, Set[str]] = {}
        self._shared: Dict[int, Set[str]] = {}

    def apply(self, action: Action) -> None:
        """Track one Acquire/Release record (other kinds are ignored)."""
        if isinstance(action, AcquireAction):
            table = self._shared if action.mode == "r" else self._exclusive
            table.setdefault(action.tid, set()).add(action.lock)
        elif isinstance(action, ReleaseAction):
            table = self._shared if action.mode == "r" else self._exclusive
            table.get(action.tid, set()).discard(action.lock)

    def write_protection(self, tid: int) -> Set[str]:
        return set(self._exclusive.get(tid, ()))

    def read_protection(self, tid: int) -> Set[str]:
        return self._exclusive.get(tid, set()) | self._shared.get(tid, set())

    def held(self, tid: int) -> frozenset:
        """Everything held, for access-site display."""
        return frozenset(self.read_protection(tid))


@dataclass
class _LocState:
    """Per-location lockset bookkeeping."""

    state: str
    owner: int                           # first accessing thread
    candidate: Set[str]
    accessors: Set[int] = field(default_factory=set)
    last_write: Optional[AccessSite] = None
    last_by_tid: Dict[int, AccessSite] = field(default_factory=dict)
    reported: bool = False


class LocksetEngine:
    """Incremental lockset analysis; feed it every log record in order.

    ``feed`` returns a :class:`Race` the first time a location's discipline
    is violated (``ERASER`` discipline only; ``STRICT`` callers read
    :attr:`racy_locs`).
    """

    def __init__(self, discipline: str = ERASER, report_read_shared: bool = True,
                 atomic_locs: tuple = ()):
        if discipline not in (STRICT, ERASER):
            raise ValueError(f"unknown lockset discipline {discipline!r}")
        self.discipline = discipline
        self.report_read_shared = report_read_shared
        self.atomic_locs = tuple(atomic_locs)
        self.held = HeldLockTracker()
        self._locs: Dict[str, _LocState] = {}
        self._racy: Set[str] = set()

    @property
    def racy_locs(self) -> Set[str]:
        """Locations whose discipline has been violated so far."""
        return set(self._racy)

    @property
    def locations_tracked(self) -> int:
        return len(self._locs)

    # -- per-record processing ---------------------------------------------

    def feed(self, seq: int, action: Action) -> Optional[Race]:
        if isinstance(action, (AcquireAction, ReleaseAction)):
            self.held.apply(action)
            return None
        if isinstance(action, ReadAction):
            return self._access(seq, action.tid, action.op_id, action.loc, "read")
        if isinstance(action, WriteAction):
            return self._access(seq, action.tid, action.op_id, action.loc, "write")
        return None

    def _access(
        self, seq: int, tid: int, op_id: Optional[int], loc: str, kind: str
    ) -> Optional[Race]:
        if self.atomic_locs and loc.startswith(self.atomic_locs):
            return None  # volatile/cache-mediated: exempt from the discipline
        protection = (
            self.held.write_protection(tid)
            if kind == "write"
            else self.held.read_protection(tid)
        )
        site = AccessSite(tid, seq, kind, loc, op_id, self.held.held(tid))
        entry = self._locs.get(loc)
        if entry is None:
            entry = _LocState(_EXCLUSIVE, tid, set(protection))
            self._locs[loc] = entry
        else:
            entry.candidate &= protection
            self._advance_state(entry, tid, kind)
        entry.accessors.add(tid)
        race = self._judge(entry, loc, site)
        entry.last_by_tid[tid] = site
        if kind == "write":
            entry.last_write = site
        return race

    def _advance_state(self, entry: _LocState, tid: int, kind: str) -> None:
        if entry.state == _EXCLUSIVE and tid != entry.owner:
            entry.state = _SHARED_MODIFIED if kind == "write" else _SHARED
        elif entry.state == _SHARED and kind == "write":
            entry.state = _SHARED_MODIFIED

    def _judge(self, entry: _LocState, loc: str, site: AccessSite) -> Optional[Race]:
        if self.discipline == STRICT:
            if not entry.candidate and len(entry.accessors) > 1:
                self._racy.add(loc)
            return None
        if entry.candidate or entry.reported:
            return None
        if entry.state == _SHARED_MODIFIED:
            kind = WRITE_WRITE if site.kind == "write" else WRITE_READ
            prior = self._prior_site(entry, site)
            if prior is None:
                return None
            if prior.kind == "read" and site.kind == "write":
                kind = READ_WRITE
            detail = "no lock consistently protects this location"
        elif entry.state == _SHARED and self.report_read_shared:
            # a write happened in the exclusive window; Eraser proper stays
            # silent here (the read-share exception) -- we surface it
            prior = entry.last_write
            if prior is None or prior.tid == site.tid:
                return None
            kind = READ_SHARED
            detail = (
                "candidate set drained in the read-shared state "
                "(unprotected write-then-read)"
            )
        else:
            return None
        entry.reported = True
        self._racy.add(loc)
        return Race(loc, kind, prior, site, LOCKSET_DETECTOR, detail)

    def _prior_site(self, entry: _LocState, site: AccessSite) -> Optional[AccessSite]:
        """The other end of the pair: prefer the last write by another
        thread, else the most recent access by another thread."""
        if entry.last_write is not None and entry.last_write.tid != site.tid:
            return entry.last_write
        best = None
        for tid, other in entry.last_by_tid.items():
            if tid == site.tid:
                continue
            if best is None or other.seq > best.seq:
                best = other
        return best


def compute_racy_locs(log, discipline: str = STRICT) -> Set[str]:
    """One-shot lockset pass over a complete log (atomizer's pass 1)."""
    engine = LocksetEngine(discipline=discipline)
    for seq, action in enumerate(log):
        engine.feed(seq, action)
    return engine.racy_locs
