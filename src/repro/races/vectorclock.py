"""Vector clocks and epochs (the FastTrack representation).

A :class:`VectorClock` maps thread ids to logical clocks; absent entries are
zero.  An :class:`Epoch` ``c@t`` names one component -- FastTrack's insight
is that a location's last write (and usually its last read) is totally
ordered with everything else, so a single epoch replaces a full clock on the
hot path; the read side falls back to a full clock only after genuinely
concurrent reads (read-share promotion, handled in
:mod:`repro.races.happens_before`).
"""

from __future__ import annotations

from typing import Dict, Iterator, NamedTuple, Optional


class Epoch(NamedTuple):
    """One (thread, clock) component: the FastTrack ``c@t``."""

    tid: int
    clock: int

    def __str__(self) -> str:
        return f"{self.clock}@t{self.tid}"


class VectorClock:
    """A mutable thread-id -> clock map with pointwise join/compare."""

    __slots__ = ("_clocks",)

    def __init__(self, clocks: Optional[Dict[int, int]] = None):
        self._clocks: Dict[int, int] = dict(clocks) if clocks else {}

    def get(self, tid: int) -> int:
        return self._clocks.get(tid, 0)

    def set(self, tid: int, clock: int) -> None:
        self._clocks[tid] = clock

    def tick(self, tid: int) -> int:
        """Advance ``tid``'s own component; returns the new clock."""
        value = self._clocks.get(tid, 0) + 1
        self._clocks[tid] = value
        return value

    def join(self, other: "VectorClock") -> None:
        """Pointwise maximum, in place (``self := self ⊔ other``)."""
        for tid, clock in other._clocks.items():
            if clock > self._clocks.get(tid, 0):
                self._clocks[tid] = clock

    def copy(self) -> "VectorClock":
        return VectorClock(self._clocks)

    def epoch(self, tid: int) -> Epoch:
        return Epoch(tid, self._clocks.get(tid, 0))

    def covers_epoch(self, epoch: Epoch) -> bool:
        """``epoch`` happens-before (or equals) this clock's view."""
        return epoch.clock <= self._clocks.get(epoch.tid, 0)

    def covers(self, other: "VectorClock") -> bool:
        """``other <= self`` pointwise."""
        return all(
            clock <= self._clocks.get(tid, 0)
            for tid, clock in other._clocks.items()
        )

    def items(self) -> Iterator:
        return iter(self._clocks.items())

    def __eq__(self, other) -> bool:
        if not isinstance(other, VectorClock):
            return NotImplemented
        mine = {t: c for t, c in self._clocks.items() if c}
        theirs = {t: c for t, c in other._clocks.items() if c}
        return mine == theirs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"t{tid}:{clock}" for tid, clock in sorted(self._clocks.items())
        )
        return f"<VC {inner}>"
