"""Chrome trace-event export of recorded spans (Perfetto-loadable).

The export target is the Trace Event Format's *JSON array* flavor: a plain
list of event objects, each carrying ``name``/``ph``/``pid``/``tid``/``ts``
(plus ``dur`` for complete events), which ``chrome://tracing`` and Perfetto
both load directly.  Timestamps are kernel-step-keyed (see
:mod:`repro.obs.recorder`): one scheduler step is
:data:`~repro.obs.recorder.TICKS_PER_STEP` ticks wide, so the timeline reads
as "what happened at which step of the deterministic schedule", and each
event's ``args.wall_us`` carries the real duration for cost attribution.

The tail of the stream adds:

* metadata (``ph: "M"``) naming the process and the recorded sim-threads;
* one counter event (``ph: "C"``) per span name with its accumulated
  wall-clock total, so phase totals are visible in the viewer without
  summing slices.

:func:`validate_trace_events` is the schema check CI and the test suite run
over every produced file -- it enforces the loadable array-of-events shape
rather than trusting the writer.
"""

from __future__ import annotations

import json
from typing import List

from .recorder import TRACE_PID, MetricsRecorder

_VALID_PHASES = {"X", "i", "I", "M", "C", "B", "E"}


def trace_events(recorder: MetricsRecorder) -> List[dict]:
    """The recorder's spans as a Chrome trace-event array."""
    events: List[dict] = [{
        "name": "process_name",
        "ph": "M",
        "pid": TRACE_PID,
        "tid": 0,
        "args": {"name": "vyrd"},
    }]
    tids = sorted({event.get("tid", 0) for event in recorder.events})
    for tid in tids:
        events.append({
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": f"sim-thread-{tid}"},
        })
    events.extend(recorder.events)
    end_ts = max((event.get("ts", 0) for event in recorder.events), default=0)
    for name, seconds in sorted(recorder.phase_wall.items()):
        events.append({
            "name": f"wall:{name}",
            "ph": "C",
            "pid": TRACE_PID,
            "tid": 0,
            "ts": end_ts,
            "args": {"ms": round(seconds * 1e3, 3)},
        })
    return events


def write_trace(recorder: MetricsRecorder, path) -> None:
    """Dump the trace as a JSON array file loadable by Perfetto."""
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace_events(recorder), handle, indent=1)


def validate_trace_events(events) -> List[str]:
    """Schema-check a trace-event array; returns problems (empty = valid).

    Enforces the loadable array-of-events shape: a JSON array of objects,
    every event carrying ``name``/``ph``/``pid``/``tid``, timed events
    carrying a numeric non-negative ``ts``, and complete ("X") events a
    numeric non-negative ``dur``.
    """
    problems: List[str] = []
    if not isinstance(events, list):
        return [f"trace must be a JSON array of events, got {type(events).__name__}"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in event:
                problems.append(f"event {index}: missing {key!r}")
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"event {index}: unknown phase {phase!r}")
        if phase in ("X", "i", "I", "C", "B", "E"):
            ts = event.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                problems.append(f"event {index}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index}: bad dur {dur!r}")
        args = event.get("args")
        if args is not None and not isinstance(args, dict):
            problems.append(f"event {index}: args must be an object")
    return problems


def validate_trace_file(path) -> List[str]:
    """Load ``path`` and schema-check it (see :func:`validate_trace_events`)."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            events = json.load(handle)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    return validate_trace_events(events)
