"""Recorders: the measurement substrate of the verification pipeline.

The paper's evaluation (Tables 2-3) is a measurement story -- logging
overhead per granularity, checker cost online vs offline -- and the
follow-up literature on linearizability checking makes the same point:
knowing *where* checker time goes (witness commits vs observer re-evaluation
vs view refresh vs t-tilde overlay construction) is what guides
optimization.  This module provides the hooks every pipeline stage reports
into:

* :class:`Recorder` -- the protocol: counters, histograms, spans and
  instants.  Every method is a no-op, so the base class doubles as the
  interface documentation.
* :class:`NullRecorder` -- the default.  ``enabled`` is ``False`` and every
  hot path guards on it, so a pipeline without observability pays one
  attribute load and branch per guarded site (measured by
  ``benchmarks/bench_observability_overhead.py``; the budget is <= 5% on
  Table 2-class runs).
* :class:`MetricsRecorder` -- the real thing: monotonic counters, min/max/
  mean histograms, and span events on a *kernel-step-keyed* clock exported
  as Chrome trace-event JSON (see :mod:`repro.obs.trace`).

Span timestamps are keyed to kernel step-time, not wall-clock: the
deterministic substrate's only meaningful notion of "when" is the scheduler
step, so two runs of the same seed produce the same event ordering.  Each
step is :data:`TICKS_PER_STEP` trace ticks wide and events opened within one
step are sequenced inside it.  Wall-clock is still measured per span and
aggregated into :attr:`MetricsRecorder.phase_wall` (seconds per span name),
which is what the profiling report attributes cost with.

Counters and histograms are deterministic (pure functions of the seed);
span wall-times are not.  :meth:`MetricsRecorder.counters_snapshot` returns
only the deterministic part, which is what crosses process boundaries when
the parallel explorer merges per-worker metrics -- merged campaign metrics
compare equal between serial and parallel engines.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

#: Width of one kernel step on the trace timeline, in trace ticks
#: (microseconds, as far as trace viewers are concerned).  Spans opened
#: within a single step are sequenced by arrival inside this window.
TICKS_PER_STEP = 1000

#: Synthetic pid stamped on every trace event (one recorder = one "process").
TRACE_PID = 1


class _NullSpan:
    """Shared no-op context manager returned by disabled recorders."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


_NULL_SPAN = _NullSpan()


class Recorder:
    """Observer protocol for pipeline measurements.

    All methods are no-ops; subclasses override what they record.  Hot call
    sites must guard on :attr:`enabled` before building span arguments, so a
    disabled recorder costs one attribute load and branch.
    """

    #: Fast-path guard: hot code does ``if recorder.enabled: ...``.
    enabled: bool = False

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to the monotonic counter ``name``."""

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""

    def span(self, name: str, cat: str = "", tid: int = 0, **args):
        """A context manager timing one pipeline phase occurrence."""
        return _NULL_SPAN

    def instant(self, name: str, cat: str = "", tid: int = 0, **args) -> None:
        """A zero-duration event (e.g. one tracer append)."""

    def bind_step_clock(self, clock: Callable[[], int]) -> None:
        """Key subsequent event timestamps to ``clock()`` (kernel steps)."""


class NullRecorder(Recorder):
    """The zero-cost default: records nothing, ``enabled`` stays False."""


#: Shared default instance -- ``obs or NULL_RECORDER`` is the wiring idiom.
NULL_RECORDER = NullRecorder()


@dataclass
class Histogram:
    """Streaming min/max/mean summary of one sample stream."""

    count: int = 0
    total: float = 0.0
    min: Optional[float] = None
    max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.total / self.count if self.count else None

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def merge(self, other: dict) -> None:
        """Fold a ``to_dict()`` snapshot (possibly from another process) in."""
        self.count += other["count"]
        self.total += other["total"]
        for key, pick in (("min", min), ("max", max)):
            value = other.get(key)
            if value is not None:
                current = getattr(self, key)
                setattr(self, key, value if current is None else pick(current, value))


class _Span:
    """Context manager emitting one complete ("X") trace event on exit."""

    __slots__ = ("_recorder", "_name", "_cat", "_tid", "_args", "_ts", "_wall")

    def __init__(self, recorder: "MetricsRecorder", name: str, cat: str,
                 tid: int, args: dict):
        self._recorder = recorder
        self._name = name
        self._cat = cat
        self._tid = tid
        self._args = args

    def __enter__(self):
        self._ts = self._recorder._now()
        self._wall = time.perf_counter()
        return self

    def __exit__(self, *exc):
        recorder = self._recorder
        wall = time.perf_counter() - self._wall
        recorder.phase_wall[self._name] = (
            recorder.phase_wall.get(self._name, 0.0) + wall
        )
        recorder.count("span." + self._name)
        end = recorder._now()
        args = self._args
        args["wall_us"] = round(wall * 1e6, 1)
        recorder._emit({
            "name": self._name,
            "cat": self._cat or "vyrd",
            "ph": "X",
            "pid": TRACE_PID,
            "tid": self._tid,
            "ts": self._ts,
            "dur": max(end - self._ts, 0),
            "args": args,
        })
        return False


class MetricsRecorder(Recorder):
    """Counters + histograms + span events on a step-keyed clock.

    Parameters
    ----------
    max_events:
        Cap on retained trace events.  Events beyond the cap are dropped
        (but still counted -- ``dropped_events`` and the per-span counters
        and wall totals keep accumulating, so aggregate numbers never lie).
        ``max_events=0`` keeps counters/histograms only, which is the
        configuration the parallel explorer ships to worker processes.
    """

    enabled = True

    def __init__(self, max_events: int = 200_000):
        self.counters: Dict[str, int] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.events: List[dict] = []
        self.phase_wall: Dict[str, float] = {}
        self.dropped_events = 0
        self._max_events = max_events
        self._step_clock: Optional[Callable[[], int]] = None
        self._last_step = 0
        self._seq = 0

    # -- clock ---------------------------------------------------------------

    def bind_step_clock(self, clock: Callable[[], int]) -> None:
        self._step_clock = clock

    def _now(self) -> int:
        """Current trace timestamp: kernel step widened to ticks, sequenced
        within the step so events opened in one step stay ordered."""
        step = self._step_clock() if self._step_clock is not None else 0
        if step != self._last_step:
            self._last_step = step
            self._seq = 0
        elif self._seq < TICKS_PER_STEP - 1:
            self._seq += 1
        return step * TICKS_PER_STEP + self._seq

    # -- recording -----------------------------------------------------------

    def count(self, name: str, n: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def observe(self, name: str, value: float) -> None:
        histogram = self.histograms.get(name)
        if histogram is None:
            histogram = self.histograms[name] = Histogram()
        histogram.observe(value)

    def span(self, name: str, cat: str = "", tid: int = 0, **args) -> _Span:
        return _Span(self, name, cat, tid, args)

    def instant(self, name: str, cat: str = "", tid: int = 0, **args) -> None:
        self.count("span." + name)
        self._emit({
            "name": name,
            "cat": cat or "vyrd",
            "ph": "i",
            "s": "t",
            "pid": TRACE_PID,
            "tid": tid,
            "ts": self._now(),
            "args": args,
        })

    def _emit(self, event: dict) -> None:
        if len(self.events) >= self._max_events:
            self.dropped_events += 1
            return
        self.events.append(event)

    # -- snapshots & merging ---------------------------------------------------

    def counters_snapshot(self) -> dict:
        """The deterministic part: counters and histograms, no wall-clock.

        This is what crosses process boundaries -- two campaigns over the
        same seeds merge to identical snapshots regardless of how the work
        was sharded.
        """
        return {
            "counters": dict(self.counters),
            "histograms": {
                name: histogram.to_dict()
                for name, histogram in self.histograms.items()
            },
        }

    def merge_counts(self, snapshot: Optional[dict]) -> None:
        """Fold a :meth:`counters_snapshot` (e.g. from a worker process) in."""
        if not snapshot:
            return
        for name, value in snapshot.get("counters", {}).items():
            self.count(name, value)
        for name, data in snapshot.get("histograms", {}).items():
            histogram = self.histograms.get(name)
            if histogram is None:
                histogram = self.histograms[name] = Histogram()
            histogram.merge(data)

    def to_dict(self) -> dict:
        """Full JSON-serializable summary (CLI ``--json`` / ``profile``)."""
        return {
            "counters": {k: self.counters[k] for k in sorted(self.counters)},
            "histograms": {
                name: self.histograms[name].to_dict()
                for name in sorted(self.histograms)
            },
            "phase_wall_ms": {
                name: round(seconds * 1e3, 3)
                for name, seconds in sorted(self.phase_wall.items())
            },
            "trace_events": len(self.events),
            "dropped_events": self.dropped_events,
        }


def merge_snapshots(snapshots) -> Optional[dict]:
    """Merge deterministic counter snapshots from many workers into one.

    ``None`` entries are skipped; returns ``None`` when nothing was
    collected (metrics were not requested).
    """
    merged: Optional[MetricsRecorder] = None
    for snapshot in snapshots:
        if snapshot is None:
            continue
        if merged is None:
            merged = MetricsRecorder(max_events=0)
        merged.merge_counts(snapshot)
    return merged.counters_snapshot() if merged is not None else None
