"""Human-readable profiling reports over a :class:`MetricsRecorder`.

``vyrd profile`` and ``run --metrics`` print these tables; the same numbers
round-trip through ``--json`` as :meth:`MetricsRecorder.to_dict`.
"""

from __future__ import annotations

from typing import List

from .recorder import MetricsRecorder


def format_metrics(recorder: MetricsRecorder, title: str = "pipeline profile") -> str:
    """Render phase wall totals, counters and histograms as paper-style tables."""
    # Imported lazily: harness.metrics is a leaf module, but the harness
    # package __init__ pulls in the runner (and through it most of repro),
    # which must not happen while repro.core is still importing us.
    from ..harness.metrics import render_table

    sections: List[str] = []
    if recorder.phase_wall:
        rows = []
        for name in sorted(
            recorder.phase_wall, key=recorder.phase_wall.get, reverse=True
        ):
            rows.append((
                name,
                recorder.counters.get("span." + name, 0),
                recorder.phase_wall[name] * 1e3,
            ))
        sections.append(render_table(
            f"{title}: wall-clock by phase", ("phase", "spans", "total ms"), rows
        ))
    plain = {
        name: value for name, value in recorder.counters.items()
        if not name.startswith("span.")
    }
    if plain:
        sections.append(render_table(
            f"{title}: counters", ("counter", "value"),
            [(name, plain[name]) for name in sorted(plain)],
        ))
    if recorder.histograms:
        rows = []
        for name in sorted(recorder.histograms):
            histogram = recorder.histograms[name]
            rows.append((
                name, histogram.count, histogram.mean, histogram.min, histogram.max,
            ))
        sections.append(render_table(
            f"{title}: distributions", ("metric", "samples", "mean", "min", "max"),
            rows,
        ))
    if recorder.dropped_events:
        sections.append(
            f"note: {recorder.dropped_events} trace event(s) beyond the "
            f"retention cap were dropped (aggregates above remain complete)"
        )
    if not sections:
        sections.append(f"== {title} ==\n(nothing recorded)")
    return "\n\n".join(sections)
