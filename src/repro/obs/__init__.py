"""Observability for the verification pipeline: metrics, spans, trace export.

Zero-cost when disabled: every pipeline stage holds a
:class:`Recorder` (default :data:`NULL_RECORDER`) and guards its recording
sites on ``recorder.enabled``.  Pass a :class:`MetricsRecorder` through
``Vyrd(obs=...)`` / ``Kernel(obs=...)`` / ``run_program(obs=...)`` (or use
``vyrd profile`` / ``--metrics`` / ``--trace-out`` on the CLI) to collect:

* **counters** -- actions logged by type, commits checked, replay writes,
  t-tilde overlay constructions, verifier polls, scheduler steps per thread,
  pool retries/breaks, linearization-search work (``linz.nodes``,
  ``linz.memo_hits``, ``linz.prunes``, ``linz.exhausted_searches``);
* **histograms** -- observer-window sizes, view units recomputed per commit,
  overlay rollback sizes, linearization search depth and pending-set width
  (``linz.search_depth`` / ``linz.pending_width``);
* **spans** -- every pipeline phase (kernel step, tracer append, checker
  feed, witness commit, observer re-evaluation, view refresh, coarse
  replay, log recovery, the ``linz.search`` linearization search) on a
  kernel-step-keyed clock, exported as Chrome trace-event JSON via
  :func:`write_trace` and loadable in Perfetto.

See ``docs/ARCHITECTURE.md`` section 10 for the recorder protocol, the span
taxonomy and the overhead guarantees.
"""

from .recorder import (
    NULL_RECORDER,
    TICKS_PER_STEP,
    Histogram,
    MetricsRecorder,
    NullRecorder,
    Recorder,
    merge_snapshots,
)
from .report import format_metrics
from .trace import (
    trace_events,
    validate_trace_events,
    validate_trace_file,
    write_trace,
)

__all__ = [
    "Histogram",
    "MetricsRecorder",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "TICKS_PER_STEP",
    "format_metrics",
    "merge_snapshots",
    "trace_events",
    "validate_trace_events",
    "validate_trace_file",
    "write_trace",
]
