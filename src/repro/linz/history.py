"""Call/return histories: the annotation-free projection of a VYRD log.

Linearizability checking consumes nothing but the *history* of an
execution: which operations were invoked, with which arguments, in which
real-time order, and what they returned.  Every VYRD log level already
records exactly that (``CallAction``/``ReturnAction``), so any log the
pipeline can load -- legacy framed ``VYRDLOG1``, hash-chained ``VYRDLOG2``
shards, or a salvaged prefix from :func:`repro.core.recover_log` -- yields
a history with no commit annotations required.

:func:`extract_history` performs the projection; :class:`History` holds the
operations plus the call/return *event sequence* in log order, which is the
real-time partial order the search in :mod:`repro.linz.checker` must
respect: operation ``a`` precedes ``b`` iff ``a`` returned before ``b`` was
invoked.

An operation whose return record is missing (the log ended or was torn
mid-execution) is *incomplete*: its effect on the abstract state is
unknowable from the log, so the checker treats it as optional (see the
checker's candidate-result branching).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.actions import CallAction, ReturnAction

#: Event tags in :attr:`History.events`.
CALL = "call"
RET = "return"


class HistoryError(Exception):
    """The log's call/return records do not form a history (tool misuse:
    a return without a call, or a duplicated operation id)."""


@dataclass(frozen=True)
class Operation:
    """One invoked operation of the history."""

    op_id: int
    tid: int
    method: str
    args: tuple
    call_seq: int                     # log position of the CallAction
    return_seq: Optional[int] = None  # log position of the ReturnAction
    result: Any = None                # observed return value (complete ops)

    @property
    def complete(self) -> bool:
        return self.return_seq is not None

    def describe(self) -> str:
        rendered = ", ".join(repr(a) for a in self.args)
        suffix = f" -> {self.result!r}" if self.complete else " (no return)"
        return f"{self.method}({rendered}){suffix}"


@dataclass
class History:
    """The call/return projection of one log."""

    operations: Dict[int, Operation] = field(default_factory=dict)
    #: ``(CALL | RET, Operation)`` pairs in log order; incomplete operations
    #: contribute only their CALL event.
    events: List[Tuple[str, Operation]] = field(default_factory=list)

    @property
    def completed(self) -> List[Operation]:
        return [op for op in self.operations.values() if op.complete]

    @property
    def incomplete(self) -> List[Operation]:
        return [op for op in self.operations.values() if not op.complete]

    def observed_results(self, method: str) -> List[Any]:
        """Distinct results observed for ``method`` anywhere in the history,
        in first-observation order (the checker's candidate fallback for
        incomplete mutators)."""
        seen: List[Any] = []
        for op in self.operations.values():
            if op.complete and op.method == method:
                if not any(op.result == prior for prior in seen):
                    seen.append(op.result)
        return seen

    def __len__(self) -> int:
        return len(self.operations)


def extract_history(log) -> History:
    """Project ``log`` (a :class:`~repro.core.Log` or any action iterable)
    onto its call/return history.

    All other action types -- commits, writes, locks, replay entries -- are
    ignored: the point of the linearizability mode is that none of them are
    needed.
    """
    history = History()
    open_ops: Dict[int, Tuple[int, CallAction]] = {}  # op_id -> (seq, call)
    raw_events: List[Tuple[str, int]] = []
    for seq, action in enumerate(log):
        if isinstance(action, CallAction):
            if action.op_id in history.operations or action.op_id in open_ops:
                raise HistoryError(
                    f"duplicate operation id {action.op_id} at log seq {seq}"
                )
            open_ops[action.op_id] = (seq, action)
            raw_events.append((CALL, action.op_id))
        elif isinstance(action, ReturnAction):
            entry = open_ops.pop(action.op_id, None)
            if entry is None:
                raise HistoryError(
                    f"return without a call for operation {action.op_id} "
                    f"({action.method!r}) at log seq {seq}"
                )
            call_seq, call = entry
            if call.method != action.method:
                raise HistoryError(
                    f"operation {action.op_id} called {call.method!r} but "
                    f"returned from {action.method!r} at log seq {seq}"
                )
            history.operations[action.op_id] = Operation(
                op_id=action.op_id, tid=call.tid, method=call.method,
                args=tuple(call.args), call_seq=call_seq, return_seq=seq,
                result=action.result,
            )
            raw_events.append((RET, action.op_id))
    for op_id, (call_seq, call) in open_ops.items():
        history.operations[op_id] = Operation(
            op_id=op_id, tid=call.tid, method=call.method,
            args=tuple(call.args), call_seq=call_seq,
        )
    history.events = [
        (kind, history.operations[op_id]) for kind, op_id in raw_events
    ]
    return history
