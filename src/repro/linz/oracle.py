"""Brute-force linearizability oracle for cross-validating the checker.

:func:`brute_force_linearizable` decides linearizability straight from the
definition: enumerate every total order of the history's operations that
extends the real-time partial order, replay each through a fresh spec, and
accept iff some order replays cleanly.  No memoization, no eager observer
placement, no event cursor -- deliberately nothing structural in common
with :class:`repro.linz.checker.LinzChecker`, so the Hypothesis property
(``tests/property/test_props_linz.py``) comparing the two verdicts on small
histories exercises genuinely independent implementations.

Cost is factorial in the history size; keep inputs at or below ~7
operations.
"""

from __future__ import annotations

import copy
from itertools import chain, combinations
from typing import Any, Callable, List, Optional

from ..core.spec import OBSERVER, SpecReject, allows
from .history import History, Operation, extract_history


def _precedes(a: Operation, b: Operation) -> bool:
    """Real-time order: ``a`` finished before ``b`` started."""
    return a.return_seq is not None and a.return_seq < b.call_seq


def brute_force_linearizable(
    log,
    spec_factory: Callable,
    *,
    candidate_results: Optional[Callable] = None,
) -> bool:
    """Return whether a valid linearization of ``log``'s history exists,
    by exhaustive enumeration.

    Incomplete operations are handled exactly as the search checker
    specifies: incomplete observers are dropped; each subset of the
    incomplete mutators is tried as "took effect", with every candidate
    return value (``candidate_results(spec, method, args)`` override, the
    spec's own protocol, or results observed elsewhere for the method) at
    the point of placement.
    """
    history = log if isinstance(log, History) else extract_history(log)
    probe = spec_factory()
    kinds = {
        method: probe.method_kind(method)
        for method in {op.method for op in history.operations.values()}
    }
    required = [op for op in history.operations.values() if op.complete]
    optional = [
        op for op in history.operations.values()
        if not op.complete and kinds[op.method] != OBSERVER
    ]

    def candidates(spec, op: Operation) -> List[Any]:
        if candidate_results is not None:
            found = candidate_results(spec, op.method, op.args)
            return list(found) if found is not None else []
        found = spec.candidate_results(op.method, op.args)
        if found is not None:
            return list(found)
        return history.observed_results(op.method)

    def place(remaining: List[Operation], spec) -> bool:
        if not remaining:
            return True
        for index, op in enumerate(remaining):
            if any(_precedes(other, op) for other in remaining if other is not op):
                continue  # some remaining operation must come first
            rest = remaining[:index] + remaining[index + 1:]
            if kinds[op.method] == OBSERVER:
                if allows(spec.run_observer(op.method, op.args), op.result):
                    if place(rest, spec):
                        return True
                continue
            results = [op.result] if op.complete else candidates(spec, op)
            for result in results:
                clone = copy.deepcopy(spec)
                try:
                    clone.run_mutator(op.method, op.args, result)
                except SpecReject:
                    continue
                if place(rest, clone):
                    return True
        return False

    subsets = chain.from_iterable(
        combinations(optional, k) for k in range(len(optional) + 1)
    )
    for included in subsets:
        if place(required + list(included), spec_factory()):
            return True
    return False
