"""Annotation-free linearizability checking by memoized linearization search.

Where refinement checking (:mod:`repro.core.refinement`) trusts the
programmer-annotated commit actions to *name* the witness interleaving,
this checker reconstructs one: it searches for an order of the history's
operations that (a) respects real time -- an operation linearizes somewhere
between its call and its return -- and (b) replays through the same atomic
:class:`~repro.core.spec.Specification`, with every mutator's observed
return value accepted and every observer's observed result allowed.  If no
such order exists the execution is not linearizable and a typed
``linearizability`` violation is reported.

The search (Wing-Gong style, with the standard state-memoization
refinement) walks the call/return event sequence with a single
deterministic cursor:

* a **call** event just opens the operation (it becomes *pending*);
* a **return** event is consumable only once its operation has been
  linearized -- otherwise the cursor blocks and some pending operation must
  be linearized first;
* at a blocked cursor the checker branches over the pending **mutators**
  (cloning the spec, pruning any branch whose observed result the spec
  rejects via :class:`~repro.core.spec.SpecReject`);
* pending **observers are never branched on**: an observer is linearized
  *eagerly* the moment the current spec state allows its observed result.
  Because observers are state-pure this is both sound and complete -- if a
  valid completion linearizes a currently-matching observer later, moving
  it to now changes no spec state and invalidates nothing -- so observer
  returns only ever *prune* (a pending observer whose result no reachable
  state allows eventually blocks the cursor for good).

Explored-and-failed states are memoized on ``(cursor position,
linearized-but-unreturned set, spec-state fingerprint)`` pairs
(:meth:`~repro.core.spec.Specification.state_fingerprint`), so overlapping
search prefixes that reconverge -- e.g. commuting mutators -- are explored
once.  The pending set needs no key of its own: it is a function of the
cursor position and the linearized set.

Incomplete operations (a call whose return the log lost) are *optional*:
an incomplete observer can never constrain anything and is dropped; an
incomplete mutator either never took effect (the implicit skip branch) or
is linearized under each plausible return value, taken from
:meth:`~repro.core.spec.Specification.candidate_results` (evaluated on the
spec clone at the candidate point) with the results observed for the same
method elsewhere in the history as the fallback.
"""

from __future__ import annotations

import copy
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..core.actions import Signature
from ..core.refinement import Violation, ViolationKind
from ..core.spec import OBSERVER, SpecReject, allows
from ..obs import NULL_RECORDER, Recorder
from .history import CALL, History, Operation, extract_history


class SearchBudgetExceeded(Exception):
    """The linearization search exceeded its node budget.

    Deliberately *not* a violation: an exhausted budget proves nothing
    about the history either way, so it must surface as a hard error
    (CLI exit code 2), never as a verdict.
    """

    def __init__(self, nodes: int, max_nodes: int):
        self.nodes = nodes
        self.max_nodes = max_nodes
        super().__init__(
            f"linearization search exceeded {max_nodes} nodes "
            f"(memoization off or state space too wide); raise max_nodes "
            "or enable memoization"
        )


@dataclass
class LinzOutcome:
    """Result of one linearizability check."""

    violations: List[Violation] = field(default_factory=list)
    operations: int = 0               # operations in the history
    completed: int = 0                # operations with a recorded return
    incomplete_ops: int = 0           # calls whose return the log lost
    methods_checked: int = 0          # == completed (parity with CheckOutcome)
    detection_method_count: Optional[int] = None  # returns before the frontier
    linearization: Optional[List[int]] = None     # witness order (op ids)
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    def summary(self) -> str:
        search = self.stats
        cost = (
            f"{search.get('nodes', 0)} nodes, "
            f"{search.get('memo_hits', 0)} memo hits"
        )
        if self.ok:
            return (
                f"linearizable: {self.completed} operations "
                f"({self.incomplete_ops} incomplete) [{cost}]"
            )
        return (
            f"NOT linearizable; first inexplicable return after "
            f"{self.detection_method_count} operations: "
            f"{self.first_violation} [{cost}]"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (the ``linz`` verdict schema)."""
        return {
            "ok": self.ok,
            "mode": "linz",
            "operations": self.operations,
            "completed": self.completed,
            "incomplete": self.incomplete_ops,
            "methods_checked": self.methods_checked,
            "detection_method_count": self.detection_method_count,
            "violations": [violation.to_dict() for violation in self.violations],
            "linearization": self.linearization,
            # The frontier entry holds a live Operation for the violation
            # report; everything else is plain-data search accounting.
            "search": {
                key: value for key, value in self.stats.items()
                if key != "frontier"
            },
        }


class LinzChecker:
    """Search for a valid linearization of a log's call/return history.

    Parameters
    ----------
    spec_factory:
        Builds a fresh atomic :class:`~repro.core.spec.Specification`; the
        same factories the refinement checker uses work unchanged.
    memo:
        Memoize failed search states (on when unset; the benchmark ablation
        turns it off).
    max_nodes:
        Node budget; exceeding it raises :class:`SearchBudgetExceeded`.
    candidate_results:
        ``fn(spec, method, args) -> iterable`` overriding the per-spec
        candidate protocol for incomplete mutators.
    obs:
        A :class:`repro.obs.Recorder`; the search reports one
        ``linz.search`` span plus node/memo/prune counters and
        search-depth / pending-width histograms.
    """

    def __init__(
        self,
        spec_factory: Callable,
        *,
        memo: bool = True,
        max_nodes: int = 2_000_000,
        candidate_results: Optional[Callable] = None,
        obs: Optional[Recorder] = None,
    ):
        self.spec_factory = spec_factory
        self.memo = memo
        self.max_nodes = max_nodes
        self.candidate_results = candidate_results
        self.obs: Recorder = obs if obs is not None else NULL_RECORDER

    # -- candidate results for incomplete mutators ---------------------------

    def _candidates(self, spec, op: Operation, history: History) -> List[Any]:
        if self.candidate_results is not None:
            found = self.candidate_results(spec, op.method, op.args)
            return list(found) if found is not None else []
        found = spec.candidate_results(op.method, op.args)
        if found is not None:
            return list(found)
        return history.observed_results(op.method)

    # -- the search ----------------------------------------------------------

    def check(self, log) -> LinzOutcome:
        """Check ``log`` (a Log, an action iterable, or a prepared
        :class:`~repro.linz.history.History`)."""
        history = log if isinstance(log, History) else extract_history(log)
        spec = self.spec_factory()
        kinds = {
            method: spec.method_kind(method)
            for method in {op.method for op in history.operations.values()}
        }
        # Incomplete observers can neither change state nor be required:
        # drop them from the event sequence entirely.
        events = [
            (kind, op) for kind, op in history.events
            if op.complete or kinds[op.method] != OBSERVER
        ]
        outcome = LinzOutcome(
            operations=len(history),
            completed=len(history.completed),
            incomplete_ops=len(history.incomplete),
            methods_checked=len(history.completed),
        )
        obs = self.obs
        if obs.enabled:
            with obs.span(
                "linz.search", cat="linz", operations=len(history),
                memo=self.memo,
            ):
                found, order = self._search(events, spec, history, outcome)
        else:
            found, order = self._search(events, spec, history, outcome)
        if found:
            outcome.linearization = order
        else:
            outcome.violations.append(self._violation(outcome))
        if obs.enabled:
            stats = outcome.stats
            obs.count("linz.checks")
            obs.count("linz.nodes", stats["nodes"])
            obs.count("linz.memo_hits", stats["memo_hits"])
            obs.count("linz.prunes", stats["prunes"])
            obs.observe("linz.search_depth", stats["max_depth"])
            obs.observe("linz.pending_width", stats["max_pending"])
        return outcome

    def _violation(self, outcome: LinzOutcome) -> Violation:
        frontier = outcome.stats.get("frontier")
        if frontier is None:
            # Exhausted without ever blocking: only possible when the very
            # first branch point has no viable operation.
            return Violation(
                kind=ViolationKind.LINZ, seq=0,
                message="no valid linearization of the history exists",
            )
        op: Operation = frontier["op"]
        outcome.detection_method_count = frontier["methods"]
        return Violation(
            kind=ViolationKind.LINZ,
            seq=op.return_seq if op.return_seq is not None else op.call_seq,
            message=(
                f"no linearization explains {op.describe()} "
                f"(thread {op.tid}, op {op.op_id}): every admissible order "
                "of the overlapping operations was searched"
            ),
            signature=Signature(op.tid, op.method, op.args, op.result),
            details={
                "method": op.method,
                "args": op.args,
                "result": op.result,
                "pending": frontier["pending"],
                "spec_state": frontier["spec_state"],
            },
        )

    def _search(self, events, spec0, history: History, outcome: LinzOutcome):
        n = len(events)
        ops = history.operations
        kinds = {
            method: spec0.method_kind(method)
            for method in {op.method for op in ops.values()}
        }
        memo_failed = set()
        stats = {
            "nodes": 0, "memo_hits": 0, "prunes": 0, "spec_clones": 0,
            "max_pending": 0, "max_depth": 0, "memo": self.memo,
            "memo_entries": 0,
        }
        outcome.stats = stats
        frontier_i = -1
        order: List[int] = []
        obs = self.obs
        # Depth bounds: one frame per linearized operation.
        limit = len(ops) * 2 + 2000
        if sys.getrecursionlimit() < limit:
            sys.setrecursionlimit(limit)

        def note_frontier(i: int, pending: frozenset, spec) -> None:
            nonlocal frontier_i
            if i > frontier_i:
                frontier_i = i
                _, blocked = events[i]
                methods = sum(
                    1 for op in ops.values()
                    if op.complete and op.return_seq <= blocked.return_seq
                )
                stats["frontier"] = {
                    "op": blocked,
                    "methods": methods,
                    "pending": sorted(
                        ops[oid].describe() for oid in pending
                    ),
                    "spec_state": spec.describe(),
                }

        def explore(i: int, pending: frozenset, linearized: frozenset,
                    spec, fingerprint) -> bool:
            mark = len(order)
            # Deterministic advance + eager observer linearization, to a
            # fixpoint: neither consumes search budget nor clones the spec.
            while True:
                while i < n:
                    kind, op = events[i]
                    if kind == CALL:
                        pending = pending | {op.op_id}
                    elif op.op_id in linearized:
                        linearized = linearized - {op.op_id}
                    else:
                        break
                    i += 1
                if i >= n:
                    return True
                moved = False
                for oid in sorted(pending):
                    op = ops[oid]
                    if kinds[op.method] != OBSERVER:
                        continue
                    allowed = spec.run_observer(op.method, op.args)
                    if allows(allowed, op.result):
                        pending = pending - {oid}
                        linearized = linearized | {oid}
                        order.append(oid)
                        moved = True
                if not moved:
                    break
            if len(pending) > stats["max_pending"]:
                stats["max_pending"] = len(pending)
            if len(order) > stats["max_depth"]:
                stats["max_depth"] = len(order)
            key = None
            if self.memo:
                fp = fingerprint if fingerprint is not _STALE else (
                    spec.state_fingerprint()
                )
                if fp is not None:
                    key = (i, linearized, fp)
                    if key in memo_failed:
                        stats["memo_hits"] += 1
                        del order[mark:]
                        return False
            stats["nodes"] += 1
            if stats["nodes"] > self.max_nodes:
                raise SearchBudgetExceeded(stats["nodes"], self.max_nodes)
            note_frontier(i, pending, spec)
            # Branch over pending mutators; the blocked return's own
            # operation first (it must linearize before the cursor moves).
            _, blocked = events[i]
            candidates = sorted(
                (oid for oid in pending if kinds[ops[oid].method] != OBSERVER),
                key=lambda oid: (
                    oid != blocked.op_id,
                    ops[oid].return_seq if ops[oid].complete else n,
                    oid,
                ),
            )
            for oid in candidates:
                op = ops[oid]
                results = (
                    [op.result] if op.complete
                    else self._candidates(spec, op, history)
                )
                for result in results:
                    clone = copy.deepcopy(spec)
                    stats["spec_clones"] += 1
                    try:
                        clone.run_mutator(op.method, op.args, result)
                    except SpecReject:
                        stats["prunes"] += 1
                        continue
                    order.append(oid)
                    if explore(i, pending - {oid}, linearized | {oid},
                               clone, _STALE):
                        return True
                    # The failed explore() restored order to its own mark;
                    # drop the mutator we appended for this branch.
                    order.pop()
            if key is not None:
                memo_failed.add(key)
                stats["memo_entries"] = len(memo_failed)
            del order[mark:]
            return False

        found = explore(0, frozenset(), frozenset(), spec0,
                        spec0.state_fingerprint() if self.memo else None)
        if obs.enabled and not found:
            obs.count("linz.exhausted_searches")
        return found, (list(order) if found else None)


#: Sentinel: "recompute the fingerprint from the spec clone".
_STALE = object()


def check_linearizability(
    log,
    spec_factory: Callable,
    *,
    memo: bool = True,
    max_nodes: int = 2_000_000,
    candidate_results: Optional[Callable] = None,
    obs: Optional[Recorder] = None,
) -> LinzOutcome:
    """One-shot convenience wrapper around :class:`LinzChecker`."""
    checker = LinzChecker(
        spec_factory, memo=memo, max_nodes=max_nodes,
        candidate_results=candidate_results, obs=obs,
    )
    return checker.check(log)
