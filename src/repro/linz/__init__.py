"""repro.linz -- annotation-free linearizability checking (ROADMAP item 4).

Consumes only the call/return history every VYRD log level already records
and searches for a valid linearization against the same atomic specs the
refinement checker uses -- no commit annotations required.  See
``docs/ARCHITECTURE.md`` section 16.
"""

from .checker import (
    LinzChecker,
    LinzOutcome,
    SearchBudgetExceeded,
    check_linearizability,
)
from .history import (
    CALL,
    RET,
    History,
    HistoryError,
    Operation,
    extract_history,
)
from .oracle import brute_force_linearizable
from .registry import (
    DEFAULT_VARIANT,
    EXPECTED_DIVERGENCES,
    LinzProgramConfig,
    expected_divergence,
    linz_config,
    linz_variants,
    strict_lookup_divergence_log,
)

__all__ = [
    "CALL",
    "DEFAULT_VARIANT",
    "EXPECTED_DIVERGENCES",
    "History",
    "HistoryError",
    "LinzChecker",
    "LinzOutcome",
    "LinzProgramConfig",
    "Operation",
    "RET",
    "SearchBudgetExceeded",
    "brute_force_linearizable",
    "check_linearizability",
    "expected_divergence",
    "extract_history",
    "linz_config",
    "linz_variants",
    "strict_lookup_divergence_log",
]
