"""Per-program linearizability configurations and the expected-divergence list.

For every registry program the *default* variant checks linearizability
against the very spec the refinement checker uses, so the two verdicts must
agree -- that agreement is the cross-validation gate in
``tests/linz/test_cross_validation.py``.

The one place the two checkers are *documented* to disagree is the vector
multiset's strict-lookup configuration (see the :mod:`repro.multiset.spec`
header): scan-based lookup is genuinely non-linearizable when the same key
occupies two slots, but the permissive refinement spec
(``permissive_lookup=True``) deliberately accepts the spurious ``False``.
That pairing is modelled here as the ``strict-lookup`` variant, whose
refinement side uses the permissive spec while the linearizability side
uses the strict one, and it is carried on :data:`EXPECTED_DIVERGENCES` --
an explicit, tested allowlist that the ``--mode both`` CLI path and the
cross-validation gate consult instead of silently skipping the case.
:func:`strict_lookup_divergence_log` constructs the canonical witness
execution for it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from ..core.actions import CallAction, CommitAction, ReturnAction
from ..core.log import Log
from ..harness.workload import PROGRAMS
from ..multiset import MultisetSpec
from ..multiset.spec import SUCCESS

#: The variant every program supports: linz spec == refinement spec.
DEFAULT_VARIANT = "default"


@dataclass(frozen=True)
class LinzProgramConfig:
    """One (program, variant) linearizability-checking configuration."""

    program: str
    variant: str
    #: Spec factory for the linearizability search.
    linz_spec_factory: Callable
    #: Spec factory the refinement side uses for the same comparison
    #: (``None`` -> the program's own registry spec, i.e. identical).
    refinement_spec_factory: Optional[Callable] = None
    #: Why the two verdicts are *expected* to disagree (``None`` -> they
    #: must agree; anything else puts the config on the divergence list).
    expected_divergence: Optional[str] = None


STRICT_LOOKUP_DIVERGENCE = (
    "vector-multiset scan lookup is genuinely non-linearizable under "
    "duplicated keys (a delete can overtake the scan while a re-insert "
    "commits behind it, so lookup misses an always-present key); the "
    "permissive refinement spec accepts the spurious False, the strict "
    "linearizability spec correctly rejects it -- see the "
    "repro.multiset.spec header"
)

#: Non-default variants, keyed by (program, variant).
_VARIANTS: Dict[Tuple[str, str], LinzProgramConfig] = {
    ("multiset-vector", "strict-lookup"): LinzProgramConfig(
        program="multiset-vector",
        variant="strict-lookup",
        linz_spec_factory=MultisetSpec,  # strict lookup (the default)
        refinement_spec_factory=lambda: MultisetSpec(permissive_lookup=True),
        expected_divergence=STRICT_LOOKUP_DIVERGENCE,
    ),
}

#: Every (program, variant) pair allowed to disagree, with its reason.
EXPECTED_DIVERGENCES: Tuple[LinzProgramConfig, ...] = tuple(
    config for config in _VARIANTS.values()
    if config.expected_divergence is not None
)


def linz_config(program: str, variant: str = DEFAULT_VARIANT) -> LinzProgramConfig:
    """Resolve the checking configuration for ``(program, variant)``."""
    if program not in PROGRAMS:
        raise KeyError(f"unknown program {program!r}")
    if variant == DEFAULT_VARIANT:
        spec_factory = PROGRAMS[program].build(False, 1).spec_factory
        return LinzProgramConfig(
            program=program, variant=variant, linz_spec_factory=spec_factory
        )
    config = _VARIANTS.get((program, variant))
    if config is None:
        raise KeyError(
            f"program {program!r} has no linz variant {variant!r}; "
            f"available: {', '.join(linz_variants(program))}"
        )
    return config


def linz_variants(program: str) -> Tuple[str, ...]:
    """Variant names available for ``program`` (always includes default)."""
    extra = sorted(
        variant for (name, variant) in _VARIANTS if name == program
    )
    return (DEFAULT_VARIANT, *extra)


def expected_divergence(program: str, variant: str) -> Optional[str]:
    """The documented reason ``(program, variant)`` verdicts may disagree,
    or ``None`` if they must agree."""
    config = _VARIANTS.get((program, variant))
    return config.expected_divergence if config is not None else None


def strict_lookup_divergence_log() -> Log:
    """The canonical witness for the strict-lookup expected divergence.

    The key 5 is inserted twice, then while a ``lookup(5)`` is in flight
    one occurrence is deleted and re-inserted, and the lookup returns
    ``False``.  The key's multiplicity is 2 -> 1 -> 2 throughout the lookup
    window -- never zero -- so no linearization point for the lookup exists
    under the strict spec (linearizability violation), while the permissive
    refinement spec allows the spurious ``False`` at every point of the
    window (refinement OK).  This is exactly the scan-based miss the
    :mod:`repro.multiset.spec` header documents.
    """
    log = Log()
    actions = [
        # two sequential inserts of the same key
        CallAction(tid=0, op_id=0, method="insert", args=(5,)),
        CommitAction(tid=0, op_id=0),
        ReturnAction(tid=0, op_id=0, method="insert", result=SUCCESS),
        CallAction(tid=0, op_id=1, method="insert", args=(5,)),
        CommitAction(tid=0, op_id=1),
        ReturnAction(tid=0, op_id=1, method="insert", result=SUCCESS),
        # the lookup window opens ...
        CallAction(tid=1, op_id=2, method="lookup", args=(5,)),
        # ... one occurrence is deleted and re-inserted inside it ...
        CallAction(tid=2, op_id=3, method="delete", args=(5,)),
        CommitAction(tid=2, op_id=3),
        ReturnAction(tid=2, op_id=3, method="delete", result=True),
        CallAction(tid=3, op_id=4, method="insert", args=(5,)),
        CommitAction(tid=3, op_id=4),
        ReturnAction(tid=3, op_id=4, method="insert", result=SUCCESS),
        # ... and the scan misses the always-present key
        ReturnAction(tid=1, op_id=2, method="lookup", result=False),
    ]
    for action in actions:
        log.append(action)
    return log
