"""The `vyrd serve` daemon: continuous verification of streamed shards.

One :class:`ServeSession` verifies one producing run.  Two daemon threads
cooperate per session:

* the **ingest** thread tails every shard blob (chain-verifying each frame
  as it arrives), merges decoded frames back into canonical order by
  sequence number (:class:`~repro.serve.merge.StreamMerger`), and hands
  record batches to a bounded queue;
* the **checker** thread drains the queue, appends to the canonical
  in-memory history, and feeds the incremental refinement (and optional
  race) checkers -- the paper's online verifier, decoupled from the
  producing process entirely.

Backpressure runs end to end: when the checker lags, the bounded queue
fills and the ingest thread blocks on ``put``; crossing the high watermark
additionally raises the session's PAUSE flag in the store, which the
producer's :class:`~repro.serve.shard.TeeLog` polls and honors.  Clearing
happens at the low watermark.  None of this can change the verdict or the
history -- order is carried by the frames themselves -- it only changes
*when* work happens, which is what the determinism gate checks.

The session is *self-healing* along three axes (ARCHITECTURE §14):

* **producer death** -- hand :meth:`ServeSession.run` a
  :class:`~repro.serve.supervise.ProducerSupervisor` and a dead producer is
  salvaged and restarted transparently; the daemon just keeps tailing.
* **store brownouts** -- wrap the store in a
  :class:`~repro.serve.retry.RetryingStore` and every ranged read, flag
  poll and checkpoint write retries transient failures with backoff,
  surfacing a typed :class:`~repro.serve.retry.StoreUnavailable` only after
  the budget is spent.
* **checker failure** -- a crashed (or, opt-in, hopelessly lagging) checker
  *degrades* the session to record-only mode instead of killing it: ingest
  keeps appending to the canonical history (PAUSE semantics intact, so
  producers are never wedged), a health heartbeat reports the degradation
  (``<session>/HEALTH.json`` + ``obs`` counters), and once the stream
  drains the daemon runs **offline catch-up verification** from the last
  checkpoint -- the final verdict is byte-identical to the never-degraded
  run because it is computed over the same canonical history.

:func:`serve_campaign` is the long-lived service shape: producer
subprocesses are forked per session and any number of sessions are verified
concurrently, each with its own shard set under one store.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core import (
    CheckOutcome,
    Checkpoint,
    CheckpointError,
    RefinementChecker,
    checkpoint_blob_name,
)
from ..core.actions import Action
from ..core.log import ChainReport, log_signature, verify_chain
from ..obs import NULL_RECORDER, Recorder
from .merge import MergeError, StreamMerger
from .shard import ShardTail, health_name, manifest_name, pause_name
from .store import LogStore

#: Checker-thread exceptions that must NOT be absorbed into degraded-mode
#: retries.  A ``MergeError`` means the canonical history itself is
#: inconsistent -- re-feeding the same records to a fresh checker at
#: catch-up would only fail again against corrupt input, so the session
#: surfaces it as a checker error instead of degrading.  ``MemoryError``
#: means the process is dying; retrying accelerates that.
#: (``KeyboardInterrupt``/``SystemExit`` derive from ``BaseException`` and
#: already escape every ``except Exception`` below -- pinned by
#: ``tests/serve/test_exception_disposition.py``.)
FATAL_CHECKER_EXCEPTIONS = (MergeError, MemoryError)


class BoundedQueue:
    """A bounded record-batch queue; blocking ``put`` is the backpressure.

    Capacity is measured in *records* (not batches) so the memory bound is
    independent of batch size.  ``put_waits`` counts puts that blocked and
    ``max_depth`` the high-water record count -- the evidence that
    backpressure actually engaged in a lag test.
    """

    def __init__(self, max_records: int):
        self._max = max(1, max_records)
        self._batches: List[List[Action]] = []
        self._records = 0
        self._closed = False
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)
        self.put_waits = 0
        self.max_depth = 0

    @property
    def depth(self) -> int:
        return self._records

    @property
    def max_records(self) -> int:
        return self._max

    def put(self, batch: List[Action]) -> None:
        """Block until ``batch`` fits (the backpressure).

        A batch larger than the whole bound is admitted once the queue is
        empty -- waiting for it to *fit* would wait forever, and refusing
        it would deadlock a misconfigured session rather than merely
        overshooting the memory bound by one batch.
        """
        with self._not_full:
            if self._records + len(batch) > self._max:
                self.put_waits += 1
                while (
                    self._records + len(batch) > self._max
                    and not (self._records == 0 and len(batch) > self._max)
                    and not self._closed
                ):
                    # Event-driven: every get() and close() notifies, so an
                    # untimed wait wakes exactly when space appears instead
                    # of burning a 50ms poll per round trip under pressure.
                    self._not_full.wait()
            if self._closed:
                raise RuntimeError("queue closed")
            self._batches.append(batch)
            self._records += len(batch)
            self.max_depth = max(self.max_depth, self._records)
            self._not_empty.notify()

    def get(self, timeout: float = 0.1) -> Optional[List[Action]]:
        """Next batch, or None once the queue is closed and drained."""
        with self._not_empty:
            while not self._batches:
                if self._closed:
                    return None
                self._not_empty.wait(timeout)
            batch = self._batches.pop(0)
            self._records -= len(batch)
            self._not_full.notify()
            return batch

    def close(self) -> None:
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()


def session_checkers(
    program: str,
    mode: str = "view",
    races=None,
    stop_at_first: bool = True,
):
    """Build (refinement, race) checker factories from the workload registry.

    The daemon never executes the program; it only needs the program's
    *specification* side -- spec factory, view factory, invariants, replay
    registry, atomic locations -- which the registry rebuilds from the name
    alone, exactly as the offline CLI checkers do.
    """
    from ..harness.workload import PROGRAMS  # late import: serve -> harness

    entry = PROGRAMS[program]
    built = entry.build(False, 1)

    def make_checker() -> RefinementChecker:
        return RefinementChecker(
            built.spec_factory(),
            mode=mode,
            impl_view=built.view_factory() if mode == "view" else None,
            invariants=built.invariants if mode == "view" else (),
            replay_registry=built.replay_registry,
            stop_at_first=stop_at_first,
        )

    make_races = None
    if races:
        from ..races import RaceChecker

        def make_races():
            return RaceChecker(
                detectors=races, stop_at_first=False,
                atomic_locs=entry.atomic_locs,
            )

    return make_checker, make_races


@dataclass
class ServeResult:
    """Everything the daemon concluded about one streamed session."""

    session: str
    records: int = 0
    signature: Optional[str] = None
    outcome: Optional[CheckOutcome] = None
    race_outcome: Optional[object] = None
    complete: bool = False
    error: Optional[str] = None
    manifest: Optional[dict] = None
    chain: List[ChainReport] = field(default_factory=list)
    stats: dict = field(default_factory=dict)
    degraded: bool = False
    restarts: int = 0
    gave_up: bool = False
    health: Optional[dict] = None

    @property
    def chain_ok(self) -> bool:
        return bool(self.chain) and all(report.ok for report in self.chain)

    @property
    def ok(self) -> bool:
        """Stream-level health: complete, chain-clean, no daemon error.

        The refinement *verdict* is deliberately separate -- a buggy program
        detected by the checkers is the service working, not failing."""
        return self.complete and self.error is None and self.chain_ok

    def to_dict(self) -> dict:
        return {
            "session": self.session,
            "ok": self.ok,
            "records": self.records,
            "signature": self.signature,
            "verdict_ok": self.outcome.ok if self.outcome else None,
            "races": (
                len(self.race_outcome.races) if self.race_outcome else None
            ),
            "complete": self.complete,
            "error": self.error,
            "degraded": self.degraded,
            "restarts": self.restarts,
            "gave_up": self.gave_up,
            "health": self.health,
            "chain": [report.to_dict() for report in self.chain],
            "stats": dict(self.stats),
        }


class ServeSession:
    """Ingest, merge and verify one session's shard streams online.

    Parameters
    ----------
    checker_factory / race_checker_factory:
        Zero-arg builders of the incremental checkers (see
        :func:`session_checkers`); either may be None to skip that check.
    queue_records:
        Bound of the ingest->checker queue; the memory cap and the
        backpressure trigger.
    pause_high / pause_low:
        Queue depths (records) at which the store PAUSE flag is raised and
        cleared; default 3/4 and 1/4 of ``queue_records``.
    checker_delay:
        Artificial per-batch checker stall (seconds) -- the test hook that
        forces checker lag so backpressure determinism can be exercised.
    timeout:
        Wall-clock bound on the whole session; exceeded => incomplete.
    checkpoint_every:
        When > 0, the checker thread writes a refinement-checker checkpoint
        blob (``<session>/CHECKPOINT.vyrdckpt``) into the store every that
        many checked records, so a killed daemon can resume mid-log.
    resume:
        Try to restore the refinement checker from the session's checkpoint
        blob before verifying.  The canonical history still re-ingests every
        record (the stream signature must not depend on where verification
        restarted); only the checker skips records below the checkpoint's
        ``resume_seq``.  A missing blob starts from record zero silently; a
        corrupt or mismatched blob is reported in ``stats`` and likewise
        falls back to record zero.
    degrade_lag / degrade_after:
        Opt-in lag shedding: when the queue holds ``degrade_lag`` or more
        records continuously for ``degrade_after`` seconds, the session
        degrades to record-only mode (the live checker stops being fed;
        ingest and the canonical history continue; catch-up verification
        runs at drain).  ``degrade_lag`` should sit below ``queue_records``
        or backpressure caps the depth before the threshold can trip.
    heartbeat_interval:
        Seconds between health-blob writes (``<session>/HEALTH.json``);
        ``0`` disables the periodic heartbeat (the final health snapshot is
        always written and attached to the result).
    """

    def __init__(
        self,
        store: LogStore,
        session: str,
        num_shards: int,
        *,
        checker_factory: Optional[Callable[[], RefinementChecker]] = None,
        race_checker_factory: Optional[Callable] = None,
        queue_records: int = 4096,
        batch_records: int = 256,
        poll_interval: float = 0.002,
        pause_high: Optional[int] = None,
        pause_low: Optional[int] = None,
        checker_delay: float = 0.0,
        timeout: float = 120.0,
        checkpoint_every: int = 0,
        resume: bool = False,
        degrade_lag: Optional[int] = None,
        degrade_after: float = 0.25,
        heartbeat_interval: float = 0.25,
        obs: Optional[Recorder] = None,
    ):
        self.store = store
        self.session = session
        self.num_shards = num_shards
        self.checker_factory = checker_factory
        self.race_checker_factory = race_checker_factory
        self.queue = BoundedQueue(queue_records)
        # An enqueue chunk larger than the queue bound could never fit and
        # would wedge ingest until the session timeout; clamp, don't trust
        # the caller to keep the two knobs consistent.
        self.batch_records = max(1, min(batch_records, self.queue.max_records))
        self.poll_interval = poll_interval
        self.pause_high = (
            pause_high if pause_high is not None else (queue_records * 3) // 4
        )
        self.pause_low = (
            pause_low if pause_low is not None else queue_records // 4
        )
        self.checker_delay = checker_delay
        self.timeout = timeout
        self.checkpoint_every = max(0, checkpoint_every)
        self.resume = resume
        self.degrade_lag = degrade_lag
        self.degrade_after = max(0.0, degrade_after)
        self.heartbeat_interval = max(0.0, heartbeat_interval)
        self.obs = obs if obs is not None else NULL_RECORDER
        # shared between the two daemon threads
        self._canonical: List[Action] = []
        self._ingested = 0
        self._checked = 0
        self._manifest: Optional[dict] = None
        self._ingest_error: Optional[str] = None
        self._checker_error: Optional[str] = None
        self._paused = False
        self._pauses = 0
        self._resume_seq = 0
        self._resume_rejected: Optional[str] = None
        self._checkpoints_saved = 0
        self._checkpoint_failures = 0
        # degradation / health state
        self._checker_shed = False
        self._checker_crashed = False
        self._race_shed = False
        self._shed_seq = 0  # records the live checker had fully verified
        self._degraded_reason: Optional[str] = None
        self._catchup_from = 0
        self._catchup_records = 0
        self._heartbeats = 0
        self._health_errors = 0
        self._last_health_error: Optional[str] = None

    # -- ingest side ---------------------------------------------------------

    def _set_pause(self, up: bool) -> None:
        if up and not self._paused:
            self.store.set_flag(pause_name(self.session))
            self._paused = True
            self._pauses += 1
        elif not up and self._paused:
            self.store.clear_flag(pause_name(self.session))
            self._paused = False

    def _enqueue(self, records: List[Action]) -> None:
        for start in range(0, len(records), self.batch_records):
            batch = records[start : start + self.batch_records]
            # Raise the pause flag *before* a put that would cross the high
            # watermark, so the producer throttles while the daemon blocks.
            if self.queue.depth + len(batch) >= self.pause_high:
                self._set_pause(True)
            self.queue.put(batch)
            self._ingested += len(batch)

    def _ingest(self, process=None) -> None:
        tails = [
            ShardTail(self.store, self.session, index)
            for index in range(self.num_shards)
        ]
        merger = StreamMerger(self.num_shards)
        # Idle deadline, not a wall-clock one: ``timeout`` bounds how long
        # the session tolerates *no progress*.  A slow producer dribbling
        # records for longer than the timeout is healthy as long as each
        # gap between batches stays under it; the deadline resets on every
        # decoded frame.  (A wedged stream still times out identically.)
        deadline = time.monotonic() + self.timeout
        grace_polls = 0
        try:
            while True:
                progressed = 0
                for tail in tails:
                    items = tail.poll()
                    if items:
                        merger.push(tail.index, items)
                        progressed += len(items)
                    if tail.error is not None:
                        self._ingest_error = (
                            f"shard {tail.index}: {tail.error}"
                        )
                        return
                ready = merger.pop_ready()
                if ready:
                    self._enqueue(ready)
                # Clearing must not depend on new records arriving: a paused
                # producer sends nothing, so the flag would wedge up forever
                # if only _enqueue could lower it.
                if self._paused and self.queue.depth <= self.pause_low:
                    self._set_pause(False)
                if self._manifest is None:
                    self._manifest = self.store.get_json(
                        manifest_name(self.session)
                    )
                if (
                    self._manifest is not None
                    and merger.next_seq >= int(self._manifest["records"])
                ):
                    return  # every produced record ingested
                if progressed:
                    deadline = time.monotonic() + self.timeout
                    grace_polls = 0
                    continue
                if time.monotonic() > deadline:
                    self._ingest_error = (
                        f"session idle timeout after {self.timeout}s "
                        f"without progress (merged {merger.next_seq}, "
                        f"buffered {merger.buffered}, "
                        f"waiting for seq {merger.gap()})"
                    )
                    return
                if process is not None and not process.is_alive():
                    # Producer is gone (a supervised producer stays
                    # "alive" across restarts -- see ProducerSupervisor).
                    # Give the store a few more polls to surface
                    # already-written bytes, then conclude.
                    grace_polls += 1
                    if grace_polls > 5:
                        if self._manifest is None:
                            detail = ""
                            sup = getattr(process, "state", None)
                            if sup is not None and getattr(
                                sup, "gave_up", False
                            ):
                                detail = (
                                    "; supervisor gave up after "
                                    f"{sup.restarts} restart(s)"
                                )
                            self._ingest_error = (
                                "producer exited without a manifest "
                                f"(merged {merger.next_seq} records"
                                f"{detail})"
                            )
                        return
                time.sleep(self.poll_interval)
        except MergeError as exc:
            self._ingest_error = f"merge: {exc}"
        finally:
            self._set_pause(False)
            self.queue.close()

    # -- checker side --------------------------------------------------------

    def _restore_from_blob(self, checker) -> int:
        """Restore ``checker`` from the checkpoint blob; returns resume seq.

        Failures never abort the session: a checkpoint is an optimization,
        so a bad one just means verifying from record zero again."""
        try:
            blob = self.store.get_bytes(checkpoint_blob_name(self.session))
        except (KeyError, OSError):  # no checkpoint published yet
            return 0
        try:
            checkpoint = Checkpoint.from_bytes(blob)
            checker.restore(checkpoint)
        except CheckpointError as exc:
            self._resume_rejected = str(exc)
            return 0
        return checkpoint.resume_seq

    def _maybe_restore(self, checker) -> None:
        if checker is None or not self.resume:
            return
        self._resume_seq = self._restore_from_blob(checker)

    def _save_checkpoint(self, checker) -> None:
        checkpoint = checker.checkpoint(
            meta={"session": self.session, "shards": self.num_shards}
        )
        self.store.put_bytes(
            checkpoint_blob_name(self.session), checkpoint.to_bytes()
        )
        self._checkpoints_saved += 1

    # -- degradation ---------------------------------------------------------

    def _shed(self, reason: str, *, race: bool = False,
              crashed: bool = False) -> None:
        """Degrade to record-only mode: stop feeding a failed checker.

        Ingest, the canonical history and PAUSE semantics all continue --
        durability is never sacrificed to a sick checker.  Catch-up
        verification at drain recomputes the authoritative verdict over the
        same canonical history, so the final outcome is identical to a
        never-degraded session."""
        if race:
            self._race_shed = True
        else:
            self._checker_shed = True
            self._checker_crashed = self._checker_crashed or crashed
        if self._degraded_reason is None:
            self._degraded_reason = reason
        else:
            self._degraded_reason += "; " + reason
        if self.obs.enabled:
            self.obs.count("serve.degraded", 1)

    def _check(self, checker, race_checker) -> None:
        # Canonical position of the next record this thread will see; the
        # merger emits records in sequence order, so a running counter is the
        # global sequence number.
        position = 0
        since_checkpoint = 0
        lag_since: Optional[float] = None
        try:
            while True:
                batch = self.queue.get()
                if batch is None:
                    return
                self._canonical.extend(batch)
                fresh = batch
                if position < self._resume_seq:
                    # Already verified before the checkpoint was taken: the
                    # canonical history keeps them (signature identity), the
                    # checker must not see them twice.
                    skip = min(len(batch), self._resume_seq - position)
                    fresh = batch[skip:]
                position += len(batch)
                if checker is not None and not self._checker_shed and fresh:
                    try:
                        checker.feed(fresh)
                    except FATAL_CHECKER_EXCEPTIONS:
                        # Not retryable: degrading would re-feed the same
                        # records at catch-up.  Surface on the result via
                        # the outer handler.
                        raise
                    except Exception as exc:
                        self._shed(
                            f"checker crashed: {exc!r}", crashed=True
                        )
                    else:
                        if self.checkpoint_every:
                            since_checkpoint += len(fresh)
                            if since_checkpoint >= self.checkpoint_every:
                                try:
                                    self._save_checkpoint(checker)
                                except FATAL_CHECKER_EXCEPTIONS:
                                    raise
                                except Exception:
                                    # A checkpoint is an optimization; a
                                    # store refusing one must not degrade
                                    # (let alone kill) the session.
                                    self._checkpoint_failures += 1
                                since_checkpoint = 0
                if checker is not None and not self._checker_shed:
                    # Everything up to here is verified (records below the
                    # resume seq count: the checkpoint covers them) -- the
                    # point a lag-shed checker resumes from at catch-up.
                    self._shed_seq = position
                if race_checker is not None and not self._race_shed:
                    try:
                        race_checker.feed(batch)
                    except FATAL_CHECKER_EXCEPTIONS:
                        raise
                    except Exception as exc:
                        self._shed(
                            f"race checker crashed: {exc!r}", race=True
                        )
                self._checked += len(batch)
                if (
                    self.degrade_lag is not None
                    and not self._checker_shed
                    and checker is not None
                ):
                    if self.queue.depth >= self.degrade_lag:
                        now = time.monotonic()
                        if lag_since is None:
                            lag_since = now
                        elif now - lag_since >= self.degrade_after:
                            self._shed(
                                f"checker lag: queue depth "
                                f"{self.queue.depth} >= {self.degrade_lag} "
                                f"for {self.degrade_after}s"
                            )
                    else:
                        lag_since = None
                if self.checker_delay and not self._checker_shed:
                    time.sleep(self.checker_delay)
        except Exception as exc:  # surfaced on the result, not swallowed
            self._checker_error = f"checker: {exc!r}"

    def _catch_up(self, live_checker, live_race_checker):
        """Offline catch-up verification after a degraded session.

        Runs once the stream has drained, over the canonical in-memory
        history -- the exact record sequence a healthy online checker saw.
        A *lag-shed* checker is still correct, so it simply resumes from
        where it stopped; a *crashed* checker is replaced by a fresh one
        restored from the last durable checkpoint (or record zero).
        Returns the authoritative ``(checker, race_checker)`` pair."""
        checker, race_checker = live_checker, live_race_checker
        if self._checker_shed and self.checker_factory is not None:
            if self._checker_crashed:
                checker = self.checker_factory()
                start = self._restore_from_blob(checker)
                if self._resume_rejected is not None and start == 0:
                    # A rejected restore may have touched nothing, but a
                    # fresh build is the only state worth trusting here.
                    checker = self.checker_factory()
            else:
                start = self._shed_seq
            self._catchup_from = start
            records = self._canonical[start:]
            self._catchup_records = len(records)
            try:
                if records:
                    checker.feed(records)
            except Exception as exc:
                # The fault was not transient: this history cannot be
                # verified by this checker at all.  Surface it.
                self._checker_error = f"catch-up checker: {exc!r}"
                checker = None
        if self._race_shed and self.race_checker_factory is not None:
            race_checker = self.race_checker_factory()
            try:
                if self._canonical:
                    race_checker.feed(list(self._canonical))
            except Exception as exc:
                self._checker_error = (
                    (self._checker_error + "; " if self._checker_error
                     else "") + f"catch-up race checker: {exc!r}"
                )
                race_checker = None
        if self.obs.enabled and self._catchup_records:
            self.obs.count("serve.catchup_records", self._catchup_records)
        return checker, race_checker

    # -- health --------------------------------------------------------------

    def _health_snapshot(self, state: str) -> dict:
        return {
            "session": self.session,
            "state": state,
            "degraded": self._checker_shed or self._race_shed,
            "degraded_reason": self._degraded_reason,
            "ingested": self._ingested,
            "checked": self._checked,
            "queue_depth": self.queue.depth,
            "paused": self._paused,
            "checkpoints_saved": self._checkpoints_saved,
            "heartbeats": self._heartbeats,
            "health_errors": self._health_errors,
            "last_health_error": self._last_health_error,
            "time": time.time(),
        }

    def _write_health(self, state: str) -> dict:
        payload = self._health_snapshot(state)
        try:
            self.store.put_json(health_name(self.session), payload)
        except Exception as exc:
            # Health is best-effort -- a refusing store never kills a
            # session -- but a swallowed failure must stay observable:
            # degraded health reporting would otherwise look exactly like
            # healthy silence.  The error count and last error ride on the
            # next snapshot that does land, and on the obs counters.
            self._health_errors += 1
            self._last_health_error = repr(exc)
            # The returned snapshot must carry the failure it just suffered
            # -- callers (and the final ServeResult.health) would otherwise
            # see pre-failure counts.
            payload["health_errors"] = self._health_errors
            payload["last_health_error"] = self._last_health_error
            if self.obs.enabled:
                self.obs.count("serve.health_errors", 1)
        return payload

    def _heartbeat(self, stop: threading.Event) -> None:
        while not stop.wait(self.heartbeat_interval):
            self._heartbeats += 1
            degraded = self._checker_shed or self._race_shed
            self._write_health("degraded" if degraded else "serving")

    # -- the session -----------------------------------------------------------

    def run(self, process=None) -> ServeResult:
        """Drive ingest + checking to completion; ``process`` (optional) is
        the producer handle used to detect an abandoned session."""
        checker = self.checker_factory() if self.checker_factory else None
        race_checker = (
            self.race_checker_factory() if self.race_checker_factory else None
        )
        self._maybe_restore(checker)
        obs = self.obs
        heartbeat_stop = threading.Event()
        heartbeat = None
        with obs.span("serve.session", cat="serve", session=self.session):
            ingest = threading.Thread(
                target=self._ingest, args=(process,),
                name=f"serve-ingest-{self.session}", daemon=True,
            )
            check = threading.Thread(
                target=self._check, args=(checker, race_checker),
                name=f"serve-check-{self.session}", daemon=True,
            )
            if self.heartbeat_interval > 0:
                heartbeat = threading.Thread(
                    target=self._heartbeat, args=(heartbeat_stop,),
                    name=f"serve-health-{self.session}", daemon=True,
                )
                heartbeat.start()
            ingest.start()
            check.start()
            ingest.join()
            check.join()
            if heartbeat is not None:
                heartbeat_stop.set()
                heartbeat.join(timeout=5.0)
            if self._checker_shed or self._race_shed:
                with obs.span(
                    "serve.catchup", cat="serve", session=self.session
                ):
                    checker, race_checker = self._catch_up(
                        checker, race_checker
                    )
        result = ServeResult(session=self.session)
        result.manifest = self._manifest
        result.records = len(self._canonical)
        result.signature = log_signature(self._canonical)
        result.degraded = self._checker_shed or self._race_shed
        if checker is not None:
            result.outcome = checker.finish()
        if race_checker is not None:
            result.race_outcome = race_checker.finish()
        result.error = self._ingest_error or self._checker_error
        result.complete = (
            self._manifest is not None
            and result.error is None
            and result.records == int(self._manifest["records"])
        )
        if self._manifest is not None:
            result.chain = self._audit_chains(self._manifest)
        # Write the terminal health document *before* snapshotting stats so
        # a failure of this very write is visible on the returned counters.
        state = "complete" if result.complete else "failed"
        result.health = self._write_health(state)
        result.stats = {
            "ingested": self._ingested,
            "checked": self._checked,
            "queue_put_waits": self.queue.put_waits,
            "queue_max_depth": self.queue.max_depth,
            "pause_raises": self._pauses,
            "producer_throttle_waits": (
                self._manifest.get("throttle_waits")
                if self._manifest else None
            ),
            "checkpoints_saved": self._checkpoints_saved,
            "checkpoint_failures": self._checkpoint_failures,
            "resumed_from_seq": self._resume_seq,
            "checkpoint_rejected": self._resume_rejected,
            "degraded_reason": self._degraded_reason,
            "catchup_from_seq": self._catchup_from,
            "catchup_records": self._catchup_records,
            "heartbeats": self._heartbeats,
            "health_errors": self._health_errors,
            "last_health_error": self._last_health_error,
        }
        store_stats = getattr(self.store, "stats", None)
        if isinstance(store_stats, dict) and "retries" in store_stats:
            result.stats["store"] = dict(store_stats)
        sup = getattr(process, "state", None)
        if sup is not None and hasattr(sup, "restarts"):
            result.restarts = sup.restarts
            result.gave_up = sup.gave_up
            result.stats["supervisor"] = {
                "restarts": sup.restarts,
                "gave_up": sup.gave_up,
                "succeeded": sup.succeeded,
                "events": list(sup.ledger),
            }
        if obs.enabled:
            obs.count("serve.records", result.records)
            obs.count("serve.sessions", 1)
            obs.count("serve.queue_put_waits", self.queue.put_waits)
            obs.count("serve.pause_raises", self._pauses)
            obs.observe("serve.queue_max_depth", self.queue.max_depth)
            if result.restarts:
                obs.count("serve.producer_restarts", result.restarts)
        return result

    def _audit_chains(self, manifest: dict) -> List[ChainReport]:
        """Post-completion audit: re-walk every shard file's full chain
        against the manifest's acknowledged head digests."""
        reports = []
        for entry in manifest.get("shards", ()):
            name = entry["name"]
            target = self.store.path(name) or self.store.open_read(name)
            reports.append(
                verify_chain(target, expected_head=entry.get("head_digest"))
            )
        return reports


# ---------------------------------------------------------------------------
# The service: many sessions, forked producers
# ---------------------------------------------------------------------------


@dataclass
class ServeReport:
    """One `vyrd serve` campaign: every session's result."""

    sessions: List[ServeResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return bool(self.sessions) and all(s.ok for s in self.sessions)

    @property
    def records(self) -> int:
        return sum(s.records for s in self.sessions)

    @property
    def violations(self) -> int:
        return sum(
            1 for s in self.sessions if s.outcome and not s.outcome.ok
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "records": self.records,
            "violations": self.violations,
            "sessions": [s.to_dict() for s in self.sessions],
        }


def serve_campaign(
    program: str,
    store,
    *,
    sessions: int = 1,
    base_seed: int = 0,
    num_shards: int = 2,
    jobs: int = 2,
    mode: str = "view",
    races=None,
    sync: bool = False,
    batch_records: int = 64,
    queue_records: int = 4096,
    checker_delay: float = 0.0,
    timeout: float = 120.0,
    run_kwargs: Optional[dict] = None,
    supervise: bool = False,
    max_restarts: int = 2,
    kill_producer_after: Optional[int] = None,
    store_retries: int = 0,
    degrade_lag: Optional[int] = None,
    obs: Optional[Recorder] = None,
) -> ServeReport:
    """Serve ``sessions`` runs of one program, producers forked per session.

    Each session gets seed ``base_seed + i`` (schedule diversity, the swarm
    idiom) and a private shard namespace ``run-<seed>`` under ``store``;
    ``jobs`` sessions are verified concurrently.  Requires a
    :class:`~repro.serve.store.LocalDirectoryStore` (producers are separate
    processes); use :class:`ServeSession` + :func:`produce_session` directly
    for in-process serving against other stores.

    ``supervise=True`` runs each producer under a
    :class:`~repro.serve.supervise.ProducerSupervisor` (up to
    ``max_restarts`` salvage-and-restart cycles per session);
    ``kill_producer_after`` is the fault hook that makes the first attempt
    die after that many records.  ``store_retries > 0`` wraps the daemon's
    store access in a :class:`~repro.serve.retry.RetryingStore`;
    ``degrade_lag`` opts into record-only degradation (see
    :class:`ServeSession`).
    """
    import multiprocessing
    from concurrent.futures import ThreadPoolExecutor

    from .store import LocalDirectoryStore

    if not isinstance(store, LocalDirectoryStore):
        raise TypeError(
            "serve_campaign forks producer subprocesses and needs a "
            "LocalDirectoryStore; drive ServeSession directly for "
            "in-process stores"
        )
    from .producer import _producer_main
    from .retry import RetryingStore
    from .supervise import ProducerSupervisor, SupervisionPolicy

    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        ctx = multiprocessing.get_context()
    checker_factory, race_factory = session_checkers(
        program, mode=mode, races=races
    )
    kwargs = dict(run_kwargs or {})
    kwargs.setdefault("mode", mode)
    if races:
        # The producer only needs to *log* the sync/read events the race
        # detectors consume; the detectors themselves run in the daemon.
        kwargs.setdefault("log_locks", True)
        kwargs.setdefault("log_reads", True)

    def one(seed: int) -> ServeResult:
        name = f"run-{seed:05d}"
        session_store = (
            RetryingStore(store, retries=store_retries, seed=seed)
            if store_retries else store
        )
        session = ServeSession(
            session_store, name, num_shards,
            checker_factory=checker_factory,
            race_checker_factory=race_factory,
            queue_records=queue_records,
            checker_delay=checker_delay,
            timeout=timeout,
            degrade_lag=degrade_lag,
            obs=obs,
        )
        if supervise:
            supervisor = ProducerSupervisor(
                store, name, program, seed, num_shards,
                sync=sync, batch_records=batch_records, run_kwargs=kwargs,
                policy=SupervisionPolicy(max_restarts=max_restarts, seed=seed),
                kill_after=kill_producer_after, ctx=ctx,
            )
            supervisor.start()
            try:
                result = session.run(supervisor)
            finally:
                state = supervisor.finish()
            result.restarts = state.restarts
            result.gave_up = state.gave_up
            result.stats["supervisor"] = {
                "restarts": state.restarts,
                "gave_up": state.gave_up,
                "succeeded": state.succeeded,
                "events": list(state.ledger),
            }
            return result
        process = ctx.Process(
            target=_producer_main,
            args=(store.root, name, program, seed, num_shards, sync,
                  batch_records, kwargs),
            name=f"producer-{name}",
        )
        process.start()
        try:
            result = session.run(process)
        finally:
            process.join(timeout=10.0)
            if process.is_alive():  # pragma: no cover - wedged producer
                process.terminate()
                process.join()
        return result

    report = ServeReport()
    seeds = [base_seed + index for index in range(sessions)]
    if jobs <= 1:
        for seed in seeds:
            report.sessions.append(one(seed))
    else:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            report.sessions.extend(pool.map(one, seeds))
    return report
