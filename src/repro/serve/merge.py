"""Deterministic k-way merge of sharded action streams.

Shards partition one session's log by acting thread; every frame carries
the record's global sequence number (its append index under the producing
kernel's logging clock).  Merging is therefore not a heuristic interleaving
problem: the canonical history is *the* sequence ``0, 1, 2, ...`` and the
merger simply emits each record the moment its sequence number becomes the
watermark.  Records arriving early (their shard ran ahead) buffer until the
lagging shard catches up; the output order is a pure function of the frame
contents, independent of poll timing, batch sizes or shard count -- the
determinism gate the service is built on.

The merger also doubles as a cross-shard integrity check: a duplicate or
already-emitted sequence number (two shards claiming the same slot -- a
splice the per-shard hash chains cannot see because each chain is
internally consistent) raises :exc:`MergeError`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from ..core.actions import Action


class MergeError(Exception):
    """Shard streams are mutually inconsistent (duplicate/regressed seq)."""


class StreamMerger:
    """Buffer per-shard ``(seq, action)`` runs; emit the contiguous prefix."""

    def __init__(self, num_shards: int):
        self._queues: List[Deque[Tuple[int, Action]]] = [
            deque() for _ in range(num_shards)
        ]
        self._last_pushed: List[Optional[int]] = [None] * num_shards
        #: Next sequence number to emit (== records emitted so far).
        self.next_seq = 0

    def push(self, shard: int, items: List[Tuple[int, Action]]) -> None:
        """Add freshly decoded frames from one shard (in file order)."""
        queue = self._queues[shard]
        last = self._last_pushed[shard]
        for seq, action in items:
            if last is not None and seq <= last:
                raise MergeError(
                    f"shard {shard} sequence regressed: {seq} after {last}"
                )
            last = seq
            queue.append((seq, action))
        self._last_pushed[shard] = last

    def pop_ready(self) -> List[Action]:
        """Emit every buffered record whose turn has come, in order."""
        out: List[Action] = []
        queues = self._queues
        while True:
            hit = None
            for shard, queue in enumerate(queues):
                if not queue:
                    continue
                head_seq = queue[0][0]
                if head_seq == self.next_seq:
                    hit = shard
                    break
                if head_seq < self.next_seq:
                    raise MergeError(
                        f"shard {shard} offers seq {head_seq} but "
                        f"{self.next_seq} records were already merged "
                        "(duplicate or cross-shard splice)"
                    )
            if hit is None:
                return out
            _seq, action = queues[hit].popleft()
            out.append(action)
            self.next_seq += 1

    @property
    def buffered(self) -> int:
        """Records received but not yet emittable (waiting on a gap)."""
        return sum(len(queue) for queue in self._queues)

    def gap(self) -> Optional[int]:
        """The sequence number the merge is stuck waiting for, if any."""
        return self.next_seq if self.buffered else None
