"""Retrying store access: timeouts, bounded backoff, typed exhaustion.

A production blob store browns out: transient 5xx-style errors, latency
spikes, short blackouts.  None of that should kill a verification session
-- the daemon's reads are idempotent (ranged GETs of immutable bytes) and
its writes (checkpoints, health, flags) are replaceable whole blobs, so
every operation is safe to retry.  :class:`RetryingStore` wraps any
:class:`~repro.serve.store.LogStore` and gives each call:

* **bounded retries** -- up to ``retries`` re-attempts after the first
  failure, with exponential backoff and deterministic seeded jitter (the
  same policy shape as :class:`repro.concurrency.resilient.RetryPolicy`);
* **a per-operation deadline** -- ``op_timeout`` seconds across all
  attempts of one call; a retry that would start after the deadline is
  not attempted;
* **a typed terminal error** -- :class:`StoreUnavailable` (never a bare
  backend exception) once the budget is exhausted, carrying the operation
  name, attempt count and the last underlying error as ``__cause__``.

Only *transient* errors are retried (:data:`DEFAULT_RETRYABLE`): the
:class:`TransientStoreError` family a flaky backend raises, plus
connection/timeout shapes.  A missing blob (``KeyError`` /
``FileNotFoundError``) is an answer, not an outage, and passes straight
through -- tailing readers poll on exactly that distinction.
"""

from __future__ import annotations

import random
import time
from typing import IO, List, Optional, Tuple, Type

from .store import LogStore


class TransientStoreError(Exception):
    """A store operation failed in a way that retrying may fix.

    The base class fault injectors (:class:`repro.faults.inject.FlakyStore`)
    and real backends' adapters raise for brownout-shaped failures: request
    throttling, transient 5xx, connection resets, blackout windows.
    """


class StoreUnavailable(Exception):
    """A store operation exhausted its retry budget.

    The one exception :class:`RetryingStore` is allowed to surface for a
    transient-failure storm; the last backend error is chained as
    ``__cause__``.
    """

    def __init__(self, op: str, name: str, attempts: int, elapsed: float,
                 last_error: BaseException):
        super().__init__(
            f"store {op}({name!r}) unavailable after {attempts} attempt(s) "
            f"in {elapsed:.3f}s: {last_error!r}"
        )
        self.op = op
        self.blob = name
        self.attempts = attempts
        self.elapsed = elapsed
        self.last_error = last_error


#: Exception types worth retrying.  Deliberately excludes ``OSError`` at
#: large: ``FileNotFoundError`` is a real answer for a blob that does not
#: exist yet, and tailing readers depend on seeing it immediately.
DEFAULT_RETRYABLE: Tuple[Type[BaseException], ...] = (
    TransientStoreError,
    ConnectionError,
    TimeoutError,
)


class RetryingStore(LogStore):
    """Wrap a :class:`LogStore` so every call retries transient failures.

    Parameters
    ----------
    inner:
        The wrapped store.
    retries:
        Re-attempts after the first failure (``retries=2`` means up to 3
        attempts per call).
    op_timeout:
        Deadline in seconds for one logical operation across all of its
        attempts; a backoff sleep never extends past it.
    backoff_base / backoff_factor / backoff_max / jitter / seed:
        Retry pacing: attempt ``n >= 1`` waits
        ``min(backoff_max, backoff_base * backoff_factor**(n-1))`` stretched
        by up to ``jitter`` (relative), drawn deterministically from
        ``seed`` and the operation serial -- replayable brownout recovery.
    retry_on:
        Exception types considered transient.

    ``stats`` counts retries, giveups and total backoff seconds -- the
    daemon surfaces them on :class:`~repro.serve.daemon.ServeResult`.
    """

    def __init__(
        self,
        inner: LogStore,
        *,
        retries: int = 3,
        op_timeout: float = 10.0,
        backoff_base: float = 0.01,
        backoff_factor: float = 2.0,
        backoff_max: float = 0.25,
        jitter: float = 0.5,
        seed: int = 0,
        retry_on: Tuple[Type[BaseException], ...] = DEFAULT_RETRYABLE,
    ):
        self.inner = inner
        self.retries = max(0, retries)
        self.op_timeout = op_timeout
        self.backoff_base = backoff_base
        self.backoff_factor = backoff_factor
        self.backoff_max = backoff_max
        self.jitter = jitter
        self.seed = seed
        self.retry_on = retry_on
        self._serial = 0
        self.stats = {"calls": 0, "retries": 0, "giveups": 0,
                      "backoff_seconds": 0.0}

    # -- retry engine --------------------------------------------------------

    def _backoff(self, serial: int, attempt: int) -> float:
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        rng = random.Random(f"{self.seed}:{serial}:{attempt}")
        return base * (1.0 + self.jitter * rng.random())

    def _call(self, op: str, name: str, fn, *args):
        self._serial += 1
        serial = self._serial
        self.stats["calls"] += 1
        deadline = time.monotonic() + self.op_timeout
        attempt = 0
        while True:
            try:
                return fn(*args)
            except self.retry_on as exc:
                attempt += 1
                if attempt > self.retries:
                    self.stats["giveups"] += 1
                    raise StoreUnavailable(
                        op, name, attempt,
                        self.op_timeout - (deadline - time.monotonic()),
                        exc,
                    ) from exc
                delay = self._backoff(serial, attempt)
                if time.monotonic() + delay > deadline:
                    self.stats["giveups"] += 1
                    raise StoreUnavailable(
                        op, name, attempt,
                        self.op_timeout - (deadline - time.monotonic()),
                        exc,
                    ) from exc
                self.stats["retries"] += 1
                self.stats["backoff_seconds"] += delay
                time.sleep(delay)

    # -- LogStore surface (every primitive delegated with retry) -------------

    def open_append(self, name: str) -> IO[bytes]:
        return self._call("open_append", name, self.inner.open_append, name)

    def open_read(self, name: str) -> IO[bytes]:
        return self._call("open_read", name, self.inner.open_read, name)

    def read_range(self, name: str, start: int,
                   end: Optional[int] = None) -> bytes:
        return self._call(
            "read_range", name, self.inner.read_range, name, start, end
        )

    def size(self, name: str) -> Optional[int]:
        return self._call("size", name, self.inner.size, name)

    def list(self, prefix: str = "") -> List[str]:
        return self._call("list", prefix, self.inner.list, prefix)

    def put_bytes(self, name: str, data: bytes) -> None:
        return self._call("put_bytes", name, self.inner.put_bytes, name, data)

    def delete(self, name: str) -> None:
        return self._call("delete", name, self.inner.delete, name)

    def path(self, name: str) -> Optional[str]:
        # Pure metadata, no I/O in either shipped store; still routed
        # through the inner store so local paths resolve correctly.
        return self.inner.path(name)
