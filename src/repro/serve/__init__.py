"""`vyrd serve`: streaming verification with sharded, tamper-evident logs.

The subsystem that moves VYRD's online checking out of the producing
process: producers spool every logged action into per-thread, hash-chained
shard files through a pluggable blob store, and a long-lived daemon tails
the shards, merges them back into the canonical history by sequence number,
and runs the refinement/race checkers continuously -- with bounded queues
and a store-level pause flag applying backpressure when checkers lag.

The pipeline is self-healing (ARCHITECTURE §14): producers run under a
salvage-and-restart supervisor, store access retries transient brownouts
with bounded backoff, and a failed checker degrades the session to
record-only mode with offline catch-up verification at drain -- all without
changing a single verdict byte.

* :mod:`store` -- the :class:`LogStore` interface (local directory, S3-style
  object-store stub).
* :mod:`shard` -- chained shard writers, tailing readers, the producer tee.
* :mod:`merge` -- the deterministic sequence-number merge.
* :mod:`daemon` -- :class:`ServeSession`, :func:`serve_campaign`.
* :mod:`producer` -- the producing side (subprocess entry point).
* :mod:`supervise` -- producer salvage/restart supervision.
* :mod:`retry` -- :class:`RetryingStore` transient-failure absorption.
"""

from .daemon import (
    BoundedQueue,
    ServeReport,
    ServeResult,
    ServeSession,
    serve_campaign,
    session_checkers,
)
from .merge import MergeError, StreamMerger
from .producer import produce_session
from .retry import (
    RetryingStore,
    StoreUnavailable,
    TransientStoreError,
)
from .shard import (
    PROLOGUE_SIZE,
    ShardSet,
    ShardTail,
    ShardWriter,
    StoreThrottle,
    TeeLog,
    health_name,
    manifest_name,
    pause_name,
    restarts_name,
    shard_name,
)
from .store import LocalDirectoryStore, LogStore, ObjectStoreStub
from .supervise import (
    ProducerSupervisor,
    ShardSalvage,
    SupervisionPolicy,
    SupervisorState,
    salvage_session,
    salvage_shard,
)

__all__ = [
    "BoundedQueue",
    "LocalDirectoryStore",
    "LogStore",
    "MergeError",
    "ObjectStoreStub",
    "PROLOGUE_SIZE",
    "ProducerSupervisor",
    "RetryingStore",
    "ServeReport",
    "ServeResult",
    "ServeSession",
    "ShardSalvage",
    "ShardSet",
    "ShardTail",
    "ShardWriter",
    "StoreThrottle",
    "StoreUnavailable",
    "StreamMerger",
    "SupervisionPolicy",
    "SupervisorState",
    "TeeLog",
    "TransientStoreError",
    "health_name",
    "manifest_name",
    "pause_name",
    "produce_session",
    "restarts_name",
    "salvage_session",
    "salvage_shard",
    "serve_campaign",
    "session_checkers",
    "shard_name",
]
