"""`vyrd serve`: streaming verification with sharded, tamper-evident logs.

The subsystem that moves VYRD's online checking out of the producing
process: producers spool every logged action into per-thread, hash-chained
shard files through a pluggable blob store, and a long-lived daemon tails
the shards, merges them back into the canonical history by sequence number,
and runs the refinement/race checkers continuously -- with bounded queues
and a store-level pause flag applying backpressure when checkers lag.

* :mod:`store` -- the :class:`LogStore` interface (local directory, S3-style
  object-store stub).
* :mod:`shard` -- chained shard writers, tailing readers, the producer tee.
* :mod:`merge` -- the deterministic sequence-number merge.
* :mod:`daemon` -- :class:`ServeSession`, :func:`serve_campaign`.
* :mod:`producer` -- the producing side (subprocess entry point).
"""

from .daemon import (
    BoundedQueue,
    ServeReport,
    ServeResult,
    ServeSession,
    serve_campaign,
    session_checkers,
)
from .merge import MergeError, StreamMerger
from .producer import produce_session
from .shard import (
    PROLOGUE_SIZE,
    ShardSet,
    ShardTail,
    ShardWriter,
    StoreThrottle,
    TeeLog,
    manifest_name,
    pause_name,
    shard_name,
)
from .store import LocalDirectoryStore, LogStore, ObjectStoreStub

__all__ = [
    "BoundedQueue",
    "LocalDirectoryStore",
    "LogStore",
    "MergeError",
    "ObjectStoreStub",
    "PROLOGUE_SIZE",
    "ServeReport",
    "ServeResult",
    "ServeSession",
    "ShardSet",
    "ShardTail",
    "ShardWriter",
    "StoreThrottle",
    "StreamMerger",
    "TeeLog",
    "manifest_name",
    "pause_name",
    "produce_session",
    "serve_campaign",
    "session_checkers",
    "shard_name",
]
