"""Producer side of the streaming service.

A producer is one process executing one workload-registry program under the
deterministic kernel, with its session log replaced by a :class:`TeeLog`
that spools every append into chained shard files (:mod:`repro.serve.shard`)
as the run executes.  The producer does *no* checking -- verification is the
daemon's job, concurrent with the run, which is the paper's online-VYRD
deployment shape scaled out of the process.

:func:`produce_session` is the in-process driver; :func:`_producer_main` is
the module-level entry point the daemon forks producer subprocesses into
(closures do not cross ``fork``/``spawn`` boundaries, picklable args do).
"""

from __future__ import annotations

from typing import Optional

from .shard import ShardSet, StoreThrottle, TeeLog
from .store import LocalDirectoryStore, LogStore

#: run_program keywords a producer accepts (the picklable workload config).
RUN_KEYS = (
    "buggy", "num_threads", "calls_per_thread", "mode", "max_steps",
    "log_level", "log_locks", "log_reads", "races",
)


def produce_session(
    store: LogStore,
    session: str,
    program: str,
    *,
    seed: int = 0,
    num_shards: int = 2,
    sync: bool = False,
    batch_records: int = 64,
    throttle: bool = True,
    throttle_every: int = 64,
    run_kwargs: Optional[dict] = None,
    resume: Optional[dict] = None,
    die_after: Optional[int] = None,
) -> dict:
    """Run one workload, spooling its log into ``num_shards`` chained shards.

    Returns the session manifest (also published to the store as the
    completion signal).  The produced shards, merged by sequence number,
    are byte-for-byte the run's canonical log.

    ``resume`` maps shard index to the salvaged-prefix entry produced by
    :func:`repro.serve.supervise.salvage_session` -- the producer then
    re-executes deterministically but skips the appends already durable,
    extending each shard's hash chain from its salvaged head.  ``die_after``
    is the supervision fault hook: flush and ``os._exit`` after that many
    appended records (see :class:`~repro.serve.shard.TeeLog`).
    """
    from ..harness.runner import run_program  # late import: serve -> harness

    kwargs = dict(run_kwargs or {})
    unknown = set(kwargs) - set(RUN_KEYS)
    if unknown:
        raise ValueError(f"unsupported producer run_kwargs: {sorted(unknown)}")
    shards = ShardSet(
        store, session, num_shards, sync=sync, batch_records=batch_records,
        resume=resume,
    )
    gate = StoreThrottle(store, session) if throttle else None
    tee = TeeLog(shards, gate, throttle_every=throttle_every,
                 die_after=die_after)
    result = run_program(program, seed=seed, log=tee, **kwargs)
    manifest = shards.close(extra={
        "program": program,
        "seed": seed,
        "throttle_waits": gate.waits if gate else 0,
        "run_records": len(result.log),
    })
    return manifest


def _producer_main(
    root: str,
    session: str,
    program: str,
    seed: int,
    num_shards: int,
    sync: bool,
    batch_records: int,
    run_kwargs: Optional[dict],
    resume: Optional[dict] = None,
    die_after: Optional[int] = None,
) -> None:
    """Subprocess entry point: a producer writing to a local spool dir."""
    store = LocalDirectoryStore(root)
    produce_session(
        store, session, program,
        seed=seed, num_shards=num_shards, sync=sync,
        batch_records=batch_records, run_kwargs=run_kwargs,
        resume=resume, die_after=die_after,
    )
