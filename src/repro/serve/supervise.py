"""Producer supervision: salvage, restart, and give up -- deterministically.

A producer is a subprocess re-executing one deterministic workload; its
only durable output is the chained shard files.  When it dies mid-session
(OOM kill, node preemption, a crash bug) everything needed to recover is
already in the store:

* each shard's **longest chain-valid prefix** is exactly the set of records
  the producer acknowledged before dying (a torn half-frame at the tail is
  not chain-valid and is discarded);
* the prefix's **chain head digest** is the resume point: a restarted
  producer re-executes the whole run (determinism is the recovery
  mechanism -- same program, same seed, same log), *skips* the appends that
  are already durable, and extends each shard's hash chain from its
  salvaged head.

The result is byte-identical shards -- and therefore a byte-identical
merged history, signature and verdict -- to an uninterrupted run.  The
chain's per-frame sequence stamps are what make the replay dedup exact
rather than heuristic: a restarted producer can never double-append or
skip a record without breaking the chain it is extending.

:class:`ProducerSupervisor` wraps the fork/monitor/salvage/restart loop
with bounded seeded-jitter exponential backoff between attempts and a
**give-up ledger**: every death, restart and terminal surrender is recorded
(and published to ``<session>/RESTARTS.json``) so an operator can see what
the supervisor absorbed.  The daemon's :class:`~repro.serve.daemon.ServeSession`
treats the supervisor as its producer handle -- ``is_alive()`` stays true
across restarts, so a session only concludes "producer abandoned" once the
supervisor has truly given up.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..core.log import LOG_MAGIC2, _SHARD_PROLOGUE, ChainDecoder
from .shard import PROLOGUE_SIZE, manifest_name, restarts_name, shard_name
from .store import LogStore


@dataclass
class ShardSalvage:
    """One shard's chain-valid prefix after a producer death."""

    index: int
    records: int
    head_digest: Optional[str]
    valid_bytes: int
    dropped_bytes: int

    def resume_entry(self) -> Optional[dict]:
        if self.records == 0:
            return None
        return {"records": self.records, "head_digest": self.head_digest}

    def to_dict(self) -> dict:
        return {
            "shard": self.index,
            "records": self.records,
            "head_digest": self.head_digest,
            "valid_bytes": self.valid_bytes,
            "dropped_bytes": self.dropped_bytes,
        }


def salvage_shard(store: LogStore, session: str, index: int) -> ShardSalvage:
    """Truncate one shard to its longest chain-valid prefix.

    Walks the stored bytes with :class:`ChainDecoder`; anything past the
    last chain-valid frame (a torn half-frame from a mid-flush death, or
    corrupt tail bytes) is cut off so a restarted producer can extend the
    chain from a clean boundary.  A missing or prologue-less shard counts
    as empty: the restarted producer rewrites it from genesis.

    Truncation is published atomically (``put_bytes`` is tmp+rename /
    whole-object put in both shipped stores), and only ever removes bytes a
    chain-verifying reader has not accepted -- a live
    :class:`~repro.serve.shard.ShardTail` never holds partial frames across
    polls, so its offset is always at or before the salvage boundary.
    """
    name = shard_name(session, index)
    size = store.size(name)
    if size is None or size < PROLOGUE_SIZE:
        if size is not None:
            store.delete(name)  # a prologue fragment: useless, remove
        return ShardSalvage(index, 0, None, 0, size or 0)
    data = store.get_bytes(name)
    if data[: len(LOG_MAGIC2)] != LOG_MAGIC2:
        store.delete(name)
        return ShardSalvage(index, 0, None, 0, len(data))
    (shard_id,) = _SHARD_PROLOGUE.unpack(
        data[len(LOG_MAGIC2):PROLOGUE_SIZE]
    )
    if shard_id != index:
        store.delete(name)
        return ShardSalvage(index, 0, None, 0, len(data))
    decoder = ChainDecoder(shard_id=index, base_offset=PROLOGUE_SIZE)
    decoder.feed(data[PROLOGUE_SIZE:])
    valid_end = decoder.consumed  # absolute offset of the last valid frame
    if decoder.index == 0:
        # Prologue but no complete record: delete rather than truncate, so
        # the restarted producer (which has no resume entry for this shard)
        # rewrites the prologue instead of appending a duplicate one.
        store.delete(name)
        return ShardSalvage(index, 0, None, 0, len(data))
    dropped = len(data) - valid_end
    if dropped:
        store.put_bytes(name, data[:valid_end])
    return ShardSalvage(
        index,
        decoder.index,
        decoder.head_digest if decoder.index else None,
        valid_end,
        dropped,
    )


def salvage_session(
    store: LogStore, session: str, num_shards: int
) -> List[ShardSalvage]:
    """Salvage every shard of one session; returns per-shard reports."""
    return [
        salvage_shard(store, session, index) for index in range(num_shards)
    ]


@dataclass
class SupervisionPolicy:
    """Restart pacing: bounded retries, exponential backoff, seeded jitter.

    Attempt ``n >= 1`` waits ``min(backoff_max, backoff_base *
    backoff_factor**(n-1))`` stretched by up to ``jitter`` (relative),
    drawn deterministically from ``seed`` and the attempt number -- the
    same replayable policy shape as the resilient pool's
    :class:`~repro.concurrency.resilient.RetryPolicy`.
    """

    max_restarts: int = 2
    backoff_base: float = 0.05
    backoff_factor: float = 2.0
    backoff_max: float = 1.0
    jitter: float = 0.5
    seed: int = 0

    def backoff(self, attempt: int) -> float:
        base = min(
            self.backoff_max,
            self.backoff_base * self.backoff_factor ** (attempt - 1),
        )
        rng = random.Random(f"{self.seed}:restart:{attempt}")
        return base * (1.0 + self.jitter * rng.random())


@dataclass
class SupervisorState:
    """What the supervisor did, for the ledger and the session stats."""

    restarts: int = 0
    gave_up: bool = False
    succeeded: bool = False
    ledger: List[dict] = field(default_factory=list)


class ProducerSupervisor:
    """Fork, monitor, salvage and restart one session's producer.

    Duck-types the ``process`` handle :meth:`ServeSession.run` polls:
    ``is_alive()`` is true while a producer attempt is running *or* a
    restart is pending, so the daemon keeps tailing across the gap.  Once
    the producer publishes its manifest the supervisor is done; once the
    restart budget is spent it gives up, records why, and ``is_alive()``
    goes false -- the daemon then concludes the session through its normal
    dead-producer path.

    ``kill_after`` is the fault hook: the *first* attempt's producer dies
    (``os._exit``) after that many appended-and-flushed records; restarts
    run clean, mirroring the transient-fault model everywhere else in
    :mod:`repro.faults`.
    """

    def __init__(
        self,
        store,  # LocalDirectoryStore: producers are forked subprocesses
        session: str,
        program: str,
        seed: int,
        num_shards: int,
        *,
        sync: bool = False,
        batch_records: int = 64,
        run_kwargs: Optional[dict] = None,
        policy: Optional[SupervisionPolicy] = None,
        kill_after: Optional[int] = None,
        ctx=None,
    ):
        from .store import LocalDirectoryStore

        if not isinstance(getattr(store, "inner", store), LocalDirectoryStore):
            raise TypeError(
                "ProducerSupervisor forks producer subprocesses and needs a "
                "LocalDirectoryStore (optionally wrapped in a RetryingStore)"
            )
        self.store = store
        self.session = session
        self.program = program
        self.seed = seed
        self.num_shards = num_shards
        self.sync = sync
        self.batch_records = batch_records
        self.run_kwargs = dict(run_kwargs or {})
        self.policy = policy or SupervisionPolicy(seed=seed)
        self.kill_after = kill_after
        if ctx is None:
            import multiprocessing

            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                ctx = multiprocessing.get_context()
        self._ctx = ctx
        self.state = SupervisorState()
        self._process = None
        self._thread: Optional[threading.Thread] = None
        self._stop = threading.Event()
        self._done = threading.Event()

    # -- the process handle the daemon polls --------------------------------

    def is_alive(self) -> bool:
        """True while the session still has a producer or a pending restart."""
        return not self._done.is_set()

    @property
    def restarts(self) -> int:
        return self.state.restarts

    @property
    def gave_up(self) -> bool:
        return self.state.gave_up

    @property
    def ledger(self) -> List[dict]:
        return list(self.state.ledger)

    # -- lifecycle -----------------------------------------------------------

    def _local_root(self) -> str:
        store = self.store
        inner = getattr(store, "inner", None)
        return store.root if hasattr(store, "root") else inner.root

    def _spawn(self, attempt: int, resume: Optional[Dict[int, dict]]):
        from .producer import _producer_main

        process = self._ctx.Process(
            target=_producer_main,
            args=(
                self._local_root(), self.session, self.program, self.seed,
                self.num_shards, self.sync, self.batch_records,
                self.run_kwargs,
            ),
            kwargs={
                "resume": resume,
                "die_after": self.kill_after if attempt == 0 else None,
            },
            name=f"producer-{self.session}-a{attempt}",
        )
        process.start()
        return process

    def start(self) -> None:
        self._process = self._spawn(0, None)
        self._thread = threading.Thread(
            target=self._monitor, name=f"supervise-{self.session}",
            daemon=True,
        )
        self._thread.start()

    def _publish_ledger(self) -> None:
        try:
            self.store.put_json(restarts_name(self.session), {
                "session": self.session,
                "restarts": self.state.restarts,
                "gave_up": self.state.gave_up,
                "succeeded": self.state.succeeded,
                "events": self.state.ledger,
            })
        except Exception:  # pragma: no cover - ledger is best-effort
            pass

    def _monitor(self) -> None:
        attempt = 0
        try:
            while not self._stop.is_set():
                self._process.join()
                if self.store.exists(manifest_name(self.session)):
                    self.state.succeeded = True
                    return
                exitcode = self._process.exitcode
                if attempt >= self.policy.max_restarts:
                    self.state.gave_up = True
                    self.state.ledger.append({
                        "event": "gave_up",
                        "attempt": attempt,
                        "exitcode": exitcode,
                        "max_restarts": self.policy.max_restarts,
                    })
                    return
                delay = self.policy.backoff(attempt + 1)
                if self._stop.wait(delay):
                    return
                salvages = salvage_session(
                    self.store, self.session, self.num_shards
                )
                resume = {
                    s.index: s.resume_entry()
                    for s in salvages if s.resume_entry() is not None
                }
                attempt += 1
                self.state.restarts += 1
                self.state.ledger.append({
                    "event": "restart",
                    "attempt": attempt,
                    "exitcode": exitcode,
                    "backoff_seconds": round(delay, 4),
                    "salvaged_records": sum(s.records for s in salvages),
                    "dropped_bytes": sum(s.dropped_bytes for s in salvages),
                    "shards": [s.to_dict() for s in salvages],
                })
                self._publish_ledger()
                self._process = self._spawn(attempt, resume)
        finally:
            self._publish_ledger()
            self._done.set()

    def finish(self, timeout: float = 30.0) -> SupervisorState:
        """Join the monitor (and any straggling producer); returns state."""
        if self._thread is not None:
            self._thread.join(timeout)
        process = self._process
        if process is not None:
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - wedged producer
                process.terminate()
                process.join()
        return self.state

    def stop(self) -> None:
        """Abort supervision (session torn down externally)."""
        self._stop.set()
        process = self._process
        if process is not None and process.is_alive():
            process.terminate()
        self.finish(timeout=5.0)
