"""Pluggable log stores: where shard files live.

The streaming service reads and writes shards through a small blob-store
interface instead of raw paths, so the same daemon can ingest from a local
spool directory today and an object store (S3-style) tomorrow.  The
interface is deliberately shaped like what an object store actually offers
-- named blobs, ranged reads, list-by-prefix -- plus the one extra thing a
*streaming* producer needs: an append handle.

Two implementations ship:

* :class:`LocalDirectoryStore` -- blobs are files under a root directory;
  the production path for a single-box deployment.  Appends are real file
  appends; ranged reads are ``seek`` + ``read``, so a tailing reader never
  copies more than the new bytes.
* :class:`ObjectStoreStub` -- an in-memory S3-flavored stub (buckets of
  keys, ``put_object``/``get_object``/``list_objects`` verbs internally).
  It exists to keep the daemon honest about the interface -- everything in
  :mod:`repro.serve` runs against either store -- and as the seam where a
  real ``boto3``-backed store would plug in without touching the daemon.

Small conventions shared by both:

* Names are ``/``-separated logical paths (``session/shard-0000.vlog``).
* ``size`` returns ``None`` for a missing blob -- tailing readers poll it.
* *Flags* are zero-byte blobs used as cross-process signals (the
  backpressure pause flag); they need nothing beyond put/delete/exists.
"""

from __future__ import annotations

import io
import json
import os
import threading
from abc import ABC, abstractmethod
from typing import IO, List, Optional


class LogStore(ABC):
    """Abstract blob store for shard files, manifests and flags."""

    # -- blob primitives ----------------------------------------------------

    @abstractmethod
    def open_append(self, name: str) -> IO[bytes]:
        """A binary handle appending to ``name`` (created if missing)."""

    @abstractmethod
    def open_read(self, name: str) -> IO[bytes]:
        """A fresh binary read handle over the blob's current content."""

    @abstractmethod
    def read_range(self, name: str, start: int, end: Optional[int] = None) -> bytes:
        """Bytes ``[start, end)`` of the blob (to its current size if
        ``end`` is None).  The ranged GET a tailing reader lives on."""

    @abstractmethod
    def size(self, name: str) -> Optional[int]:
        """Current blob size in bytes, or ``None`` if it does not exist."""

    @abstractmethod
    def list(self, prefix: str = "") -> List[str]:
        """Sorted names of all blobs under ``prefix``."""

    @abstractmethod
    def put_bytes(self, name: str, data: bytes) -> None:
        """Create or replace a whole blob."""

    @abstractmethod
    def delete(self, name: str) -> None:
        """Remove a blob (missing blobs are fine -- flags race)."""

    @abstractmethod
    def path(self, name: str) -> Optional[str]:
        """Filesystem path of the blob when it has one (local stores);
        ``None`` for off-box stores."""

    # -- conveniences over the primitives -----------------------------------

    def exists(self, name: str) -> bool:
        return self.size(name) is not None

    def get_bytes(self, name: str) -> bytes:
        with self.open_read(name) as handle:
            return handle.read()

    def put_json(self, name: str, payload: dict) -> None:
        self.put_bytes(
            name,
            json.dumps(payload, indent=2, sort_keys=True).encode("utf-8"),
        )

    def get_json(self, name: str) -> Optional[dict]:
        if not self.exists(name):
            return None
        return json.loads(self.get_bytes(name).decode("utf-8"))

    # -- flags (zero-byte signal blobs) -------------------------------------

    def set_flag(self, name: str) -> None:
        self.put_bytes(name, b"")

    def clear_flag(self, name: str) -> None:
        self.delete(name)

    def has_flag(self, name: str) -> bool:
        return self.exists(name)


class LocalDirectoryStore(LogStore):
    """Blobs are files under ``root``; the single-box production store."""

    def __init__(self, root: str):
        self.root = os.path.abspath(root)
        os.makedirs(self.root, exist_ok=True)

    def _fs(self, name: str) -> str:
        path = os.path.normpath(os.path.join(self.root, name))
        if not path.startswith(self.root + os.sep) and path != self.root:
            raise ValueError(f"blob name escapes the store root: {name!r}")
        return path

    def open_append(self, name: str) -> IO[bytes]:
        path = self._fs(name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        return open(path, "ab")

    def open_read(self, name: str) -> IO[bytes]:
        return open(self._fs(name), "rb")

    def read_range(self, name: str, start: int, end: Optional[int] = None) -> bytes:
        with open(self._fs(name), "rb") as handle:
            handle.seek(start)
            if end is None:
                return handle.read()
            return handle.read(max(0, end - start))

    def size(self, name: str) -> Optional[int]:
        try:
            return os.path.getsize(self._fs(name))
        except OSError:
            return None

    def list(self, prefix: str = "") -> List[str]:
        names = []
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                full = os.path.join(dirpath, filename)
                name = os.path.relpath(full, self.root).replace(os.sep, "/")
                if name.startswith(prefix):
                    names.append(name)
        return sorted(names)

    def put_bytes(self, name: str, data: bytes) -> None:
        path = self._fs(name)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)  # atomic publish: readers never see half a blob

    def delete(self, name: str) -> None:
        try:
            os.remove(self._fs(name))
        except OSError:
            pass

    def path(self, name: str) -> Optional[str]:
        return self._fs(name)


class ObjectStoreStub(LogStore):
    """In-memory S3-style object store (one bucket of keyed byte blobs).

    The internal verbs mirror the S3 API shape (``put_object`` /
    ``get_object`` with an optional byte range / ``list_objects``) so a real
    client drops in behind the same :class:`LogStore` surface.  Appends are
    modelled the way an object store forces you to: the handle accumulates
    parts locally and each ``flush`` commits the whole object
    (multipart-upload semantics collapsed to one process) -- which is
    exactly why the daemon's tailing readers only ever use ranged reads of
    committed bytes.

    Thread-safe; shard producers and the daemon may share one stub
    in-process (the unit-test and API-shape configuration -- a *real*
    off-box store is multi-process by nature).
    """

    def __init__(self, bucket: str = "vyrd-logs"):
        self.bucket = bucket
        self._objects: dict = {}
        self._lock = threading.Lock()

    # -- S3-flavored internal verbs -----------------------------------------

    def put_object(self, key: str, body: bytes) -> None:
        with self._lock:
            self._objects[key] = bytes(body)

    def get_object(self, key: str, start: int = 0,
                   end: Optional[int] = None) -> bytes:
        with self._lock:
            body = self._objects[key]
        return body[start:end] if end is not None else body[start:]

    def list_objects(self, prefix: str = "") -> List[str]:
        with self._lock:
            return sorted(k for k in self._objects if k.startswith(prefix))

    def delete_object(self, key: str) -> None:
        with self._lock:
            self._objects.pop(key, None)

    def head_object(self, key: str) -> Optional[int]:
        with self._lock:
            body = self._objects.get(key)
        return None if body is None else len(body)

    # -- LogStore surface ----------------------------------------------------

    class _AppendHandle(io.RawIOBase):
        """Accumulates appended bytes; every flush commits the object."""

        def __init__(self, store: "ObjectStoreStub", key: str):
            super().__init__()
            self._store = store
            self._key = key
            self._parts = [store._objects.get(key, b"")]

        def writable(self) -> bool:
            return True

        def write(self, data) -> int:
            self._parts.append(bytes(data))
            return len(data)

        def flush(self) -> None:
            body = b"".join(self._parts)
            self._parts = [body]
            self._store.put_object(self._key, body)

        def close(self) -> None:
            if not self.closed:
                self.flush()
            super().close()

    def open_append(self, name: str) -> IO[bytes]:
        return self._AppendHandle(self, name)

    def open_read(self, name: str) -> IO[bytes]:
        return io.BytesIO(self.get_object(name))

    def read_range(self, name: str, start: int, end: Optional[int] = None) -> bytes:
        return self.get_object(name, start, end)

    def size(self, name: str) -> Optional[int]:
        return self.head_object(name)

    def list(self, prefix: str = "") -> List[str]:
        return self.list_objects(prefix)

    def put_bytes(self, name: str, data: bytes) -> None:
        self.put_object(name, data)

    def delete(self, name: str) -> None:
        self.delete_object(name)

    def path(self, name: str) -> Optional[str]:
        return None
