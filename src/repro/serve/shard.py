"""Sharded, tamper-evident spool files for one verification session.

A producing process runs one deterministic kernel; its tracer appends every
action to the session :class:`~repro.core.Log` exactly once, under the
kernel's logging clock.  The streaming layer *tees* each append into one of
``num_shards`` append-only chained shard files, routed by the acting
thread's id (``tid % num_shards``).  Each shard frame carries the record's
global sequence number -- its append index in the session log -- so the
daemon can merge the shards back into the exact canonical order without any
coordination between shard files: the merge just emits contiguous sequence
numbers.

Layout under the store, per session::

    <session>/shard-0000.vlog     VYRDLOG2 chained shard (shard_id = 0)
    <session>/shard-0001.vlog     ...
    <session>/MANIFEST.json       written last: per-shard head digests,
                                  record counts, total -- the completion
                                  signal and the tamper-evidence anchor
    <session>/PAUSE               flag blob; present => producers throttle

The manifest's head digests are what make clean tail truncation detectable:
``verify_chain(shard, expected_head=...)`` fails unless the chain ends on
exactly the digest the producer acknowledged.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from ..core.actions import Action
from ..core.log import (
    LOG_MAGIC2,
    _SHARD_PROLOGUE,
    ChainDecoder,
    LogFormatError,
    LogWriter,
)
from ..core.log import Log
from .store import LogStore

#: Bytes before the first frame of a chained shard: magic + shard id.
PROLOGUE_SIZE = len(LOG_MAGIC2) + _SHARD_PROLOGUE.size


def shard_name(session: str, index: int) -> str:
    return f"{session}/shard-{index:04d}.vlog"


def manifest_name(session: str) -> str:
    return f"{session}/MANIFEST.json"


def pause_name(session: str) -> str:
    return f"{session}/PAUSE"


def health_name(session: str) -> str:
    return f"{session}/HEALTH.json"


def restarts_name(session: str) -> str:
    return f"{session}/RESTARTS.json"


class ShardWriter:
    """Appends chained frames for one shard, batching flushes.

    Frames buffer in the file object until ``batch_records`` have
    accumulated, then one ``flush`` pushes them out (and ``fsync``s when
    ``sync=True``).  ``acked`` counts the records known durable -- the
    producer's acknowledgment watermark.

    ``resume`` continues a shard left behind by a crashed producer: a dict
    with the salvaged prefix's ``records`` count and ``head_digest`` (from
    :func:`repro.serve.supervise.salvage_session`).  The restarted producer
    deterministically re-executes the whole run, so the first ``records``
    appends routed to this shard are exactly the frames already durable --
    they are *skipped*, and the first fresh frame extends the existing hash
    chain from the salvaged head.  The finished file is byte-identical to
    one written by an uninterrupted producer.
    """

    def __init__(self, store: LogStore, session: str, index: int, *,
                 sync: bool = False, batch_records: int = 64,
                 resume: Optional[Dict[str, object]] = None):
        self.index = index
        self.name = shard_name(session, index)
        self._file = store.open_append(self.name)
        if resume and int(resume.get("records", 0) or 0) > 0:
            self._skip = int(resume["records"])
            self._writer = LogWriter(
                self._file, chained=True, shard_id=index, sync=sync,
                resume_digest=bytes.fromhex(str(resume["head_digest"])),
            )
        else:
            self._skip = 0
            self._writer = LogWriter(
                self._file, chained=True, shard_id=index, sync=sync
            )
        self._skipped_base = self._skip
        self._batch = max(1, batch_records)
        self._unflushed = 0
        self.acked = self._skipped_base  # the salvaged prefix is durable
        self.last_seq: Optional[int] = None

    @property
    def records(self) -> int:
        return self._skipped_base + self._writer.records_written

    @property
    def head_digest(self) -> str:
        return self._writer.head_digest or ""

    def append(self, seq: int, action: Action) -> None:
        self.last_seq = seq
        if self._skip:
            # Replayed record already durable from before the crash; the
            # chain's seq stamps make the dedup exact, not heuristic.
            self._skip -= 1
            return
        self._writer.write(action, seq=seq)
        self._unflushed += 1
        if self._unflushed >= self._batch:
            self.flush()

    def flush(self) -> None:
        self._writer.flush()
        self.acked = self.records
        self._unflushed = 0

    def close(self) -> Dict[str, object]:
        """Flush, close, and return this shard's manifest entry."""
        self.flush()
        entry = self.manifest_entry()
        self._writer.close()
        self._file.close()
        return entry

    def manifest_entry(self) -> Dict[str, object]:
        return {
            "shard": self.index,
            "name": self.name,
            "records": self.records,
            "last_seq": self.last_seq,
            "head_digest": self.head_digest,
        }


class ShardSet:
    """All shard writers of one producing session, plus its manifest."""

    def __init__(self, store: LogStore, session: str, num_shards: int, *,
                 sync: bool = False, batch_records: int = 64,
                 resume: Optional[Dict[int, dict]] = None):
        if num_shards < 1:
            raise ValueError("num_shards must be >= 1")
        self.store = store
        self.session = session
        resume = resume or {}
        self.writers = [
            ShardWriter(store, session, index, sync=sync,
                        batch_records=batch_records,
                        resume=resume.get(index))
            for index in range(num_shards)
        ]
        self.appended = 0

    def route(self, action: Action) -> int:
        tid = getattr(action, "tid", None)
        return (tid if isinstance(tid, int) else 0) % len(self.writers)

    def append(self, seq: int, action: Action) -> None:
        self.writers[self.route(action)].append(seq, action)
        self.appended += 1

    def flush_all(self) -> None:
        for writer in self.writers:
            writer.flush()

    def close(self, extra: Optional[dict] = None) -> dict:
        """Close every shard and publish the session manifest.

        The manifest lands *after* all shard bytes are durable, so its
        presence is the daemon's signal that the session is complete and the
        per-shard ``head_digest`` values are the expected chain heads."""
        entries = [writer.close() for writer in self.writers]
        manifest = {
            "session": self.session,
            "shards": entries,
            "records": self.appended,
        }
        if extra:
            manifest.update(extra)
        self.store.put_json(manifest_name(self.session), manifest)
        return manifest


class ShardTail:
    """Chain-verified tailing reader over one growing shard blob.

    Polls the store for new bytes (ranged reads from the consumed offset)
    and decodes them incrementally with :class:`ChainDecoder`; every frame
    is CRC- and chain-verified *as it is ingested*, so a tampered or corrupt
    shard is caught while the session is still live, not at a later audit.
    A detected fault parks on :attr:`error` and the tail goes dead.
    """

    def __init__(self, store: LogStore, session: str, index: int):
        self.store = store
        self.name = shard_name(session, index)
        self.index = index
        self.offset = 0  # absolute bytes consumed, prologue included
        self.records = 0
        self.error: Optional[LogFormatError] = None
        self._decoder: Optional[ChainDecoder] = None

    @property
    def started(self) -> bool:
        return self._decoder is not None

    @property
    def head_digest(self) -> Optional[str]:
        return self._decoder.head_digest if self._decoder else None

    def _start(self) -> bool:
        """Consume and verify the prologue once enough bytes exist."""
        size = self.store.size(self.name)
        if size is None or size < PROLOGUE_SIZE:
            return False
        prologue = self.store.read_range(self.name, 0, PROLOGUE_SIZE)
        if prologue[: len(LOG_MAGIC2)] != LOG_MAGIC2:
            self.error = LogFormatError("bad shard magic", 0, 0)
            return False
        (shard_id,) = _SHARD_PROLOGUE.unpack(prologue[len(LOG_MAGIC2):])
        if shard_id != self.index:
            self.error = LogFormatError(
                f"shard id mismatch (file says {shard_id}, "
                f"expected {self.index})", len(LOG_MAGIC2), 0,
            )
            return False
        self._decoder = ChainDecoder(
            shard_id=self.index, base_offset=PROLOGUE_SIZE
        )
        self.offset = PROLOGUE_SIZE
        return True

    def poll(self, max_bytes: int = 1 << 20) -> List[Tuple[int, Action]]:
        """Decode newly appended frames; [] when nothing new (or dead)."""
        if self.error is not None:
            return []
        if self._decoder is None and not self._start():
            return []
        size = self.store.size(self.name)
        # The decoder may hold a partial frame; only its *consumed* bytes
        # count as read, so re-fetch from there is avoided by tracking
        # offset = bytes handed to the decoder.
        if size is None or size <= self.offset:
            return []
        end = min(size, self.offset + max_bytes)
        data = self.store.read_range(self.name, self.offset, end)
        self.offset += len(data)
        frames = self._decoder.feed(data)
        if self._decoder.error is not None:
            self.error = self._decoder.error
        elif end >= size and self._decoder.pending:
            # We read to the durable end of the shard and a partial frame is
            # left over: a producer mid-flush -- or mid-crash.  Never carry
            # the half-frame across polls: if the producer dies here, the
            # supervisor truncates the shard to its chain-valid prefix
            # (exactly our consumed boundary) and a restarted producer
            # appends fresh frames there; stale partial bytes would splice
            # garbage into them.  Dropping the tail keeps ``offset`` pinned
            # to a frame boundary, so salvage truncation is invisible to a
            # live tail.  The bytes re-read next poll are at most one frame.
            self.offset -= self._decoder.discard_pending()
        self.records += len(frames)
        return [(seq, action) for seq, action, _end in frames]

    def at_clean_boundary(self) -> bool:
        """True when every byte handed to the decoder formed whole frames."""
        return self._decoder is None or self._decoder.pending == 0


class StoreThrottle:
    """Producer-side backpressure: block while the session PAUSE flag is up.

    The daemon raises the flag when its checker queue crosses the high
    watermark and clears it at the low watermark.  ``max_wait`` bounds the
    stall so a dead daemon cannot wedge a producer forever -- the producer
    then keeps appending (durability over backpressure; the daemon re-reads
    at its own pace anyway).
    """

    def __init__(self, store: LogStore, session: str, *,
                 poll_interval: float = 0.002, max_wait: float = 30.0):
        self._store = store
        self._flag = pause_name(session)
        self._poll = poll_interval
        self._max_wait = max_wait
        self.waits = 0  # appends that hit an engaged pause flag

    def wait_if_paused(self) -> None:
        waited = 0.0
        stalled = False
        while self._store.has_flag(self._flag) and waited < self._max_wait:
            stalled = True
            time.sleep(self._poll)
            waited += self._poll
        if stalled:
            self.waits += 1


class TeeLog(Log):
    """A session :class:`Log` that mirrors every append into shard files.

    Injected into :class:`~repro.core.Vyrd` via ``log=``; the kernel's
    logging clock serializes appends, so the tee inherits the same
    no-locking guarantee as the base log.  The append index *is* the
    record's global sequence number -- stamped into the chained frame so the
    daemon's merge can restore canonical order.

    Every ``throttle_every`` appends the tee polls the store pause flag and
    blocks while the daemon signals checker lag -- the backpressure path.

    ``die_after`` is the supervision fault hook: after that many appends the
    producer flushes every shard (so the records are *acknowledged*) and
    dies abruptly via ``os._exit`` -- the mid-session producer death the
    supervisor exists to absorb.
    """

    __slots__ = ("shards", "throttle", "_throttle_every", "die_after")

    def __init__(self, shards: ShardSet, throttle: Optional[StoreThrottle] = None,
                 throttle_every: int = 64, die_after: Optional[int] = None):
        super().__init__()
        self.shards = shards
        self.throttle = throttle
        self._throttle_every = max(1, throttle_every)
        self.die_after = die_after

    def append(self, action: Action) -> int:
        seq = super().append(action)
        self.shards.append(seq, action)
        if self.die_after is not None and self.shards.appended >= self.die_after:
            import os

            self.shards.flush_all()
            os._exit(21)
        if self.throttle is not None and (seq + 1) % self._throttle_every == 0:
            self.throttle.wait_if_paused()
        return seq
