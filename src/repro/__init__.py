"""repro -- a reproduction of VYRD (Elmas, Tasiran, Qadeer; PLDI 2005).

Runtime refinement-violation detection for concurrent data structures:
instrument an implementation to log its actions, then drive an executable,
method-atomic specification along the *witness interleaving* induced by
commit actions, checking I/O refinement (return values) and view refinement
(canonical state abstractions at commit points).

Packages
--------
:mod:`repro.core`
    The checker, log, spec framework and instrumentation.
:mod:`repro.concurrency`
    The deterministic cooperative concurrency simulator (substrate).
:mod:`repro.multiset`, :mod:`repro.javalib`, :mod:`repro.boxwood`,
:mod:`repro.scanfs`
    The evaluated data structures, each with the paper's seeded bugs.
:mod:`repro.harness`
    The randomized test harness and measurement drivers behind Tables 1-3.
:mod:`repro.races`
    Dynamic race detection (vector-clock happens-before and Eraser
    lockset) over the same log; :mod:`repro.atomicity` is the reduction
    baseline sharing its lockset engine.
:mod:`repro.faults`
    Seeded fault injection (worker crashes/hangs, torn and bit-flipped
    logs, slow I/O) plus the campaign driver proving the pipeline recovers
    with serial-identical results (imported lazily -- it pulls in the
    harness).

Quickstart
----------
See ``examples/quickstart.py``; the short version::

    from repro import Vyrd, Kernel
    from repro.multiset import VectorMultiset, MultisetSpec, multiset_view

    vyrd = Vyrd(spec_factory=MultisetSpec, mode="view",
                impl_view_factory=lambda: multiset_view())
    kernel = Kernel(seed=1, tracer=vyrd.tracer)
    vds = vyrd.wrap(VectorMultiset(size=8))
    # ... spawn simulated threads calling `yield from vds.insert(ctx, x)` ...
    kernel.run()
    print(vyrd.check_offline().summary())
"""

from .concurrency import (
    ExplorationResult,
    Kernel,
    Lock,
    PCTScheduler,
    RandomScheduler,
    RoundRobinScheduler,
    RWLock,
    SharedArray,
    SharedCell,
    ThreadCtx,
    explore_exhaustive,
    explore_swarm,
    parallel_exhaustive,
    parallel_swarm,
    run_threads,
    with_lock,
)
from .core import (
    AnyOf,
    AtomizedSpec,
    CheckOutcome,
    ContributionView,
    FunctionView,
    Invariant,
    Log,
    RefinementChecker,
    SpecReject,
    Specification,
    Violation,
    ViolationKind,
    Vyrd,
    VyrdTracer,
    check_log,
    format_outcome,
    mutator,
    observer,
    operation,
    render_trace,
    render_witness,
)
from .races import Race, RaceChecker, RaceOutcome, check_races

__version__ = "1.0.0"

__all__ = [
    "AnyOf",
    "AtomizedSpec",
    "CheckOutcome",
    "ContributionView",
    "ExplorationResult",
    "FunctionView",
    "Invariant",
    "Kernel",
    "Lock",
    "Log",
    "PCTScheduler",
    "RWLock",
    "Race",
    "RaceChecker",
    "RaceOutcome",
    "RandomScheduler",
    "RefinementChecker",
    "RoundRobinScheduler",
    "SharedArray",
    "SharedCell",
    "SpecReject",
    "Specification",
    "ThreadCtx",
    "Violation",
    "ViolationKind",
    "Vyrd",
    "VyrdTracer",
    "check_log",
    "check_races",
    "explore_exhaustive",
    "explore_swarm",
    "format_outcome",
    "mutator",
    "parallel_exhaustive",
    "parallel_swarm",
    "observer",
    "operation",
    "render_trace",
    "render_witness",
    "run_threads",
    "with_lock",
    "__version__",
]
