"""Binary-search-tree concurrent multiset (paper section 7.4.2).

A BST keyed by element with a per-node occurrence count; descent uses
hand-over-hand lock coupling (hold the current node's lock while acquiring
the child's, then release the parent).  A compression thread unlinks
zero-count leaf nodes, restructuring the tree without changing the multiset
contents -- its unlink is an internal (op-less) commit, checked by view
refinement to leave the view unchanged (as the paper does for the B-link
tree's compression thread, section 7.2.3).

Shared state layout (names seen by the replay state / view):

* ``ms.root`` -- node id of the root (``None`` when empty).
* ``ms.n<id>.key`` -- the node's key (written once at creation).
* ``ms.n<id>.count`` -- occurrence count of the key.
* ``ms.n<id>.left`` / ``ms.n<id>.right`` -- child node ids or ``None``.

Commit actions: an insert into an existing node commits on the count
increment; an insert of a new node commits on the *link* write (the single
write that makes the node reachable -- until then its cells are invisible to
the view, which traverses from the root).  Deletes commit on the decrement,
or with a standalone commit taken **while still holding the relevant node
lock** on failure paths, which is what makes the strict
(``strict_delete=True``) multiset spec sound for this implementation.

The injected bug (Table 1's "Unlocking parent before insertion",
``buggy_unlock_parent=True``): when the descent finds a null child pointer,
the buggy code releases the node's lock *before* creating and linking the
new node and never re-checks the pointer, so two concurrent inserts can both
see the null child and the second link overwrites the first -- losing the
first thread's (already committed) subtree.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from ..concurrency import KernelStopped, Lock, SharedCell, ThreadCtx
from ..core import FunctionView, operation
from .spec import SUCCESS


class _Node:
    """Live bookkeeping for one tree node (cells + lock)."""

    __slots__ = ("nid", "key", "count", "left", "right", "lock")

    def __init__(self, nid: int, key):
        self.nid = nid
        self.key = SharedCell(f"ms.n{nid}.key", None)
        self.count = SharedCell(f"ms.n{nid}.count", 0)
        self.left = SharedCell(f"ms.n{nid}.left", None)
        self.right = SharedCell(f"ms.n{nid}.right", None)
        self.lock = Lock(f"ms.n{nid}")


class TreeMultiset:
    """The BST-backed multiset implementation."""

    def __init__(self, buggy_unlock_parent: bool = False):
        self.buggy_unlock_parent = buggy_unlock_parent
        self.root = SharedCell("ms.root", None)
        self.root_lock = Lock("ms.rootlock")
        self._nodes: Dict[int, _Node] = {}
        # per-thread id counters: node ids depend only on the allocating
        # thread's own history, never on the interleaving (schedule-
        # confluent allocation; cell names stable across equivalent runs)
        self._ids: Dict[int, int] = {}

    # -- node management ------------------------------------------------------

    def _new_node(self, ctx: ThreadCtx, key):
        """Allocate a node and write its cells (count starts at 1).

        The writes are logged but the node is unreachable until linked, so
        the view is unaffected until the link commit.
        """
        seq = self._ids.get(ctx.tid, 0)
        # vyrd: ignore[VY005] -- per-thread allocator counter; checker-
        # invisible, and schedule-confluent by construction
        self._ids[ctx.tid] = seq + 1
        node = _Node((ctx.tid + 1) * 1_000_000 + seq, key)
        # vyrd: ignore[VY005] -- allocator table; the node is unreachable
        # from any traced cell until the link write commits
        self._nodes[node.nid] = node
        yield node.key.write(key)
        yield node.count.write(1)
        return node

    def _node(self, nid: int) -> _Node:
        return self._nodes[nid]

    # -- public operations ----------------------------------------------------------

    @operation
    def insert(self, ctx: ThreadCtx, x):
        """Insert one occurrence of ``x``.  Never fails."""
        yield self.root_lock.acquire()
        rid = yield self.root.read()
        if rid is None:
            node = yield from self._new_node(ctx, x)
            yield self.root.write(node.nid, commit=True)
            yield self.root_lock.release()
            return SUCCESS
        node = self._node(rid)
        yield node.lock.acquire()
        yield self.root_lock.release()
        while True:
            key = yield node.key.read()
            if x == key:
                count = yield node.count.read()
                yield node.count.write(count + 1, commit=True)
                yield node.lock.release()
                return SUCCESS
            child_cell = node.left if x < key else node.right
            cid = yield child_cell.read()
            if cid is None:
                if self.buggy_unlock_parent:
                    # BUG: the parent lock is released before the new node is
                    # linked, and the pointer is not re-checked, so a racing
                    # insert's link can be overwritten (lost subtree).
                    yield node.lock.release()
                    yield ctx.checkpoint()
                    fresh = yield from self._new_node(ctx, x)
                    # vyrd: ignore[VY007] -- the seeded Table-1 bug VY007
                    # exists to catch: an unlocked link write racing the
                    # locked one on line below; kept for the harness
                    yield child_cell.write(fresh.nid, commit=True)
                    return SUCCESS
                fresh = yield from self._new_node(ctx, x)
                yield child_cell.write(fresh.nid, commit=True)
                yield node.lock.release()
                return SUCCESS
            child = self._node(cid)
            yield child.lock.acquire()
            yield node.lock.release()
            node = child

    @operation
    def delete(self, ctx: ThreadCtx, x):
        """Remove one occurrence of ``x``; False when absent."""
        yield self.root_lock.acquire()
        rid = yield self.root.read()
        if rid is None:
            yield ctx.commit()  # failure decided while holding root_lock
            yield self.root_lock.release()
            return False
        node = self._node(rid)
        yield node.lock.acquire()
        yield self.root_lock.release()
        while True:
            key = yield node.key.read()
            if x == key:
                count = yield node.count.read()
                if count > 0:
                    yield node.count.write(count - 1, commit=True)
                    yield node.lock.release()
                    return True
                yield ctx.commit()  # failure decided under the node lock
                yield node.lock.release()
                return False
            child_cell = node.left if x < key else node.right
            cid = yield child_cell.read()
            if cid is None:
                yield ctx.commit()  # failure decided under the node lock
                yield node.lock.release()
                return False
            child = self._node(cid)
            yield child.lock.acquire()
            yield node.lock.release()
            node = child

    @operation
    def lookup(self, ctx: ThreadCtx, x):
        """Observer: is ``x`` in the multiset?"""
        yield self.root_lock.acquire()
        rid = yield self.root.read()
        if rid is None:
            yield self.root_lock.release()
            return False
        node = self._node(rid)
        yield node.lock.acquire()
        yield self.root_lock.release()
        while True:
            key = yield node.key.read()
            if x == key:
                count = yield node.count.read()
                yield node.lock.release()
                return count > 0
            child_cell = node.left if x < key else node.right
            cid = yield child_cell.read()
            if cid is None:
                yield node.lock.release()
                return False
            child = self._node(cid)
            yield child.lock.acquire()
            yield node.lock.release()
            node = child

    # -- compression (zero-count leaf removal) -----------------------------------

    def compression_pass(self, ctx: ThreadCtx):
        """Unlink one zero-count leaf node; True if one was removed."""
        yield self.root_lock.acquire()
        rid = yield self.root.read()
        if rid is None:
            yield self.root_lock.release()
            return False
        node = self._node(rid)
        yield node.lock.acquire()
        # Root itself a removable leaf?
        count = yield node.count.read()
        left = yield node.left.read()
        right = yield node.right.read()
        if count == 0 and left is None and right is None:
            yield self.root.write(None, commit=True)  # internal commit
            yield node.lock.release()
            yield self.root_lock.release()
            return True
        yield self.root_lock.release()
        # Descend holding parent + child.
        while True:
            for child_cell in (node.left, node.right):
                cid = yield child_cell.read()
                if cid is None:
                    continue
                child = self._node(cid)
                yield child.lock.acquire()
                count = yield child.count.read()
                c_left = yield child.left.read()
                c_right = yield child.right.read()
                if count == 0 and c_left is None and c_right is None:
                    yield child_cell.write(None, commit=True)  # internal commit
                    yield child.lock.release()
                    yield node.lock.release()
                    return True
                yield child.lock.release()
            # Move to a random-ish child to keep scanning (leftmost first).
            left = yield node.left.read()
            right = yield node.right.read()
            nid = left if left is not None else right
            if nid is None:
                yield node.lock.release()
                return False
            child = self._node(nid)
            yield child.lock.acquire()
            yield node.lock.release()
            node = child

    def compression_thread(self, ctx: ThreadCtx):
        """Daemon body: continuously unlink dead leaves."""
        try:
            while True:
                yield ctx.checkpoint()
                yield from self.compression_pass(ctx)
        except KernelStopped:
            return

    # -- direct helpers -------------------------------------------------------------

    def contents(self) -> dict:
        """Element -> count via direct traversal (post-run assertions)."""
        counts: dict = {}

        def visit(nid: Optional[int]) -> None:
            if nid is None:
                return
            node = self._nodes[nid]
            count = node.count.peek()
            if count:
                key = node.key.peek()
                counts[key] = counts.get(key, 0) + count
            visit(node.left.peek())
            visit(node.right.peek())

        visit(self.root.peek())
        return counts

    VYRD_METHODS = {
        "insert": "mutator",
        "delete": "mutator",
        "lookup": "observer",
    }

    # _new_node allocates from per-thread id counters (see __init__) and
    # only touches cells that are unreachable until the link write, so its
    # hidden writes commute with every step of other threads.
    VYRD_CONFLUENT_HELPERS = ("_new_node",)


def tree_multiset_view() -> FunctionView:
    """``viewI`` for :class:`TreeMultiset`: traverse the replayed tree.

    Reachability from ``ms.root`` is what makes lost-subtree bugs visible:
    a node whose link was overwritten keeps its cells in the replay state but
    drops out of the traversal, so ``viewI`` loses its key while ``viewS``
    keeps it.  (A full traversal per commit; the vector multiset demonstrates
    the incremental alternative.)
    """

    def compute(state) -> dict:
        counts: dict = {}
        stack = [state.get("ms.root")]
        while stack:
            nid = stack.pop()
            if nid is None:
                continue
            count = state.get(f"ms.n{nid}.count", 0)
            if count:
                key = state.get(f"ms.n{nid}.key")
                counts[key] = counts.get(key, 0) + count
            stack.append(state.get(f"ms.n{nid}.left"))
            stack.append(state.get(f"ms.n{nid}.right"))
        return counts

    return FunctionView(compute)
