"""The multiset running example of the paper (sections 2 and 7.4.2).

Two implementations with seeded concurrency bugs from Table 1:

* :class:`VectorMultiset` -- array-backed (Figs. 2/4), with the buggy
  ``FindSlot`` of Fig. 5 (``buggy_findslot=True``).
* :class:`TreeMultiset` -- BST-backed with lock coupling, with the
  "unlocking parent before insertion" bug (``buggy_unlock_parent=True``).

Plus :class:`MultisetSpec` (Fig. 1) and the view constructors
:func:`multiset_view` (incremental) and :func:`tree_multiset_view`
(traversal-based).
"""

from .spec import FAILURE, SUCCESS, MultisetSpec
from .tree_multiset import TreeMultiset, tree_multiset_view
from .vector_multiset import VectorMultiset, multiset_view

__all__ = [
    "FAILURE",
    "MultisetSpec",
    "SUCCESS",
    "TreeMultiset",
    "VectorMultiset",
    "multiset_view",
    "tree_multiset_view",
]
