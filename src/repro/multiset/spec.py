"""Multiset specification (paper Fig. 1 and section 2.1).

The spec state is the multiset contents ``M``.  Following the paper:

* ``Insert(x)`` / ``InsertPair(x, y)`` may terminate successfully or
  exceptionally (``FAILURE``); exceptional terminations must leave ``M``
  unchanged.  In particular it is a refinement violation if only one of
  ``x``/``y`` of an ``InsertPair`` lands in the multiset.
* ``LookUp(x)`` is an observer returning whether ``x in M``.
* ``Delete(x)`` removes one occurrence and reports success.  Scan-based
  implementations (the vector multiset) may *fail* to find an element that
  was inserted concurrently behind their scan, so the default spec allows a
  spurious ``False``; the tree multiset uses lock coupling and commits its
  failure decision while holding the relevant node lock, so it is checked
  against the strict spec (``strict_delete=True``).

A note on strict ``LookUp`` checking (``permissive_lookup=False``): the
vector multiset's scan-based lookup is genuinely *non-linearizable* when the
same key occupies two slots -- a concurrent delete can remove the occurrence
ahead of the scan while another insert of the same key commits behind it, so
lookup misses a key that is in ``M`` at every point of its window.  Strict
observer checking correctly flags that execution.  It is sound (no false
alarms on the correct implementation) as long as no key is ever inserted
again after a different, earlier insertion of it could interleave with a
delete -- the multiset harness enforces single-insertion keys for exactly
this reason.  ``permissive_lookup=True`` instead allows a spurious ``False``
whenever ``x in M`` (it never allows a spurious ``True``: observing ``True``
requires reading a committed valid bit), for free-form workloads.

This spec is deliberately *more permissive than atomicity*: the executions
with exceptional terminations it accepts are not equivalent to any atomic
execution of the implementation -- the paper's core argument for refinement
over atomicity (section 1).
"""

from __future__ import annotations

from collections import Counter

from ..core import (
    VIEW_ABSENT,
    AnyOf,
    SpecReject,
    Specification,
    canonical_bag,
    mutator,
    observer,
)

SUCCESS = "success"
FAILURE = "failure"


class MultisetSpec(Specification):
    """Executable, method-atomic, deterministic multiset specification."""

    tracks_view_delta = True

    def __init__(self, strict_delete: bool = False, permissive_lookup: bool = False):
        self.m: Counter = Counter()
        self.strict_delete = strict_delete
        self.permissive_lookup = permissive_lookup

    # -- mutators ----------------------------------------------------------

    @mutator
    def insert(self, x, *, result):
        if result == SUCCESS:
            self.m[x] += 1
            self._touch(x)
        elif result != FAILURE:
            raise SpecReject(f"insert may return success/failure, not {result!r}")

    @mutator
    def insert_pair(self, x, y, *, result):
        if result == SUCCESS:
            self.m[x] += 1
            self.m[y] += 1
            self._touch(x, y)
        elif result != FAILURE:
            raise SpecReject(
                f"insert_pair may return success/failure, not {result!r}"
            )

    @mutator
    def delete(self, x, *, result):
        if result is True:
            if self.m[x] <= 0:
                raise SpecReject(f"delete({x!r}) succeeded but {x!r} is not in M")
            self.m[x] -= 1
            if self.m[x] == 0:
                del self.m[x]
            self._touch(x)
        elif result is False:
            if self.strict_delete and self.m[x] > 0:
                raise SpecReject(
                    f"delete({x!r}) failed but {x!r} is in M and this "
                    "implementation cannot miss present elements"
                )
        else:
            raise SpecReject(f"delete must return a bool, not {result!r}")

    def candidate_results(self, method, args):
        """Plausible returns for incomplete operations in recovered logs
        (see :meth:`repro.core.spec.Specification.candidate_results`)."""
        if method in ("insert", "insert_pair"):
            return (SUCCESS, FAILURE)
        if method == "delete":
            return (True, False)
        return None

    # -- observers -----------------------------------------------------------

    @observer
    def lookup(self, x):
        if self.m[x] > 0:
            if self.permissive_lookup:
                return AnyOf({True, False})
            return True
        return False

    # -- view ------------------------------------------------------------------

    def view(self):
        """``viewS``: the multiset contents as a canonical bag."""
        return canonical_bag(self.m)

    def view_at(self, x):
        count = self.m.get(x, 0)
        return count if count else VIEW_ABSENT

    def describe(self) -> str:
        return f"M = {dict(self.m)!r}"
