"""Array-based concurrent multiset (paper section 2, Figs. 2, 4, 5).

The multiset is stored in an array ``A[0..n-1]``; slot ``i`` has two shared
variables, ``A[i].elt`` (the element, ``None`` when free) and ``A[i].valid``
(whether the slot counts as a member, section 2.1), plus a per-slot lock
(Java ``synchronized (A[i])``).

Operations:

* ``FindSlot(x)`` reserves a free slot for ``x`` by writing ``A[i].elt = x``
  while holding the slot lock (Fig. 2).  With ``buggy_findslot=True`` the
  emptiness test happens *before* taking the lock and is not re-checked
  under it (Fig. 5) -- two concurrent ``FindSlot`` calls can reserve the
  same slot, the second overwriting the first's element.  This is the
  "Moving acquire in FindSlot" bug of Table 1.
* ``insert(x)`` reserves a slot and sets its valid bit; the valid-bit write
  is the commit action.
* ``insert_pair(x, y)`` (Fig. 4) reserves two slots and sets both valid bits
  inside a commit block whose end is the commit action (Fig. 4 line 13) --
  the point at which the modified multiset becomes visible to other threads.
* ``delete(x)`` invalidates one occurrence (commit action: the valid-bit
  write); its failure path commits after the scan.
* ``lookup(x)`` is an observer: no commit annotation, no logging beyond
  call/return (section 4.3).

Scan direction and compaction.  ``lookup``/``delete`` scan *downward* and
the optional compression thread (:func:`compression_pass` /
:func:`compression_thread`, section 7.4.2) only moves elements *downward*
into lower free slots, holding both slot locks and wrapping the four writes
in a commit block with an internal (op-less) commit.  Same-direction scans
can never miss an element that stays in the multiset throughout the scan,
which keeps the strict observer-window check sound.

Lock ordering: whenever two slot locks are held at once (``insert_pair``,
compression), they are acquired in ascending index order.  The paper's
Fig. 4 acquires in reservation order; ordering by index preserves the
commit-block semantics while making the implementation deadlock-free
alongside the compression thread.
"""

from __future__ import annotations

from typing import List

from ..concurrency import KernelStopped, Lock, SharedCell, ThreadCtx
from ..core import ContributionView, operation, prefix_unit
from .spec import FAILURE, SUCCESS


class _Slot:
    """One array slot: element cell, valid cell and the slot lock."""

    __slots__ = ("elt", "valid", "lock")

    def __init__(self, index: int):
        self.elt = SharedCell(f"A[{index}].elt", None)
        self.valid = SharedCell(f"A[{index}].valid", False)
        self.lock = Lock(f"A[{index}]")


class VectorMultiset:
    """The vector-backed multiset implementation.

    All public operations are generator methods ``op(ctx, ...)`` running on
    the simulated-concurrency substrate; wrap instances with
    :meth:`repro.core.Vyrd.wrap` to log call/return actions.
    """

    def __init__(self, size: int = 8, buggy_findslot: bool = False):
        self.size = size
        self.buggy_findslot = buggy_findslot
        self.slots: List[_Slot] = [_Slot(i) for i in range(size)]

    # -- FindSlot (Fig. 2 / Fig. 5) -----------------------------------------

    def find_slot(self, ctx: ThreadCtx, x):
        """Reserve a free slot for ``x``; returns its index or -1.

        Internal subroutine -- not a public operation.
        """
        if self.buggy_findslot:
            return (yield from self._find_slot_buggy(ctx, x))
        return (yield from self._find_slot_correct(ctx, x))

    def _find_slot_correct(self, ctx: ThreadCtx, x):
        for i in range(self.size):
            slot = self.slots[i]
            yield slot.lock.acquire()
            elt = yield slot.elt.read()
            if elt is None:
                yield slot.elt.write(x)
                yield slot.lock.release()
                return i
            yield slot.lock.release()
        return -1

    def _find_slot_buggy(self, ctx: ThreadCtx, x):
        # Fig. 5: the emptiness check runs without the slot lock and is not
        # repeated once the lock is held, so the reservation can overwrite a
        # concurrent one.
        for i in range(self.size):
            slot = self.slots[i]
            # vyrd: ignore[VY007] -- the seeded Fig. 5 bug VY007 exists to
            # catch: an unlocked emptiness check; kept for the harness
            elt = yield slot.elt.read()  # A[i] should be locked here
            if elt is None:
                yield slot.lock.acquire()
                yield slot.elt.write(x)
                yield slot.lock.release()
                return i
        return -1

    # -- public operations ------------------------------------------------------

    @operation
    def insert(self, ctx: ThreadCtx, x):
        """Insert one occurrence of ``x``; may fail when the array is full."""
        i = yield from self.find_slot(ctx, x)
        if i == -1:
            yield ctx.commit()  # failure path: commit with M unchanged
            return FAILURE
        slot = self.slots[i]
        yield slot.lock.acquire()
        yield slot.valid.write(True, commit=True)
        yield slot.lock.release()
        return SUCCESS

    @operation
    def insert_pair(self, ctx: ThreadCtx, x, y):
        """Insert ``x`` and ``y`` atomically (Fig. 4); all-or-nothing."""
        i = yield from self.find_slot(ctx, x)
        if i == -1:
            yield ctx.commit()
            return FAILURE
        j = yield from self.find_slot(ctx, y)
        if j == -1:
            slot_i = self.slots[i]
            yield slot_i.lock.acquire()
            yield slot_i.elt.write(None)  # free the reservation
            yield slot_i.lock.release()
            yield ctx.commit()
            return FAILURE
        lo, hi = (i, j) if i < j else (j, i)
        yield self.slots[lo].lock.acquire()
        yield self.slots[hi].lock.acquire()
        yield ctx.begin_commit_block()  # Fig. 4 line 9
        yield self.slots[i].valid.write(True)  # line 11
        yield self.slots[j].valid.write(True)  # line 12
        yield ctx.end_commit_block(commit=True)  # line 13: the commit action
        yield self.slots[hi].lock.release()
        yield self.slots[lo].lock.release()
        return SUCCESS

    @operation
    def delete(self, ctx: ThreadCtx, x):
        """Remove one occurrence of ``x``; False when the scan finds none."""
        for i in range(self.size - 1, -1, -1):
            slot = self.slots[i]
            yield slot.lock.acquire()
            elt = yield slot.elt.read()
            valid = yield slot.valid.read()
            if elt == x and valid:
                yield slot.valid.write(False, commit=True)
                yield slot.elt.write(None)
                yield slot.lock.release()
                return True
            yield slot.lock.release()
        yield ctx.commit()  # failure path
        return False

    @operation
    def lookup(self, ctx: ThreadCtx, x):
        """Observer: is ``x`` currently in the multiset?"""
        for i in range(self.size - 1, -1, -1):
            slot = self.slots[i]
            yield slot.lock.acquire()
            elt = yield slot.elt.read()
            valid = yield slot.valid.read()
            yield slot.lock.release()
            if elt == x and valid:
                return True
        return False

    # -- compression (section 7.4.2) -----------------------------------------------

    def compression_pass(self, ctx: ThreadCtx):
        """Move one element into the lowest free slot; True if moved.

        The four writes of the move are a commit block ended by an internal
        commit action, so the view checker verifies the move left the
        abstract multiset unchanged.
        """
        for e in range(self.size):
            low = self.slots[e]
            yield low.lock.acquire()
            low_elt = yield low.elt.read()
            if low_elt is not None:
                yield low.lock.release()
                continue
            for f in range(self.size - 1, e, -1):
                high = self.slots[f]
                yield high.lock.acquire()
                high_valid = yield high.valid.read()
                if not high_valid:
                    yield high.lock.release()
                    continue
                value = yield high.elt.read()
                yield ctx.begin_commit_block()
                yield low.elt.write(value)
                yield low.valid.write(True)
                yield high.valid.write(False)
                yield high.elt.write(None)
                yield ctx.end_commit_block(commit=True)  # internal commit
                yield high.lock.release()
                yield low.lock.release()
                return True
            yield low.lock.release()
            return False
        return False

    def compression_thread(self, ctx: ThreadCtx):
        """Daemon body: compact continuously (run with ``daemon=True``)."""
        try:
            while True:
                yield ctx.checkpoint()
                yield from self.compression_pass(ctx)
        except KernelStopped:
            return

    # -- direct (non-simulated) helpers for tests and the atomized spec ----------

    def snapshot(self) -> tuple:
        """Capture shared state (for :class:`repro.core.AtomizedSpec`)."""
        return tuple((s.elt.peek(), s.valid.peek()) for s in self.slots)

    def restore(self, snap: tuple) -> None:
        for slot, (elt, valid) in zip(self.slots, snap):
            slot.elt.poke(elt)
            slot.valid.poke(valid)

    def contents(self) -> dict:
        """Element -> count, read directly (post-run assertions only)."""
        counts: dict = {}
        for slot in self.slots:
            if slot.valid.peek():
                element = slot.elt.peek()
                counts[element] = counts.get(element, 0) + 1
        return counts

    def view_atomic(self) -> dict:
        """``viewS`` provider when this instance serves as an atomized spec."""
        return self.contents()

    VYRD_METHODS = {
        "insert": "mutator",
        "insert_pair": "mutator",
        "delete": "mutator",
        "lookup": "observer",
    }


def multiset_view() -> ContributionView:
    """``viewI`` for :class:`VectorMultiset` (section 5.1's computation).

    Unit = array slot; a slot contributes one occurrence of its element when
    its valid bit is set.  ``supp(view)`` is exactly the ``A[i].elt`` /
    ``A[i].valid`` cells, encoded by the unit mapping.
    """

    def contribute(state, unit):
        if state.get(f"{unit}.valid"):
            return (state.get(f"{unit}.elt"), 1)
        return None

    return ContributionView(
        unit_of=prefix_unit("A[", stop="."),
        contribute=contribute,
        aggregate="count",
    )
