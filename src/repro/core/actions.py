"""Action records: the vocabulary of the VYRD log.

The paper models programs as state transition systems whose runs are
sequences of *actions* (section 3.1).  VYRD's instrumentation writes a subset
of those actions into a log; the verification thread replays the log.  This
module defines one record type per logged action kind:

================================  ============================================
Record                            Paper concept
================================  ============================================
:class:`CallAction`               call action ``(t, mu, alpha)``
:class:`ReturnAction`             return action ``(t, mu, rho)``
:class:`CommitAction`             the *commit action* annotation (section 4.1);
                                  ``op_id is None`` for internal worker-thread
                                  commits (e.g. the B-link-tree compression
                                  thread, section 7.2.3)
:class:`WriteAction`              a shared-variable write (fine-grained
                                  logging, section 6.2); carries the old value
                                  so commit-block rollback (section 5.2) needs
                                  no state traversal
:class:`BeginCommitBlockAction`   start of a commit block (section 5.2)
:class:`EndCommitBlockAction`     end of a commit block
:class:`ReplayAction`             a coarse-grained, data-structure-specific
                                  log entry with a programmer-supplied replay
                                  routine (section 6.2)
================================  ============================================

Each method execution (one invocation of a public method) is identified by a
globally unique ``op_id`` linking its call, commit and return records.  The
position of a record in the log is its global sequence number; records do not
store it themselves.

All records are immutable; payload values must themselves be immutable so the
log is a faithful snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Optional, Tuple


class Action:
    """Base class of all log records."""

    __slots__ = ()

    def __reduce__(self):
        # frozen dataclasses with manual __slots__ need explicit pickle
        # support (LogWriter serializes records with pickle)
        return (type(self), tuple(getattr(self, f.name) for f in fields(self)))


@dataclass(frozen=True)
class CallAction(Action):
    """Public-method invocation by application thread ``tid``."""

    tid: int
    op_id: int
    method: str
    args: Tuple[Any, ...]

    __slots__ = ("tid", "op_id", "method", "args")


@dataclass(frozen=True)
class ReturnAction(Action):
    """Public-method return.  Exceptional termination is modelled by special
    return values (paper section 3), never by Python exceptions."""

    tid: int
    op_id: int
    method: str
    result: Any

    __slots__ = ("tid", "op_id", "method", "result")


@dataclass(frozen=True)
class CommitAction(Action):
    """The annotated commit action of a method execution.

    ``op_id is None`` marks an *internal* commit performed by a
    data-structure worker thread outside any public method; the view checker
    verifies such commits leave the view unchanged.
    """

    tid: int
    op_id: Optional[int]

    __slots__ = ("tid", "op_id")


@dataclass(frozen=True)
class WriteAction(Action):
    """A write to the shared variable named ``loc``.

    ``op_id`` is the enclosing method execution (``None`` for internal
    threads).  ``old`` is the value being overwritten -- recorded so that the
    replay state can roll back uncommitted commit-block writes without
    retraversing anything.
    """

    tid: int
    op_id: Optional[int]
    loc: str
    old: Any
    new: Any

    __slots__ = ("tid", "op_id", "loc", "old", "new")


@dataclass(frozen=True)
class BeginCommitBlockAction(Action):
    tid: int
    op_id: Optional[int]

    __slots__ = ("tid", "op_id")


@dataclass(frozen=True)
class EndCommitBlockAction(Action):
    tid: int
    op_id: Optional[int]

    __slots__ = ("tid", "op_id")


@dataclass(frozen=True)
class ReplayAction(Action):
    """Coarse-grained log entry: ``tag`` selects a replay routine registered
    with the checker; ``payload`` is the immutable data that routine needs."""

    tid: int
    op_id: Optional[int]
    tag: str
    payload: Any

    __slots__ = ("tid", "op_id", "tag", "payload")


@dataclass(frozen=True)
class ReadAction(Action):
    """A shared-variable read (logged only when read logging is enabled;
    needed by the Atomizer-style atomicity baseline's race detection)."""

    tid: int
    op_id: Optional[int]
    loc: str

    __slots__ = ("tid", "op_id", "loc")


@dataclass(frozen=True)
class AcquireAction(Action):
    """A lock acquisition (``mode``: ``"x"`` exclusive, ``"r"``/``"w"`` for
    reader-writer locks).  Logged at grant time, outermost level only."""

    tid: int
    op_id: Optional[int]
    lock: str
    mode: str = "x"


@dataclass(frozen=True)
class ReleaseAction(Action):
    """A lock release (outermost level only)."""

    tid: int
    op_id: Optional[int]
    lock: str
    mode: str = "x"


@dataclass(frozen=True)
class SpawnAction(Action):
    """Thread ``tid`` spawned simulated thread ``child_tid``.

    Logged only for *dynamic* spawns (from inside a running simulated
    thread); threads created before ``kernel.run()`` have no logged parent.
    Gives the race detector its fork happens-before edge."""

    tid: int
    op_id: Optional[int]
    child_tid: int

    __slots__ = ("tid", "op_id", "child_tid")


@dataclass(frozen=True)
class JoinAction(Action):
    """Thread ``tid`` observed the completion of thread ``child_tid`` via
    ``ctx.join`` (the join happens-before edge)."""

    tid: int
    op_id: Optional[int]
    child_tid: int

    __slots__ = ("tid", "op_id", "child_tid")


@dataclass(frozen=True)
class Signature:
    """The signature ``Sign(phi) = (t, mu, alpha, rho)`` of a method execution
    (paper section 3.2)."""

    tid: int
    method: str
    args: Tuple[Any, ...]
    result: Any

    __slots__ = ("tid", "method", "args", "result")

    def __reduce__(self):
        # same manual pickle support as Action: frozen + manual __slots__
        # defeats the default protocol (checkpoints serialize violations,
        # which carry signatures)
        return (type(self), (self.tid, self.method, self.args, self.result))

    def __str__(self) -> str:
        arg_text = ", ".join(repr(a) for a in self.args)
        return f"t{self.tid}:{self.method}({arg_text}) -> {self.result!r}"
