"""Bounded exhaustive refinement verification (extension, DESIGN.md §5).

The paper trades completeness for scalability: VYRD checks the one
interleaving a run happened to produce.  On the deterministic simulator we
can close that gap for small programs: enumerate *every* schedule with
:func:`repro.concurrency.explore_exhaustive` and run the full refinement
check on each, turning VYRD into a bounded model checker for refinement.

Usage::

    def make_run(scheduler):
        vyrd = Vyrd(spec_factory=MultisetSpec, mode="view",
                    impl_view_factory=multiset_view)
        kernel = Kernel(scheduler=scheduler, tracer=vyrd.tracer)
        ... build a fresh structure, spawn threads ...
        kernel.run()
        return vyrd

    result = verify_all_schedules(make_run, max_runs=5000)
    assert result.exhausted and result.all_ok

Each violating schedule is reported with its decision vector, which replays
the exact interleaving through a
:class:`~repro.concurrency.schedulers.ReplayScheduler` -- every
counterexample is deterministic and debuggable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from ..concurrency.explore import explore_exhaustive
from ..concurrency.schedulers import ReplayScheduler, Scheduler
from .refinement import CheckOutcome
from .verifier import Vyrd


@dataclass
class ScheduleViolation:
    """One schedule whose run failed refinement (or crashed).

    ``outcome`` is the failing :class:`CheckOutcome` (in-process checking)
    or its ``to_dict()`` form when the violation crossed a worker-process
    boundary (:func:`check_program_all_schedules` with ``jobs > 1``); None
    if the run itself crashed before checking.
    """

    schedule: List[int]          # ReplayScheduler decision vector
    outcome: Optional[object]
    error: Optional[BaseException] = None


@dataclass
class ExhaustiveVerification:
    """Aggregate result of checking every explored schedule."""

    schedules_run: int = 0
    exhausted: bool = False      # True iff the whole schedule space was covered
    violations: List[ScheduleViolation] = field(default_factory=list)

    @property
    def all_ok(self) -> bool:
        return not self.violations

    def summary(self) -> str:
        coverage = "all schedules" if self.exhausted else "budget exhausted"
        if self.all_ok:
            return f"OK: {self.schedules_run} schedules checked ({coverage})"
        return (
            f"{len(self.violations)} violating schedule(s) out of "
            f"{self.schedules_run} ({coverage}); first decision vector: "
            f"{self.violations[0].schedule}"
        )


def verify_all_schedules(
    make_run: Callable[[Scheduler], Vyrd],
    max_runs: int = 10_000,
    stop_at_first: bool = False,
    check: Optional[Callable[[Vyrd], CheckOutcome]] = None,
) -> ExhaustiveVerification:
    """Run ``make_run`` under every schedule (up to ``max_runs``) and check
    each produced log.

    ``make_run(scheduler)`` must build a *fresh* program each call, run it to
    completion and return its :class:`Vyrd` session.  ``check`` defaults to
    ``vyrd.check_offline()``.
    """
    check = check or (lambda vyrd: vyrd.check_offline())

    def program(scheduler: Scheduler):
        vyrd = make_run(scheduler)
        outcome = check(vyrd)
        if not outcome.ok:
            # surface through the explorer's failure channel, carrying the
            # outcome for the report
            raise _RefinementFailure(outcome)
        return True

    explored = explore_exhaustive(
        program, max_runs=max_runs, stop_on_failure=stop_at_first
    )
    result = ExhaustiveVerification(
        schedules_run=explored.num_runs, exhausted=explored.exhausted
    )
    for record in explored.failures:
        if isinstance(record.error, _RefinementFailure):
            result.violations.append(
                ScheduleViolation(record.schedule, record.error.outcome)
            )
        else:
            result.violations.append(
                ScheduleViolation(record.schedule, None, record.error)
            )
    return result


def check_program_all_schedules(
    program,
    max_runs: int = 10_000,
    stop_at_first: bool = False,
    jobs: Optional[int] = 1,
) -> ExhaustiveVerification:
    """Bounded exhaustive checking of a *picklable* program, optionally
    fanned out over worker processes.

    ``program`` is a program source for
    :func:`repro.concurrency.parallel.parallel_exhaustive`: a
    :class:`repro.harness.ProgramSpec` (registry workload + config, with the
    refinement check built in) or any picklable ``program(scheduler)``
    callable that raises on a violation.  Unlike
    :func:`verify_all_schedules`, whose ``make_run`` closure pins it to one
    process, this path shards the schedule tree across ``jobs`` workers;
    failure details that crossed a process boundary surface as
    ``ScheduleViolation.outcome`` dicts (see :class:`ScheduleViolation`).
    """
    from ..concurrency.parallel import parallel_exhaustive

    explored = parallel_exhaustive(
        program, max_runs=max_runs, stop_on_failure=stop_at_first, jobs=jobs
    )
    result = ExhaustiveVerification(
        schedules_run=explored.num_runs, exhausted=explored.exhausted
    )
    for record in explored.failures:
        error = record.error
        details = getattr(error, "details", None)
        if details is not None:
            result.violations.append(ScheduleViolation(record.schedule, details))
        else:
            result.violations.append(ScheduleViolation(record.schedule, None, error))
    return result


def replay_schedule(
    make_run: Callable[[Scheduler], Vyrd],
    schedule: List[int],
) -> Tuple[Vyrd, CheckOutcome]:
    """Re-run one decision vector found by :func:`verify_all_schedules`."""
    vyrd = make_run(ReplayScheduler(decisions=schedule))
    return vyrd, vyrd.check_offline()


class _RefinementFailure(Exception):
    def __init__(self, outcome: CheckOutcome):
        self.outcome = outcome
        super().__init__(outcome.summary())
