"""Checkpointed verification: suspend a checker mid-log, resume elsewhere.

A long log (or a crashed ``repro.serve`` daemon) should not force
re-verification from record zero: everything the checker knows at a log
position is finite, deterministic state -- the spec instance, the
incremental-view caches, the differential comparator's mismatch set, the
replayed implementation state with its open undo maps, the pending observer
windows, and the lookahead buffer of actions awaiting their return values.
A :class:`Checkpoint` captures exactly that, content-addressed so a torn or
tampered file is *rejected* (typed :class:`CheckpointError`) rather than
silently resumed from.

Design constraints
------------------
* **Data only.**  View factories, replay routines and invariants are
  closures and do not pickle.  A checkpoint therefore never carries code:
  :meth:`~repro.core.refinement.RefinementChecker.restore` loads the payload
  into a *freshly constructed* checker built from the same program registry
  (same spec class, same view factory), and validates the configuration
  fingerprint before touching anything.
* **Tamper evidence.**  The file format mirrors the log's framing
  philosophy: a magic line, a JSON header carrying the SHA-256 of the
  payload plus open metadata (resume seq, program, chain head digest), then
  the pickled payload.  ``from_bytes`` recomputes the hash before
  unpickling; any mismatch -- truncation, bit flips, a header edited to
  point at different state -- raises :class:`CheckpointError`, and callers
  fall back to record-zero replay.

File layout::

    VYRDCKPT1\\n
    {"meta": {...}, "sha256": "...", "version": 1}\\n
    <pickle bytes>
"""

from __future__ import annotations

import hashlib
import json
import pickle
from dataclasses import dataclass, field
from typing import Any, Dict, Optional

MAGIC = b"VYRDCKPT1\n"
FORMAT_VERSION = 1


class CheckpointError(Exception):
    """The checkpoint is corrupt, truncated, or configuration-incompatible."""


@dataclass
class Checkpoint:
    """One suspended checker state plus open metadata.

    ``payload`` is the checker's ``state_dict()`` -- opaque here; the
    checker that produced it knows how to reload it.  ``meta`` is small,
    JSON-safe context: the log seq to resume feeding from, the program and
    mode, optionally the hash-chain head digest of the log prefix already
    verified.
    """

    payload: Dict[str, Any]
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def resume_seq(self) -> int:
        """First log seq the restored checker still needs to be fed."""
        return int(self.meta.get("resume_seq", 0))

    def to_bytes(self) -> bytes:
        try:
            body = pickle.dumps(self.payload, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            raise CheckpointError(f"checkpoint state does not pickle: {exc}") from exc
        header = {
            "version": FORMAT_VERSION,
            "sha256": hashlib.sha256(body).hexdigest(),
            "meta": self.meta,
        }
        return MAGIC + json.dumps(header, sort_keys=True).encode("utf-8") + b"\n" + body

    @classmethod
    def from_bytes(cls, blob: bytes) -> "Checkpoint":
        if not blob.startswith(MAGIC):
            raise CheckpointError("not a VYRD checkpoint (bad magic)")
        rest = blob[len(MAGIC):]
        newline = rest.find(b"\n")
        if newline < 0:
            raise CheckpointError("truncated checkpoint: missing header")
        try:
            header = json.loads(rest[:newline].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise CheckpointError(f"unreadable checkpoint header: {exc}") from exc
        if header.get("version") != FORMAT_VERSION:
            raise CheckpointError(
                f"unsupported checkpoint version {header.get('version')!r}"
            )
        body = rest[newline + 1:]
        digest = hashlib.sha256(body).hexdigest()
        if digest != header.get("sha256"):
            raise CheckpointError(
                "checkpoint content hash mismatch "
                f"(header {header.get('sha256')!r}, payload {digest!r})"
            )
        try:
            payload = pickle.loads(body)
        except Exception as exc:
            raise CheckpointError(f"checkpoint payload does not unpickle: {exc}") from exc
        return cls(payload=payload, meta=dict(header.get("meta") or {}))

    def save(self, path: str) -> str:
        with open(path, "wb") as handle:
            handle.write(self.to_bytes())
        return path

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError as exc:
            raise CheckpointError(f"cannot read checkpoint {path!r}: {exc}") from exc
        return cls.from_bytes(blob)


def checkpoint_blob_name(session: str) -> str:
    """Store-blob name for a serve session's rolling checkpoint."""
    return f"{session}/CHECKPOINT.vyrdckpt"
