"""The VYRD log: an append-only action sequence with optional file backing.

The paper's architecture (section 4.2) decouples the instrumented
implementation from the verification thread through a log: "In practice, the
log is a file whose tail is kept in memory for faster access."  This module
provides:

* :class:`Log` -- the in-memory append-only sequence.  Implementation
  threads append through the tracer; the verifier reads by index, so an
  online verifier simply keeps a cursor into the same object (the "tail kept
  in memory").  Tail reads (:meth:`Log.since`) return a :class:`LogView`, a
  copy-free bounded window over the shared storage.
* :class:`LogWriter` / :class:`LogReader` -- streaming pickle serialization
  to a file, standing in for the paper's .NET binary object serialization
  (section 6.1): records round-trip as they were saved at runtime.  The
  default on-disk format is *crash-safe*: a magic header followed by
  length-prefixed frames carrying a per-record CRC32, so a torn or
  bit-flipped tail is detectable record-by-record instead of poisoning the
  whole stream.
* :exc:`LogFormatError` / :func:`recover_log` -- typed corruption reporting
  (byte offset, record index, cause) and best-effort salvage: long
  instrumented runs die mid-write (killed workers, full disks), and the
  valid prefix of their log is still a checkable trace.
* :func:`validate_well_formed` -- the well-formedness conditions of paper
  section 3.2 (per-thread call/return nesting discipline) plus the
  instrumentation obligations of section 4.1 (exactly one commit action per
  mutator execution path).
"""

from __future__ import annotations

import io
import pickle
import struct
import zlib
from collections.abc import Sequence
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional

from .actions import (
    AcquireAction,
    Action,
    BeginCommitBlockAction,
    CallAction,
    CommitAction,
    EndCommitBlockAction,
    JoinAction,
    ReadAction,
    ReleaseAction,
    ReplayAction,
    ReturnAction,
    SpawnAction,
    WriteAction,
)


class Log:
    """Append-only in-memory sequence of :class:`Action` records.

    The record's position is its global sequence number.  Appends happen only
    from kernel callbacks (one real OS thread), so no locking is required;
    the atomicity requirement of section 4.2 -- each logged action performed
    atomically with its log update -- is provided by the kernel.
    """

    __slots__ = ("_records",)

    def __init__(self, records: Optional[Iterable[Action]] = None):
        self._records: List[Action] = list(records) if records is not None else []

    def append(self, action: Action) -> int:
        """Append and return the record's sequence number."""
        self._records.append(action)
        return len(self._records) - 1

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def __iter__(self) -> Iterator[Action]:
        return iter(self._records)

    def since(self, cursor: int) -> "LogView":
        """Records appended at or after ``cursor`` (online verifier tail read).

        Returns a :class:`LogView` -- an index-bounded window over the
        underlying storage, not a copy.  The online verifier polls the tail
        on every scheduling slot it gets; copying the tail list each time
        made long-log online checking quadratic in log length.  The view is
        a snapshot: records appended after the call fall outside its bounds.
        """
        return LogView(self._records, cursor, len(self._records))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Log {len(self._records)} records>"


class LogView(Sequence):
    """A cheap, bounded window over a log's record storage (no copying).

    Behaves like a read-only list of the records in ``[start, stop)``:
    iteration, indexing (including negative indices and slices) and equality
    against any sequence all work, but construction is O(1) regardless of
    window size.  ``stop`` is fixed at creation, so the view is a stable
    snapshot even while the underlying log keeps growing; online checkers
    advance their cursor to :attr:`stop` after consuming a view.
    """

    __slots__ = ("_records", "start", "stop")

    def __init__(self, records: List[Action], start: int, stop: int):
        length = len(records)
        self.start = min(max(0, start), length)
        self.stop = min(max(self.start, stop), length)
        self._records = records

    def __len__(self) -> int:
        return self.stop - self.start

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                self._records[self.start + i]
                for i in range(*index.indices(len(self)))
            ]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("LogView index out of range")
        return self._records[self.start + index]

    def __iter__(self) -> Iterator[Action]:
        records = self._records
        for i in range(self.start, self.stop):
            yield records[i]

    def __eq__(self, other) -> bool:
        if not isinstance(other, (list, tuple, LogView)):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(a == b for a, b in zip(self, other))

    __hash__ = None  # mutable underlying storage

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LogView [{self.start}:{self.stop}]>"


#: Magic prefix of the crash-safe framed log format (format version 1).
LOG_MAGIC = b"VYRDLOG1"

#: Per-record frame header: little-endian payload length + CRC32 of payload.
_FRAME_HEADER = struct.Struct("<II")


class LogFormatError(Exception):
    """A saved log stream is truncated or corrupted.

    Raised by :class:`LogReader` / :func:`load_log` instead of the raw
    :exc:`pickle.UnpicklingError` (or a silent short read) the underlying
    decode produces.  Carries enough context to diagnose and to re-read the
    salvageable prefix with :func:`recover_log`:

    Attributes
    ----------
    offset:
        Byte offset of the first bad frame (the position where the record
        *starts*, not where decoding noticed the damage).
    record_index:
        Index of the first unreadable record; records ``[0, record_index)``
        decoded cleanly.
    cause:
        Short description of what was wrong ("truncated frame header",
        "CRC mismatch", ...); the original exception, when there was one,
        is chained as ``__cause__``.
    """

    def __init__(self, cause: str, offset: int, record_index: int):
        self.cause = cause
        self.offset = offset
        self.record_index = record_index
        super().__init__(
            f"corrupt log stream at byte {offset} (record {record_index}): {cause}"
        )


class LogWriter:
    """Stream actions to a binary file, one framed pickle record at a time.

    Can wrap an open binary file object or a path.  Use as a context manager
    or call :meth:`close` explicitly.

    The default format is *crash-safe*: the stream opens with
    :data:`LOG_MAGIC` and every record is a length-prefixed frame carrying a
    CRC32 of its pickled payload, so a reader can tell a clean end-of-log
    from a torn tail and :func:`recover_log` can salvage everything before
    the first bad byte.  ``framed=False`` writes the legacy format -- a bare
    concatenation of pickles, byte-compatible with per-record
    ``pickle.dump`` output.

    One :class:`pickle.Pickler` is kept for the whole stream -- building the
    pickling machinery per record dominated save time on long logs.  The
    memo is cleared between records, so each record is a self-contained
    pickle that any frame boundary can decode with a fresh
    :class:`pickle.Unpickler`.
    """

    def __init__(self, target, framed: bool = True):
        if hasattr(target, "write"):
            self._file: IO[bytes] = target
            self._owns = False
        else:
            self._file = open(target, "wb")
            self._owns = True
        self._framed = framed
        if framed:
            self._file.write(LOG_MAGIC)
            self._buffer = io.BytesIO()
            self._pickler = pickle.Pickler(
                self._buffer, protocol=pickle.HIGHEST_PROTOCOL
            )
        else:
            self._pickler = pickle.Pickler(
                self._file, protocol=pickle.HIGHEST_PROTOCOL
            )

    def write(self, action: Action) -> None:
        if not self._framed:
            self._pickler.dump(action)
            self._pickler.clear_memo()
            return
        buffer = self._buffer
        buffer.seek(0)
        buffer.truncate()
        self._pickler.dump(action)
        self._pickler.clear_memo()
        payload = buffer.getvalue()
        # Header and payload go out in one write: an interrupted append then
        # tears at most the final frame, which recover_log drops cleanly.
        self._file.write(
            _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        )

    def write_all(self, actions: Iterable[Action]) -> None:
        for action in actions:
            self.write(action)

    def close(self) -> None:
        if self._owns:
            self._file.close()

    def __enter__(self) -> "LogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LogReader:
    """Iterate actions back out of a file written by :class:`LogWriter`.

    The format is auto-detected from the :data:`LOG_MAGIC` prefix: framed
    streams are decoded frame-by-frame with CRC validation; anything else is
    treated as the legacy format (a concatenation of self-contained pickles,
    e.g. files written record-at-a-time with plain ``pickle.dump``).

    Truncated or corrupted streams raise :exc:`LogFormatError` with the byte
    offset and index of the first bad record -- never a bare
    :exc:`pickle.UnpicklingError`, and never a silent early stop.  Use
    :func:`recover_log` to read the valid prefix of a damaged file instead.

    A stream-persistent :class:`pickle.Unpickler` cannot be used here: the
    C unpickler's MEMOIZE counter keeps counting across ``load()`` calls and
    ignores ``memo`` reassignment, so GET opcodes in the second frame (whose
    indices restart at zero) would resolve against the first frame's
    entries -- silent payload corruption, or ``Memo value not found``.  One
    unpickler per record is the only correct reader for restarting-memo
    frames, and the allocation is cheap next to the decode itself.
    """

    def __init__(self, target):
        if hasattr(target, "read"):
            self._file: IO[bytes] = target
            self._owns = False
        else:
            self._file = open(target, "rb")
            self._owns = True
        start = self._file.tell()
        head = self._file.read(len(LOG_MAGIC))
        self._framed = head == LOG_MAGIC
        if not self._framed:
            self._file.seek(start)
        self._size = self._file.seek(0, io.SEEK_END)
        self._file.seek(start + (len(LOG_MAGIC) if self._framed else 0))

    def __iter__(self) -> Iterator[Action]:
        for action, _end in self._records():
            yield action

    def _records(self) -> Iterator[tuple]:
        """Yield ``(action, end_offset)`` pairs; raise :exc:`LogFormatError`
        at the first bad frame."""
        if self._framed:
            yield from self._framed_records()
        else:
            yield from self._legacy_records()

    def _framed_records(self) -> Iterator[tuple]:
        file = self._file
        index = 0
        while True:
            offset = file.tell()
            header = file.read(_FRAME_HEADER.size)
            if not header:
                return
            if len(header) < _FRAME_HEADER.size:
                raise LogFormatError("truncated frame header", offset, index)
            length, crc = _FRAME_HEADER.unpack(header)
            payload = file.read(length)
            if len(payload) < length:
                raise LogFormatError(
                    f"truncated frame payload ({len(payload)} of {length} bytes)",
                    offset, index,
                )
            if zlib.crc32(payload) != crc:
                raise LogFormatError("CRC mismatch", offset, index)
            try:
                action = pickle.loads(payload)
            except Exception as exc:
                error = LogFormatError(
                    f"undecodable record payload: {exc}", offset, index
                )
                error.__cause__ = exc
                raise error
            yield action, file.tell()
            index += 1

    def _legacy_records(self) -> Iterator[tuple]:
        file = self._file
        index = 0
        while True:
            offset = file.tell()
            try:
                action = pickle.Unpickler(file).load()
            except EOFError as exc:
                if offset >= self._size:
                    return  # clean end of stream
                error = LogFormatError("truncated pickle record", offset, index)
                error.__cause__ = exc
                raise error
            except Exception as exc:
                error = LogFormatError(
                    f"undecodable pickle record: {exc}", offset, index
                )
                error.__cause__ = exc
                raise error
            yield action, file.tell()
            index += 1

    def read_log(self) -> Log:
        """Materialize the whole file as an in-memory :class:`Log`."""
        return Log(iter(self))

    def close(self) -> None:
        if self._owns:
            self._file.close()

    def __enter__(self) -> "LogReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class RecoveredLog:
    """Result of a best-effort :func:`recover_log` salvage.

    ``log`` holds the longest valid record prefix.  When the stream was
    damaged, ``error_offset``/``error_record``/``cause`` describe the first
    bad frame exactly as the :exc:`LogFormatError` from a strict read would;
    a clean stream leaves them ``None``.
    """

    log: Log
    valid_bytes: int
    total_bytes: int
    error_offset: Optional[int] = None
    error_record: Optional[int] = None
    cause: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.error_offset is None

    @property
    def records(self) -> int:
        return len(self.log)

    def to_dict(self) -> dict:
        return {
            "records": self.records,
            "valid_bytes": self.valid_bytes,
            "total_bytes": self.total_bytes,
            "complete": self.complete,
            "error_offset": self.error_offset,
            "error_record": self.error_record,
            "cause": self.cause,
        }


def recover_log(path, obs=None) -> RecoveredLog:
    """Salvage the longest valid record prefix of a (possibly damaged) log.

    Never raises on corruption: reads records until the first bad frame,
    then reports where and why decoding stopped.  Works on both the framed
    and the legacy format.  A framed log whose magic header itself is
    damaged salvages zero records (nothing after an unidentifiable header
    can be trusted).

    ``obs`` (a :class:`repro.obs.Recorder`) records a ``log.recover`` span
    and counters for salvaged/lost bytes.
    """
    if obs is not None and obs.enabled:
        with obs.span("log.recover", cat="log"):
            recovered = _recover_log(path)
        obs.count("recovery.records", recovered.records)
        obs.count("recovery.lost_bytes",
                  recovered.total_bytes - recovered.valid_bytes)
        return recovered
    return _recover_log(path)


def _recover_log(path) -> RecoveredLog:
    with LogReader(path) as reader:
        actions: List[Action] = []
        valid_bytes = reader._file.tell()  # after the magic, if any
        try:
            for action, end in reader._records():
                actions.append(action)
                valid_bytes = end
        except LogFormatError as error:
            return RecoveredLog(
                Log(actions), valid_bytes, reader._size,
                error_offset=error.offset,
                error_record=error.record_index,
                cause=error.cause,
            )
        return RecoveredLog(Log(actions), valid_bytes, reader._size)


def save_log(log: Log, path, framed: bool = True) -> None:
    """Write ``log`` to ``path`` (convenience wrapper around LogWriter)."""
    with LogWriter(path, framed=framed) as writer:
        writer.write_all(log)


def load_log(path) -> Log:
    """Read a log previously written with :func:`save_log`.

    Raises :exc:`LogFormatError` if the stream is truncated or corrupted;
    use :func:`recover_log` to salvage the valid prefix instead.
    """
    with LogReader(path) as reader:
        return reader.read_log()


def validate_well_formed(log: Log) -> List[str]:
    """Check the well-formedness conditions of paper sections 3.2 and 4.1.

    Returns a list of human-readable problems (empty when well-formed):

    * every return matches the thread's currently open call (per-thread
      sequences of public-method actions are well-nested and sequential);
    * commit actions with an ``op_id`` fall between that execution's call and
      return, and no execution commits twice;
    * commit blocks are opened and closed in matched pairs per thread.
    """
    problems: List[str] = []
    open_op = {}  # tid -> (op_id, committed_count)
    open_blocks = {}  # tid -> depth
    finished_ops = set()

    for seq, action in enumerate(log):
        if isinstance(action, CallAction):
            if action.tid in open_op:
                problems.append(
                    f"@{seq}: thread {action.tid} called {action.method} while "
                    f"execution {open_op[action.tid][0]} is still open"
                )
            if action.op_id in finished_ops:
                problems.append(f"@{seq}: op_id {action.op_id} reused")
            open_op[action.tid] = [action.op_id, 0]
        elif isinstance(action, ReturnAction):
            current = open_op.get(action.tid)
            if current is None or current[0] != action.op_id:
                problems.append(
                    f"@{seq}: return of op {action.op_id} on thread {action.tid} "
                    f"does not match open call {current}"
                )
            else:
                del open_op[action.tid]
                finished_ops.add(action.op_id)
        elif isinstance(action, CommitAction):
            if action.op_id is not None:
                current = open_op.get(action.tid)
                if current is None or current[0] != action.op_id:
                    problems.append(
                        f"@{seq}: commit of op {action.op_id} outside its "
                        f"call/return window on thread {action.tid}"
                    )
                else:
                    current[1] += 1
                    if current[1] > 1:
                        problems.append(
                            f"@{seq}: op {action.op_id} committed more than once"
                        )
        elif isinstance(action, BeginCommitBlockAction):
            open_blocks[action.tid] = open_blocks.get(action.tid, 0) + 1
        elif isinstance(action, EndCommitBlockAction):
            depth = open_blocks.get(action.tid, 0)
            if depth == 0:
                problems.append(
                    f"@{seq}: thread {action.tid} ended a commit block it never began"
                )
            else:
                open_blocks[action.tid] = depth - 1
        elif isinstance(action, (WriteAction, ReplayAction, ReadAction,
                                 AcquireAction, ReleaseAction,
                                 SpawnAction, JoinAction)):
            pass
        else:
            problems.append(f"@{seq}: unknown action type {type(action).__name__}")

    for tid, (op_id, _) in open_op.items():
        problems.append(f"end of log: op {op_id} on thread {tid} never returned")
    for tid, depth in open_blocks.items():
        if depth:
            problems.append(f"end of log: thread {tid} left {depth} commit block(s) open")
    return problems
