"""The VYRD log: an append-only action sequence with optional file backing.

The paper's architecture (section 4.2) decouples the instrumented
implementation from the verification thread through a log: "In practice, the
log is a file whose tail is kept in memory for faster access."  This module
provides:

* :class:`Log` -- the in-memory append-only sequence.  Implementation
  threads append through the tracer; the verifier reads by index, so an
  online verifier simply keeps a cursor into the same object (the "tail kept
  in memory").  Tail reads (:meth:`Log.since`) return a :class:`LogView`, a
  copy-free bounded window over the shared storage.
* :class:`LogWriter` / :class:`LogReader` -- streaming pickle serialization
  to a file, standing in for the paper's .NET binary object serialization
  (section 6.1): records round-trip as they were saved at runtime.  The
  default on-disk format is *crash-safe*: a magic header followed by
  length-prefixed frames carrying a per-record CRC32, so a torn or
  bit-flipped tail is detectable record-by-record instead of poisoning the
  whole stream.
* :exc:`LogFormatError` / :func:`recover_log` -- typed corruption reporting
  (byte offset, record index, cause) and best-effort salvage: long
  instrumented runs die mid-write (killed workers, full disks), and the
  valid prefix of their log is still a checkable trace.
* The *tamper-evident* chained format (``chained=True``, magic
  ``VYRDLOG2``): every frame additionally carries its global sequence
  number and the SHA-256 digest of the previous frame, genesis-seeded per
  shard.  A CRC catches accidental bit rot; the hash chain catches
  *deliberate* splice/reorder/rewrite tampering (threat T1 of the related
  work's threat model) because a forged record cannot produce the digest
  the next record already committed to.  :func:`verify_chain` walks a file
  and reports the first break; :func:`recover_log` on a chained file
  salvages exactly the longest *chain-valid* prefix.  Clean truncation at
  a frame boundary is invisible to the chain itself -- pass the shard's
  expected head digest (recorded out-of-band, e.g. in a shard manifest) to
  :func:`verify_chain` to close that hole.
* ``sync=True`` adds durability: :meth:`LogWriter.flush` then pushes
  buffered frames through ``fsync``, so a record is never *acknowledged*
  (flush returned) and then lost to a process crash.
* :func:`validate_well_formed` -- the well-formedness conditions of paper
  section 3.2 (per-thread call/return nesting discipline) plus the
  instrumentation obligations of section 4.1 (exactly one commit action per
  mutator execution path).
"""

from __future__ import annotations

import hashlib
import io
import os
import pickle
import struct
import zlib
from collections.abc import Sequence
from dataclasses import dataclass
from typing import IO, Iterable, Iterator, List, Optional, Tuple

from .actions import (
    AcquireAction,
    Action,
    BeginCommitBlockAction,
    CallAction,
    CommitAction,
    EndCommitBlockAction,
    JoinAction,
    ReadAction,
    ReleaseAction,
    ReplayAction,
    ReturnAction,
    SpawnAction,
    WriteAction,
)


class Log:
    """Append-only in-memory sequence of :class:`Action` records.

    The record's position is its global sequence number.  Appends happen only
    from kernel callbacks (one real OS thread), so no locking is required;
    the atomicity requirement of section 4.2 -- each logged action performed
    atomically with its log update -- is provided by the kernel.
    """

    __slots__ = ("_records",)

    def __init__(self, records: Optional[Iterable[Action]] = None):
        self._records: List[Action] = list(records) if records is not None else []

    def append(self, action: Action) -> int:
        """Append and return the record's sequence number."""
        self._records.append(action)
        return len(self._records) - 1

    def __len__(self) -> int:
        return len(self._records)

    def __getitem__(self, index):
        return self._records[index]

    def __iter__(self) -> Iterator[Action]:
        return iter(self._records)

    def since(self, cursor: int) -> "LogView":
        """Records appended at or after ``cursor`` (online verifier tail read).

        Returns a :class:`LogView` -- an index-bounded window over the
        underlying storage, not a copy.  The online verifier polls the tail
        on every scheduling slot it gets; copying the tail list each time
        made long-log online checking quadratic in log length.  The view is
        a snapshot: records appended after the call fall outside its bounds.
        """
        return LogView(self._records, cursor, len(self._records))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Log {len(self._records)} records>"


class LogView(Sequence):
    """A cheap, bounded window over a log's record storage (no copying).

    Behaves like a read-only list of the records in ``[start, stop)``:
    iteration, indexing (including negative indices and slices) and equality
    against any sequence all work, but construction is O(1) regardless of
    window size.  ``stop`` is fixed at creation, so the view is a stable
    snapshot even while the underlying log keeps growing; online checkers
    advance their cursor to :attr:`stop` after consuming a view.
    """

    __slots__ = ("_records", "start", "stop")

    def __init__(self, records: List[Action], start: int, stop: int):
        length = len(records)
        self.start = min(max(0, start), length)
        self.stop = min(max(self.start, stop), length)
        self._records = records

    def __len__(self) -> int:
        return self.stop - self.start

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [
                self._records[self.start + i]
                for i in range(*index.indices(len(self)))
            ]
        if index < 0:
            index += len(self)
        if not 0 <= index < len(self):
            raise IndexError("LogView index out of range")
        return self._records[self.start + index]

    def __iter__(self) -> Iterator[Action]:
        records = self._records
        for i in range(self.start, self.stop):
            yield records[i]

    def __eq__(self, other) -> bool:
        if not isinstance(other, (list, tuple, LogView)):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(a == b for a, b in zip(self, other))

    __hash__ = None  # mutable underlying storage

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<LogView [{self.start}:{self.stop}]>"


#: Magic prefix of the crash-safe framed log format (format version 1).
LOG_MAGIC = b"VYRDLOG1"

#: Magic prefix of the tamper-evident chained format (format version 2).
LOG_MAGIC2 = b"VYRDLOG2"

#: First byte of every pickle at protocol >= 2 (the PROTO opcode): the only
#: byte a legacy concatenated-``pickle.dump`` stream can legally open with.
_PICKLE_PROTO = b"\x80"

#: Per-record frame header: little-endian payload length + CRC32 of payload.
_FRAME_HEADER = struct.Struct("<II")

#: Chained frame header: global sequence number, payload length, payload
#: CRC32.  Followed by the 32-byte SHA-256 digest of the previous frame and
#: then the payload; a frame's own digest covers header + prev-digest +
#: payload, so seq, framing and payload are all under the chain.
_CHAIN_HEADER = struct.Struct("<QII")

#: Chained-file prologue after the magic: the shard id seeding the genesis.
_SHARD_PROLOGUE = struct.Struct("<Q")

_DIGEST_SIZE = 32


def genesis_digest(shard_id: int) -> bytes:
    """The per-shard seed of the hash chain (digest "before" record 0).

    Seeding with the shard id means a frame spliced in from *another* shard
    breaks the chain even at position 0.
    """
    return hashlib.sha256(
        LOG_MAGIC2 + b":genesis:" + _SHARD_PROLOGUE.pack(shard_id)
    ).digest()


class ChainDecoder:
    """Incremental frame decoder/verifier for the chained format.

    Feed it byte slices of a chained stream (everything *after* the
    magic + shard-id prologue, in order) and it yields ``(seq, action)``
    pairs for every complete, CRC-valid, chain-valid frame, buffering any
    trailing partial frame until more bytes arrive.  This is the one parser
    for ``VYRDLOG2`` frames: :class:`LogReader` drives it from a file,
    :class:`repro.serve.shard.ShardTail` drives it from ranged store reads
    while a producer is still appending.

    The first bad frame does not raise mid-parse -- frames decoded earlier
    in the same ``feed`` call are still returned (recovery must salvage
    them) and the typed :exc:`LogFormatError` parks on :attr:`error`, after
    which the decoder refuses further input.  ``offset``/``index`` inside
    the error are absolute (``base_offset`` positions the decoder in the
    file).
    """

    __slots__ = ("_prev", "_buffer", "offset", "index", "consumed", "error")

    def __init__(self, shard_id: int = 0, base_offset: int = 0,
                 prev_digest: Optional[bytes] = None):
        self._prev = prev_digest if prev_digest is not None else genesis_digest(shard_id)
        self._buffer = bytearray()
        #: Absolute byte offset of the first unconsumed frame.
        self.offset = base_offset
        #: Index of the next record to decode.
        self.index = 0
        #: Absolute offset up to which the stream decoded cleanly.
        self.consumed = base_offset
        #: The first :exc:`LogFormatError`, once the stream went bad.
        self.error: Optional["LogFormatError"] = None

    @property
    def head_digest(self) -> str:
        """Hex digest of the last decoded frame (chain head so far)."""
        return self._prev.hex()

    @property
    def pending(self) -> int:
        """Bytes buffered that do not yet form a complete frame."""
        return len(self._buffer)

    def _fail(self, cause: str, cause_exc: Optional[BaseException] = None) -> None:
        self.error = LogFormatError(cause, self.offset, self.index)
        if cause_exc is not None:
            self.error.__cause__ = cause_exc

    def feed(self, data: bytes) -> List[Tuple[int, Action, int]]:
        """Decode complete frames in ``buffered + data``.

        Returns ``(seq, action, end_offset)`` triples up to (not including)
        the first bad frame; check :attr:`error` after every call.
        """
        if self.error is not None:
            return []
        self._buffer.extend(data)
        out: List[Tuple[int, Action, int]] = []
        fixed = _CHAIN_HEADER.size + _DIGEST_SIZE
        buffer = self._buffer
        while True:
            if len(buffer) < fixed:
                break
            seq, length, crc = _CHAIN_HEADER.unpack_from(buffer, 0)
            if len(buffer) < fixed + length:
                break
            frame = bytes(buffer[: fixed + length])
            prev = frame[_CHAIN_HEADER.size : fixed]
            payload = frame[fixed:]
            if prev != self._prev:
                self._fail(
                    "chain digest mismatch (spliced, reordered or rewritten "
                    "record)"
                )
                break
            if zlib.crc32(payload) != crc:
                self._fail("CRC mismatch")
                break
            try:
                action = pickle.loads(payload)
            except Exception as exc:
                self._fail(f"undecodable record payload: {exc}", exc)
                break
            self._prev = hashlib.sha256(frame).digest()
            del buffer[: fixed + length]
            self.offset += fixed + length
            self.consumed = self.offset
            self.index += 1
            out.append((seq, action, self.consumed))
        return out

    def discard_pending(self) -> int:
        """Drop any buffered partial frame; return the bytes discarded.

        A tailing reader that has reached the durable end of a growing
        shard must not carry a half-frame across polls: if the producer
        dies there, the supervisor salvages the shard by truncating it to
        the chain-valid prefix -- exactly the decoder's ``consumed``
        boundary -- and the restarted producer appends fresh frames from
        that boundary.  A reader holding stale partial bytes would then
        splice old garbage into the new frames.  Dropping the pending tail
        (and re-reading it next poll if it was real) keeps the reader's
        file offset pinned to a frame boundary at all times.
        """
        dropped = len(self._buffer)
        del self._buffer[:]
        self.offset = self.consumed
        return dropped

    def finish(self) -> None:
        """Declare end-of-stream; raise the parked error or report a torn
        tail (a buffered partial frame)."""
        if self.error is not None:
            raise self.error
        if self._buffer:
            raise LogFormatError(
                f"truncated chained frame ({len(self._buffer)} trailing "
                f"byte(s))", self.offset, self.index,
            )


class LogFormatError(Exception):
    """A saved log stream is truncated or corrupted.

    Raised by :class:`LogReader` / :func:`load_log` instead of the raw
    :exc:`pickle.UnpicklingError` (or a silent short read) the underlying
    decode produces.  Carries enough context to diagnose and to re-read the
    salvageable prefix with :func:`recover_log`:

    Attributes
    ----------
    offset:
        Byte offset of the first bad frame (the position where the record
        *starts*, not where decoding noticed the damage).
    record_index:
        Index of the first unreadable record; records ``[0, record_index)``
        decoded cleanly.
    cause:
        Short description of what was wrong ("truncated frame header",
        "CRC mismatch", ...); the original exception, when there was one,
        is chained as ``__cause__``.
    """

    def __init__(self, cause: str, offset: int, record_index: int):
        self.cause = cause
        self.offset = offset
        self.record_index = record_index
        super().__init__(
            f"corrupt log stream at byte {offset} (record {record_index}): {cause}"
        )


class LogWriter:
    """Stream actions to a binary file, one framed pickle record at a time.

    Can wrap an open binary file object or a path.  Use as a context manager
    or call :meth:`close` explicitly.

    The default format is *crash-safe*: the stream opens with
    :data:`LOG_MAGIC` and every record is a length-prefixed frame carrying a
    CRC32 of its pickled payload, so a reader can tell a clean end-of-log
    from a torn tail and :func:`recover_log` can salvage everything before
    the first bad byte.  ``framed=False`` writes the legacy format -- a bare
    concatenation of pickles, byte-compatible with per-record
    ``pickle.dump`` output.

    One :class:`pickle.Pickler` is kept for the whole stream -- building the
    pickling machinery per record dominated save time on long logs.  The
    memo is cleared between records, so each record is a self-contained
    pickle that any frame boundary can decode with a fresh
    :class:`pickle.Unpickler`.

    ``chained=True`` writes the tamper-evident ``VYRDLOG2`` format: every
    frame carries a global sequence number (``write(action, seq=...)``,
    auto-incremented from ``start_seq`` when omitted) and the SHA-256 digest
    of the previous frame, genesis-seeded from ``shard_id``.  ``sync=True``
    makes :meth:`flush` an *acknowledgment point*: buffered frames are
    flushed and ``fsync``-ed, so records written before a flush survive any
    subsequent process crash.  Writes themselves stay buffered -- batch a
    group of frames, then flush once -- which is how the streaming shard
    writers amortize the fsync cost.
    """

    def __init__(self, target, framed: bool = True, chained: bool = False,
                 shard_id: int = 0, start_seq: int = 0, sync: bool = False,
                 resume_digest: Optional[bytes] = None):
        if hasattr(target, "write"):
            self._file: IO[bytes] = target
            self._owns = False
        else:
            self._file = open(target, "wb")
            self._owns = True
        self._framed = framed or chained
        self._chained = chained
        self._sync = sync
        self.records_written = 0
        if chained:
            self.shard_id = shard_id
            self._next_seq = start_seq
            if resume_digest is not None:
                # Continuing an existing shard after a crash: the file
                # already carries its prologue and a chain-valid prefix
                # whose head is ``resume_digest``; new frames extend that
                # chain so the finished file is byte-identical to one
                # written by an uninterrupted producer.
                self._prev_digest = resume_digest
            else:
                self._prev_digest = genesis_digest(shard_id)
                self._file.write(LOG_MAGIC2 + _SHARD_PROLOGUE.pack(shard_id))
        elif self._framed:
            self._file.write(LOG_MAGIC)
        if self._framed:
            self._buffer = io.BytesIO()
            self._pickler = pickle.Pickler(
                self._buffer, protocol=pickle.HIGHEST_PROTOCOL
            )
        else:
            self._pickler = pickle.Pickler(
                self._file, protocol=pickle.HIGHEST_PROTOCOL
            )

    @property
    def head_digest(self) -> Optional[str]:
        """Hex digest of the last chained frame written (None unchained).

        Record it out-of-band (shard manifest) and hand it to
        :func:`verify_chain` to make clean tail truncation detectable.
        """
        if not self._chained:
            return None
        return self._prev_digest.hex()

    def _payload(self, action: Action) -> bytes:
        buffer = self._buffer
        buffer.seek(0)
        buffer.truncate()
        self._pickler.dump(action)
        self._pickler.clear_memo()
        return buffer.getvalue()

    def write(self, action: Action, seq: Optional[int] = None) -> None:
        if not self._framed:
            self._pickler.dump(action)
            self._pickler.clear_memo()
            self.records_written += 1
            return
        payload = self._payload(action)
        if self._chained:
            if seq is None:
                seq = self._next_seq
            self._next_seq = seq + 1
            frame = (
                _CHAIN_HEADER.pack(seq, len(payload), zlib.crc32(payload))
                + self._prev_digest
                + payload
            )
            self._prev_digest = hashlib.sha256(frame).digest()
            self._file.write(frame)
        else:
            # Header and payload go out in one write: an interrupted append
            # then tears at most the final frame, which recover_log drops
            # cleanly.
            self._file.write(
                _FRAME_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
            )
        self.records_written += 1

    def write_all(self, actions: Iterable[Action]) -> None:
        for action in actions:
            self.write(action)

    def flush(self) -> None:
        """Push buffered frames to the OS -- and, with ``sync=True``, to the
        device.  Once flush returns, every record written so far is
        *acknowledged*: a crash of this process cannot lose it."""
        self._file.flush()
        if self._sync:
            try:
                fd = self._file.fileno()
            except (AttributeError, OSError, io.UnsupportedOperation, ValueError):
                return  # in-memory target (object-store stub): nothing to sync
            os.fsync(fd)

    def close(self) -> None:
        if not self._file.closed:
            self.flush()
        if self._owns:
            self._file.close()

    def __enter__(self) -> "LogWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class LogReader:
    """Iterate actions back out of a file written by :class:`LogWriter`.

    The format is auto-detected from the magic prefix: :data:`LOG_MAGIC2`
    streams are decoded with CRC *and* hash-chain verification (a chain
    break raises :exc:`LogFormatError` exactly like a CRC failure, so
    recovery semantics extend to tampering); :data:`LOG_MAGIC` streams are
    decoded frame-by-frame with CRC validation; anything else is treated as
    the legacy format (a concatenation of self-contained pickles, e.g.
    files written record-at-a-time with plain ``pickle.dump``).

    Truncated or corrupted streams raise :exc:`LogFormatError` with the byte
    offset and index of the first bad record -- never a bare
    :exc:`pickle.UnpicklingError`, and never a silent early stop.  Use
    :func:`recover_log` to read the valid prefix of a damaged file instead.

    A stream-persistent :class:`pickle.Unpickler` cannot be used here: the
    C unpickler's MEMOIZE counter keeps counting across ``load()`` calls and
    ignores ``memo`` reassignment, so GET opcodes in the second frame (whose
    indices restart at zero) would resolve against the first frame's
    entries -- silent payload corruption, or ``Memo value not found``.  One
    unpickler per record is the only correct reader for restarting-memo
    frames, and the allocation is cheap next to the decode itself.
    """

    def __init__(self, target):
        if hasattr(target, "read"):
            self._file: IO[bytes] = target
            self._owns = False
        else:
            self._file = open(target, "rb")
            self._owns = True
        start = self._file.tell()
        head = self._file.read(len(LOG_MAGIC))
        self._framed = head == LOG_MAGIC
        self._chained = head == LOG_MAGIC2
        self.shard_id = 0
        self._decoder: Optional[ChainDecoder] = None
        data_start = start
        if self._chained:
            prologue = self._file.read(_SHARD_PROLOGUE.size)
            if len(prologue) < _SHARD_PROLOGUE.size:
                # an unidentifiable prologue poisons the whole chain
                self._size = self._file.seek(0, io.SEEK_END)
                if self._owns:
                    self._file.close()
                raise LogFormatError(
                    "truncated shard prologue", start + len(LOG_MAGIC), 0
                )
            (self.shard_id,) = _SHARD_PROLOGUE.unpack(prologue)
            data_start = start + len(LOG_MAGIC2) + _SHARD_PROLOGUE.size
        elif self._framed:
            data_start = start + len(LOG_MAGIC)
        else:
            self._file.seek(start)
        self._size = self._file.seek(0, io.SEEK_END)
        self._file.seek(data_start)
        self._data_start = data_start

    @property
    def chained(self) -> bool:
        return self._chained

    @property
    def head_digest(self) -> Optional[str]:
        """Chain head after iteration (None for unchained formats)."""
        if self._decoder is None:
            return None
        return self._decoder.head_digest

    def __iter__(self) -> Iterator[Action]:
        for action, _end in self._records():
            yield action

    def iter_seq(self) -> Iterator[Tuple[int, Action]]:
        """Yield ``(seq, action)`` from a chained stream (seq = index
        otherwise, for format-independent callers)."""
        if self._chained:
            for (seq, action), _end in self._chained_records():
                yield seq, action
        else:
            for index, action in enumerate(self):
                yield index, action

    def _records(self) -> Iterator[tuple]:
        """Yield ``(action, end_offset)`` pairs; raise :exc:`LogFormatError`
        at the first bad frame."""
        if self._chained:
            for (_seq, action), end in self._chained_records():
                yield action, end
        elif self._framed:
            yield from self._framed_records()
        else:
            yield from self._legacy_records()

    def _chained_records(self) -> Iterator[tuple]:
        self._decoder = decoder = ChainDecoder(
            self.shard_id, base_offset=self._data_start
        )
        file = self._file
        while True:
            data = file.read(1 << 20)
            for seq, action, end in decoder.feed(data):
                yield (seq, action), end
            if decoder.error is not None:
                raise decoder.error
            if not data:
                decoder.finish()
                return

    def _framed_records(self) -> Iterator[tuple]:
        file = self._file
        index = 0
        while True:
            offset = file.tell()
            header = file.read(_FRAME_HEADER.size)
            if not header:
                return
            if len(header) < _FRAME_HEADER.size:
                raise LogFormatError("truncated frame header", offset, index)
            length, crc = _FRAME_HEADER.unpack(header)
            payload = file.read(length)
            if len(payload) < length:
                raise LogFormatError(
                    f"truncated frame payload ({len(payload)} of {length} bytes)",
                    offset, index,
                )
            if zlib.crc32(payload) != crc:
                raise LogFormatError("CRC mismatch", offset, index)
            try:
                action = pickle.loads(payload)
            except Exception as exc:
                error = LogFormatError(
                    f"undecodable record payload: {exc}", offset, index
                )
                error.__cause__ = exc
                raise error
            if not isinstance(action, Action):
                raise LogFormatError(
                    "decoded object is not a log action "
                    f"({type(action).__name__})",
                    offset, index,
                )
            yield action, file.tell()
            index += 1

    def _legacy_records(self) -> Iterator[tuple]:
        file = self._file
        index = 0
        start = file.tell()
        head = file.read(1)
        file.seek(start)
        if head and head != _PICKLE_PROTO:
            # Legacy streams are concatenated ``pickle.dump`` records
            # (protocol >= 2), which always open with the PROTO opcode.
            # Anything else here is a file whose real prologue -- e.g. a
            # framed or chained magic -- was damaged into something the
            # auto-detection no longer recognizes.  Without this check a
            # bit-flipped magic can demote the file to legacy mode, where
            # the corrupted bytes may still happen to unpickle (0x56 'V'
            # is the UNICODE opcode) and resynchronize onto an embedded
            # record, hallucinating a salvageable prefix that was never
            # written.  Nothing after an unidentifiable prologue is
            # trusted.
            raise LogFormatError(
                "unrecognized log prologue "
                "(neither a log magic nor a pickle stream)",
                start, 0,
            )
        while True:
            offset = file.tell()
            try:
                action = pickle.Unpickler(file).load()
            except EOFError as exc:
                if offset >= self._size:
                    return  # clean end of stream
                error = LogFormatError("truncated pickle record", offset, index)
                error.__cause__ = exc
                raise error
            except Exception as exc:
                error = LogFormatError(
                    f"undecodable pickle record: {exc}", offset, index
                )
                error.__cause__ = exc
                raise error
            if not isinstance(action, Action):
                # A corrupted prologue (e.g. a bit flip inside a VYRDLOG2
                # magic) can demote a file to legacy mode, where arbitrary
                # bytes may still unpickle -- only genuine actions count.
                raise LogFormatError(
                    "decoded object is not a log action "
                    f"({type(action).__name__})",
                    offset, index,
                )
            yield action, file.tell()
            index += 1

    def read_log(self) -> Log:
        """Materialize the whole file as an in-memory :class:`Log`."""
        return Log(iter(self))

    def close(self) -> None:
        if self._owns:
            self._file.close()

    def __enter__(self) -> "LogReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass
class RecoveredLog:
    """Result of a best-effort :func:`recover_log` salvage.

    ``log`` holds the longest valid record prefix.  When the stream was
    damaged, ``error_offset``/``error_record``/``cause`` describe the first
    bad frame exactly as the :exc:`LogFormatError` from a strict read would;
    a clean stream leaves them ``None``.  For chained (``VYRDLOG2``) files
    the prefix is the longest *chain-valid* one -- everything after a
    splice/reorder/rewrite point is rejected even if its CRCs check out --
    and ``head_digest`` is the chain head over the salvaged records (compare
    against a manifest to detect clean tail truncation).
    """

    log: Log
    valid_bytes: int
    total_bytes: int
    error_offset: Optional[int] = None
    error_record: Optional[int] = None
    cause: Optional[str] = None
    chained: bool = False
    head_digest: Optional[str] = None

    @property
    def complete(self) -> bool:
        return self.error_offset is None

    @property
    def records(self) -> int:
        return len(self.log)

    def to_dict(self) -> dict:
        return {
            "records": self.records,
            "valid_bytes": self.valid_bytes,
            "total_bytes": self.total_bytes,
            "complete": self.complete,
            "error_offset": self.error_offset,
            "error_record": self.error_record,
            "cause": self.cause,
            "chained": self.chained,
            "head_digest": self.head_digest,
        }


def recover_log(path, obs=None) -> RecoveredLog:
    """Salvage the longest valid record prefix of a (possibly damaged) log.

    Never raises on corruption: reads records until the first bad frame,
    then reports where and why decoding stopped.  Works on both the framed
    and the legacy format.  A framed log whose magic header itself is
    damaged salvages zero records (nothing after an unidentifiable header
    can be trusted).

    ``obs`` (a :class:`repro.obs.Recorder`) records a ``log.recover`` span
    and counters for salvaged/lost bytes.
    """
    if obs is not None and obs.enabled:
        with obs.span("log.recover", cat="log"):
            recovered = _recover_log(path)
        obs.count("recovery.records", recovered.records)
        obs.count("recovery.lost_bytes",
                  recovered.total_bytes - recovered.valid_bytes)
        return recovered
    return _recover_log(path)


def _recover_log(path) -> RecoveredLog:
    try:
        reader = LogReader(path)
    except LogFormatError as error:
        # The chained prologue itself is unreadable: nothing after an
        # unidentifiable header can be trusted, salvage zero records.
        size = os.path.getsize(path) if not hasattr(path, "read") else 0
        return RecoveredLog(
            Log([]), 0, size, error_offset=error.offset,
            error_record=error.record_index, cause=error.cause,
            chained=True,
        )
    with reader:
        actions: List[Action] = []
        valid_bytes = reader._file.tell()  # after the magic, if any
        try:
            for action, end in reader._records():
                actions.append(action)
                valid_bytes = end
        except LogFormatError as error:
            return RecoveredLog(
                Log(actions), valid_bytes, reader._size,
                error_offset=error.offset,
                error_record=error.record_index,
                cause=error.cause,
                chained=reader.chained,
                head_digest=reader.head_digest,
            )
        return RecoveredLog(
            Log(actions), valid_bytes, reader._size,
            chained=reader.chained, head_digest=reader.head_digest,
        )


@dataclass
class ChainReport:
    """Result of :func:`verify_chain` on one log file.

    ``tampered`` is True when the chain (or framing) broke mid-file, *or*
    when an ``expected_head`` was supplied and the file's chain head does
    not match it (the clean-truncation case the chain alone cannot see).
    Unchained files report ``chained=False`` and never ``tampered`` -- they
    carry no integrity claim to violate; callers that require one should
    treat ``chained=False`` as a policy failure instead.
    """

    path: str
    chained: bool
    records: int
    valid_bytes: int
    total_bytes: int
    shard_id: Optional[int] = None
    head_digest: Optional[str] = None
    error_offset: Optional[int] = None
    error_record: Optional[int] = None
    cause: Optional[str] = None
    head_match: Optional[bool] = None  # None: no expected head supplied

    @property
    def tampered(self) -> bool:
        return self.error_offset is not None or self.head_match is False

    @property
    def ok(self) -> bool:
        return not self.tampered

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "ok": self.ok,
            "tampered": self.tampered,
            "chained": self.chained,
            "records": self.records,
            "valid_bytes": self.valid_bytes,
            "total_bytes": self.total_bytes,
            "shard_id": self.shard_id,
            "head_digest": self.head_digest,
            "error_offset": self.error_offset,
            "error_record": self.error_record,
            "cause": self.cause,
            "head_match": self.head_match,
        }


def verify_chain(path, expected_head: Optional[str] = None) -> ChainReport:
    """Walk a log file verifying its tamper-evident hash chain.

    Never raises on corruption: decodes until the first bad frame and
    reports its byte offset, record index and cause.  ``expected_head`` (a
    hex digest recorded when the file was written, e.g. in a shard
    manifest) additionally detects clean truncation at a frame boundary,
    which removes tail records without breaking any surviving frame.
    Unchained (``VYRDLOG1`` / legacy) files decode normally but report
    ``chained=False``.
    """
    recovered = _recover_log(path)
    report = ChainReport(
        path=path if isinstance(path, str) else repr(path),
        chained=recovered.chained,
        records=recovered.records,
        valid_bytes=recovered.valid_bytes,
        total_bytes=recovered.total_bytes,
        head_digest=recovered.head_digest,
        error_offset=recovered.error_offset,
        error_record=recovered.error_record,
        cause=recovered.cause,
    )
    if recovered.chained and isinstance(path, str) and recovered.records >= 0:
        try:
            with open(path, "rb") as handle:
                head = handle.read(len(LOG_MAGIC2) + _SHARD_PROLOGUE.size)
            if head[: len(LOG_MAGIC2)] == LOG_MAGIC2 and len(head) == (
                len(LOG_MAGIC2) + _SHARD_PROLOGUE.size
            ):
                (report.shard_id,) = _SHARD_PROLOGUE.unpack(
                    head[len(LOG_MAGIC2):]
                )
        except OSError:  # pragma: no cover - racing deletion
            pass
    if expected_head is not None:
        report.head_match = recovered.head_digest == expected_head
    return report


def log_signature(records: Iterable[Action]) -> str:
    """Canonical SHA-256 signature of a record sequence.

    Hashes each record's self-contained pickle in order, so two logs with
    the same records in the same order have the same signature however they
    were produced -- the byte-identity gate between a ``vyrd serve`` merged
    history and the single-process single-log run of the same schedule.
    """
    digest = hashlib.sha256()
    count = 0
    for action in records:
        payload = pickle.dumps(action, protocol=pickle.HIGHEST_PROTOCOL)
        digest.update(struct.pack("<I", len(payload)))
        digest.update(payload)
        count += 1
    digest.update(struct.pack("<Q", count))
    return digest.hexdigest()


def save_log(log: Log, path, framed: bool = True, chained: bool = False,
             shard_id: int = 0, sync: bool = False) -> None:
    """Write ``log`` to ``path`` (convenience wrapper around LogWriter)."""
    with LogWriter(path, framed=framed, chained=chained, shard_id=shard_id,
                   sync=sync) as writer:
        writer.write_all(log)


def load_log(path) -> Log:
    """Read a log previously written with :func:`save_log`.

    Raises :exc:`LogFormatError` if the stream is truncated or corrupted;
    use :func:`recover_log` to salvage the valid prefix instead.
    """
    with LogReader(path) as reader:
        return reader.read_log()


def validate_well_formed(log: Log) -> List[str]:
    """Check the well-formedness conditions of paper sections 3.2 and 4.1.

    Returns a list of human-readable problems (empty when well-formed):

    * every return matches the thread's currently open call (per-thread
      sequences of public-method actions are well-nested and sequential);
    * commit actions with an ``op_id`` fall between that execution's call and
      return, and no execution commits twice;
    * commit blocks are opened and closed in matched pairs per thread.
    """
    problems: List[str] = []
    open_op = {}  # tid -> (op_id, committed_count)
    open_blocks = {}  # tid -> depth
    finished_ops = set()

    for seq, action in enumerate(log):
        if isinstance(action, CallAction):
            if action.tid in open_op:
                problems.append(
                    f"@{seq}: thread {action.tid} called {action.method} while "
                    f"execution {open_op[action.tid][0]} is still open"
                )
            if action.op_id in finished_ops:
                problems.append(f"@{seq}: op_id {action.op_id} reused")
            open_op[action.tid] = [action.op_id, 0]
        elif isinstance(action, ReturnAction):
            current = open_op.get(action.tid)
            if current is None or current[0] != action.op_id:
                problems.append(
                    f"@{seq}: return of op {action.op_id} on thread {action.tid} "
                    f"does not match open call {current}"
                )
            else:
                del open_op[action.tid]
                finished_ops.add(action.op_id)
        elif isinstance(action, CommitAction):
            if action.op_id is not None:
                current = open_op.get(action.tid)
                if current is None or current[0] != action.op_id:
                    problems.append(
                        f"@{seq}: commit of op {action.op_id} outside its "
                        f"call/return window on thread {action.tid}"
                    )
                else:
                    current[1] += 1
                    if current[1] > 1:
                        problems.append(
                            f"@{seq}: op {action.op_id} committed more than once"
                        )
        elif isinstance(action, BeginCommitBlockAction):
            open_blocks[action.tid] = open_blocks.get(action.tid, 0) + 1
        elif isinstance(action, EndCommitBlockAction):
            depth = open_blocks.get(action.tid, 0)
            if depth == 0:
                problems.append(
                    f"@{seq}: thread {action.tid} ended a commit block it never began"
                )
            else:
                open_blocks[action.tid] = depth - 1
        elif isinstance(action, (WriteAction, ReplayAction, ReadAction,
                                 AcquireAction, ReleaseAction,
                                 SpawnAction, JoinAction)):
            pass
        else:
            problems.append(f"@{seq}: unknown action type {type(action).__name__}")

    for tid, (op_id, _) in open_op.items():
        problems.append(f"end of log: op {op_id} on thread {tid} never returned")
    for tid, depth in open_blocks.items():
        if depth:
            problems.append(f"end of log: thread {tid} left {depth} commit block(s) open")
    return problems
