"""Executable specifications: method-atomic, deterministic transition systems.

Paper section 3.2 requires specifications to be *method-atomic* (a single
method executes at a time, to completion) and *deterministic* (given the
start state, the method, its arguments **and its return value**, the final
state is unique).  Note what determinism does *not* forbid: a method may have
several allowed return values at a given state -- e.g. ``Insert`` may return
``success`` or ``failure`` -- as long as each return value determines the
next state.  This is exactly how the paper's Fig. 1 multiset spec is written:
the spec *consumes* the implementation's observed return value and either
accepts it (updating state accordingly) or rejects it (a refinement
violation).

Writing a spec
--------------
Subclass :class:`Specification`; decorate each method with
:func:`mutator` or :func:`observer`:

* A **mutator** receives the positional arguments of the call plus the
  observed return value as the keyword argument ``result``.  It must either
  update the spec state consistently with ``result`` and return normally, or
  raise :class:`SpecReject` when no spec transition with that return value
  exists.
* An **observer** receives only the call arguments and returns the value (or
  an :class:`AnyOf` set of values) the spec allows at the current state.
  Observers must not modify state.

Specs used for *view refinement* additionally implement :meth:`view`,
returning the canonical abstraction ``viewS`` of the current state
(section 5).

:class:`AtomizedSpec` implements section 4.4: when no separate spec exists,
an *atomized* interpretation of the implementation itself -- every method run
to completion in isolation -- serves as the specification.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Dict, FrozenSet, Iterable, Optional

MUTATOR = "mutator"
OBSERVER = "observer"


def _canon(value: Any) -> Any:
    """Canonical, hashable image of a spec-state value.

    Containers are rewritten structurally (dicts and Counters sorted by key
    repr, sets sorted by element repr, sequences tupled) so two spec
    instances in the same abstract state produce equal images regardless of
    insertion order.  Raises ``TypeError`` for values it cannot canonicalize
    -- the caller treats that as "no fingerprint" rather than guessing."""
    if value is None or isinstance(value, (bool, int, float, str, bytes)):
        return value
    if isinstance(value, dict):
        return ("d",) + tuple(sorted(
            ((repr(key), _canon(item)) for key, item in value.items()),
            key=lambda pair: pair[0],
        ))
    if isinstance(value, (set, frozenset)):
        return ("s",) + tuple(sorted(repr(item) for item in value))
    if isinstance(value, (list, tuple, deque)):
        return ("l",) + tuple(_canon(item) for item in value)
    raise TypeError(f"cannot canonicalize {type(value).__name__} state")


class _ViewAbsentType:
    """Picklable singleton: "this key is absent from the canonical view".

    Distinguishes a missing key from a key mapped to ``None`` in
    :meth:`Specification.view_at`, and survives pickling (checkpoints) as
    the *same* object so ``is``/``==`` checks keep working after restore.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "<view-absent>"

    def __reduce__(self):
        return (_view_absent, ())


def _view_absent() -> "_ViewAbsentType":
    return VIEW_ABSENT


VIEW_ABSENT = _ViewAbsentType()


class SpecError(Exception):
    """A specification object is malformed or misused (tool-usage error)."""


class SpecReject(Exception):
    """The spec has no transition matching ``(method, args, result)``.

    Raised by mutator methods; the checker converts it into an I/O-refinement
    violation carrying :attr:`reason`.
    """

    def __init__(self, reason: str = ""):
        self.reason = reason
        super().__init__(reason or "specification rejected the observed return value")


class AnyOf:
    """A set of allowed observer return values (spec nondeterminism).

    Example: a ``size`` observer during concurrent inserts might return
    ``AnyOf({2, 3})``.
    """

    __slots__ = ("values",)

    def __init__(self, values: Iterable[Any]):
        self.values = frozenset(values)

    def __contains__(self, value: Any) -> bool:
        return value in self.values

    def __eq__(self, other: Any) -> bool:
        return isinstance(other, AnyOf) and self.values == other.values

    def __hash__(self) -> int:
        return hash(("AnyOf", self.values))

    def __repr__(self) -> str:
        return f"AnyOf({set(self.values)!r})"


def allows(allowed: Any, result: Any) -> bool:
    """True if observer result ``result`` matches spec answer ``allowed``."""
    if isinstance(allowed, AnyOf):
        return result in allowed
    return allowed == result


def mutator(fn: Callable) -> Callable:
    """Mark a spec method as a mutator (receives ``result`` keyword)."""
    fn._vyrd_kind = MUTATOR
    return fn


def observer(fn: Callable) -> Callable:
    """Mark a spec method as an observer (must not modify spec state)."""
    fn._vyrd_kind = OBSERVER
    return fn


class Specification:
    """Base class for executable specifications.

    Subclasses define decorated methods and, for view refinement,
    :meth:`view`.  A spec instance is single-use per checked log: the checker
    drives it from its initial state through the witness interleaving.

    Dirty-key protocol (differential view comparison)
    -------------------------------------------------
    A spec may additionally report *which* canonical view keys each mutator
    touched, mirroring ``ContributionView.on_write`` on the implementation
    side, so the checker reconciles only the changed keys per commit instead
    of comparing whole views.  To opt in, set ``tracks_view_delta = True``,
    call :meth:`_touch` from every mutator with the affected keys, and
    override :meth:`view_at` with an O(1) single-key lookup.  Specs that do
    not opt in keep working: ``view_delta()`` returns ``None`` and the
    checker falls back to full comparison.
    """

    #: True when every mutator records its touched canonical keys via
    #: :meth:`_touch`, enabling O(delta) differential view comparison.
    tracks_view_delta = False

    def _touch(self, *keys: Any) -> None:
        """Record canonical view keys the running mutator may have changed."""
        dirty = self.__dict__.get("_dirty_view_keys")
        if dirty is None:
            dirty = self.__dict__["_dirty_view_keys"] = set()
        dirty.update(keys)

    def view_delta(self) -> Optional[set]:
        """Keys whose canonical value may have changed since the last drain.

        Returns ``None`` when the spec does not track deltas (the checker
        then falls back to full view comparison).  Draining is destructive:
        each touched key is reported exactly once.
        """
        if not self.tracks_view_delta:
            return None
        dirty = self.__dict__.get("_dirty_view_keys")
        if not dirty:
            return set()
        self.__dict__["_dirty_view_keys"] = set()
        return dirty

    def view_at(self, key: Any) -> Any:
        """Canonical value at ``key``, or :data:`VIEW_ABSENT`.

        The default derives it from :meth:`view` (O(structure)); specs that
        set ``tracks_view_delta`` should override with an O(1) lookup so the
        per-commit reconcile stays proportional to the delta.
        """
        return self.view().get(key, VIEW_ABSENT)

    def method_kind(self, name: str) -> str:
        """Return ``"mutator"`` or ``"observer"`` for public method ``name``."""
        fn = getattr(self, name, None)
        kind = getattr(fn, "_vyrd_kind", None)
        if kind is None:
            raise SpecError(f"{type(self).__name__} has no spec method {name!r}")
        return kind

    def methods(self) -> Dict[str, str]:
        """All spec methods as a ``name -> kind`` mapping."""
        found = {}
        for name in dir(self):
            if name.startswith("_"):
                continue
            kind = getattr(getattr(self, name), "_vyrd_kind", None)
            if kind is not None:
                found[name] = kind
        return found

    def run_mutator(self, name: str, args, result) -> None:
        """Execute mutator ``name`` with the observed return value.

        Raises :class:`SpecReject` if the spec disallows ``result`` here.
        """
        if self.method_kind(name) != MUTATOR:
            raise SpecError(f"{name!r} is not a mutator of {type(self).__name__}")
        getattr(self, name)(*args, result=result)

    def run_observer(self, name: str, args) -> Any:
        """Evaluate observer ``name``; returns a value or :class:`AnyOf`."""
        if self.method_kind(name) != OBSERVER:
            raise SpecError(f"{name!r} is not an observer of {type(self).__name__}")
        return getattr(self, name)(*args)

    def view(self) -> Any:
        """Canonical abstraction ``viewS`` of the current spec state.

        Only required for view refinement.  Must return a value comparable
        with ``==`` against the implementation view.
        """
        raise SpecError(f"{type(self).__name__} does not define a view")

    def state_fingerprint(self) -> Optional[Any]:
        """Hashable canonical digest of the current spec state.

        Two instances in the same abstract state must produce equal
        fingerprints; distinct states should (but need not) differ -- a
        collision only costs memoization precision, never soundness, because
        the linearizability search uses fingerprints to identify *revisited*
        states, not to decide verdicts.  The default canonicalizes every
        public attribute; bookkeeping attributes (``_dirty_view_keys`` etc.)
        are excluded.  Returns ``None`` when the state does not canonicalize,
        which disables memoization for searches over this spec.
        """
        try:
            return _canon({
                key: value for key, value in self.__dict__.items()
                if not key.startswith("_")
            })
        except TypeError:
            return None

    def candidate_results(self, method: str, args: tuple) -> Optional[Iterable]:
        """Plausible return values for an *incomplete* call of ``method``.

        A recovered log prefix may end with a call whose return record was
        lost.  If the operation is a mutator, whether it took effect -- and
        with which result -- is unknowable from the log, so the
        linearizability checker branches over every candidate result (plus
        the implicit "never took effect" branch).  The checker invokes this
        on the spec clone at the candidate linearization point, so the
        answer may depend on the current state (e.g. a queue's
        ``try_dequeue`` can only have returned the current front).

        Return ``None`` (the default) to let the checker fall back to the
        results observed for the same method elsewhere in the history.
        """
        return None

    def describe(self) -> str:
        """Short human-readable state description for violation reports."""
        return repr(self.__dict__)


class AtomizedSpec(Specification):
    """Use an atomized interpretation of an implementation as the spec.

    Section 4.4: the implementation's own code, forced to run each method
    atomically (one method at a time, to completion, no interleaving), acts
    as the specification.  Mutator methods "take the return value as an
    argument": here, the atomized run produces its own result, which is
    reconciled with the observed one:

    * equal -> accept;
    * observed result in ``no_op_results`` (results that, per the spec's
      contract, may arise only from concurrent resource contention and must
      leave the state unchanged -- e.g. ``InsertPair``'s ``failure``) ->
      accept and roll the atomized state back to the pre-call snapshot;
    * otherwise -> :class:`SpecReject`.

    Requirements on the wrapped implementation object:

    * public methods are generator functions ``m(ctx, *args)`` (the same
      code that runs concurrently);
    * ``snapshot()`` / ``restore(snap)`` capture and reinstate its shared
      state (used for rollback of allowed no-op results);
    * a ``VYRD_METHODS`` mapping ``name -> "mutator" | "observer"``;
    * optionally ``view_atomic()`` returning ``viewS`` for view refinement.
    """

    def __init__(
        self,
        impl: Any,
        methods: Optional[Dict[str, str]] = None,
        no_op_results: FrozenSet[Any] = frozenset(),
        max_steps: int = 1_000_000,
    ):
        self._impl = impl
        self._methods = dict(methods if methods is not None else impl.VYRD_METHODS)
        self._no_op_results = frozenset(no_op_results)
        self._max_steps = max_steps

    def method_kind(self, name: str) -> str:
        try:
            return self._methods[name]
        except KeyError:
            raise SpecError(f"atomized spec has no method {name!r}")

    def methods(self) -> Dict[str, str]:
        return dict(self._methods)

    def _run_atomic(self, name: str, args) -> Any:
        """Run one method of the implementation to completion, atomically."""
        from ..concurrency import Kernel, RoundRobinScheduler

        kernel = Kernel(scheduler=RoundRobinScheduler(), max_steps=self._max_steps)
        thread = kernel.spawn(getattr(self._impl, name), *args, name=f"atomized-{name}")
        kernel.run()
        return thread.result

    def run_mutator(self, name: str, args, result) -> None:
        if self.method_kind(name) != MUTATOR:
            raise SpecError(f"{name!r} is not a mutator of the atomized spec")
        snapshot = self._impl.snapshot()
        atomic_result = self._run_atomic(name, args)
        if atomic_result == result:
            return
        if result in self._no_op_results:
            self._impl.restore(snapshot)
            return
        raise SpecReject(
            f"atomized {name}{tuple(args)!r} returned {atomic_result!r}, "
            f"implementation returned {result!r}"
        )

    def run_observer(self, name: str, args) -> Any:
        if self.method_kind(name) != OBSERVER:
            raise SpecError(f"{name!r} is not an observer of the atomized spec")
        return self._run_atomic(name, args)

    def view(self) -> Any:
        view_fn = getattr(self._impl, "view_atomic", None)
        if view_fn is None:
            raise SpecError(
                f"{type(self._impl).__name__} does not define view_atomic(); "
                "atomized view refinement is unavailable"
            )
        return view_fn()

    def state_fingerprint(self) -> Optional[Any]:
        # The state lives inside an arbitrary implementation object; there is
        # no reliable canonical image, so memoized searches degrade to plain
        # depth-first enumeration.
        return None

    def describe(self) -> str:
        return f"atomized({type(self._impl).__name__})"
