"""VYRD core: logging, specifications, and refinement checking.

The paper's primary contribution.  Sub-modules:

* :mod:`actions`, :mod:`log` -- the action vocabulary and the log.
* :mod:`spec` -- executable specifications (method-atomic, deterministic)
  and the atomized-implementation-as-spec of section 4.4.
* :mod:`interleaving` -- witness-interleaving construction (section 4).
* :mod:`replay`, :mod:`view` -- replayed implementation state, commit-block
  rollback and incremental ``viewI`` computation (sections 5, 6.4).
* :mod:`observer` -- commit-free observer checking (section 4.3).
* :mod:`refinement` -- the I/O and view refinement checkers.
* :mod:`invariants` -- runtime invariant hooks (section 7.2.1).
* :mod:`instrument` -- tracer and data-structure wrapper producing the log.
* :mod:`verifier` -- the :class:`Vyrd` facade and the online verification
  thread (section 4.2).
* :mod:`report` -- violation reports and Fig. 3/6-style trace rendering.
"""

from .actions import (
    AcquireAction,
    Action,
    BeginCommitBlockAction,
    CallAction,
    CommitAction,
    EndCommitBlockAction,
    JoinAction,
    ReadAction,
    ReleaseAction,
    ReplayAction,
    ReturnAction,
    Signature,
    SpawnAction,
    WriteAction,
)
from .exhaustive import (
    ExhaustiveVerification,
    ScheduleViolation,
    check_program_all_schedules,
    replay_schedule,
    verify_all_schedules,
)
from .instrument import (
    InstrumentationError,
    InstrumentedDataStructure,
    VyrdTracer,
    operation,
)
from .interleaving import Execution, WitnessInterleaving, build_witness, respects_program_order
from .invariants import Invariant
from .log import (
    ChainDecoder,
    ChainReport,
    Log,
    LogFormatError,
    LogReader,
    LogView,
    LogWriter,
    RecoveredLog,
    genesis_digest,
    load_log,
    log_signature,
    recover_log,
    save_log,
    validate_well_formed,
    verify_chain,
)
from .checkpoint import Checkpoint, CheckpointError, checkpoint_blob_name
from .observer import ObserverTracker, ObserverWindow
from .refinement import (
    CheckOutcome,
    RefinementChecker,
    ViewComparator,
    Violation,
    ViolationKind,
    check_log,
)
from .replay import ABSENT, EffectiveState, ReplayState
from .report import format_outcome, format_violation, render_trace, render_witness
from .spec import (
    VIEW_ABSENT,
    AnyOf,
    AtomizedSpec,
    SpecError,
    SpecReject,
    Specification,
    allows,
    mutator,
    observer,
)
from .verifier import OnlineVerifier, Vyrd
from .view import (
    ContributionView,
    DependencyView,
    FunctionView,
    ImplView,
    canonical_bag,
    canonical_map,
    prefix_unit,
)

__all__ = [
    "ABSENT",
    "AcquireAction",
    "Action",
    "AnyOf",
    "AtomizedSpec",
    "BeginCommitBlockAction",
    "CallAction",
    "CheckOutcome",
    "Checkpoint",
    "CheckpointError",
    "CommitAction",
    "ContributionView",
    "DependencyView",
    "EffectiveState",
    "EndCommitBlockAction",
    "ExhaustiveVerification",
    "Execution",
    "FunctionView",
    "ImplView",
    "InstrumentationError",
    "InstrumentedDataStructure",
    "Invariant",
    "JoinAction",
    "Log",
    "LogFormatError",
    "LogReader",
    "LogView",
    "LogWriter",
    "RecoveredLog",
    "ObserverTracker",
    "ObserverWindow",
    "OnlineVerifier",
    "ReadAction",
    "RefinementChecker",
    "ReleaseAction",
    "ReplayAction",
    "ReplayState",
    "ReturnAction",
    "ScheduleViolation",
    "Signature",
    "SpawnAction",
    "SpecError",
    "SpecReject",
    "Specification",
    "VIEW_ABSENT",
    "ViewComparator",
    "Violation",
    "ViolationKind",
    "Vyrd",
    "VyrdTracer",
    "WitnessInterleaving",
    "WriteAction",
    "allows",
    "build_witness",
    "canonical_bag",
    "canonical_map",
    "check_log",
    "checkpoint_blob_name",
    "format_outcome",
    "format_violation",
    "load_log",
    "mutator",
    "observer",
    "operation",
    "recover_log",
    "prefix_unit",
    "render_trace",
    "render_witness",
    "check_program_all_schedules",
    "replay_schedule",
    "respects_program_order",
    "save_log",
    "validate_well_formed",
    "verify_all_schedules",
]
