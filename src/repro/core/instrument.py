"""Instrumentation: producing the VYRD log from a running implementation.

This is phase one of the paper's two-phase architecture: "the implementation
is instrumented in order to record information into a log during execution".
Three pieces cooperate:

* :func:`operation` -- a decorator marking an implementation method as a
  public data-structure operation (a generator function ``m(self, ctx,
  *args)`` running on the simulated-concurrency substrate).
* :class:`VyrdTracer` -- the kernel :class:`~repro.concurrency.kernel.Tracer`
  that converts kernel events into log records.  Its ``level`` selects the
  logging granularity that Tables 1-3 of the paper vary:

  - ``"io"``: call, return and commit actions only (what I/O refinement
    needs -- "very little instrumentation and logging");
  - ``"view"``: additionally every shared-variable write, commit-block
    bracket and coarse replay entry (what view refinement needs).

* :class:`InstrumentedDataStructure` -- a wrapper exposing each
  ``@operation`` method; invoking through the wrapper logs the call action,
  runs the underlying generator, and logs the return action.  Commit
  actions are emitted by the implementation itself, atomically with the
  decisive event (``cell.write(v, commit=True)``,
  ``lock.release(commit=True)``, ``ctx.commit()`` ...).

Because all logging happens inside kernel syscall handling (one real OS
thread), each logged action is atomic with its log update -- the ordering
requirement of paper section 4.2.  Unlike the paper's .NET implementation,
instrumentation adds *zero* blocking to application threads.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Optional

from ..concurrency.errors import SimulationError
from ..concurrency.kernel import Tracer
from ..obs import NULL_RECORDER, Recorder
from .actions import (
    AcquireAction,
    BeginCommitBlockAction,
    CallAction,
    CommitAction,
    EndCommitBlockAction,
    JoinAction,
    ReadAction,
    ReleaseAction,
    ReplayAction,
    ReturnAction,
    SpawnAction,
    WriteAction,
)
from .log import Log

IO_LEVEL = "io"
VIEW_LEVEL = "view"


def operation(fn):
    """Mark a generator method of an implementation as a public operation."""
    fn._vyrd_operation = True
    return fn


@dataclass
class OpFrame:
    """Book-keeping for one in-flight method execution on one thread."""

    op_id: int
    method: str
    args: tuple
    commits: int = 0


class InstrumentationError(SimulationError):
    """The implementation misused the instrumentation API (e.g. nested
    public operations on one thread).

    Carries the offending ``method``, ``tid`` and ``op_id`` when known, so
    harness and CLI reports can name the operation instead of surfacing a
    bare message; the context is also appended to ``str(exc)``.  Deriving
    from :class:`~repro.concurrency.errors.SimulationError` lets callers
    that already separate "the run could not complete" from "verification
    failed" (e.g. ``repro run --json``) treat instrumentation misuse the
    same way they treat a :class:`DeadlockError`.
    """

    def __init__(self, message: str, *, method: Optional[str] = None,
                 tid: Optional[int] = None, op_id: Optional[int] = None):
        self.method = method
        self.tid = tid
        self.op_id = op_id
        context = ", ".join(
            part
            for part in (
                f"method={method!r}" if method is not None else None,
                f"tid={tid}" if tid is not None else None,
                f"op={op_id}" if op_id is not None else None,
            )
            if part is not None
        )
        super().__init__(f"{message} [{context}]" if context else message)


class VyrdTracer(Tracer):
    """Kernel tracer that appends VYRD actions to a :class:`Log`.

    One tracer serves one kernel run.  ``level`` selects granularity; with
    ``level="none"`` nothing is logged (baseline for overhead benchmarks).
    """

    LEVELS = ("none", IO_LEVEL, VIEW_LEVEL)

    def __init__(self, log: Optional[Log] = None, level: str = VIEW_LEVEL,
                 log_locks: bool = False, log_reads: bool = False,
                 obs: Optional[Recorder] = None):
        """``log_locks``/``log_reads`` additionally record synchronization
        events (lock grant/release, thread spawn/join) and shared-read
        events.  Refinement checking never reads them; they feed the
        Atomizer-style atomicity baseline in :mod:`repro.atomicity` and the
        dynamic race detectors in :mod:`repro.races`."""
        if level not in self.LEVELS:
            raise ValueError(f"unknown logging level {level!r}")
        self.log = log if log is not None else Log()
        self.level = level
        self.log_locks = log_locks and level != "none"
        self.log_reads = log_reads and level != "none"
        self.obs: Recorder = obs if obs is not None else NULL_RECORDER
        self._op_ids = itertools.count(0)
        self._current: Dict[int, OpFrame] = {}  # tid -> open frame

    def _append(self, action) -> None:
        """Append to the log, counting actions by type when observed."""
        self.log.append(action)
        obs = self.obs
        if obs.enabled:
            obs.count("log.actions")
            obs.count("log.actions." + type(action).__name__)
            obs.instant(
                "tracer.append", cat="log", tid=action.tid,
                action=type(action).__name__,
            )

    # -- operation bracketing (called by InstrumentedDataStructure) -----------

    def begin_op(self, tid: int, method: str, args: tuple) -> OpFrame:
        if tid in self._current:
            open_frame = self._current[tid]
            raise InstrumentationError(
                f"thread {tid} invoked {method!r} while "
                f"{open_frame.method!r} is still executing; public "
                "operations must not nest (call the raw generator instead)",
                method=open_frame.method, tid=tid, op_id=open_frame.op_id,
            )
        frame = OpFrame(next(self._op_ids), method, args)
        self._current[tid] = frame
        if self.level != "none":
            self._append(CallAction(tid, frame.op_id, method, args))
        return frame

    def end_op(self, tid: int, frame: OpFrame, result: Any) -> None:
        current = self._current.pop(tid, None)
        if current is not frame:
            raise InstrumentationError(
                f"mismatched end_op for {frame.method!r} on thread {tid}",
                method=frame.method, tid=tid, op_id=frame.op_id,
            )
        if self.level != "none":
            self._append(ReturnAction(tid, frame.op_id, frame.method, result))

    def current_op_id(self, tid: int) -> Optional[int]:
        frame = self._current.get(tid)
        return frame.op_id if frame is not None else None

    # -- kernel events -----------------------------------------------------------

    def on_write(self, tid: int, cell, old, new) -> None:
        if self.level == VIEW_LEVEL:
            self._append(
                WriteAction(tid, self.current_op_id(tid), cell.name, old, new)
            )

    def on_read(self, tid: int, cell) -> None:
        if self.log_reads:
            self._append(ReadAction(tid, self.current_op_id(tid), cell.name))

    def on_acquire(self, tid: int, lock, mode: str = "x") -> None:
        if self.log_locks:
            self._append(
                AcquireAction(tid, self.current_op_id(tid), lock.name, mode)
            )

    def on_release(self, tid: int, lock, mode: str = "x") -> None:
        if self.log_locks:
            self._append(
                ReleaseAction(tid, self.current_op_id(tid), lock.name, mode)
            )

    def on_spawn(self, parent_tid: int, child_tid: int) -> None:
        if self.log_locks:
            self._append(
                SpawnAction(parent_tid, self.current_op_id(parent_tid), child_tid)
            )

    def on_join(self, tid: int, child_tid: int) -> None:
        if self.log_locks:
            self._append(JoinAction(tid, self.current_op_id(tid), child_tid))

    def on_commit(self, tid: int) -> None:
        if self.level == "none":
            return
        frame = self._current.get(tid)
        if frame is not None:
            frame.commits += 1
        self._append(CommitAction(tid, frame.op_id if frame else None))

    def on_begin_commit_block(self, tid: int) -> None:
        if self.level == VIEW_LEVEL:
            self._append(BeginCommitBlockAction(tid, self.current_op_id(tid)))

    def on_end_commit_block(self, tid: int) -> None:
        if self.level == VIEW_LEVEL:
            self._append(EndCommitBlockAction(tid, self.current_op_id(tid)))

    def on_replay(self, tid: int, tag: str, payload: Any) -> None:
        if self.level == VIEW_LEVEL:
            self._append(ReplayAction(tid, self.current_op_id(tid), tag, payload))


class _BoundOperation:
    """Callable produced by the wrapper: ``yield from vds.insert(ctx, 3)``."""

    __slots__ = ("_wrapper", "_name")

    def __init__(self, wrapper: "InstrumentedDataStructure", name: str):
        self._wrapper = wrapper
        self._name = name

    def __call__(self, ctx, *args):
        return self._wrapper._invoke(ctx, self._name, args)


class InstrumentedDataStructure:
    """Expose an implementation's ``@operation`` methods with call/return
    logging.

    >>> vds = InstrumentedDataStructure(multiset, tracer)
    >>> # inside a simulated thread body:
    >>> result = yield from vds.insert(ctx, 42)

    The set of public operations defaults to every method decorated with
    :func:`operation`; pass ``methods`` to restrict or extend it.
    """

    def __init__(self, impl: Any, tracer: VyrdTracer, methods: Optional[set] = None):
        self._impl = impl
        self._tracer = tracer
        if methods is None:
            methods = {
                name
                for name in dir(type(impl))
                if getattr(getattr(type(impl), name), "_vyrd_operation", False)
            }
        if not methods:
            raise InstrumentationError(
                f"{type(impl).__name__} exposes no @operation methods"
            )
        self._methods = set(methods)

    @property
    def operations(self) -> set:
        return set(self._methods)

    @property
    def impl(self) -> Any:
        return self._impl

    def _invoke(self, ctx, name: str, args: tuple):
        frame = self._tracer.begin_op(ctx.tid, name, args)
        result = yield from getattr(self._impl, name)(ctx, *args)
        self._tracer.end_op(ctx.tid, frame, result)
        return result

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        if name in self._methods:
            return _BoundOperation(self, name)
        raise AttributeError(
            f"{type(self._impl).__name__!r} has no public operation {name!r}"
        )
