"""Observer-method checking without commit annotations (paper section 4.3).

Observer methods do not modify the data structure, and precisely marking
their commit action would require logging almost every shared read.  VYRD
instead logs only their call and return actions, and accepts a return value
``rho`` if it is consistent with the spec state at *any* point in the
execution's window: the state just before the call (after the last preceding
mutator commit) or the state after any mutator commit occurring between the
call and the return.

We implement this with *evaluate-as-you-go* windows and no state snapshots:
when an observer's call action is processed, the spec observer is evaluated
at the current spec state; it is re-evaluated after every subsequent mutator
commit while the observer is pending; at the return action the observed
result must match one of the accumulated answers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List

from .spec import Specification, allows


@dataclass
class ObserverWindow:
    """A pending observer execution and the spec answers seen in its window."""

    op_id: int
    tid: int
    method: str
    args: tuple
    call_seq: int
    answers: List[Any] = field(default_factory=list)

    def record(self, answer: Any) -> None:
        if not self.answers or self.answers[-1] != answer:
            self.answers.append(answer)

    def accepts(self, result: Any) -> bool:
        """True if ``result`` matches any answer seen in the window."""
        return any(allows(answer, result) for answer in self.answers)


class ObserverTracker:
    """Maintains every pending observer window for the checker."""

    def __init__(self, spec: Specification):
        self._spec = spec
        self._pending: dict = {}  # op_id -> ObserverWindow

    def open(self, op_id: int, tid: int, method: str, args: tuple, call_seq: int) -> ObserverWindow:
        """Start a window at the observer's call action and evaluate the spec
        at the current state (the witness state s0 of Fig. 7)."""
        window = ObserverWindow(op_id, tid, method, args, call_seq)
        window.record(self._spec.run_observer(method, args))
        self._pending[op_id] = window
        return window

    def on_commit(self) -> None:
        """A mutator commit just executed on the spec: extend every window."""
        for window in self._pending.values():
            window.record(self._spec.run_observer(window.method, window.args))

    def close(self, op_id: int, result: Any) -> ObserverWindow:
        """End the window at the observer's return action.

        Returns the window; the caller checks :meth:`ObserverWindow.accepts`.
        """
        return self._pending.pop(op_id)

    def pending_count(self) -> int:
        return len(self._pending)

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> dict:
        """Checkpointable form: the pending windows (plain dataclasses)."""
        return {"pending": dict(self._pending)}

    def load_state(self, payload: dict, spec: Specification) -> None:
        """Reinstate pending windows, rebinding to the restored spec."""
        self._spec = spec
        self._pending = dict(payload["pending"])
