"""Replayed implementation state and commit-block rollback.

View refinement needs ``viewI``, a canonical abstraction of the
*implementation* state at each commit action.  Re-reading live program state
from the verifier would race with the running threads (and be impossible
offline), so -- following paper section 5.1 -- the verifier reconstructs the
state by replaying logged shared-variable writes.  :class:`ReplayState` is
that reconstruction: a mapping from shared-variable names to their most
recently logged values.

Commit blocks (section 5.2) complicate the picture.  At the moment thread
``t`` commits, *other* threads may be midway through their own commit blocks;
their partial writes are in the log (and in the replayed state) but must not
be visible to the view computation, because commit blocks are atomic -- the
execution is equivalent to one (the paper's t-tilde) in which only the
committing thread is inside a commit block.  :class:`ReplayState` therefore
keeps, for every currently open commit block, an *undo map* recording the
value each location had when the block first overwrote it.
:meth:`effective` builds a read-only overlay that rolls those writes back.

Coarse-grained log entries (section 6.2) replay through registered routines
that mutate the state dictionary directly; writes they perform inside an
open commit block are captured in the same undo maps via a recording proxy.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, Mapping, Optional, Tuple

class _AbsentType:
    """Picklable singleton distinguishing "never written" from "written None".

    Undo maps holding this sentinel travel through checkpoints; pickling
    must resolve back to the *same* object so ``is ABSENT`` checks keep
    working after a restore.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "<absent>"

    def __reduce__(self):
        return (_absent, ())


def _absent() -> "_AbsentType":
    return ABSENT


ABSENT = _AbsentType()

_EMPTY_OVERLAY: Dict[str, Any] = {}  # shared by the no-open-blocks fast path


class EffectiveState(Mapping):
    """Read-only view of a replay state with an undo overlay applied.

    Locations present in ``overlay`` read their rolled-back values; all other
    locations read the replayed values.  Implements the ``Mapping`` protocol
    plus :meth:`items_with_prefix` for view functions that scan a region of
    the namespace.
    """

    __slots__ = ("_base", "_overlay")

    def __init__(self, base: Dict[str, Any], overlay: Dict[str, Any]):
        self._base = base
        self._overlay = overlay

    def __getitem__(self, loc: str) -> Any:
        if loc in self._overlay:
            value = self._overlay[loc]
            if value is ABSENT:
                raise KeyError(loc)
            return value
        return self._base[loc]

    def get(self, loc: str, default: Any = None) -> Any:
        try:
            return self[loc]
        except KeyError:
            return default

    def __contains__(self, loc: object) -> bool:
        if loc in self._overlay:
            return self._overlay[loc] is not ABSENT
        return loc in self._base

    def __iter__(self) -> Iterator[str]:
        for loc in self._base:
            if self._overlay.get(loc) is not ABSENT:
                yield loc
        for loc in self._overlay:
            if loc not in self._base and self._overlay[loc] is not ABSENT:
                yield loc

    def __len__(self) -> int:
        return sum(1 for _ in self)

    @property
    def overlay_size(self) -> int:
        """Number of locations the t-tilde rollback overlay shadows."""
        return len(self._overlay)

    def items_with_prefix(self, prefix: str) -> Iterator[Tuple[str, Any]]:
        """All ``(loc, value)`` pairs whose name starts with ``prefix``."""
        for loc in self:
            if loc.startswith(prefix):
                yield loc, self[loc]


class _RecordingState(dict):
    """Mutable dict proxy that reports first-writes to an undo collector."""

    def __init__(self, base: Dict[str, Any], on_first_write: Callable[[str, Any], None]):
        super().__init__()
        self._base = base
        self._on_first_write = on_first_write
        self.written: set = set()

    def __getitem__(self, loc):
        return self._base[loc]

    def get(self, loc, default=None):
        return self._base.get(loc, default)

    def __contains__(self, loc):
        return loc in self._base

    def __setitem__(self, loc, value):
        old = self._base.get(loc, ABSENT)
        self._on_first_write(loc, old)
        self._base[loc] = value
        self.written.add(loc)

    def __delitem__(self, loc):
        old = self._base.get(loc, ABSENT)
        self._on_first_write(loc, old)
        self._base.pop(loc, None)
        self.written.add(loc)

    def items_with_prefix(self, prefix: str):
        for loc, value in self._base.items():
            if loc.startswith(prefix):
                yield loc, value


class ReplayState:
    """Implementation state reconstructed from the log.

    ``apply_write`` / ``apply_replay`` advance the state;
    ``begin_block`` / ``end_block`` bracket a thread's commit block;
    ``effective(tid)`` yields the state as seen at ``tid``'s commit action
    with every *other* open commit block rolled back.
    """

    def __init__(self, replay_registry: Optional[Dict[str, Callable]] = None):
        self._state: Dict[str, Any] = {}
        # tid -> {loc: value the loc had when this open block first wrote it}
        self._open_blocks: Dict[int, Dict[str, Any]] = {}
        self._replay_registry = dict(replay_registry or {})

    # -- advancing the state -------------------------------------------------

    def apply_write(self, tid: int, loc: str, old: Any, new: Any) -> None:
        """Replay one fine-grained write action."""
        undo = self._open_blocks.get(tid)
        if undo is not None and loc not in undo:
            undo[loc] = old if loc in self._state else ABSENT
        self._state[loc] = new

    def apply_replay(self, tid: int, tag: str, payload: Any) -> set:
        """Replay one coarse-grained action; returns the set of locations it
        wrote (used to mark incremental views dirty)."""
        try:
            routine = self._replay_registry[tag]
        except KeyError:
            raise KeyError(
                f"no replay routine registered for coarse log entries tagged {tag!r}"
            )
        undo = self._open_blocks.get(tid)

        def record(loc: str, old: Any) -> None:
            if undo is not None and loc not in undo:
                undo[loc] = old

        proxy = _RecordingState(self._state, record)
        routine(proxy, payload)
        return proxy.written

    def register_replay(self, tag: str, routine: Callable) -> None:
        """Register ``routine(state, payload)`` for coarse entries ``tag``."""
        self._replay_registry[tag] = routine

    # -- commit blocks ---------------------------------------------------------

    def begin_block(self, tid: int) -> None:
        if tid in self._open_blocks:
            raise ValueError(f"thread {tid} already has an open commit block")
        self._open_blocks[tid] = {}

    def end_block(self, tid: int) -> None:
        if tid not in self._open_blocks:
            raise ValueError(f"thread {tid} has no open commit block to end")
        del self._open_blocks[tid]

    def open_block_locs(self, excluding_tid: Optional[int] = None) -> set:
        """Locations written by open commit blocks (other than ``excluding_tid``).

        These locations read rolled-back values in :meth:`effective`, so
        incremental views must treat them as dirty at every commit while the
        blocks stay open.
        """
        locs: set = set()
        for tid, undo in self._open_blocks.items():
            if tid != excluding_tid:
                locs.update(undo)
        return locs

    # -- reading the state -------------------------------------------------------

    def effective(self, committing_tid: Optional[int] = None) -> EffectiveState:
        """State at a commit of ``committing_tid``: other open blocks undone.

        With ``committing_tid=None`` (e.g. a final quiescent check) every
        open block is rolled back.
        """
        open_blocks = self._open_blocks
        if not open_blocks or (
            committing_tid is not None
            and len(open_blocks) == 1
            and committing_tid in open_blocks
        ):
            # Fast path (the common case on lightly-contended logs): nothing
            # to roll back, so skip overlay construction entirely.  The
            # shared empty dict is never mutated -- EffectiveState is
            # read-only -- and overlay_size correctly reads 0.
            return EffectiveState(self._state, _EMPTY_OVERLAY)
        overlay: Dict[str, Any] = {}
        for tid, undo in open_blocks.items():
            if tid == committing_tid:
                continue
            overlay.update(undo)
        return EffectiveState(self._state, overlay)

    def raw(self) -> EffectiveState:
        """The replayed state with *no* rollback (all logged writes applied)."""
        return EffectiveState(self._state, {})

    # -- checkpointing -----------------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable form: the base state plus every open undo map
        (the replay registry is code, rebuilt by the restoring process)."""
        return {
            "state": dict(self._state),
            "open_blocks": {tid: dict(undo) for tid, undo in self._open_blocks.items()},
        }

    def load_state(self, payload: Dict[str, Any]) -> None:
        self._state = dict(payload["state"])
        self._open_blocks = {
            tid: dict(undo) for tid, undo in payload["open_blocks"].items()
        }

    def get(self, loc: str, default: Any = None) -> Any:
        return self._state.get(loc, default)

    def __len__(self) -> int:
        return len(self._state)
