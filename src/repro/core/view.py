"""Implementation views: computing ``viewI`` from the replayed state.

View refinement (paper section 5) compares, at every mutator commit action, a
canonical abstraction of the implementation state (``viewI``) against the
same abstraction of the spec state (``viewS``).  The programmer specifies how
``viewI`` is computed from shared-variable names and values; this module
provides the two standard shapes:

* :class:`FunctionView` -- a full recomputation ``fn(state)`` at every
  commit.  Simple, and the baseline for the incremental-vs-full ablation
  benchmark.
* :class:`ContributionView` -- the incremental scheme of paper section 6.4.
  The view value is assembled from independent *units* (an array slot, a
  cache entry, a tree data node).  Each logged write dirties only the unit
  its location belongs to (``unit_of``), and at a commit only dirty units are
  recomputed (``contribute``).  This avoids "re-traversing the entire program
  state at each verification step".

Canonical values are dictionaries so they compare with ``==``:

* ``aggregate="list"`` -- ``{key: tuple(sorted(values))}``; a *map-shaped*
  view (B-link tree contents, cache+store contents).  A key contributed by
  two units shows up as a length-2 tuple, which is how duplicate-data-node
  bugs become visible.
* ``aggregate="count"`` -- ``{key: total}``; a *bag-shaped* view (multiset
  contents).

Helpers :func:`canonical_map` and :func:`canonical_bag` build the matching
``viewS`` values inside spec ``view()`` methods.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, Mapping, Optional, Tuple


def canonical_map(mapping: Mapping) -> Dict[Hashable, tuple]:
    """Spec-side canonical value matching a ``aggregate="list"`` view."""
    return {key: (value,) for key, value in mapping.items()}


def canonical_bag(counts: Mapping[Hashable, int]) -> Dict[Hashable, int]:
    """Spec-side canonical value matching an ``aggregate="count"`` view.

    Zero counts are dropped so that "absent" and "present zero times"
    compare equal.
    """
    return {key: count for key, count in counts.items() if count}


def _sort_key(value: Any):
    return (type(value).__name__, repr(value))


class ImplView:
    """Interface for implementation views.

    ``on_write`` observes every replayed fine-grained write (and every
    location a coarse replay routine touched).  ``refresh`` returns the
    up-to-date canonical value given the current (possibly rolled-back)
    effective state.  ``compute_full`` recomputes from scratch, ignoring all
    caches -- the checker cross-checks it against ``refresh`` at the end of a
    run to guard against incremental drift.

    Views that maintain a materialized value additionally support the
    *differential* protocol used by the checker's ``ViewComparator``: they
    set ``supports_delta = True``, expose the materialized value via
    ``value()``, and populate ``last_touched_keys`` with the canonical keys
    whose aggregate the most recent ``refresh`` recomputed.  They also
    implement ``state_dict``/``load_state`` so checkpoints can suspend and
    resume the caches.
    """

    #: True when ``refresh`` maintains a materialized value and reports the
    #: canonical keys it touched (enables differential view comparison).
    supports_delta = False
    #: canonical keys whose aggregate the last ``refresh`` recomputed
    last_touched_keys: frozenset = frozenset()

    def on_write(self, loc: str) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def refresh(self, state, extra_dirty_locs: Iterable[str] = ()) -> Any:
        raise NotImplementedError

    def compute_full(self, state) -> Any:
        raise NotImplementedError

    def state_dict(self) -> Dict[str, Any]:
        """Checkpointable cache state (stateless views return ``{}``)."""
        return {}

    def load_state(self, payload: Dict[str, Any]) -> None:
        """Reinstate caches captured by :meth:`state_dict`."""


class FunctionView(ImplView):
    """Recompute the whole view with ``fn(state)`` at every commit.

    ``state`` is a :class:`~repro.core.replay.EffectiveState`.  This is the
    non-incremental baseline; prefer :class:`ContributionView` for large
    structures.
    """

    def __init__(self, fn: Callable[[Any], Any]):
        self._fn = fn

    def on_write(self, loc: str) -> None:
        pass

    def refresh(self, state, extra_dirty_locs: Iterable[str] = ()) -> Any:
        return self._fn(state)

    def compute_full(self, state) -> Any:
        return self._fn(state)


class ContributionView(ImplView):
    """Incrementally maintained view assembled from per-unit contributions.

    Parameters
    ----------
    unit_of:
        Maps a shared-variable name to the unit it belongs to, or ``None``
        when the variable is outside ``supp(view)`` (writes to it never
        dirty the view).  This encodes the paper's static dependency
        analysis of the view computation.
    contribute:
        ``contribute(state, unit) -> (key, value) | None``.  ``None`` means
        the unit currently contributes nothing (empty slot, evicted entry,
        freed node).
    aggregate:
        ``"list"`` (map-shaped) or ``"count"`` (bag-shaped); see module doc.
    """

    supports_delta = True

    def __init__(
        self,
        unit_of: Callable[[str], Optional[Hashable]],
        contribute: Callable[[Any, Hashable], Optional[Tuple[Hashable, Any]]],
        aggregate: str = "list",
    ):
        if aggregate not in ("list", "count"):
            raise ValueError(f"unknown aggregate mode {aggregate!r}")
        self._unit_of = unit_of
        self._contribute = contribute
        self._aggregate = aggregate
        self._dirty: set = set()
        # unit -> (key, value) contribution currently folded into the view
        self._contribs: Dict[Hashable, Tuple[Hashable, Any]] = {}
        # key -> {unit: value}
        self._by_key: Dict[Hashable, Dict[Hashable, Any]] = {}
        # materialized canonical value
        self._value: Dict[Hashable, Any] = {}
        #: units recomputed by the most recent refresh (observability reads
        #: this to histogram incremental-view work per commit)
        self.last_recomputed: int = 0
        #: canonical keys whose aggregate the most recent refresh touched
        self.last_touched_keys: set = set()

    # -- dirtiness ------------------------------------------------------------

    def on_write(self, loc: str) -> None:
        unit = self._unit_of(loc)
        if unit is not None:
            self._dirty.add(unit)

    def _mark_locs(self, locs: Iterable[str]) -> set:
        units = set()
        for loc in locs:
            unit = self._unit_of(loc)
            if unit is not None:
                units.add(unit)
        return units

    # -- maintenance -----------------------------------------------------------

    def _remove_contribution(self, unit: Hashable) -> None:
        contribution = self._contribs.pop(unit, None)
        if contribution is None:
            return
        key, _ = contribution
        units = self._by_key.get(key)
        if units is not None:
            units.pop(unit, None)
            if not units:
                del self._by_key[key]
            self._refresh_key(key)

    def _add_contribution(self, unit: Hashable, key: Hashable, value: Any) -> None:
        self._contribs[unit] = (key, value)
        self._by_key.setdefault(key, {})[unit] = value
        self._refresh_key(key)

    def _refresh_key(self, key: Hashable) -> None:
        units = self._by_key.get(key)
        if not units:
            self._value.pop(key, None)
        elif self._aggregate == "list":
            self._value[key] = tuple(sorted(units.values(), key=_sort_key))
        else:
            self._value[key] = sum(units.values())

    def refresh(self, state, extra_dirty_locs: Iterable[str] = ()) -> Dict[Hashable, Any]:
        """Bring the view up to date against ``state`` and return it.

        ``extra_dirty_locs`` carries the locations currently rolled back by
        open commit blocks: their cached contributions were computed against
        different values, so they are recomputed here *and stay dirty* for
        the next refresh (they will read different values again once the
        blocks close).
        """
        extra_units = self._mark_locs(extra_dirty_locs)
        todo = self._dirty | extra_units
        self.last_recomputed = len(todo)
        touched = self.last_touched_keys = set()
        for unit in todo:
            previous = self._contribs.get(unit)
            if previous is not None:
                touched.add(previous[0])
            self._remove_contribution(unit)
            contribution = self._contribute(state, unit)
            if contribution is not None:
                key, value = contribution
                touched.add(key)
                self._add_contribution(unit, key, value)
        # Units shadowed by open blocks must be revisited at the next commit.
        self._dirty = set(extra_units)
        return self._value

    def value(self) -> Dict[Hashable, Any]:
        """The current materialized view (without refreshing)."""
        return self._value

    def state_dict(self) -> Dict[str, Any]:
        return {
            "dirty": set(self._dirty),
            "contribs": dict(self._contribs),
            "by_key": {key: dict(units) for key, units in self._by_key.items()},
            "value": dict(self._value),
        }

    def load_state(self, payload: Dict[str, Any]) -> None:
        self._dirty = set(payload["dirty"])
        self._contribs = dict(payload["contribs"])
        self._by_key = {key: dict(units) for key, units in payload["by_key"].items()}
        self._value = dict(payload["value"])
        self.last_recomputed = 0
        self.last_touched_keys = set()

    def compute_full(self, state) -> Dict[Hashable, Any]:
        """From-scratch recomputation over every unit present in ``state``."""
        fresh: Dict[Hashable, Dict[Hashable, Any]] = {}
        units = set()
        for loc in state:
            unit = self._unit_of(loc)
            if unit is not None:
                units.add(unit)
        for unit in units:
            contribution = self._contribute(state, unit)
            if contribution is not None:
                key, value = contribution
                fresh.setdefault(key, {})[unit] = value
        if self._aggregate == "list":
            return {
                key: tuple(sorted(values.values(), key=_sort_key))
                for key, values in fresh.items()
            }
        return {key: sum(values.values()) for key, values in fresh.items()}


class _ReadRecorder:
    """Read-only state wrapper that records every location accessed."""

    __slots__ = ("_state", "reads")

    def __init__(self, state):
        self._state = state
        self.reads: set = set()

    def __getitem__(self, loc):
        self.reads.add(loc)
        return self._state[loc]

    def get(self, loc, default=None):
        self.reads.add(loc)
        try:
            return self._state[loc]
        except KeyError:
            return default

    def __contains__(self, loc):
        self.reads.add(loc)
        return loc in self._state


class DependencyView(ImplView):
    """Incremental view over a *linked* structure with dynamic read-deps.

    :class:`ContributionView` needs a static ``unit_of`` mapping: every
    location belongs to at most one unit, known up front.  That breaks down
    for pointer structures like the B-link tree, where a data node
    contributes to the view only while some *reachable* leaf references it,
    and reachability itself changes as nodes split.  This class handles that
    shape with two dynamic mechanisms:

    * **Discovery** -- units are anchor locations (tree node records) found
      by following links from fixed ``roots``.  ``expand(reader, unit)``
      returns ``(pairs, links)``: the unit's ``(key, value)`` view
      contributions and the anchor locations it links to.  Link reference
      counts keep the reachable set exact: a unit whose last incoming link
      disappears is evicted along with its contributions.
    * **Read dependencies** -- ``expand`` receives a recording ``reader``;
      every location it touches is remembered, so a later write to *any* of
      those locations (its own record, a referenced data node) dirties
      exactly the units whose cached contribution read it.

    A refresh therefore costs O(units actually affected), while remaining
    faithful to reachability semantics: a data node written before the
    publishing leaf write (no commit block involved) enters the view only
    once a reachable leaf references it.

    Reachability is maintained with reference counts, so the link graph must
    be **acyclic** (true for B-link right-links, which always point to a
    strictly greater node): a cycle detached from the roots would keep
    itself alive.  ``final_full_check`` guards against any such drift.

    ``sort_key=None`` sorts aggregated values natively (matching views that
    previously used plain ``sorted``); pass a key function for mixed-type
    values.
    """

    supports_delta = True

    def __init__(
        self,
        roots: Iterable[str],
        expand: Callable[[Any, str], Tuple[Iterable[Tuple[Hashable, Any]], Iterable[str]]],
        aggregate: str = "list",
        sort_key: Optional[Callable[[Any], Any]] = _sort_key,
    ):
        if aggregate not in ("list", "count"):
            raise ValueError(f"unknown aggregate mode {aggregate!r}")
        self._roots = tuple(roots)
        self._expand = expand
        self._aggregate = aggregate
        self._sort_key = sort_key
        self._known: set = set(self._roots)
        self._dirty: set = set(self._roots)
        # unit -> locations its cached expansion read (and the inverse index)
        self._reads_of: Dict[str, set] = {}
        self._dep_index: Dict[str, set] = {}
        # unit -> tuple of (key, value) pairs currently folded into the view
        self._pairs: Dict[str, tuple] = {}
        # unit -> tuple of link targets; target -> incoming-link refcount
        self._links: Dict[str, tuple] = {}
        self._refs: Dict[str, int] = {}
        # key -> {unit: [values]} and the materialized canonical value
        self._by_key: Dict[Hashable, Dict[str, list]] = {}
        self._value: Dict[Hashable, Any] = {}
        self.last_recomputed: int = 0
        self.last_touched_keys: set = set()

    # -- dirtiness ------------------------------------------------------------

    def on_write(self, loc: str) -> None:
        dependents = self._dep_index.get(loc)
        if dependents:
            self._dirty.update(dependents)

    def _units_reading(self, locs: Iterable[str]) -> set:
        units: set = set()
        for loc in locs:
            dependents = self._dep_index.get(loc)
            if dependents:
                units.update(dependents)
        return units

    # -- maintenance -----------------------------------------------------------

    def _sorted(self, values: list) -> tuple:
        if self._sort_key is None:
            return tuple(sorted(values))
        return tuple(sorted(values, key=self._sort_key))

    def _refresh_key(self, key: Hashable) -> None:
        units = self._by_key.get(key)
        if not units:
            self._value.pop(key, None)
        elif self._aggregate == "list":
            merged: list = []
            for values in units.values():
                merged.extend(values)
            self._value[key] = self._sorted(merged)
        else:
            self._value[key] = sum(sum(values) for values in units.values())

    def _drop_pairs(self, unit: str, touched: set) -> None:
        for key, _ in self._pairs.pop(unit, ()):
            units = self._by_key.get(key)
            if units is not None and unit in units:
                del units[unit]
                if not units:
                    del self._by_key[key]
                touched.add(key)
                self._refresh_key(key)

    def _drop_deps(self, unit: str) -> None:
        for loc in self._reads_of.pop(unit, ()):
            dependents = self._dep_index.get(loc)
            if dependents is not None:
                dependents.discard(unit)
                if not dependents:
                    del self._dep_index[loc]

    def _evict(self, unit: str, touched: set) -> None:
        """A unit lost its last incoming link: remove it and cascade."""
        if unit not in self._known or unit in self._roots:
            return
        self._known.discard(unit)
        self._dirty.discard(unit)
        self._drop_pairs(unit, touched)
        self._drop_deps(unit)
        for target in self._links.pop(unit, ()):
            self._refs[target] = self._refs.get(target, 1) - 1
            if self._refs.get(target, 0) <= 0:
                self._refs.pop(target, None)
                self._evict(target, touched)

    def _recompute(self, state, unit: str, queue: list, touched: set) -> None:
        reader = _ReadRecorder(state)
        pairs, links = self._expand(reader, unit)
        pairs = tuple(pairs)
        links = tuple(links)
        self.last_recomputed += 1
        # dependencies
        old_reads = self._reads_of.get(unit, set())
        for loc in old_reads - reader.reads:
            dependents = self._dep_index.get(loc)
            if dependents is not None:
                dependents.discard(unit)
                if not dependents:
                    del self._dep_index[loc]
        for loc in reader.reads - old_reads:
            self._dep_index.setdefault(loc, set()).add(unit)
        self._reads_of[unit] = reader.reads
        # contributions
        self._drop_pairs(unit, touched)
        if pairs:
            self._pairs[unit] = pairs
            for key, value in pairs:
                self._by_key.setdefault(key, {}).setdefault(unit, []).append(value)
            for key, _ in pairs:
                touched.add(key)
                self._refresh_key(key)
        # links: discover newly referenced units, evict unreferenced ones
        old_links = self._links.get(unit, ())
        if links:
            self._links[unit] = links
        else:
            self._links.pop(unit, None)
        for target in set(links) - set(old_links):
            self._refs[target] = self._refs.get(target, 0) + 1
            if target not in self._known:
                self._known.add(target)
                queue.append(target)
        for target in set(old_links) - set(links):
            self._refs[target] = self._refs.get(target, 1) - 1
            if self._refs.get(target, 0) <= 0:
                self._refs.pop(target, None)
                self._evict(target, touched)

    def refresh(self, state, extra_dirty_locs: Iterable[str] = ()) -> Dict[Hashable, Any]:
        """Recompute affected units (and any newly discovered ones).

        As with :class:`ContributionView`, units whose cached expansion read
        a location currently shadowed by an open commit block stay dirty for
        the next refresh.
        """
        extra_units = self._units_reading(extra_dirty_locs)
        todo = list(self._dirty | extra_units)
        self.last_recomputed = 0
        touched = self.last_touched_keys = set()
        processed: set = set()
        while todo:
            unit = todo.pop()
            if unit in processed or unit not in self._known:
                continue
            processed.add(unit)
            self._recompute(state, unit, todo, touched)
        self._dirty = set(unit for unit in extra_units if unit in self._known)
        return self._value

    def value(self) -> Dict[Hashable, Any]:
        """The current materialized view (without refreshing)."""
        return self._value

    def compute_full(self, state) -> Dict[Hashable, Any]:
        """From-scratch walk of the link closure, ignoring every cache."""
        fresh: Dict[Hashable, list] = {}
        seen: set = set()
        frontier = list(self._roots)
        while frontier:
            unit = frontier.pop()
            if unit in seen:
                continue
            seen.add(unit)
            pairs, links = self._expand(_ReadRecorder(state), unit)
            for key, value in pairs:
                fresh.setdefault(key, []).append(value)
            frontier.extend(links)
        if self._aggregate == "list":
            return {key: self._sorted(values) for key, values in fresh.items()}
        return {key: sum(values) for key, values in fresh.items()}

    def state_dict(self) -> Dict[str, Any]:
        return {
            "known": set(self._known),
            "dirty": set(self._dirty),
            "reads_of": {unit: set(reads) for unit, reads in self._reads_of.items()},
            "pairs": dict(self._pairs),
            "links": dict(self._links),
            "refs": dict(self._refs),
            "by_key": {
                key: {unit: list(values) for unit, values in units.items()}
                for key, units in self._by_key.items()
            },
            "value": dict(self._value),
        }

    def load_state(self, payload: Dict[str, Any]) -> None:
        self._known = set(payload["known"])
        self._dirty = set(payload["dirty"])
        self._reads_of = {unit: set(reads) for unit, reads in payload["reads_of"].items()}
        self._dep_index = {}
        for unit, reads in self._reads_of.items():
            for loc in reads:
                self._dep_index.setdefault(loc, set()).add(unit)
        self._pairs = dict(payload["pairs"])
        self._links = dict(payload["links"])
        self._refs = dict(payload["refs"])
        self._by_key = {
            key: {unit: list(values) for unit, values in units.items()}
            for key, units in payload["by_key"].items()
        }
        self._value = dict(payload["value"])
        self.last_recomputed = 0
        self.last_touched_keys = set()


def prefix_unit(prefix: str, stop: str = ".") -> Callable[[str], Optional[str]]:
    """Build a ``unit_of`` function for names like ``prefix[...]...``.

    Locations starting with ``prefix`` map to their name truncated at the
    first ``stop`` character *after* the prefix (so ``A[3].elt`` and
    ``A[3].valid`` share the unit ``A[3]``); other locations map to ``None``.
    """

    def unit_of(loc: str) -> Optional[str]:
        if not loc.startswith(prefix):
            return None
        index = loc.find(stop, len(prefix))
        return loc if index < 0 else loc[:index]

    return unit_of
