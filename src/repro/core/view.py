"""Implementation views: computing ``viewI`` from the replayed state.

View refinement (paper section 5) compares, at every mutator commit action, a
canonical abstraction of the implementation state (``viewI``) against the
same abstraction of the spec state (``viewS``).  The programmer specifies how
``viewI`` is computed from shared-variable names and values; this module
provides the two standard shapes:

* :class:`FunctionView` -- a full recomputation ``fn(state)`` at every
  commit.  Simple, and the baseline for the incremental-vs-full ablation
  benchmark.
* :class:`ContributionView` -- the incremental scheme of paper section 6.4.
  The view value is assembled from independent *units* (an array slot, a
  cache entry, a tree data node).  Each logged write dirties only the unit
  its location belongs to (``unit_of``), and at a commit only dirty units are
  recomputed (``contribute``).  This avoids "re-traversing the entire program
  state at each verification step".

Canonical values are dictionaries so they compare with ``==``:

* ``aggregate="list"`` -- ``{key: tuple(sorted(values))}``; a *map-shaped*
  view (B-link tree contents, cache+store contents).  A key contributed by
  two units shows up as a length-2 tuple, which is how duplicate-data-node
  bugs become visible.
* ``aggregate="count"`` -- ``{key: total}``; a *bag-shaped* view (multiset
  contents).

Helpers :func:`canonical_map` and :func:`canonical_bag` build the matching
``viewS`` values inside spec ``view()`` methods.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Iterable, Mapping, Optional, Tuple


def canonical_map(mapping: Mapping) -> Dict[Hashable, tuple]:
    """Spec-side canonical value matching a ``aggregate="list"`` view."""
    return {key: (value,) for key, value in mapping.items()}


def canonical_bag(counts: Mapping[Hashable, int]) -> Dict[Hashable, int]:
    """Spec-side canonical value matching an ``aggregate="count"`` view.

    Zero counts are dropped so that "absent" and "present zero times"
    compare equal.
    """
    return {key: count for key, count in counts.items() if count}


def _sort_key(value: Any):
    return (type(value).__name__, repr(value))


class ImplView:
    """Interface for implementation views.

    ``on_write`` observes every replayed fine-grained write (and every
    location a coarse replay routine touched).  ``refresh`` returns the
    up-to-date canonical value given the current (possibly rolled-back)
    effective state.  ``compute_full`` recomputes from scratch, ignoring all
    caches -- the checker cross-checks it against ``refresh`` at the end of a
    run to guard against incremental drift.
    """

    def on_write(self, loc: str) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def refresh(self, state, extra_dirty_locs: Iterable[str] = ()) -> Any:
        raise NotImplementedError

    def compute_full(self, state) -> Any:
        raise NotImplementedError


class FunctionView(ImplView):
    """Recompute the whole view with ``fn(state)`` at every commit.

    ``state`` is a :class:`~repro.core.replay.EffectiveState`.  This is the
    non-incremental baseline; prefer :class:`ContributionView` for large
    structures.
    """

    def __init__(self, fn: Callable[[Any], Any]):
        self._fn = fn

    def on_write(self, loc: str) -> None:
        pass

    def refresh(self, state, extra_dirty_locs: Iterable[str] = ()) -> Any:
        return self._fn(state)

    def compute_full(self, state) -> Any:
        return self._fn(state)


class ContributionView(ImplView):
    """Incrementally maintained view assembled from per-unit contributions.

    Parameters
    ----------
    unit_of:
        Maps a shared-variable name to the unit it belongs to, or ``None``
        when the variable is outside ``supp(view)`` (writes to it never
        dirty the view).  This encodes the paper's static dependency
        analysis of the view computation.
    contribute:
        ``contribute(state, unit) -> (key, value) | None``.  ``None`` means
        the unit currently contributes nothing (empty slot, evicted entry,
        freed node).
    aggregate:
        ``"list"`` (map-shaped) or ``"count"`` (bag-shaped); see module doc.
    """

    def __init__(
        self,
        unit_of: Callable[[str], Optional[Hashable]],
        contribute: Callable[[Any, Hashable], Optional[Tuple[Hashable, Any]]],
        aggregate: str = "list",
    ):
        if aggregate not in ("list", "count"):
            raise ValueError(f"unknown aggregate mode {aggregate!r}")
        self._unit_of = unit_of
        self._contribute = contribute
        self._aggregate = aggregate
        self._dirty: set = set()
        # unit -> (key, value) contribution currently folded into the view
        self._contribs: Dict[Hashable, Tuple[Hashable, Any]] = {}
        # key -> {unit: value}
        self._by_key: Dict[Hashable, Dict[Hashable, Any]] = {}
        # materialized canonical value
        self._value: Dict[Hashable, Any] = {}
        #: units recomputed by the most recent refresh (observability reads
        #: this to histogram incremental-view work per commit)
        self.last_recomputed: int = 0

    # -- dirtiness ------------------------------------------------------------

    def on_write(self, loc: str) -> None:
        unit = self._unit_of(loc)
        if unit is not None:
            self._dirty.add(unit)

    def _mark_locs(self, locs: Iterable[str]) -> set:
        units = set()
        for loc in locs:
            unit = self._unit_of(loc)
            if unit is not None:
                units.add(unit)
        return units

    # -- maintenance -----------------------------------------------------------

    def _remove_contribution(self, unit: Hashable) -> None:
        contribution = self._contribs.pop(unit, None)
        if contribution is None:
            return
        key, _ = contribution
        units = self._by_key.get(key)
        if units is not None:
            units.pop(unit, None)
            if not units:
                del self._by_key[key]
            self._refresh_key(key)

    def _add_contribution(self, unit: Hashable, key: Hashable, value: Any) -> None:
        self._contribs[unit] = (key, value)
        self._by_key.setdefault(key, {})[unit] = value
        self._refresh_key(key)

    def _refresh_key(self, key: Hashable) -> None:
        units = self._by_key.get(key)
        if not units:
            self._value.pop(key, None)
        elif self._aggregate == "list":
            self._value[key] = tuple(sorted(units.values(), key=_sort_key))
        else:
            self._value[key] = sum(units.values())

    def refresh(self, state, extra_dirty_locs: Iterable[str] = ()) -> Dict[Hashable, Any]:
        """Bring the view up to date against ``state`` and return it.

        ``extra_dirty_locs`` carries the locations currently rolled back by
        open commit blocks: their cached contributions were computed against
        different values, so they are recomputed here *and stay dirty* for
        the next refresh (they will read different values again once the
        blocks close).
        """
        extra_units = self._mark_locs(extra_dirty_locs)
        todo = self._dirty | extra_units
        self.last_recomputed = len(todo)
        for unit in todo:
            self._remove_contribution(unit)
            contribution = self._contribute(state, unit)
            if contribution is not None:
                key, value = contribution
                self._add_contribution(unit, key, value)
        # Units shadowed by open blocks must be revisited at the next commit.
        self._dirty = set(extra_units)
        return self._value

    def value(self) -> Dict[Hashable, Any]:
        """The current materialized view (without refreshing)."""
        return self._value

    def compute_full(self, state) -> Dict[Hashable, Any]:
        """From-scratch recomputation over every unit present in ``state``."""
        fresh: Dict[Hashable, Dict[Hashable, Any]] = {}
        units = set()
        for loc in state:
            unit = self._unit_of(loc)
            if unit is not None:
                units.add(unit)
        for unit in units:
            contribution = self._contribute(state, unit)
            if contribution is not None:
                key, value = contribution
                fresh.setdefault(key, {})[unit] = value
        if self._aggregate == "list":
            return {
                key: tuple(sorted(values.values(), key=_sort_key))
                for key, values in fresh.items()
            }
        return {key: sum(values.values()) for key, values in fresh.items()}


def prefix_unit(prefix: str, stop: str = ".") -> Callable[[str], Optional[str]]:
    """Build a ``unit_of`` function for names like ``prefix[...]...``.

    Locations starting with ``prefix`` map to their name truncated at the
    first ``stop`` character *after* the prefix (so ``A[3].elt`` and
    ``A[3].valid`` share the unit ``A[3]``); other locations map to ``None``.
    """

    def unit_of(loc: str) -> Optional[str]:
        if not loc.startswith(prefix):
            return None
        index = loc.find(stop, len(prefix))
        return loc if index < 0 else loc[:index]

    return unit_of
