"""The VYRD facade: wiring instrumentation, logging and checking together.

Typical use::

    from repro import Vyrd, Kernel

    vyrd = Vyrd(
        spec_factory=lambda: MultisetSpec(),
        mode="view",
        impl_view_factory=lambda: multiset_view("A"),
    )
    kernel = Kernel(seed=11, tracer=vyrd.tracer)
    ds = VectorMultiset(size=8)
    vds = vyrd.wrap(ds)
    ... spawn threads that `yield from vds.insert(ctx, x)` ...
    kernel.run()
    outcome = vyrd.check_offline()

Two checking deployments, mirroring paper section 4.2 / Table 3:

* **offline** -- run the program first, check the completed log afterwards
  (:meth:`Vyrd.check_offline`); the "VYRD alone" column of Table 3.
* **online** -- spawn a daemon *verification thread* into the same kernel
  (:meth:`Vyrd.start_online`); it consumes the log tail while application
  threads run, interleaved by the scheduler exactly like the paper's separate
  verifier thread; the "Prog + logging and VYRD" column of Table 3.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from ..concurrency.kernel import Kernel, SimThread
from ..obs import NULL_RECORDER, Recorder
from .instrument import (
    IO_LEVEL,
    VIEW_LEVEL,
    InstrumentedDataStructure,
    VyrdTracer,
)
from .invariants import Invariant
from .log import Log
from .refinement import IO_MODE, VIEW_MODE, CheckOutcome, RefinementChecker
from .spec import Specification
from .view import ImplView


class Vyrd:
    """One verification session: a log, a tracer and checker factories.

    Parameters
    ----------
    spec_factory:
        Builds a fresh :class:`Specification` in its initial state.  A
        factory (not an instance) because every checker run consumes one.
    mode:
        ``"io"`` or ``"view"`` refinement.
    impl_view_factory:
        Builds a fresh :class:`ImplView`; required in view mode.
    invariants:
        Runtime invariants evaluated at every commit.
    replay_registry:
        Routines for coarse-grained log entries, ``tag -> fn(state, payload)``.
    log_level:
        Logging granularity override; defaults to what ``mode`` needs
        (``"io"`` logs calls/returns/commits only, ``"view"`` adds writes).
    races:
        Enable dynamic race detection alongside refinement: ``"hb"``
        (vector-clock happens-before), ``"lockset"`` (full Eraser), or
        ``"both"``/``True``.  Implies ``log_locks`` and ``log_reads`` so the
        log carries the synchronization and read events the detectors need.
    atomic_locs:
        Location-name prefixes that are atomic by construction (volatile /
        internally synchronized storage); the race detectors treat their
        accesses as synchronization, not as candidate races.
    linearizability:
        Enable annotation-free linearizability checking for this session
        (:mod:`repro.linz`).  ``True`` checks against ``spec_factory``;
        a callable supplies a different spec factory for the
        linearization search (e.g. a strict variant of a permissive
        refinement spec).  Read the verdict with
        :meth:`check_linearizability`.
    obs:
        Observability recorder (:mod:`repro.obs`); flows into the tracer and
        every checker this session creates.  Pass the same recorder to the
        :class:`Kernel` so spans are keyed to its step clock.
    log:
        The session's action log; defaults to a fresh in-memory
        :class:`Log`.  Subclasses (e.g. the streaming service's shard tee)
        may be injected to mirror every append elsewhere -- the kernel's
        logging clock still serializes appends, so the override needs no
        locking of its own.
    """

    def __init__(
        self,
        spec_factory: Callable[[], Specification],
        mode: str = IO_MODE,
        impl_view_factory: Optional[Callable[[], ImplView]] = None,
        invariants: Iterable[Invariant] = (),
        replay_registry: Optional[dict] = None,
        log_level: Optional[str] = None,
        log_locks: bool = False,
        log_reads: bool = False,
        races=None,
        atomic_locs: Iterable[str] = (),
        linearizability=False,
        obs: Optional[Recorder] = None,
        log: Optional[Log] = None,
    ):
        if mode == VIEW_MODE and impl_view_factory is None:
            raise ValueError("view mode requires impl_view_factory")
        self.spec_factory = spec_factory
        self.mode = mode
        self.impl_view_factory = impl_view_factory
        self.invariants = tuple(invariants)
        self.replay_registry = dict(replay_registry or {})
        if races:
            from ..races import normalize_detectors

            self.races = normalize_detectors(races)
            log_locks = log_reads = True
        else:
            self.races = None
        self.atomic_locs = tuple(atomic_locs)
        if callable(linearizability):
            self.linearizability = True
            self.linz_spec_factory = linearizability
        else:
            self.linearizability = bool(linearizability)
            self.linz_spec_factory = spec_factory
        needs_state = mode == VIEW_MODE or bool(self.invariants)
        level = log_level if log_level is not None else (
            VIEW_LEVEL if needs_state else IO_LEVEL
        )
        self.obs: Recorder = obs if obs is not None else NULL_RECORDER
        self.log = log if log is not None else Log()
        self.tracer = VyrdTracer(
            self.log, level=level, log_locks=log_locks, log_reads=log_reads,
            obs=self.obs,
        )

    # -- instrumentation -------------------------------------------------------

    def wrap(self, impl, methods: Optional[set] = None) -> InstrumentedDataStructure:
        """Wrap an implementation so its public operations are logged."""
        return InstrumentedDataStructure(impl, self.tracer, methods)

    # -- checking ----------------------------------------------------------------

    def new_checker(self, stop_at_first: bool = True) -> RefinementChecker:
        """A fresh incremental checker bound to this session's configuration."""
        return RefinementChecker(
            self.spec_factory(),
            mode=self.mode,
            impl_view=self.impl_view_factory() if self.impl_view_factory else None,
            invariants=self.invariants,
            replay_registry=self.replay_registry,
            stop_at_first=stop_at_first,
            obs=self.obs,
        )

    def check_offline(self, stop_at_first: bool = True) -> CheckOutcome:
        """Check the (completed) log from scratch."""
        checker = self.new_checker(stop_at_first=stop_at_first)
        checker.feed(self.log)
        return checker.finish()

    def new_race_checker(self, stop_at_first: bool = False):
        """A fresh incremental race checker for this session's detectors.

        Requires ``races=...`` at construction (the tracer must have
        recorded synchronization and read events)."""
        if self.races is None:
            raise ValueError(
                "race detection not enabled; construct Vyrd(races='both' "
                "/ 'hb' / 'lockset')"
            )
        from ..races import RaceChecker

        return RaceChecker(detectors=self.races, stop_at_first=stop_at_first,
                           atomic_locs=self.atomic_locs)

    def check_races(self, stop_at_first: bool = False):
        """Run the configured race detectors over the (completed) log."""
        checker = self.new_race_checker(stop_at_first=stop_at_first)
        checker.feed(self.log)
        return checker.finish()

    def check_linearizability(
        self,
        spec_factory: Optional[Callable[[], Specification]] = None,
        *,
        memo: bool = True,
        max_nodes: int = 2_000_000,
    ):
        """Search the (completed) log for a valid linearization.

        Annotation-free: consumes only the call/return history, so it works
        at every log level and needs no commit instrumentation.  Uses the
        session's linearizability spec factory (``linearizability=`` at
        construction, defaulting to ``spec_factory``) unless overridden.
        Returns a :class:`repro.linz.LinzOutcome`.
        """
        from ..linz import LinzChecker

        factory = spec_factory if spec_factory is not None else self.linz_spec_factory
        checker = LinzChecker(
            factory, memo=memo, max_nodes=max_nodes, obs=self.obs
        )
        return checker.check(self.log)

    def check_offline_with_mode(
        self, mode: str, stop_at_first: bool = True, view_at: str = "commit"
    ) -> CheckOutcome:
        """Check the same log under a different refinement mode.

        This is how the paper compares I/O and view refinement "on the same
        trace" (Table 1): one view-level log, two checkers.  Pure I/O mode
        uses neither the replayed state nor the invariants.
        ``view_at="quiescent"`` gives the commit-atomicity baseline of
        section 8 (state comparison only at quiescent points)."""
        checker = RefinementChecker(
            self.spec_factory(),
            mode=mode,
            impl_view=(
                self.impl_view_factory()
                if mode == VIEW_MODE and self.impl_view_factory is not None
                else None
            ),
            invariants=self.invariants if mode == VIEW_MODE else (),
            replay_registry=self.replay_registry,
            stop_at_first=stop_at_first,
            view_at=view_at,
            obs=self.obs,
        )
        checker.feed(self.log)
        return checker.finish()

    def start_online(self, kernel: Kernel, stop_at_first: bool = True) -> "OnlineVerifier":
        """Spawn the verification thread into ``kernel`` (daemon).

        Call :meth:`OnlineVerifier.finalize` after ``kernel.run()`` to
        process the remaining log tail and obtain the outcome.
        """
        verifier = OnlineVerifier(self, stop_at_first=stop_at_first)
        verifier.thread = kernel.spawn(verifier._body, name="vyrd-verifier", daemon=True)
        return verifier


class OnlineVerifier:
    """The separate verification thread of paper section 4.2.

    It runs as a daemon simulated thread: every time the scheduler picks it,
    it atomically consumes all new log records through an incremental
    :class:`RefinementChecker`.  Violations are therefore detected *during*
    the run, as close to their commit actions as scheduling allows.

    When the session was built with ``races=...``, the same tail feeds an
    incremental :class:`~repro.races.RaceChecker`, so race detection runs
    alongside refinement; read the result with :meth:`finalize_races`.
    """

    def __init__(self, session: Vyrd, stop_at_first: bool = True):
        self.session = session
        self.checker = session.new_checker(stop_at_first=stop_at_first)
        self.race_checker = (
            session.new_race_checker() if session.races is not None else None
        )
        self.cursor = 0
        self.thread: Optional[SimThread] = None
        self._finalized: Optional[CheckOutcome] = None
        self._race_outcome = None

    def _consume(self) -> None:
        log = self.session.log
        obs = self.session.obs
        if obs.enabled:
            obs.count("verifier.polls")
        if self.cursor < len(log):
            # `since` returns a copy-free bounded view; advance the cursor to
            # the view's end, not len(log), so records appended while the
            # checkers run are picked up by the next poll.
            fresh = log.since(self.cursor)
            self.cursor = fresh.stop
            if obs.enabled:
                with obs.span(
                    "verifier.consume", cat="verifier", actions=len(fresh)
                ):
                    self._feed_checkers(fresh)
            else:
                self._feed_checkers(fresh)

    def _feed_checkers(self, fresh) -> None:
        if not self.checker.stopped:
            self.checker.feed(fresh)
        if self.race_checker is not None and not self.race_checker.stopped:
            self.race_checker.feed(fresh)

    def _done(self) -> bool:
        if not self.checker.stopped:
            return False
        return self.race_checker is None or self.race_checker.stopped

    def _body(self, ctx):
        # Park (finish the daemon generator) once every checker has stopped:
        # a stopped checker ignores all further input, so each extra
        # `yield ctx.checkpoint()` would only burn a scheduler slot and
        # perturb application-thread interleavings for the rest of the run.
        while not self._done():
            yield ctx.checkpoint()
            if not self._done():
                self._consume()

    @property
    def detected(self) -> bool:
        """True once the online checker has found a violation."""
        return bool(self.checker.outcome.violations)

    @property
    def races_detected(self) -> bool:
        """True once the online race checker has reported a race."""
        return self.race_checker is not None and self.race_checker.detected

    def finalize(self) -> CheckOutcome:
        """Consume whatever the run left in the log and finish the check."""
        if self._finalized is None:
            if not self._done():
                self._consume()
            self._finalized = self.checker.finish()
        return self._finalized

    def finalize_races(self):
        """Finish the online race check (requires ``Vyrd(races=...)``)."""
        if self.race_checker is None:
            raise ValueError("race detection not enabled for this session")
        if self._race_outcome is None:
            self.finalize()
            self._race_outcome = self.race_checker.finish()
        return self._race_outcome
