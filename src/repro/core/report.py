"""Human-readable reports: violation summaries and ASCII trace diagrams.

:func:`render_trace` draws a log the way the paper's Figs. 3 and 6 do: one
column (lane) per thread, time flowing downward, one row per visible action.
:func:`render_witness` prints the serialized witness interleaving next to the
raw trace, making it obvious how VYRD ordered overlapping executions by their
commit actions.  These renderings back the Fig. 3 / Fig. 6 reproduction
benchmarks.
"""

from __future__ import annotations

from typing import List, Optional

from .actions import (
    AcquireAction,
    Action,
    BeginCommitBlockAction,
    CallAction,
    CommitAction,
    EndCommitBlockAction,
    JoinAction,
    ReadAction,
    ReleaseAction,
    ReplayAction,
    ReturnAction,
    SpawnAction,
    WriteAction,
)
from .interleaving import build_witness
from .log import Log
from .refinement import CheckOutcome, Violation


def _describe(action: Action) -> Optional[str]:
    if isinstance(action, CallAction):
        args = ", ".join(repr(a) for a in action.args)
        return f"call {action.method}({args})"
    if isinstance(action, ReturnAction):
        return f"ret  {action.method} = {action.result!r}"
    if isinstance(action, CommitAction):
        tag = "" if action.op_id is not None else " (internal)"
        return f"COMMIT{tag}"
    if isinstance(action, WriteAction):
        return f"w {action.loc} := {action.new!r}"
    if isinstance(action, BeginCommitBlockAction):
        return "[ begin commit block"
    if isinstance(action, EndCommitBlockAction):
        return "] end commit block"
    if isinstance(action, ReplayAction):
        return f"replay {action.tag}"
    if isinstance(action, ReadAction):
        return f"r {action.loc}"
    if isinstance(action, AcquireAction):
        tag = "" if action.mode == "x" else f":{action.mode}"
        return f"acq {action.lock}{tag}"
    if isinstance(action, ReleaseAction):
        tag = "" if action.mode == "x" else f":{action.mode}"
        return f"rel {action.lock}{tag}"
    if isinstance(action, SpawnAction):
        return f"spawn t{action.child_tid}"
    if isinstance(action, JoinAction):
        return f"join t{action.child_tid}"
    return None


def render_trace(
    log: Log,
    include_writes: bool = False,
    max_rows: Optional[int] = None,
    lane_width: int = 26,
) -> str:
    """Render the log as per-thread lanes (Fig. 3 / Fig. 6 style).

    ``include_writes=False`` shows only calls, returns, commits and commit
    blocks -- the paper's figures omit most fine-grained actions "to keep the
    figure simple".
    """
    tids: List[int] = []
    for action in log:
        tid = getattr(action, "tid", None)
        if tid is not None and tid not in tids:
            tids.append(tid)
    columns = {tid: index for index, tid in enumerate(tids)}
    header = "seq   | " + " | ".join(f"thread {tid}".ljust(lane_width) for tid in tids)
    ruler = "-" * len(header)
    lines = [header, ruler]
    rows = 0
    detailed = (
        WriteAction, ReplayAction, BeginCommitBlockAction, EndCommitBlockAction,
        ReadAction, AcquireAction, ReleaseAction, SpawnAction, JoinAction,
    )
    for seq, action in enumerate(log):
        if isinstance(action, detailed) and not include_writes:
            continue
        text = _describe(action)
        if text is None:
            continue
        cells = [" " * lane_width] * len(tids)
        cells[columns[action.tid]] = text[:lane_width].ljust(lane_width)
        lines.append(f"{seq:<6d}| " + " | ".join(cells))
        rows += 1
        if max_rows is not None and rows >= max_rows:
            lines.append(f"... ({len(log) - seq - 1} more records)")
            break
    return "\n".join(lines)


def render_witness(log: Log) -> str:
    """Print the witness interleaving: executions in commit-action order."""
    witness = build_witness(log)
    lines = ["witness interleaving (commit order):"]
    for position, execution in enumerate(witness.serialized()):
        lines.append(
            f"  {position + 1:3d}. {execution.signature}  "
            f"(call@{execution.call_seq}, commit@{execution.commit_seq}, "
            f"ret@{execution.return_seq})"
        )
    if witness.uncommitted:
        pending = ", ".join(str(op) for op in sorted(witness.uncommitted))
        lines.append(f"  uncommitted executions (observers/incomplete): {pending}")
    if witness.internal_commits:
        lines.append(
            f"  internal worker-thread commits at seq: {witness.internal_commits}"
        )
    return "\n".join(lines)


def format_violation(violation: Violation) -> str:
    """Multi-line description of one violation."""
    lines = [str(violation)]
    for key, value in violation.details.items():
        lines.append(f"    {key}: {value!r}")
    return "\n".join(lines)


def format_outcome(outcome: CheckOutcome, title: str = "VYRD check") -> str:
    """Full report of a check outcome."""
    lines = [
        f"== {title} ==",
        f"result: {'PASS' if outcome.ok else 'FAIL'}",
        f"methods checked: {outcome.methods_checked}",
        f"mutator commits executed on spec: {outcome.commits_executed}",
        f"internal commits checked: {outcome.internal_commits}",
        f"log records processed: {outcome.actions_processed}",
    ]
    if outcome.incomplete:
        lines.append("warning: log ended mid-execution; tail not checked")
    if not outcome.ok:
        lines.append(
            f"first violation after {outcome.detection_method_count} completed methods:"
        )
        for violation in outcome.violations:
            lines.append(format_violation(violation))
    return "\n".join(lines)
