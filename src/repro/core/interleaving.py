"""Witness interleaving construction (paper section 4).

Given a log, the *witness interleaving* is the method-atomic serialization of
the logged method executions obtained by ordering them by their commit
actions.  The refinement checker builds this ordering incrementally while
draining the log; this module provides the same construction as a standalone,
whole-log utility -- useful for tests, for trace reports (Fig. 3 style), and
for explaining to a user *why* the checker serialized overlapping executions
the way it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .actions import CallAction, CommitAction, ReturnAction, Signature
from .log import Log


@dataclass
class Execution:
    """One method execution reassembled from its log records."""

    op_id: int
    tid: int
    method: str
    args: tuple
    call_seq: int
    result: object = None
    commit_seq: Optional[int] = None
    return_seq: Optional[int] = None

    @property
    def committed(self) -> bool:
        return self.commit_seq is not None

    @property
    def returned(self) -> bool:
        return self.return_seq is not None

    @property
    def signature(self) -> Signature:
        return Signature(self.tid, self.method, self.args, self.result)

    def overlaps(self, other: "Execution") -> bool:
        """True when neither execution finished before the other began."""
        if self.return_seq is None or other.return_seq is None:
            return True
        return not (
            self.return_seq < other.call_seq or other.return_seq < self.call_seq
        )


@dataclass
class WitnessInterleaving:
    """All executions of a log plus their commit-order serialization."""

    executions: Dict[int, Execution] = field(default_factory=dict)
    # op_ids of committed executions in commit order
    commit_order: List[int] = field(default_factory=list)
    # op_ids of executions with no commit action (observers, incomplete ops)
    uncommitted: List[int] = field(default_factory=list)
    # commit actions with op_id None (internal worker-thread commits)
    internal_commits: List[int] = field(default_factory=list)

    def serialized(self) -> List[Execution]:
        """Committed executions in witness (commit-action) order."""
        return [self.executions[op_id] for op_id in self.commit_order]

    def signatures(self) -> List[Signature]:
        return [e.signature for e in self.serialized()]


def build_witness(log: Log) -> WitnessInterleaving:
    """Reassemble executions from ``log`` and order them by commit action.

    The log need not be complete: executions missing a return (threads cut
    off mid-method) are included with ``result=None``/``return_seq=None``,
    and executions missing a commit land in ``uncommitted``.
    """
    witness = WitnessInterleaving()
    for seq, action in enumerate(log):
        if isinstance(action, CallAction):
            witness.executions[action.op_id] = Execution(
                op_id=action.op_id,
                tid=action.tid,
                method=action.method,
                args=action.args,
                call_seq=seq,
            )
        elif isinstance(action, CommitAction):
            if action.op_id is None:
                witness.internal_commits.append(seq)
                continue
            execution = witness.executions.get(action.op_id)
            if execution is not None and execution.commit_seq is None:
                execution.commit_seq = seq
                witness.commit_order.append(action.op_id)
        elif isinstance(action, ReturnAction):
            execution = witness.executions.get(action.op_id)
            if execution is not None:
                execution.result = action.result
                execution.return_seq = seq
    witness.uncommitted = [
        op_id
        for op_id, execution in witness.executions.items()
        if execution.commit_seq is None
    ]
    return witness


def respects_program_order(witness: WitnessInterleaving) -> List[str]:
    """Check clause (ii) of the refinement definition (section 3.3).

    If execution ``phi`` *finishes before* ``phi'`` begins in the log, then
    ``phi`` must precede ``phi'`` in the witness interleaving.  Commit
    actions lie between call and return, so this holds by construction for
    correctly instrumented logs; the check exists to diagnose bad commit
    point annotations (section 4.1's iterative debugging process).

    Returns a list of violation descriptions (empty when the order is
    respected).
    """
    problems: List[str] = []
    order = witness.serialized()
    for later_pos, later in enumerate(order):
        for earlier in order[later_pos + 1 :]:
            if (
                earlier.return_seq is not None
                and earlier.return_seq < later.call_seq
            ):
                problems.append(
                    f"{earlier.signature} finished before {later.signature} "
                    "began, but commits in the opposite order"
                )
    return problems
