"""Runtime invariant checking hooks.

Besides refinement, VYRD verified structural invariants at runtime (paper
section 7.2.1 checks two invariants of the Boxwood cache, e.g. "if a clean
cache entry exists for a handle, Cache and Chunk Manager must contain the
same byte-array").  An :class:`Invariant` is a named predicate over the
replayed implementation state and the current spec; the checker evaluates
every registered invariant at each commit action.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable


@dataclass(frozen=True)
class Invariant:
    """A named predicate ``check(state, spec) -> bool`` evaluated at commits.

    ``state`` is the effective (rollback-applied) replayed implementation
    state; ``spec`` is the specification instance at the same witness point.
    Returning ``False`` produces an INVARIANT violation.
    """

    name: str
    check: Callable[[Any, Any], bool]

    def holds(self, state, spec) -> bool:
        return bool(self.check(state, spec))
