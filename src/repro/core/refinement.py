"""The runtime refinement checker: I/O refinement and view refinement.

This is the verification half of VYRD (paper sections 4 and 5).  The checker
consumes the log strictly in order and maintains:

* the **spec instance**, driven one atomic method at a time in commit-action
  order (the witness interleaving);
* for view mode, the **replayed implementation state**
  (:class:`~repro.core.replay.ReplayState`) and the incremental
  implementation view;
* **observer windows** (:mod:`~repro.core.observer`).

Processing rules per action type:

``Call``
    open an execution record; observers additionally open a window.
``Write`` / ``Replay``
    advance the replayed state and dirty the view (view mode only).
``Commit`` (with ``op_id``)
    the heart of I/O refinement: look up the execution's return value
    (the checker waits until the return is available -- the "look ahead in
    the implementation's execution" of section 2), execute the spec mutator
    with it, extend observer windows, and in view mode compare
    ``viewI``/``viewS`` and evaluate invariants.
``Commit`` (``op_id is None``)
    an internal worker-thread commit (compression thread): the spec does not
    move; the view comparison checks the update left the abstract state
    unchanged (section 7.2.3).
``Return``
    close the execution; observers are checked against their window;
    mutators must have committed exactly once.

The checker is incremental: :meth:`RefinementChecker.feed` accepts any prefix
extension of the log, so the same object serves offline checking (feed the
whole log, then :meth:`finish`) and the online verification thread (feed the
tail as it grows).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Dict, Iterable, List, Optional

from .actions import (
    AcquireAction,
    Action,
    BeginCommitBlockAction,
    CallAction,
    CommitAction,
    EndCommitBlockAction,
    ReadAction,
    ReleaseAction,
    ReplayAction,
    ReturnAction,
    Signature,
    WriteAction,
)
from ..obs import NULL_RECORDER, Recorder
from .checkpoint import Checkpoint, CheckpointError
from .invariants import Invariant
from .log import Log
from .observer import ObserverTracker
from .replay import ReplayState
from .spec import MUTATOR, OBSERVER, VIEW_ABSENT, SpecError, SpecReject, Specification
from .view import ImplView

IO_MODE = "io"
VIEW_MODE = "view"


class ViolationKind(Enum):
    """Classification of refinement violations and tool-usage errors."""

    IO = "io-refinement"               # spec rejected a mutator's return value
    OBSERVER = "observer-window"       # observer result outside its window (I/O refinement)
    VIEW = "view-refinement"           # viewI != viewS at a commit action
    INVARIANT = "invariant"            # a registered invariant failed
    INSTRUMENTATION = "instrumentation"  # missing/double commits, bad blocks
    LINZ = "linearizability"           # no valid linearization exists (repro.linz)


@dataclass
class Violation:
    """One detected violation, with enough context to debug it."""

    kind: ViolationKind
    seq: int                      # log position where detection happened
    message: str
    signature: Optional[Signature] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        sig = f" [{self.signature}]" if self.signature else ""
        return f"{self.kind.value}@{self.seq}{sig}: {self.message}"

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (details stringified, they may hold
        arbitrary log values)."""
        return {
            "kind": self.kind.value,
            "seq": self.seq,
            "message": self.message,
            "problem": str(self),
            "signature": str(self.signature) if self.signature else None,
            "details": {key: repr(value) for key, value in self.details.items()},
        }


@dataclass
class CheckOutcome:
    """Result of checking one log."""

    violations: List[Violation] = field(default_factory=list)
    methods_checked: int = 0          # return actions processed
    commits_executed: int = 0         # mutator commits driven into the spec
    internal_commits: int = 0         # worker-thread (op-less) commits
    actions_processed: int = 0
    detection_method_count: Optional[int] = None  # methods before 1st violation
    incomplete: bool = False          # log ended mid-execution
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def first_violation(self) -> Optional[Violation]:
        return self.violations[0] if self.violations else None

    def summary(self) -> str:
        if self.ok:
            return (
                f"OK: {self.methods_checked} methods, "
                f"{self.commits_executed} commits checked"
            )
        return (
            f"{len(self.violations)} violation(s); first after "
            f"{self.detection_method_count} methods: {self.first_violation}"
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (for the CLI's ``--json`` and scripting)."""
        return {
            "ok": self.ok,
            "methods_checked": self.methods_checked,
            "commits_executed": self.commits_executed,
            "internal_commits": self.internal_commits,
            "actions_processed": self.actions_processed,
            "detection_method_count": self.detection_method_count,
            "incomplete": self.incomplete,
            "violations": [violation.to_dict() for violation in self.violations],
            "stats": {key: repr(value) for key, value in self.stats.items()},
        }


@dataclass
class _OpRecord:
    op_id: int
    tid: int
    method: str
    args: tuple
    call_seq: int
    kind: str
    commits: int = 0


def _view_diff(view_impl: dict, view_spec: dict, limit: int = 6) -> Dict[str, Any]:
    """Small, readable diff between two dict-shaped views."""
    if not isinstance(view_impl, dict) or not isinstance(view_spec, dict):
        return {"viewI": view_impl, "viewS": view_spec}
    only_impl = {}
    only_spec = {}
    differ = {}
    for key in view_impl:
        if key not in view_spec:
            if len(only_impl) < limit:
                only_impl[key] = view_impl[key]
        elif view_impl[key] != view_spec[key]:
            if len(differ) < limit:
                differ[key] = (view_impl[key], view_spec[key])
    for key in view_spec:
        if key not in view_impl and len(only_spec) < limit:
            only_spec[key] = view_spec[key]
    return {
        "only_in_viewI": only_impl,
        "only_in_viewS": only_spec,
        "differing (viewI, viewS)": differ,
    }


class ViewComparator:
    """Persistent differential ``viewI``/``viewS`` comparator.

    Instead of recomputing ``spec.view()`` and running a full-dict
    comparison at every commit (O(structure size)), the comparator keeps a
    running set of *mismatched* canonical keys and reconciles, per commit,
    only the keys either side reports as touched: the impl view's
    ``last_touched_keys`` (dirty units ∪ rolled-back ``extra_dirty_locs``,
    already folded in by ``refresh``) and the spec's drained
    ``view_delta()``.  ``viewI == viewS`` iff the mismatch set is empty.

    **Invariant:** a key is in ``mismatched`` exactly when the materialized
    views disagree on it -- because a key's value can only change when its
    side reports it touched, and every touched key is re-evaluated.  The
    checker's ``final_full_check`` cross-checks this invariant at the end of
    every run.

    When either side cannot report deltas (``spec.view_delta()`` returns
    ``None``, or the impl view has no materialized value), the comparator
    transparently falls back to the full comparison, so every registered
    program keeps working unchanged.
    """

    def __init__(self, spec: Specification, impl_view: ImplView, enabled: bool = True):
        self.spec = spec
        self.impl_view = impl_view
        self.differential = bool(
            enabled
            and getattr(impl_view, "supports_delta", False)
            and spec.view_delta() is not None
        )
        self.mismatched: set = set()
        #: keys reconciled by the most recent compare (histogrammed by obs)
        self.last_keys_compared = 0
        #: spec keys drained by the most recent compare
        self.last_spec_keys_dirtied = 0
        if self.differential:
            self._reconcile_full()

    def _reconcile_full(self) -> None:
        """Rebuild the mismatch set from whole views (init / restore only)."""
        view_impl = self.impl_view.value()
        view_spec = self.spec.view()
        self.mismatched = {
            key
            for key in set(view_impl) | set(view_spec)
            if view_impl.get(key, VIEW_ABSENT) != view_spec.get(key, VIEW_ABSENT)
        }

    def compare(self, view_impl: dict) -> "tuple[bool, Optional[dict]]":
        """Reconcile against the freshly refreshed ``view_impl``.

        Returns ``(ok, diff)`` where ``diff`` describes the disagreement
        when ``ok`` is False.
        """
        if not self.differential:
            view_spec = self.spec.view()
            if isinstance(view_impl, dict) and isinstance(view_spec, dict):
                self.last_keys_compared = len(view_impl) + len(view_spec)
                self.last_spec_keys_dirtied = len(view_spec)
            if view_impl != view_spec:
                return False, _view_diff(view_impl, view_spec)
            return True, None
        spec_delta = self.spec.view_delta() or set()
        self.last_spec_keys_dirtied = len(spec_delta)
        touched = set(spec_delta)
        touched.update(getattr(self.impl_view, "last_touched_keys", ()))
        self.last_keys_compared = len(touched)
        mismatched = self.mismatched
        spec_view_at = self.spec.view_at
        for key in touched:
            if view_impl.get(key, VIEW_ABSENT) == spec_view_at(key):
                mismatched.discard(key)
            else:
                mismatched.add(key)
        if mismatched:
            return False, self._diff(view_impl)
        return True, None

    def _diff(self, view_impl: dict, limit: int = 6) -> dict:
        """Same three-bucket shape as ``_view_diff``, restricted to (a sample
        of) the mismatched keys, plus the total mismatch count."""
        only_impl, only_spec, differ = {}, {}, {}
        for key in itertools.islice(iter(self.mismatched), limit):
            impl_val = view_impl.get(key, VIEW_ABSENT)
            spec_val = self.spec.view_at(key)
            if spec_val is VIEW_ABSENT:
                only_impl[key] = impl_val
            elif impl_val is VIEW_ABSENT:
                only_spec[key] = spec_val
            else:
                differ[key] = (impl_val, spec_val)
        return {
            "only_in_viewI": only_impl,
            "only_in_viewS": only_spec,
            "differing (viewI, viewS)": differ,
            "mismatched_keys": len(self.mismatched),
        }

    # -- checkpointing ----------------------------------------------------------

    def state_dict(self) -> dict:
        return {"differential": self.differential, "mismatched": set(self.mismatched)}

    def load_state(self, payload: dict, spec: Specification) -> None:
        self.spec = spec
        self.differential = bool(payload["differential"])
        self.mismatched = set(payload["mismatched"])


class RefinementChecker:
    """Incremental I/O / view refinement checker over a VYRD log.

    Parameters
    ----------
    spec:
        A fresh :class:`~repro.core.spec.Specification`; the checker owns and
        mutates it.
    mode:
        ``"io"`` or ``"view"``.
    impl_view:
        Required in view mode: the :class:`~repro.core.view.ImplView`
        computing ``viewI`` from the replayed state.
    invariants:
        :class:`~repro.core.invariants.Invariant` objects evaluated at every
        commit (available in both modes; they force state replay on).
    replay_registry:
        ``tag -> routine(state, payload)`` for coarse-grained log entries.
    stop_at_first:
        Stop processing at the first violation (the paper's
        time-to-detection methodology); set ``False`` to collect all.
    final_full_check:
        In view mode, cross-check the incremental view against a
        from-scratch recomputation and the spec view when the log ends.
    view_at:
        When to compare ``viewI``/``viewS`` in view mode: ``"commit"`` (the
        paper's choice -- at every commit action) or ``"quiescent"`` (only
        at quiescent states, where no method execution is in flight).  The
        latter is the commit-atomicity baseline the paper contrasts itself
        against in section 8: "most industrial-scale concurrent data
        structures are built to be used by large numbers of threads
        continuously and during any realistic execution, quiescent points
        are very rare" -- a claim the ablation benchmark quantifies.
    differential:
        In view mode, use the persistent :class:`ViewComparator` to
        reconcile only dirtied keys per commit (O(delta)) when both sides
        support the protocol; ``False`` forces the full per-commit
        comparison (the ablation baseline).
    """

    def __init__(
        self,
        spec: Specification,
        mode: str = IO_MODE,
        impl_view: Optional[ImplView] = None,
        invariants: Iterable[Invariant] = (),
        replay_registry: Optional[dict] = None,
        stop_at_first: bool = True,
        final_full_check: bool = True,
        view_at: str = "commit",
        obs: Optional[Recorder] = None,
        differential: bool = True,
    ):
        if mode not in (IO_MODE, VIEW_MODE):
            raise ValueError(f"unknown mode {mode!r}")
        if view_at not in ("commit", "quiescent"):
            raise ValueError(f"unknown view_at {view_at!r}")
        if mode == VIEW_MODE and impl_view is None:
            raise ValueError("view mode requires an impl_view")
        self.spec = spec
        self.mode = mode
        self.impl_view = impl_view
        self.invariants = list(invariants)
        self.stop_at_first = stop_at_first
        self.final_full_check = final_full_check
        self.view_at = view_at
        self.obs: Recorder = obs if obs is not None else NULL_RECORDER
        self._track_state = mode == VIEW_MODE or bool(self.invariants)
        self.replay = ReplayState(replay_registry) if self._track_state else None
        self._comparator = (
            ViewComparator(spec, impl_view, enabled=differential)
            if mode == VIEW_MODE
            else None
        )

        self.outcome = CheckOutcome()
        self._buffer: deque = deque()
        self._next_seq = 0
        self._returns: Dict[int, ReturnAction] = {}
        self._ops: Dict[int, _OpRecord] = {}
        self._observers = ObserverTracker(spec)
        self._open_ops = 0  # executions called but not yet returned
        self._stopped = False
        self._finished = False

    # -- feeding ----------------------------------------------------------------

    def feed(self, actions: Iterable[Action]) -> None:
        """Append new log records (any prefix extension) and process what can
        be processed."""
        obs = self.obs
        if obs.enabled:
            with obs.span("checker.feed", cat="checker"):
                self._ingest(actions)
        else:
            self._ingest(actions)

    def _ingest(self, actions: Iterable[Action]) -> None:
        for action in actions:
            seq = self._next_seq
            self._next_seq += 1
            if isinstance(action, ReturnAction):
                self._returns[action.op_id] = action
            self._buffer.append((seq, action))
        self._drain()

    @property
    def stopped(self) -> bool:
        """True once a violation stopped processing (``stop_at_first``)."""
        return self._stopped

    # -- draining -----------------------------------------------------------------

    def _drain(self) -> None:
        while self._buffer and not self._stopped:
            seq, action = self._buffer[0]
            if isinstance(action, CommitAction) and action.op_id is not None:
                record = self._ops.get(action.op_id)
                needs_return = (
                    record is not None
                    and record.kind == MUTATOR
                    and action.op_id not in self._returns
                )
                if needs_return:
                    return  # wait for the return value (online lookahead)
            self._buffer.popleft()
            self._process(seq, action)
            self.outcome.actions_processed += 1

    def _violate(
        self,
        kind: ViolationKind,
        seq: int,
        message: str,
        signature: Optional[Signature] = None,
        **details,
    ) -> None:
        violation = Violation(kind, seq, message, signature, details)
        self.outcome.violations.append(violation)
        if self.outcome.detection_method_count is None:
            self.outcome.detection_method_count = self.outcome.methods_checked
        if self.stop_at_first:
            self._stopped = True

    # -- per-action processing --------------------------------------------------------

    def _process(self, seq: int, action: Action) -> None:
        if isinstance(action, CallAction):
            self._process_call(seq, action)
        elif isinstance(action, WriteAction):
            if self._track_state:
                self.replay.apply_write(action.tid, action.loc, action.old, action.new)
                if self.obs.enabled:
                    self.obs.count("replay.writes")
                if self.impl_view is not None:
                    self.impl_view.on_write(action.loc)
        elif isinstance(action, ReplayAction):
            if self._track_state:
                if self.obs.enabled:
                    with self.obs.span(
                        "checker.replay", cat="checker", tid=action.tid,
                        tag=action.tag,
                    ):
                        written = self.replay.apply_replay(
                            action.tid, action.tag, action.payload
                        )
                else:
                    written = self.replay.apply_replay(
                        action.tid, action.tag, action.payload
                    )
                if self.impl_view is not None:
                    for loc in written:
                        self.impl_view.on_write(loc)
        elif isinstance(action, BeginCommitBlockAction):
            if self._track_state:
                try:
                    self.replay.begin_block(action.tid)
                except ValueError as exc:
                    self._violate(ViolationKind.INSTRUMENTATION, seq, str(exc))
        elif isinstance(action, EndCommitBlockAction):
            if self._track_state:
                try:
                    self.replay.end_block(action.tid)
                except ValueError as exc:
                    self._violate(ViolationKind.INSTRUMENTATION, seq, str(exc))
        elif isinstance(action, CommitAction):
            self._process_commit(seq, action)
        elif isinstance(action, ReturnAction):
            self._process_return(seq, action)
        elif isinstance(action, (ReadAction, AcquireAction, ReleaseAction)):
            pass  # atomicity-analysis events; refinement ignores them
        else:
            self._violate(
                ViolationKind.INSTRUMENTATION, seq, f"unknown action {action!r}"
            )

    def _process_call(self, seq: int, action: CallAction) -> None:
        try:
            kind = self.spec.method_kind(action.method)
        except SpecError as exc:
            self._violate(ViolationKind.INSTRUMENTATION, seq, str(exc))
            return
        record = _OpRecord(
            action.op_id, action.tid, action.method, action.args, seq, kind
        )
        self._ops[action.op_id] = record
        self._open_ops += 1
        if kind == OBSERVER:
            self._observers.open(
                action.op_id, action.tid, action.method, action.args, seq
            )

    def _process_commit(self, seq: int, action: CommitAction) -> None:
        if action.op_id is None:
            self.outcome.internal_commits += 1
            self._check_views_and_invariants(seq, action.tid, signature=None)
            return
        record = self._ops.get(action.op_id)
        if record is None:
            self._violate(
                ViolationKind.INSTRUMENTATION,
                seq,
                f"commit for unknown execution op_id={action.op_id}",
            )
            return
        if record.kind == OBSERVER:
            self._violate(
                ViolationKind.INSTRUMENTATION,
                seq,
                f"observer {record.method} has a commit action; observers must "
                "not be annotated (section 4.3)",
            )
            return
        record.commits += 1
        if record.commits > 1:
            self._violate(
                ViolationKind.INSTRUMENTATION,
                seq,
                f"execution of {record.method} committed more than once",
            )
            return
        result = self._returns[record.op_id].result
        signature = Signature(record.tid, record.method, record.args, result)
        obs = self.obs
        try:
            if obs.enabled:
                with obs.span(
                    "checker.witness_commit", cat="checker", tid=record.tid,
                    method=record.method,
                ):
                    self.spec.run_mutator(record.method, record.args, result)
            else:
                self.spec.run_mutator(record.method, record.args, result)
        except SpecReject as reject:
            self._violate(
                ViolationKind.IO,
                seq,
                f"specification rejects {signature}: {reject.reason}",
                signature,
                spec_state=self.spec.describe(),
                commit_index=self.outcome.commits_executed,
            )
            return
        self.outcome.commits_executed += 1
        if obs.enabled:
            obs.count("checker.commits_checked")
            with obs.span(
                "checker.observer_reeval", cat="checker", tid=record.tid
            ):
                self._observers.on_commit()
        else:
            self._observers.on_commit()
        self._check_views_and_invariants(seq, action.tid, signature)

    def _check_views_and_invariants(
        self, seq: int, tid: int, signature: Optional[Signature],
        where: str = "commit action",
    ) -> None:
        if not self._track_state or self._stopped:
            return
        if self.view_at == "quiescent" and where == "commit action":
            # commit-atomicity baseline: *all* state checks (view and
            # invariants) wait for a quiescent point
            return
        obs = self.obs
        state = self.replay.effective(tid)
        if obs.enabled:
            obs.count("replay.overlays")
            obs.observe("replay.overlay_locs", state.overlay_size)
        if self.mode == VIEW_MODE and (
            self.view_at == "commit" or where != "commit action"
        ):
            extra_dirty = self.replay.open_block_locs(excluding_tid=tid)
            if obs.enabled:
                with obs.span("checker.view_refresh", cat="checker", tid=tid):
                    view_impl = self.impl_view.refresh(state, extra_dirty)
                recomputed = getattr(self.impl_view, "last_recomputed", None)
                if recomputed is not None:
                    obs.observe("view.units_recomputed", recomputed)
            else:
                view_impl = self.impl_view.refresh(state, extra_dirty)
            comparator = self._comparator
            ok, diff = comparator.compare(view_impl)
            if obs.enabled:
                obs.observe("view.keys_compared", comparator.last_keys_compared)
                obs.observe(
                    "spec_view.keys_dirtied", comparator.last_spec_keys_dirtied
                )
            if not ok:
                self._violate(
                    ViolationKind.VIEW,
                    seq,
                    f"viewI differs from viewS at {where}",
                    signature,
                    diff=diff,
                )
                return
        for invariant in self.invariants:
            if not invariant.holds(state, self.spec):
                self._violate(
                    ViolationKind.INVARIANT,
                    seq,
                    f"invariant {invariant.name!r} violated at commit action",
                    signature,
                )
                return

    def _process_return(self, seq: int, action: ReturnAction) -> None:
        self.outcome.methods_checked += 1
        # The execution is over: drop its lookahead entries, so on a long
        # log _ops/_returns stay bounded by the number of *open* executions
        # rather than growing with every method ever checked.
        self._returns.pop(action.op_id, None)
        record = self._ops.pop(action.op_id, None)
        if record is None:
            self._violate(
                ViolationKind.INSTRUMENTATION,
                seq,
                f"return for unknown execution op_id={action.op_id}",
            )
            return
        self._open_ops -= 1
        signature = Signature(record.tid, record.method, record.args, action.result)
        if record.kind == OBSERVER:
            window = self._observers.close(action.op_id, action.result)
            if self.obs.enabled:
                self.obs.observe("observer.window_size", len(window.answers))
            if not window.accepts(action.result):
                self._violate(
                    ViolationKind.OBSERVER,
                    seq,
                    f"observer result {action.result!r} is not consistent with "
                    f"any commit point in its window",
                    signature,
                    allowed=window.answers,
                    spec_state=self.spec.describe(),
                )
        elif record.commits == 0:
            self._violate(
                ViolationKind.INSTRUMENTATION,
                seq,
                f"mutator {record.method} returned without a commit action "
                "(every execution path needs exactly one, section 4.1)",
                signature,
            )
        if (
            self.view_at == "quiescent"
            and self.mode == VIEW_MODE
            and self._open_ops == 0
            and not self._stopped
        ):
            # A quiescent state (section 8's commit-atomicity baseline):
            # nothing is mid-method, so compare states here.
            self._check_views_and_invariants(
                seq, action.tid, signature, where="quiescent state"
            )

    # -- checkpointing -----------------------------------------------------------------

    def _config_fingerprint(self) -> Dict[str, Any]:
        return {
            "mode": self.mode,
            "view_at": self.view_at,
            "stop_at_first": self.stop_at_first,
            "final_full_check": self.final_full_check,
            "spec_type": type(self.spec).__name__,
            "impl_view_type": type(self.impl_view).__name__ if self.impl_view else None,
            "invariants": sorted(inv.name for inv in self.invariants),
        }

    def checkpoint(self, meta: Optional[Dict[str, Any]] = None) -> Checkpoint:
        """Capture everything needed to resume checking at ``_next_seq``.

        The checkpoint carries data only (spec instance, view caches,
        comparator state, replayed state, observer windows, the lookahead
        buffer); code -- view factories, replay routines, invariants -- is
        rebuilt by constructing a fresh checker from the same program
        registry and calling :meth:`restore` on it.
        """
        payload: Dict[str, Any] = {
            "config": self._config_fingerprint(),
            "next_seq": self._next_seq,
            "spec": self.spec,
            "outcome": self.outcome,
            "buffer": list(self._buffer),
            "returns": dict(self._returns),
            "ops": dict(self._ops),
            "open_ops": self._open_ops,
            "stopped": self._stopped,
            "finished": self._finished,
            "observers": self._observers.state_dict(),
            "replay": self.replay.state_dict() if self.replay is not None else None,
            "impl_view": (
                self.impl_view.state_dict() if self.impl_view is not None else None
            ),
            "comparator": (
                self._comparator.state_dict() if self._comparator is not None else None
            ),
        }
        full_meta = {"resume_seq": self._next_seq}
        if meta:
            full_meta.update(meta)
        return Checkpoint(payload=payload, meta=full_meta)

    def restore(self, checkpoint: Checkpoint) -> None:
        """Load a checkpoint into this freshly constructed checker.

        The checker must have been built with the same configuration (same
        program registry entry) and must not have processed anything yet;
        feed it the log records from ``checkpoint.resume_seq`` onward.
        """
        if self._next_seq != 0 or self.outcome.actions_processed != 0:
            raise CheckpointError("restore() requires a freshly constructed checker")
        payload = checkpoint.payload
        config = payload.get("config")
        if config != self._config_fingerprint():
            raise CheckpointError(
                "checkpoint configuration does not match this checker: "
                f"saved {config!r}, running {self._config_fingerprint()!r}"
            )
        self.spec = payload["spec"]
        self.outcome = payload["outcome"]
        self._next_seq = payload["next_seq"]
        self._buffer = deque(payload["buffer"])
        self._returns = dict(payload["returns"])
        self._ops = dict(payload["ops"])
        self._open_ops = payload["open_ops"]
        self._stopped = payload["stopped"]
        self._finished = payload["finished"]
        self._observers.load_state(payload["observers"], self.spec)
        if self.replay is not None and payload["replay"] is not None:
            self.replay.load_state(payload["replay"])
        if self.impl_view is not None and payload["impl_view"] is not None:
            self.impl_view.load_state(payload["impl_view"])
        if self._comparator is not None and payload["comparator"] is not None:
            self._comparator.load_state(payload["comparator"], self.spec)

    # -- finishing ---------------------------------------------------------------------

    def finish(self) -> CheckOutcome:
        """Declare the log complete and return the final outcome."""
        if self._finished:
            return self.outcome
        self._finished = True
        self._drain()
        if self._buffer and not self._stopped:
            self.outcome.incomplete = True
            self.outcome.stats["unprocessed_actions"] = len(self._buffer)
        if (
            self.mode == VIEW_MODE
            and not self._stopped
            and self.final_full_check
            and not self.outcome.incomplete
        ):
            state = self.replay.effective(None)
            full = self.impl_view.compute_full(state)
            incremental = self.impl_view.refresh(
                state, self.replay.open_block_locs(None)
            )
            if full != incremental:
                self.outcome.stats["incremental_drift"] = _view_diff(incremental, full)
                self._violate(
                    ViolationKind.INSTRUMENTATION,
                    self._next_seq,
                    "incremental view drifted from full recomputation "
                    "(unit_of/supp(view) mapping is incomplete)",
                )
            elif full != self.spec.view():
                self._violate(
                    ViolationKind.VIEW,
                    self._next_seq,
                    "final quiescent viewI differs from viewS",
                    diff=_view_diff(full, self.spec.view()),
                )
            elif self._comparator is not None and self._comparator.differential:
                # The views agree in full -- the differential comparator's
                # running mismatch set must agree too, or its dirty-key
                # bookkeeping (spec _touch calls / view last_touched_keys)
                # is incomplete.
                self._comparator.compare(self.impl_view.value())
                if self._comparator.mismatched:
                    self.outcome.stats["comparator_drift"] = sorted(
                        map(repr, self._comparator.mismatched)
                    )
                    self._violate(
                        ViolationKind.INSTRUMENTATION,
                        self._next_seq,
                        "differential comparator drifted from full comparison "
                        "(a spec mutator or view is under-reporting touched keys)",
                    )
        self.outcome.stats.setdefault("pending_observers", self._observers.pending_count())
        return self.outcome


def check_log(
    log: Log,
    spec: Specification,
    mode: str = IO_MODE,
    impl_view: Optional[ImplView] = None,
    invariants: Iterable[Invariant] = (),
    replay_registry: Optional[dict] = None,
    stop_at_first: bool = True,
    final_full_check: bool = True,
    view_at: str = "commit",
    differential: bool = True,
) -> CheckOutcome:
    """Offline convenience: check a complete log in one call."""
    checker = RefinementChecker(
        spec,
        mode=mode,
        impl_view=impl_view,
        invariants=invariants,
        replay_registry=replay_registry,
        stop_at_first=stop_at_first,
        final_full_check=final_full_check,
        view_at=view_at,
        differential=differential,
    )
    checker.feed(log)
    return checker.finish()
