"""The Boxwood Cache module, including the real bug VYRD found.

This follows the paper's Fig. 8 pseudocode closely.  The cache sits between
clients (the B-link tree) and the Chunk Manager; it keeps per-handle entries
on a *clean* list or a *dirty* list, guarded by ``LOCK(clean)``, plus a
reclamation reader-writer lock (``RECLAIMLOCK``).

The bug (paper section 7.2.2, Table 1's "Writing an unprotected dirty cache
entry"): in ``WRITE``'s third branch -- the handle already has a dirty entry
-- ``COPY-TO-CACHE`` runs **without** ``LOCK(clean)`` (Fig. 8 line 23).  A
concurrent ``FLUSH`` can therefore read the entry mid-copy, write a byte
array that is part old and part new to the Chunk Manager, and move the entry
to the clean list.  At that point cache invariant (i) -- *a clean entry's
bytes equal the chunk's bytes* -- is violated, and the corruption becomes
I/O-visible only much later, after the entry is evicted and re-read: exactly
the paper's argument for why view refinement (plus runtime invariants)
detects this error orders of magnitude earlier than I/O refinement.

Entry data is stored byte-per-cell (``cache.ent<id>@<handle>.data[i]``), so
``COPY-TO-CACHE`` produces one logged write per byte: the fine-grained
logging the paper says was necessary to catch this error, and the reason the
Cache row of Tables 1-2 shows the largest view-refinement logging/checking
overhead.

Public operations: ``write`` / ``read`` / ``flush`` / ``evict`` (the
paper's revoke) / ``reclaim``.  ``flush``/``evict``/``reclaim`` are
structural mutators: their spec transition is the identity, and their commit
action rides the final ``UNLOCK(clean)`` (Fig. 8's FLUSH commit point).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..concurrency import Lock, RWLock, SharedCell, ThreadCtx
from ..core import ContributionView, Invariant, operation
from .chunkmanager import ChunkManager


class _Entry:
    """One cache entry, permanently bound to a handle."""

    __slots__ = ("eid", "handle", "data", "published", "retired")

    def __init__(self, eid: int, handle: str, block_size: int):
        self.eid = eid
        self.handle = handle
        base = f"cache.ent{eid}@{handle}"
        self.data = [SharedCell(f"{base}.data[{i}]", 0) for i in range(block_size)]
        self.published = SharedCell(f"{base}.published", False)
        self.retired = SharedCell(f"{base}.retired", False)


class BoxwoodCache:
    """Write-back cache over a :class:`ChunkManager` (Fig. 8)."""

    def __init__(self, chunks: ChunkManager, block_size: int = 8,
                 buggy_dirty_write: bool = False):
        self.chunks = chunks
        self.block_size = block_size
        self.buggy_dirty_write = buggy_dirty_write
        self.clean_lock = Lock("cache.clean-lock")
        self.reclaim = RWLock("cache.reclaim")
        self._entries: Dict[int, _Entry] = {}
        # per-thread id counters: entry ids depend only on the allocating
        # thread's own history, never on the interleaving (schedule-
        # confluent allocation; cell names stable across equivalent runs)
        self._ids: Dict[int, int] = {}
        # membership maps: handle -> entry id (or None); created lazily
        self._clean_cells: Dict[str, SharedCell] = {}
        self._dirty_cells: Dict[str, SharedCell] = {}

    # -- membership cells ----------------------------------------------------

    def _clean_cell(self, handle: str) -> SharedCell:
        if handle not in self._clean_cells:
            self._clean_cells[handle] = SharedCell(f"cache.clean[{handle}]", None)
        return self._clean_cells[handle]

    def _dirty_cell(self, handle: str) -> SharedCell:
        if handle not in self._dirty_cells:
            self._dirty_cells[handle] = SharedCell(f"cache.dirty[{handle}]", None)
        return self._dirty_cells[handle]

    def _make_new_entry(self, handle: str, tid: int = -1) -> _Entry:
        seq = self._ids.get(tid, 0)
        self._ids[tid] = seq + 1
        entry = _Entry((tid + 1) * 1_000_000 + seq, handle, self.block_size)
        self._entries[entry.eid] = entry
        return entry

    def _copy_to_cache(self, buffer: Tuple[int, ...], entry: _Entry, commit_last: bool = False):
        """COPY-TO-CACHE: one logged write per byte (Fig. 8).

        ``commit_last`` rides the commit action on the final byte write
        (WRITE's commit point 3)."""
        last = len(buffer) - 1
        for i, byte in enumerate(buffer):
            yield entry.data[i].write(byte, commit=commit_last and i == last)

    # -- public operations ----------------------------------------------------------

    @operation
    def write(self, ctx: ThreadCtx, handle: str, buffer: Tuple[int, ...]):
        """WRITE(handle, buffer) -- Fig. 8, all three branches."""
        buffer = tuple(buffer)
        if len(buffer) != self.block_size:
            raise ValueError("buffer must be exactly one block")
        yield self.reclaim.begin_read()                    # line 1
        yield self.clean_lock.acquire()                    # line 2
        ce = yield self._clean_cell(handle).read()         # line 3
        de = yield self._dirty_cell(handle).read()         # line 4
        yield self.clean_lock.release()                    # line 5
        if ce is None and de is None:                      # line 6
            yield self.reclaim.end_read()                  # line 8
            te = self._make_new_entry(handle, ctx.tid)     # line 9
            yield self.reclaim.begin_read()                # line 10
            yield from self._copy_to_cache(buffer, te)     # line 11
            yield self.clean_lock.acquire()                # line 12
            # ADD-TO-DIRTY-LIST(handle, te)  -- Commit point 1 (line 13)
            old_dirty = yield self._dirty_cell(handle).read()
            old_clean = yield self._clean_cell(handle).read()
            yield ctx.begin_commit_block()
            yield te.published.write(True)
            if old_dirty is not None:
                # a racing WRITE published an entry first; ours replaces it
                yield self._entries[old_dirty].retired.write(True)
            if old_clean is not None:
                # a racing READ installed a (now stale) clean entry
                yield self._clean_cell(handle).write(None)
                yield self._entries[old_clean].retired.write(True)
            yield self._dirty_cell(handle).write(te.eid)
            yield ctx.end_commit_block(commit=True)
            yield self.clean_lock.release()                # line 14
        elif de is None:                                   # line 15 (ce != None)
            yield self.clean_lock.acquire()                # line 17
            entry_id = yield self._clean_cell(handle).read()
            if entry_id is None:
                # the clean entry vanished (evict/reclaim race); retry
                yield self.clean_lock.release()
                yield self.reclaim.end_read()
                result = yield from self.write(ctx, handle, buffer)
                return result
            ce_entry = self._entries[entry_id]
            yield ctx.begin_commit_block()
            yield self._clean_cell(handle).write(None)     # line 18
            yield from self._copy_to_cache(buffer, ce_entry)  # line 19
            yield self._dirty_cell(handle).write(entry_id)    # line 20: Commit point 2
            yield ctx.end_commit_block(commit=True)
            yield self.clean_lock.release()                # line 21
        else:                                              # line 22: dirty entry exists
            de_entry = self._entries[de]
            if self.buggy_dirty_write:
                # BUG (Fig. 8 line 23): COPY-TO-CACHE without LOCK(clean).
                # A concurrent FLUSH can snapshot the entry mid-copy.
                yield from self._copy_to_cache(buffer, de_entry, commit_last=True)
            else:
                yield self.clean_lock.acquire()
                current = yield self._dirty_cell(handle).read()
                if current != de:
                    # the entry was flushed/evicted before we took the lock
                    yield self.clean_lock.release()
                    yield self.reclaim.end_read()
                    result = yield from self.write(ctx, handle, buffer)
                    return result
                yield from self._copy_to_cache(buffer, de_entry, commit_last=True)
                yield self.clean_lock.release()
        yield self.reclaim.end_read()                      # line 24
        return True

    @operation
    def read(self, ctx: ThreadCtx, handle: str):
        """READ(handle): cached bytes, else fetch from the Chunk Manager.

        Observer.  The data copy happens under ``LOCK(clean)``, so a correct
        cache never returns a torn buffer; the buggy ``WRITE`` branch 3 can
        tear it.
        """
        yield self.reclaim.begin_read()
        yield self.clean_lock.acquire()
        de = yield self._dirty_cell(handle).read()
        ce = yield self._clean_cell(handle).read()
        entry_id = de if de is not None else ce
        if entry_id is not None:
            entry = self._entries[entry_id]
            data: List[int] = []
            for cell in entry.data:
                byte = yield cell.read()
                data.append(byte)
            yield self.clean_lock.release()
            yield self.reclaim.end_read()
            return tuple(data)
        # Miss: fill from the Chunk Manager *while still holding
        # LOCK(clean)* (lock order clean -> chunk, same as FLUSH).  Fetching
        # after releasing the lock would allow a concurrent write + evict to
        # make the fetched bytes stale before they are installed as a clean
        # entry -- a lost-update this repository's own benchmarks caught.
        data = yield from self.chunks.read(ctx, handle)  # vyrd: ignore[VY008] -- effects live in the ChunkManager; the matrix already treats cache ops as mutually dependent
        if data is not None:
            te = self._make_new_entry(handle, ctx.tid)
            yield from self._copy_to_cache(data, te)
            yield te.published.write(True)
            yield self._clean_cell(handle).write(te.eid)
        yield self.clean_lock.release()
        yield self.reclaim.end_read()
        return data

    @operation
    def flush(self, ctx: ThreadCtx):
        """FLUSH(): write every dirty entry back, move them to clean.

        Structural mutator; commit action on the final UNLOCK(clean)
        (Fig. 8's FLUSH commit point)."""
        yield self.reclaim.begin_read()
        yield self.clean_lock.acquire()                     # line 1
        victims: List[Tuple[str, int]] = []
        for handle in list(self._dirty_cells):
            entry_id = yield self._dirty_cell(handle).read()
            if entry_id is None:
                continue
            entry = self._entries[entry_id]
            data: List[int] = []
            for cell in entry.data:
                byte = yield cell.read()
                data.append(byte)
            yield from self.chunks.write(ctx, entry.handle, tuple(data))  # line 7  # vyrd: ignore[VY008] -- effects live in the ChunkManager; the matrix already treats cache ops as mutually dependent
            victims.append((handle, entry_id))              # line 8
        for handle, entry_id in victims:                    # lines 9-13
            yield self._dirty_cell(handle).write(None)
            displaced = yield self._clean_cell(handle).read()
            if displaced is not None and displaced != entry_id:
                yield self._entries[displaced].retired.write(True)
            yield self._clean_cell(handle).write(entry_id)
        yield self.clean_lock.release(commit=True)          # line 14: Commit point
        yield self.reclaim.end_read()
        return None

    @operation
    def evict(self, ctx: ThreadCtx, handle: str):
        """The paper's revoke: write one entry back and drop it entirely."""
        yield self.reclaim.begin_read()
        yield self.clean_lock.acquire()
        de = yield self._dirty_cell(handle).read()
        ce = yield self._clean_cell(handle).read()
        entry_id = de if de is not None else ce
        if entry_id is not None:
            entry = self._entries[entry_id]
            if de is not None:
                data: List[int] = []
                for cell in entry.data:
                    byte = yield cell.read()
                    data.append(byte)
                yield from self.chunks.write(ctx, entry.handle, tuple(data))  # vyrd: ignore[VY008] -- effects live in the ChunkManager; the matrix already treats cache ops as mutually dependent
                yield self._dirty_cell(handle).write(None)
            else:
                yield self._clean_cell(handle).write(None)
            yield entry.retired.write(True)
        yield self.clean_lock.release(commit=True)
        yield self.reclaim.end_read()
        return None

    @operation
    def reclaim_clean(self, ctx: ThreadCtx):
        """Reclaim memory: drop every clean entry (RECLAIMLOCK writer)."""
        yield self.reclaim.begin_write()
        yield self.clean_lock.acquire()
        for handle in list(self._clean_cells):
            entry_id = yield self._clean_cell(handle).read()
            if entry_id is not None:
                yield self._clean_cell(handle).write(None)
                yield self._entries[entry_id].retired.write(True)
        yield self.clean_lock.release(commit=True)
        yield self.reclaim.end_write()
        return None

    # -- direct helpers --------------------------------------------------------------

    def entry_bytes(self, entry_id: int) -> tuple:
        return tuple(cell.peek() for cell in self._entries[entry_id].data)

    VYRD_METHODS = {
        "write": "mutator",
        "read": "observer",
        "flush": "mutator",
        "evict": "mutator",
        "reclaim_clean": "mutator",
    }

    # The membership-cell accessors memo-create a handle-keyed cell (same
    # name whenever it is created), and entry allocation uses per-thread id
    # counters (see __init__): all three commute with steps of other
    # threads.
    VYRD_CONFLUENT_HELPERS = ("_clean_cell", "_dirty_cell", "_make_new_entry")


def cache_view(block_size: int = 8) -> ContributionView:
    """``viewI`` for Cache + Chunk Manager (paper section 7.2.1).

    The abstract store maps each handle to its current byte array: the dirty
    entry's bytes if one exists, else the clean entry's, else the chunk's.
    Unit = handle; every relevant location name embeds the handle, so the
    incremental dependency mapping is purely syntactic.
    """

    def unit_of(loc: str) -> Optional[str]:
        if loc.startswith("cache.ent"):
            at = loc.find("@")
            dot = loc.find(".", at)
            return loc[at + 1 : dot]
        if loc.startswith("cache.clean[") or loc.startswith("cache.dirty["):
            return loc[loc.find("[") + 1 : loc.find("]")]
        if loc.startswith("chunk["):
            return loc[6 : loc.find("]")]
        return None

    def entry_bytes(state, handle: str, entry_id: int) -> tuple:
        return tuple(
            state.get(f"cache.ent{entry_id}@{handle}.data[{i}]", 0)
            for i in range(block_size)
        )

    def contribute(state, handle: str):
        de = state.get(f"cache.dirty[{handle}]")
        if de is not None:
            return (handle, entry_bytes(state, handle, de))
        ce = state.get(f"cache.clean[{handle}]")
        if ce is not None:
            return (handle, entry_bytes(state, handle, ce))
        data = state.get(f"chunk[{handle}].data")
        if data is not None:
            return (handle, data)
        return None

    return ContributionView(unit_of=unit_of, contribute=contribute, aggregate="list")


def cache_invariants(block_size: int = 8) -> List[Invariant]:
    """The two runtime invariants of paper section 7.2.1.

    (i)  a clean entry's bytes equal the corresponding chunk's bytes;
    (ii) a published, unretired entry is in exactly one of the lists.
    """

    def clean_matches_chunk(state, spec) -> bool:
        for loc, entry_id in state.items_with_prefix("cache.clean["):
            if entry_id is None:
                continue
            handle = loc[loc.find("[") + 1 : loc.find("]")]
            chunk = state.get(f"chunk[{handle}].data")
            cached = tuple(
                state.get(f"cache.ent{entry_id}@{handle}.data[{i}]", 0)
                for i in range(block_size)
            )
            if chunk != cached:
                return False
        return True

    def entry_in_exactly_one_list(state, spec) -> bool:
        for loc, published in state.items_with_prefix("cache.ent"):
            if not loc.endswith(".published") or not published:
                continue
            base = loc[: -len(".published")]
            if state.get(f"{base}.retired"):
                continue
            at = base.find("@")
            entry_id = int(base[len("cache.ent") : at])
            handle = base[at + 1 :]
            on_clean = state.get(f"cache.clean[{handle}]") == entry_id
            on_dirty = state.get(f"cache.dirty[{handle}]") == entry_id
            if on_clean == on_dirty:  # neither, or both
                return False
        return True

    return [
        Invariant("cache.clean-matches-chunk", clean_matches_chunk),
        Invariant("cache.entry-in-exactly-one-list", entry_in_exactly_one_list),
    ]
