"""Specifications for the Boxwood modules (paper section 7.2).

* :class:`StoreSpec` -- the abstract data store provided by
  Cache + Chunk Manager: a map from handles to byte arrays.  ``flush``,
  ``evict`` and ``reclaim_clean`` are *structural* operations whose spec
  transition is the identity: the cache exists purely for performance, so
  flushing or evicting must never change the abstract store.
* :class:`BLinkTreeSpec` -- the B-link tree's abstract state: a map from
  keys to ``(data, version)`` pairs, where the version counts successive
  overwrites of a live key (fresh insertions start at version 1).  This
  matches the paper's view definition ("the sorted list of all the
  (key, data) pairs in the tree, along with their version numbers",
  section 7.2.4); sortedness is canonical in the dict comparison.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..core import VIEW_ABSENT, SpecReject, Specification, canonical_map, mutator, observer


class StoreSpec(Specification):
    """Abstract handle -> byte-array store for Cache + Chunk Manager."""

    tracks_view_delta = True

    def __init__(self):
        self.store: Dict[str, Tuple[int, ...]] = {}

    @mutator
    def write(self, handle, buffer, *, result):
        if result is not True:
            raise SpecReject(f"write must return True, got {result!r}")
        self.store[handle] = tuple(buffer)
        self._touch(handle)

    @mutator
    def flush(self, *, result):
        if result is not None:
            raise SpecReject(f"flush returns nothing, got {result!r}")

    @mutator
    def evict(self, handle, *, result):
        if result is not None:
            raise SpecReject(f"evict returns nothing, got {result!r}")

    @mutator
    def reclaim_clean(self, *, result):
        if result is not None:
            raise SpecReject(f"reclaim_clean returns nothing, got {result!r}")

    def candidate_results(self, method, args):
        """Plausible returns for incomplete operations in recovered logs."""
        if method == "write":
            return (True,)
        if method in ("flush", "evict", "reclaim_clean"):
            return (None,)
        return None

    @observer
    def read(self, handle):
        return self.store.get(handle)

    def view(self) -> dict:
        return canonical_map(self.store)

    def view_at(self, handle):
        return (self.store[handle],) if handle in self.store else VIEW_ABSENT

    def describe(self) -> str:
        return f"store = {self.store!r}"


class BLinkTreeSpec(Specification):
    """Abstract key -> (data, version) map for the B-link tree."""

    tracks_view_delta = True

    def __init__(self):
        self.pairs: Dict[object, Tuple[object, int]] = {}

    @mutator
    def insert(self, key, data, *, result):
        if result is not True:
            raise SpecReject(f"insert must return True, got {result!r}")
        if key in self.pairs:
            _, version = self.pairs[key]
            self.pairs[key] = (data, version + 1)
        else:
            self.pairs[key] = (data, 1)
        self._touch(key)

    @mutator
    def delete(self, key, *, result):
        if result is True:
            if key not in self.pairs:
                raise SpecReject(f"delete({key!r}) succeeded on an absent key")
            del self.pairs[key]
            self._touch(key)
        elif result is False:
            if key in self.pairs:
                raise SpecReject(
                    f"delete({key!r}) failed but the key is present; the "
                    "B-link tree's locked descent cannot miss present keys"
                )
        else:
            raise SpecReject(f"delete must return a bool, got {result!r}")

    def candidate_results(self, method, args):
        """Plausible returns for incomplete operations in recovered logs."""
        if method == "insert":
            return (True,)
        if method == "delete":
            return (True, False)
        return None

    @observer
    def lookup(self, key):
        pair = self.pairs.get(key)
        return None if pair is None else pair[0]

    def view(self) -> dict:
        return canonical_map(self.pairs)

    def view_at(self, key):
        return (self.pairs[key],) if key in self.pairs else VIEW_ABSENT

    def describe(self) -> str:
        return f"pairs = {self.pairs!r}"
