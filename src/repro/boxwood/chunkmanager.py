"""Boxwood Chunk Manager: the reliable store under the cache.

Boxwood's data store abstraction (paper section 7.2): every shared variable
is a byte array identified by a unique handle, with a version number
incremented on each write.  The paper *assumes the Chunk Manager is
implemented correctly* and verifies Cache and BLinkTree against that
assumption; accordingly this module provides an intentionally simple,
correct implementation: each chunk's byte array is stored in a single shared
cell (one atomic write per store operation, matching Boxwood's "atomicity of
updates ensured by a separate module", section 6.1) guarded by a store lock.

Shared state: ``chunk[<handle>].data`` (a byte tuple or ``None``) and
``chunk[<handle>].ver``.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional, Tuple

from ..concurrency import Lock, SharedCell, ThreadCtx


class ChunkManager:
    """Handle -> byte-array store with version numbers."""

    def __init__(self):
        self._lock = Lock("chunk.store")
        self._cells: Dict[str, Tuple[SharedCell, SharedCell]] = {}
        self._ids = itertools.count(0)

    def allocate(self) -> str:
        """Mint a fresh handle (no shared-state effect until first write)."""
        return f"h{next(self._ids)}"

    def _cells_for(self, handle: str) -> Tuple[SharedCell, SharedCell]:
        if handle not in self._cells:
            self._cells[handle] = (
                SharedCell(f"chunk[{handle}].data", None),
                SharedCell(f"chunk[{handle}].ver", 0),
            )
        return self._cells[handle]

    def write(self, ctx: ThreadCtx, handle: str, data: Tuple[int, ...], commit: bool = False):
        """BOXWOOD-ALLOCATOR-WRITE: atomically replace a chunk's contents.

        ``commit`` lets a caller ride its commit action on the chunk write.
        """
        data_cell, ver_cell = self._cells_for(handle)
        yield self._lock.acquire()
        version = yield ver_cell.read()
        yield ver_cell.write(version + 1)
        yield data_cell.write(tuple(data), commit=commit)
        yield self._lock.release()

    def read(self, ctx: ThreadCtx, handle: str):
        """Read a chunk's contents (``None`` if never written)."""
        data_cell, _ = self._cells_for(handle)
        yield self._lock.acquire()
        data = yield data_cell.read()
        yield self._lock.release()
        return data

    def peek(self, handle: str) -> Optional[Tuple[int, ...]]:
        """Direct read for post-run assertions."""
        if handle not in self._cells:
            return None
        return self._cells[handle][0].peek()

    def known_handles(self):
        return list(self._cells)
