"""Simulated Boxwood (paper section 7.2): Chunk Manager, Cache, B-link tree.

* :class:`ChunkManager` -- reliable handle -> byte-array store (assumed
  correct, as in the paper's modular verification).
* :class:`BoxwoodCache` -- the Fig. 8 cache; ``buggy_dirty_write=True``
  enables the real bug VYRD found (unprotected ``COPY-TO-CACHE`` on a dirty
  entry).  :func:`cache_view` and :func:`cache_invariants` implement the
  section 7.2.1 view and runtime invariants.
* :class:`BLinkTree` -- Sagiv-style B-link tree with data nodes, splits and
  a tombstone-purging compression thread; ``buggy_duplicates=True`` enables
  Table 1's duplicated-data-nodes bug.  :func:`blinktree_view` implements
  the section 7.2.4 view.
* Specs: :class:`StoreSpec`, :class:`BLinkTreeSpec`.
"""

from .blinktree import BLinkTree, blinktree_view
from .cache import BoxwoodCache, cache_invariants, cache_view
from .chunkmanager import ChunkManager
from .specs import BLinkTreeSpec, StoreSpec

__all__ = [
    "BLinkTree",
    "BLinkTreeSpec",
    "BoxwoodCache",
    "ChunkManager",
    "StoreSpec",
    "blinktree_view",
    "cache_invariants",
    "cache_view",
]
