"""A concurrent B-link tree (paper sections 7.2.3-7.2.5, Fig. 9).

The Boxwood BLinkTree is a highly concurrent B-link tree in the style of
Sagiv / Lehman-Yao: every node carries a *high key* (exclusive upper bound on
the keys it covers) and a *right link* to its right sibling, so descents can
run without locks and recover from concurrent splits by "moving right".
(key, data) pairs live in separate *data nodes* pointed to by leaf entries
(the paper's leaf pointer nodes, section 7.2.4); the non-data indexing
structure is restructured concurrently and is abstracted away by the view.

Storage model.  Each tree node is one shared cell holding an immutable
record; each update of a node is therefore a single atomic logged write --
faithful to Boxwood, where every shared variable is a byte array written
wholesale through Cache/Chunk Manager with a version number.  (The paper
verifies BLinkTree *modularly*, assuming Cache + Chunk Manager correct, so
the tree talks to plain shared variables here; DESIGN.md records this.)

* ``blt.root`` -- node id of the root.
* ``blt.n<id>`` -- node record:
  ``("leaf", 0, entries, high, right)`` with ``entries`` a sorted tuple of
  ``(key, data_node_id)``; or ``("index", level, keys, children, high,
  right)``.
* ``blt.d<id>`` -- data node record ``(key, data, version, live)``.

Commit actions follow Fig. 9's conditional commit points: the *single
decisive write to a leaf or data node* commits; all index-node restructuring
is uncommitted (this is the paper's reduction-defeating ``W(p) W(q)``
pattern: methods write both data and index nodes under locks, yet only the
data write changes the abstract state).

* Commit point 1 -- key already present: the data-node overwrite.
* Commit point 2 -- safe leaf: the leaf write that adds the entry.
* Commit points 3/4 -- leaf split (non-root / root): the left-half write
  that atomically publishes the new right sibling via the right link.
* Delete -- the data-node tombstone write; failure paths take a standalone
  commit while still holding the leaf lock (making the strict delete spec
  sound).

Deletion marks data nodes dead (tombstones); the *compression thread*
(section 7.2.3) walks the leaf chain purging dead entries -- an internal
(op-less) commit per purge, which the view checker verifies leaves the
abstract contents unchanged.

The injected bug (Table 1's "Allowing duplicated data nodes",
``buggy_duplicates=True``): the membership test runs only during the
unlocked descent and is *not repeated* once the leaf lock is held, so two
concurrent inserts of the same key can both conclude "absent" and add two
data nodes for one key.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Dict, List, Tuple

from ..concurrency import KernelStopped, Lock, SharedCell, ThreadCtx
from ..core import DependencyView, operation

LEAF = "leaf"
INDEX = "index"


class _NodeSlot:
    """Live handle for one tree node: its record cell and its lock."""

    __slots__ = ("nid", "cell", "lock")

    def __init__(self, nid: int, record):
        self.nid = nid
        self.cell = SharedCell(f"blt.n{nid}", record)
        self.lock = Lock(f"blt.n{nid}")


def _covers(record, key) -> bool:
    """Does this node's key range still cover ``key`` (key < high)?"""
    high = record[3] if record[0] == LEAF else record[4]
    return high is None or key < high


def _leaf_entries(record) -> tuple:
    return record[2]


def _child_for(record, key) -> int:
    """Route ``key`` through an index node record."""
    _, _, keys, children, _, _ = record
    index = bisect.bisect_right(keys, key)
    return children[index]


class BLinkTree:
    """Concurrent B-link tree with data nodes, splits and compression."""

    def __init__(self, order: int = 4, buggy_duplicates: bool = False):
        if order < 2:
            raise ValueError("order must be >= 2")
        self.order = order
        self.buggy_duplicates = buggy_duplicates
        self._nodes: Dict[int, _NodeSlot] = {}
        # per-thread id counters: ids depend only on the allocating
        # thread's own history, never on the interleaving, so allocation
        # commutes with steps of other threads (schedule-confluent) and
        # cell names stay stable across equivalent schedules
        self._node_ids: Dict[int, int] = {}
        self._data_ids: Dict[int, int] = {}
        self._data_cells: Dict[int, SharedCell] = {}
        first_leaf = self._alloc_node((LEAF, 0, (), None, None))
        self.leftmost = first_leaf.nid  # constant: leaves are never removed
        self.root = SharedCell("blt.root", first_leaf.nid)
        self.root_lock = Lock("blt.rootlock")

    # -- allocation ----------------------------------------------------------

    def _alloc_node(self, record, tid: int = -1) -> _NodeSlot:
        seq = self._node_ids.get(tid, 0)
        self._node_ids[tid] = seq + 1
        slot = _NodeSlot((tid + 1) * 1_000_000 + seq, record)
        self._nodes[slot.nid] = slot
        return slot

    def _alloc_data(self, tid: int = -1) -> Tuple[int, SharedCell]:
        seq = self._data_ids.get(tid, 0)
        self._data_ids[tid] = seq + 1
        did = (tid + 1) * 1_000_000 + seq
        cell = SharedCell(f"blt.d{did}", None)
        self._data_cells[did] = cell
        return did, cell

    def node(self, nid: int) -> _NodeSlot:
        return self._nodes[nid]

    # -- unlocked descent ------------------------------------------------------

    def _descend(self, key):
        """MOVE-DOWN-AND-STACK: walk to the leaf covering ``key`` without
        locks, stacking the index node ids visited (Fig. 9 line 5).

        Returns ``(stack, leaf_nid, leaf_record)``."""
        stack: List[int] = []
        nid = yield self.root.read()
        while True:
            record = yield self.node(nid).cell.read()
            if not _covers(record, key):
                nid = record[5] if record[0] == INDEX else record[4]
                continue
            if record[0] == LEAF:
                return stack, nid, record
            stack.append(nid)
            nid = _child_for(record, key)

    def _lock_and_settle(self, key, nid):
        """Lock leaf ``nid``, moving right (lock-coupled) until the locked
        leaf covers ``key``.  Returns ``(nid, record)`` with the lock held."""
        slot = self.node(nid)
        yield slot.lock.acquire()
        while True:
            record = yield slot.cell.read()
            if _covers(record, key):
                return nid, record
            right = record[4]
            right_slot = self.node(right)
            yield right_slot.lock.acquire()
            yield slot.lock.release()
            nid, slot = right, right_slot

    # -- public operations ----------------------------------------------------------

    @operation
    def insert(self, ctx: ThreadCtx, key, data):
        """INSERT(key, data): add or overwrite; always succeeds (Fig. 9)."""
        stack, leaf_nid, leaf_record = yield from self._descend(key)
        if self.buggy_duplicates:
            # BUG: membership decided on the *unlocked* snapshot and never
            # re-checked under the lock.
            present = any(k == key for k, _ in _leaf_entries(leaf_record))
            leaf_nid, leaf_record = yield from self._lock_and_settle(key, leaf_nid)
        else:
            leaf_nid, leaf_record = yield from self._lock_and_settle(key, leaf_nid)
            present = any(k == key for k, _ in _leaf_entries(leaf_record))
        slot = self.node(leaf_nid)
        entries = _leaf_entries(leaf_record)

        # In buggy mode the stale "present" decision may no longer hold once
        # the lock is taken (the entry was purged meanwhile): fall through to
        # the add path, exactly as code trusting a stale check would.
        position = (
            next((i for i, (k, _) in enumerate(entries) if k == key), None)
            if present
            else None
        )
        if position is not None:
            dnid = entries[position][1]
            data_cell = self._data_cells[dnid]
            record = yield data_cell.read()
            _, _, version, live = record
            if live:
                # Fig. 9 line 14: OVERWRITE -- Commit point 1
                yield data_cell.write((key, data, version + 1, True), commit=True)
                yield slot.lock.release()
                return True
            # tombstoned entry: revive with a fresh data node (version 1)
            new_did, new_cell = self._alloc_data(ctx.tid)
            yield new_cell.write((key, data, 1, True))
            new_entries = entries[:position] + ((key, new_did),) + entries[position + 1 :]
            yield slot.cell.write(
                (LEAF, 0, new_entries, leaf_record[3], leaf_record[4]), commit=True
            )
            yield slot.lock.release()
            return True

        new_did, new_cell = self._alloc_data(ctx.tid)
        yield new_cell.write((key, data, 1, True))
        new_entries = tuple(sorted(entries + ((key, new_did),)))
        if len(new_entries) <= self.order:
            # safe leaf -- Commit point 2 (Fig. 9 line 39 vicinity)
            yield slot.cell.write(
                (LEAF, 0, new_entries, leaf_record[3], leaf_record[4]), commit=True
            )
            yield slot.lock.release()
            return True

        # Unsafe: split the leaf.  Commit point 3 (or 4 when it is the root):
        # the left-half write that publishes the new sibling via the link.
        mid = len(new_entries) // 2
        split_key = new_entries[mid][0]
        right_slot = self._alloc_node(
            (LEAF, 0, new_entries[mid:], leaf_record[3], leaf_record[4]),
            ctx.tid,
        )
        yield right_slot.cell.write(
            (LEAF, 0, new_entries[mid:], leaf_record[3], leaf_record[4])
        )
        yield slot.cell.write(
            (LEAF, 0, new_entries[:mid], split_key, right_slot.nid), commit=True
        )
        yield slot.lock.release()
        yield from self._insert_separator(ctx, stack, split_key, leaf_nid, right_slot.nid, 1)
        return True

    def _insert_separator(self, ctx: ThreadCtx, stack: List[int], sep,
                          left_child: int, new_child: int, level: int):
        """Publish a split upward: pure restructuring, no commit actions."""
        while True:
            parent_nid = yield from self._parent_at_level(
                ctx, stack, sep, left_child, new_child, level
            )
            if parent_nid is None:
                return  # a new root was created for this split
            parent_slot = self.node(parent_nid)
            yield parent_slot.lock.acquire()
            record = yield parent_slot.cell.read()
            # move right until the parent covers the separator
            while not _covers(record, sep):
                right = record[5]
                right_slot = self.node(right)
                yield right_slot.lock.acquire()
                yield parent_slot.lock.release()
                parent_nid, parent_slot = right, right_slot
                record = yield parent_slot.cell.read()
            _, plevel, keys, children, high, right = record
            position = bisect.bisect_right(keys, sep)
            new_keys = keys[:position] + (sep,) + keys[position:]
            new_children = children[: position + 1] + (new_child,) + children[position + 1 :]
            if len(new_keys) <= self.order:
                yield parent_slot.cell.write(
                    (INDEX, plevel, new_keys, new_children, high, right)
                )
                yield parent_slot.lock.release()
                return
            # split the index node and recurse one level up
            mid = len(new_keys) // 2
            up_key = new_keys[mid]
            right_rec = (
                INDEX, plevel, new_keys[mid + 1 :], new_children[mid + 1 :], high, right,
            )
            right_ix = self._alloc_node(right_rec, ctx.tid)
            yield right_ix.cell.write(right_rec)
            yield parent_slot.cell.write(
                (INDEX, plevel, new_keys[:mid], new_children[: mid + 1], up_key, right_ix.nid)
            )
            yield parent_slot.lock.release()
            sep, left_child, new_child, level = up_key, parent_nid, right_ix.nid, plevel + 1

    def _parent_at_level(self, ctx: ThreadCtx, stack: List[int], sep,
                         left_child: int, new_child: int, level: int):
        """Pop the descent stack, or re-derive the parent (possibly creating
        a new root).  Returns a node id, or ``None`` if a root was created."""
        if stack:
            return stack.pop()
        yield self.root_lock.acquire()
        root_nid = yield self.root.read()
        root_record = yield self.node(root_nid).cell.read()
        root_level = 0 if root_record[0] == LEAF else root_record[1]
        if root_level < level:
            # we split the root (or a whole missing level): grow the tree --
            # pure restructuring, no commit action.
            new_root = self._alloc_node(
                (INDEX, level, (sep,), (left_child, new_child), None, None),
                ctx.tid,
            )
            yield new_root.cell.write(
                (INDEX, level, (sep,), (left_child, new_child), None, None)
            )
            yield self.root.write(new_root.nid)
            yield self.root_lock.release()
            return None
        yield self.root_lock.release()
        # the tree already has the target level: walk down to it
        nid = root_nid
        record = root_record
        while True:
            node_level = 0 if record[0] == LEAF else record[1]
            if node_level == level:
                return nid
            if not _covers(record, sep):
                nid = record[5] if record[0] == INDEX else record[4]
            else:
                nid = _child_for(record, sep)
            record = yield self.node(nid).cell.read()

    @operation
    def delete(self, ctx: ThreadCtx, key):
        """DELETE(key): tombstone the data node; strict failure reporting."""
        _, leaf_nid, _ = yield from self._descend(key)
        leaf_nid, leaf_record = yield from self._lock_and_settle(key, leaf_nid)
        slot = self.node(leaf_nid)
        for k, dnid in _leaf_entries(leaf_record):
            if k == key:
                data_cell = self._data_cells[dnid]
                record = yield data_cell.read()
                _, data, version, live = record
                if live:
                    yield data_cell.write((key, data, version, False), commit=True)
                    yield slot.lock.release()
                    return True
                yield ctx.commit()  # dead entry: failure decided under lock
                yield slot.lock.release()
                return False
        yield ctx.commit()  # absent: failure decided under lock
        yield slot.lock.release()
        return False

    @operation
    def lookup(self, ctx: ThreadCtx, key):
        """LOOKUP(key): lock-free observer; data value or ``None``."""
        nid = yield self.root.read()
        while True:
            record = yield self.node(nid).cell.read()
            if not _covers(record, key):
                nid = record[5] if record[0] == INDEX else record[4]
                continue
            if record[0] == INDEX:
                nid = _child_for(record, key)
                continue
            for k, dnid in _leaf_entries(record):
                if k == key:
                    data_record = yield self._data_cells[dnid].read()
                    _, data, _, live = data_record
                    return data if live else None
            return None

    # -- compression (section 7.2.3) --------------------------------------------------

    def compression_pass(self, ctx: ThreadCtx):
        """Purge dead entries along the leaf chain; True if any purged."""
        purged = False
        nid = self.leftmost
        while nid is not None:
            slot = self.node(nid)
            yield slot.lock.acquire()
            record = yield slot.cell.read()
            entries = _leaf_entries(record)
            keep: List[tuple] = []
            for k, dnid in entries:
                data_record = yield self._data_cells[dnid].read()
                if data_record is not None and data_record[3]:
                    keep.append((k, dnid))
            if len(keep) != len(entries):
                # internal commit: the purge must not change the view
                yield slot.cell.write(
                    (LEAF, 0, tuple(keep), record[3], record[4]), commit=True
                )
                purged = True
            next_nid = record[4]
            yield slot.lock.release()
            nid = next_nid
        return purged

    def compression_thread(self, ctx: ThreadCtx):
        """Daemon body: continuously purge tombstones."""
        try:
            while True:
                yield ctx.checkpoint()
                yield from self.compression_pass(ctx)
        except KernelStopped:
            return

    # -- direct helpers ----------------------------------------------------------------

    def contents(self) -> dict:
        """key -> (data, version) via direct leaf-chain walk (post-run)."""
        result: dict = {}
        nid = self.leftmost
        while nid is not None:
            record = self._nodes[nid].cell.peek()
            for key, dnid in record[2]:
                data_record = self._data_cells[dnid].peek()
                if data_record is not None and data_record[3]:
                    result[key] = (data_record[1], data_record[2])
            nid = record[4]
        return result

    def check_structure(self) -> List[str]:
        """Structural invariants for tests: sortedness, key coverage, links."""
        problems: List[str] = []
        nid = self.leftmost
        previous_high = None
        while nid is not None:
            record = self._nodes[nid].cell.peek()
            if record[0] != LEAF:
                problems.append(f"n{nid}: leaf chain reached a non-leaf")
                break
            entries = record[2]
            keys = [k for k, _ in entries]
            if keys != sorted(keys):
                problems.append(f"n{nid}: entries not sorted: {keys}")
            if previous_high is not None and keys and keys[0] < previous_high:
                problems.append(
                    f"n{nid}: first key {keys[0]!r} below previous high {previous_high!r}"
                )
            high = record[3]
            if high is not None and keys and keys[-1] >= high:
                problems.append(f"n{nid}: last key {keys[-1]!r} >= high {high!r}")
            if high is not None:
                previous_high = high
            nid = record[4]
        return problems

    VYRD_METHODS = {
        "insert": "mutator",
        "delete": "mutator",
        "lookup": "observer",
    }

    # Static mirror of the Program's atomic_locs=("blt.",): every traced
    # blt.* cell is a single atomic location, so the lock-free B-link
    # descents and data-node reads are race-free by construction.
    VYRD_ATOMIC_FIELDS = ("root", "_nodes[*].cell", "_data_cells[*]")
    # Allocation uses per-thread id counters (see __init__), so its hidden
    # writes commute with every step of other threads.
    VYRD_CONFLUENT_HELPERS = ("_alloc_node", "_alloc_data")


def blinktree_view(leftmost: int = 0) -> DependencyView:
    """``viewI`` for :class:`BLinkTree` (paper section 7.2.4).

    The view is the leaf chain walked left to right, collecting the live
    ``(key, data, version)`` triples; the indexing structure is abstracted
    away entirely.  Duplicate data nodes for one key surface as a
    multi-element tuple, which can never match the spec view.

    Maintained *incrementally* as a :class:`DependencyView`: each leaf is a
    unit anchored at its node location, linked to its right sibling, and
    read-dependent on the data nodes its entries reference.  A static
    ``unit_of`` mapping cannot express this structure -- the tree writes
    data nodes and pre-split right siblings *before* the single committing
    leaf write that publishes them (no commit block rolls them back), so a
    data node must contribute to the view exactly when a chain-reachable
    leaf references it.  Discovery-by-links plus recorded read-deps
    reproduce that reachability semantics at O(affected leaves) per commit.
    """

    def expand(reader, unit):
        record = reader.get(unit)
        if record is None or record[0] != LEAF:
            return (), ()
        pairs = []
        for key, dnid in record[2]:
            data_record = reader.get(f"blt.d{dnid}")
            if data_record is not None and data_record[3]:
                pairs.append((key, (data_record[1], data_record[2])))
        links = (f"blt.n{record[4]}",) if record[4] is not None else ()
        return pairs, links

    # sort_key=None: aggregate duplicate contributions with plain sorted(),
    # matching the historical full-walk view value exactly.
    return DependencyView(
        roots=(f"blt.n{leftmost}",), expand=expand, aggregate="list", sort_key=None
    )
