"""Deterministic fault injection + recovery verification (robustness layer).

The verification pipeline is only trustworthy if it stays correct when the
infrastructure under it misbehaves: worker processes die mid-chunk, stuck
schedules hang a pool, log files get torn or silently corrupted on disk.
This package provides the *attack side* of that claim -- seeded, replayable
:class:`FaultPlan`\\ s injected at four seams (worker tasks, saved log
bytes, the kernel tracer, the serve-layer blob store) -- and the campaign
driver that proves the *defense side* holds: fault-surviving exploration
produces **bit-identical** signatures to fault-free serial runs, log
recovery always salvages the longest valid record prefix with a diagnosable
offset, and the self-healing serve pipeline (supervised producers, retried
stores, degraded-mode catch-up) never changes a verdict byte.

* :mod:`repro.faults.plan` -- :class:`Fault`, :class:`TaskFaults`,
  :class:`FaultPlan` (seeded generation, per-dispatch resolution)
* :mod:`repro.faults.inject` -- :func:`tear`, :func:`bitflip`,
  :func:`apply_log_faults`, :class:`LatencyTracer`, :class:`FlakyStore`
* :mod:`repro.faults.campaign` -- :func:`run_fault_campaign`,
  :class:`FaultCampaignReport`
"""

from .campaign import FaultCampaignReport, run_fault_campaign
from .inject import (
    FlakyStore,
    LatencyTracer,
    apply_log_faults,
    bitflip,
    resolve_offset,
    splice_records,
    tear,
)
from .plan import (
    BITFLIP_LOG,
    CRASH,
    FLAKY_STORE,
    HANG,
    PRODUCER_KILL,
    SLOW_IO,
    SPLICE_LOG,
    STORE_OUTAGE,
    TORN_LOG,
    Fault,
    FaultPlan,
    TaskFaults,
)

__all__ = [
    "BITFLIP_LOG",
    "CRASH",
    "FLAKY_STORE",
    "Fault",
    "FaultCampaignReport",
    "FaultPlan",
    "FlakyStore",
    "HANG",
    "LatencyTracer",
    "PRODUCER_KILL",
    "SLOW_IO",
    "SPLICE_LOG",
    "STORE_OUTAGE",
    "TORN_LOG",
    "TaskFaults",
    "apply_log_faults",
    "bitflip",
    "resolve_offset",
    "run_fault_campaign",
    "splice_records",
    "tear",
]
