"""Seeded, replayable fault plans.

A :class:`FaultPlan` is a deterministic description of *what goes wrong
when*: which dispatched worker task crashes (``os._exit``) or hangs, where
a saved log gets torn or bit-flipped, and how much artificial latency the
tracer seam adds.  Plans are plain frozen dataclasses -- picklable (they
cross process boundaries inside injection hooks), hashable, and entirely a
function of their generation seed, so a failing campaign replays exactly
from ``FaultPlan.generate(seed, ...)``.

Injection seams (all opt-in, zero-cost when no plan is given):

* **Worker tasks** -- :meth:`FaultPlan.task_faults` resolves the plan for a
  ``(task serial, attempt)`` dispatch; the explorers pass the resulting
  :class:`TaskFaults` to the worker, which calls :meth:`TaskFaults.apply`
  before any real work.  Faults target ``attempt == 0`` only: a retried
  task runs clean, mirroring the transient failures (OOM kills, preempted
  nodes) the tolerance layer exists for.
* **Log files** -- :func:`repro.faults.inject.apply_log_faults` tears or
  bit-flips a saved log at plan-chosen *fractional* offsets (resolved
  against the actual file size at apply time, so one plan fits any log).
* **Kernel tracer** -- :class:`repro.faults.inject.LatencyTracer` sleeps on
  a plan-chosen cadence of traced events, simulating a slow log device
  without perturbing the deterministic schedule.
"""

from __future__ import annotations

import os
import random
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple

#: Worker-task fault kinds.
CRASH = "crash"
HANG = "hang"
#: Log-file fault kinds.
TORN_LOG = "torn_log"
BITFLIP_LOG = "bitflip_log"
SPLICE_LOG = "splice_log"
#: Tracer-seam fault kind.
SLOW_IO = "slow_io"
#: Serve-pipeline fault kinds.  Field reuse keeps plan JSON round-trippable:
#: PRODUCER_KILL -- ``frac`` is the kill point as a fraction of the run's
#: record count; FLAKY_STORE -- ``frac`` is the per-op transient-error
#: probability, ``seconds``/``every`` the latency spike and its cadence;
#: STORE_OUTAGE -- ``task`` is the op serial a blackout starts at,
#: ``seconds`` its wall-clock length (retry backoff rides past it).
PRODUCER_KILL = "producer_kill"
FLAKY_STORE = "flaky_store"
STORE_OUTAGE = "store_outage"

_TASK_KINDS = (CRASH, HANG)
_LOG_KINDS = (TORN_LOG, BITFLIP_LOG, SPLICE_LOG)
_STORE_KINDS = (FLAKY_STORE, STORE_OUTAGE)


@dataclass(frozen=True)
class Fault:
    """One planned fault.

    ``task`` targets a dispatched worker task by serial (first-dispatch
    ordinal) for :data:`CRASH`/:data:`HANG`.  ``frac`` locates log faults as
    a fraction of the file size (resolved at apply time); ``bit`` selects
    the flipped bit for :data:`BITFLIP_LOG`.  ``seconds`` is the hang
    duration or the per-event tracer latency; ``every`` is the tracer-event
    cadence for :data:`SLOW_IO`.
    """

    kind: str
    task: Optional[int] = None
    frac: float = 0.0
    bit: int = 0
    seconds: float = 0.0
    every: int = 1


@dataclass(frozen=True)
class TaskFaults:
    """The faults resolved for one worker-task dispatch (picklable).

    Built coordinator-side by :meth:`FaultPlan.task_faults`, shipped to the
    worker process, applied at task start.
    """

    fault: Optional[Fault] = None

    def apply(self) -> None:
        fault = self.fault
        if fault is None:
            return
        if fault.kind == CRASH:
            # A real abrupt worker death: no exception propagation, no
            # cleanup handlers -- exactly what BrokenProcessPool reports.
            os._exit(13)
        if fault.kind == HANG:
            time.sleep(fault.seconds)


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic campaign-wide fault schedule.

    Build with :meth:`generate` (seeded) or construct faults explicitly.
    ``hang_seconds`` bounds injected hangs so an un-watchdogged run cannot
    sleep forever; keep it well above the explorer's per-task ``timeout``
    so the watchdog, not the sleep expiring, ends the hang.
    """

    seed: int = 0
    faults: Tuple[Fault, ...] = field(default_factory=tuple)

    @classmethod
    def generate(
        cls,
        seed: int,
        tasks: int = 8,
        crashes: int = 1,
        hangs: int = 1,
        torn: int = 1,
        bitflips: int = 1,
        splices: int = 1,
        slow_ios: int = 0,
        hang_seconds: float = 30.0,
        slow_io_seconds: float = 0.0005,
        producer_kills: int = 0,
        flaky_stores: int = 0,
        outages: int = 0,
        flaky_error_rate: float = 0.2,
        outage_seconds: float = 0.05,
    ) -> "FaultPlan":
        """Draw a replayable fault mix from ``seed``.

        ``tasks`` is the horizon of worker-task serials eligible for
        crash/hang targeting (distinct serials are drawn without
        replacement, so one task suffers at most one worker fault).
        """
        rng = random.Random(seed)
        want = crashes + hangs
        population = list(range(max(tasks, want)))
        targets = rng.sample(population, want) if want else []
        faults = []
        for target in targets[:crashes]:
            faults.append(Fault(CRASH, task=target))
        for target in targets[crashes:]:
            faults.append(Fault(HANG, task=target, seconds=hang_seconds))
        for _ in range(torn):
            faults.append(Fault(TORN_LOG, frac=rng.random()))
        for _ in range(bitflips):
            faults.append(Fault(BITFLIP_LOG, frac=rng.random(),
                                bit=rng.randrange(8)))
        for _ in range(splices):
            faults.append(Fault(SPLICE_LOG, frac=rng.random()))
        for _ in range(slow_ios):
            faults.append(Fault(SLOW_IO, seconds=slow_io_seconds,
                                every=rng.randrange(16, 64)))
        for _ in range(producer_kills):
            # Keep the kill point inside the run: a fraction of the record
            # count, away from the trivial endpoints.
            faults.append(Fault(PRODUCER_KILL,
                                frac=0.1 + 0.8 * rng.random()))
        for _ in range(flaky_stores):
            faults.append(Fault(FLAKY_STORE, frac=flaky_error_rate,
                                seconds=0.0005,
                                every=rng.randrange(16, 64)))
        for _ in range(outages):
            faults.append(Fault(STORE_OUTAGE,
                                task=rng.randrange(16, 256),
                                seconds=outage_seconds))
        return cls(seed=seed, faults=tuple(faults))

    # -- seam resolution ----------------------------------------------------

    def task_faults(self, serial: int, attempt: int) -> Optional[TaskFaults]:
        """Resolve the plan for one worker-task dispatch.

        Only first attempts are targeted (transient-fault model); retried
        dispatches always run clean.  Returns ``None`` when nothing is
        planned, so the zero-fault path ships nothing extra to workers.
        """
        if attempt != 0:
            return None
        for fault in self.faults:
            if fault.kind in _TASK_KINDS and fault.task == serial:
                return TaskFaults(fault=fault)
        return None

    @property
    def log_faults(self) -> Tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.kind in _LOG_KINDS)

    @property
    def tracer_faults(self) -> Tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.kind == SLOW_IO)

    @property
    def worker_faults(self) -> Tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.kind in _TASK_KINDS)

    @property
    def store_faults(self) -> Tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.kind in _STORE_KINDS)

    @property
    def producer_faults(self) -> Tuple[Fault, ...]:
        return tuple(f for f in self.faults if f.kind == PRODUCER_KILL)

    def describe(self) -> dict:
        """JSON-friendly summary (CLI/benchmark reporting)."""
        return {
            "seed": self.seed,
            "crashes": sum(1 for f in self.faults if f.kind == CRASH),
            "hangs": sum(1 for f in self.faults if f.kind == HANG),
            "torn_logs": sum(1 for f in self.faults if f.kind == TORN_LOG),
            "bitflips": sum(1 for f in self.faults if f.kind == BITFLIP_LOG),
            "splices": sum(1 for f in self.faults if f.kind == SPLICE_LOG),
            "slow_ios": sum(1 for f in self.faults if f.kind == SLOW_IO),
            "producer_kills": sum(
                1 for f in self.faults if f.kind == PRODUCER_KILL
            ),
            "flaky_stores": sum(
                1 for f in self.faults if f.kind == FLAKY_STORE
            ),
            "outages": sum(
                1 for f in self.faults if f.kind == STORE_OUTAGE
            ),
            "faults": [
                {
                    "kind": f.kind, "task": f.task,
                    "frac": round(f.frac, 6), "bit": f.bit,
                    "seconds": f.seconds, "every": f.every,
                }
                for f in self.faults
            ],
        }
