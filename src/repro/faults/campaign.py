"""End-to-end fault campaigns: inject faults, recover, prove serial identity.

A campaign is the tentpole acceptance test of the fault-tolerance layer,
packaged as a library call (the CLI ``faults`` subcommand and the
``bench_fault_soak`` benchmark are thin wrappers over it):

1. **Baseline** -- run a serial, fault-free swarm exploration of the target
   workload and digest its canonical :meth:`ExplorationResult.signature`.
2. **Faulted run** -- repeat the same campaign through the multi-process
   engine with a seeded :class:`~repro.faults.plan.FaultPlan` injecting
   worker crashes and hangs.  The run must *survive* (retries, pool
   rebuilds, watchdog kills) and its signature must be **bit-identical** to
   the baseline -- recovery is only correct if it is invisible in the
   result.
3. **Log corruption round** -- produce a pristine framed log, damage copies
   of it per the plan's torn/bit-flip faults, and check that
   :func:`~repro.core.log.recover_log` salvages exactly a prefix of the
   pristine records and reports the corruption offset.  (Record *splices*
   are excluded here: plain CRC framing cannot see a reorder -- which is
   exactly what the next round demonstrates the chain catching.)
4. **Chain round** -- repeat the damage against a *chained* (``VYRDLOG2``)
   copy of the same log, now including frame-splice tampering, and require
   :func:`~repro.core.log.verify_chain` (anchored to the pristine head
   digest) to detect **every** injected fault while
   :func:`~repro.core.log.recover_log` still salvages an exact chain-valid
   prefix -- the streaming service's tamper-evidence gate.
5. **Latency round** (when the plan carries ``slow_io`` faults) -- re-run
   the workload under a :class:`~repro.faults.inject.LatencyTracer` and
   check the produced log is action-for-action identical: injected I/O
   latency must never perturb the deterministic schedule.
6. **Checkpoint round** -- for the clean *and* the seeded-bug variant of the
   workload, checkpoint the refinement checker mid-log ("kill" it), restore
   a fresh checker from the serialized bytes and feed the tail; the resumed
   verdict -- including every violation's sequence numbers -- must be
   byte-identical to the straight-through run.  A bit-flipped checkpoint
   must be rejected with :class:`~repro.core.CheckpointError` and the
   record-zero fallback replay must reproduce the same verdict.

:class:`FaultCampaignReport.ok` is the conjunction of all gates.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import tempfile
import time
from dataclasses import dataclass, field
from typing import List, Optional

from ..concurrency.parallel import parallel_swarm
from ..core.log import load_log, recover_log, save_log, verify_chain
from ..harness.runner import ProgramSpec, run_program
from .inject import apply_log_faults
from .plan import SPLICE_LOG, FaultPlan


def _digest(signature: dict) -> str:
    return hashlib.sha256(repr(signature).encode("utf-8")).hexdigest()


@dataclass
class FaultCampaignReport:
    """Everything a soak loop or CI gate needs to judge one campaign."""

    program: str
    seed: int
    jobs: int
    num_runs: int
    plan: dict = field(default_factory=dict)
    baseline_signature: str = ""
    faulted_signature: str = ""
    signatures_match: bool = False
    baseline_seconds: float = 0.0
    faulted_seconds: float = 0.0
    num_failures: int = 0
    interruptions: List[dict] = field(default_factory=list)
    recoveries: List[dict] = field(default_factory=list)
    recovery_ok: bool = True
    chain_checks: List[dict] = field(default_factory=list)
    chain_ok: bool = True  # every injected tamper case detected on chained logs
    tracer_log_identical: Optional[bool] = None  # None: no slow_io planned
    checkpoint_checks: List[dict] = field(default_factory=list)
    checkpoint_ok: bool = True  # kill->resume verdicts byte-identical

    @property
    def overhead(self) -> Optional[float]:
        """Faulted/baseline wall-clock ratio (None when baseline was ~0)."""
        if self.baseline_seconds <= 1e-9:
            return None
        return self.faulted_seconds / self.baseline_seconds

    @property
    def incident_counts(self) -> dict:
        counts: dict = {}
        for event in self.interruptions:
            kind = event.get("kind", "?")
            counts[kind] = counts.get(kind, 0) + 1
        return counts

    @property
    def ok(self) -> bool:
        return (
            self.signatures_match
            and self.recovery_ok
            and self.chain_ok
            and self.checkpoint_ok
            and self.tracer_log_identical is not False
        )

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "program": self.program,
            "seed": self.seed,
            "jobs": self.jobs,
            "num_runs": self.num_runs,
            "plan": self.plan,
            "baseline_signature": self.baseline_signature,
            "faulted_signature": self.faulted_signature,
            "signatures_match": self.signatures_match,
            "baseline_seconds": round(self.baseline_seconds, 4),
            "faulted_seconds": round(self.faulted_seconds, 4),
            "overhead": (
                round(self.overhead, 3) if self.overhead is not None else None
            ),
            "num_failures": self.num_failures,
            "incidents": self.incident_counts,
            "interruptions": list(self.interruptions),
            "recoveries": list(self.recoveries),
            "recovery_ok": self.recovery_ok,
            "chain_checks": list(self.chain_checks),
            "chain_ok": self.chain_ok,
            "tracer_log_identical": self.tracer_log_identical,
            "checkpoint_checks": list(self.checkpoint_checks),
            "checkpoint_ok": self.checkpoint_ok,
        }


def _expected_chunks(num_runs: int, jobs: int) -> int:
    """Mirror parallel_swarm's default chunking to size fault-plan targeting."""
    chunk_size = max(1, -(-num_runs // (jobs * 4)))
    return -(-num_runs // chunk_size)


def _corruption_round(
    program: str,
    plan: FaultPlan,
    workload_seed: int,
    num_threads: int,
    calls_per_thread: int,
) -> tuple:
    """Damage copies of a pristine framed log; verify exact-prefix salvage."""
    recoveries: List[dict] = []
    ok = True
    run = run_program(
        program,
        num_threads=num_threads,
        calls_per_thread=calls_per_thread,
        seed=workload_seed,
    )
    workdir = tempfile.mkdtemp(prefix="vyrd-faults-")
    try:
        pristine_path = os.path.join(workdir, "pristine.vlog")
        save_log(run.log, pristine_path)
        pristine = [repr(action) for action in load_log(pristine_path)]
        for index, fault in enumerate(plan.log_faults):
            if fault.kind == SPLICE_LOG:
                continue  # undetectable on unchained framing; chain round
            victim = os.path.join(workdir, f"victim-{index}.vlog")
            shutil.copyfile(pristine_path, victim)
            applied = apply_log_faults(
                victim, FaultPlan(seed=plan.seed, faults=(fault,))
            )
            recovered = recover_log(victim)
            salvaged = [repr(action) for action in recovered.log]
            prefix_exact = salvaged == pristine[: len(salvaged)]
            # A damaged file must either still be complete (a tear that
            # landed exactly on the final frame boundary) or report where
            # parsing stopped.
            reported = recovered.complete or recovered.error_offset is not None
            entry = {
                "fault": applied[0] if applied else {"kind": fault.kind},
                "salvaged_records": len(salvaged),
                "total_records": len(pristine),
                "prefix_exact": prefix_exact,
                "complete": recovered.complete,
                "valid_bytes": recovered.valid_bytes,
                "total_bytes": recovered.total_bytes,
                "error_offset": recovered.error_offset,
                "cause": recovered.cause,
            }
            entry["ok"] = prefix_exact and reported
            ok = ok and entry["ok"]
            recoveries.append(entry)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return recoveries, ok, run


def _chain_round(plan: FaultPlan, pristine_run) -> tuple:
    """Damage chained copies per every log fault; require 100% detection.

    The pristine run's log is saved in the tamper-evident ``VYRDLOG2``
    format and its head digest recorded (the manifest anchor).  Every log
    fault in the plan -- tears, bit-flips *and* record splices -- must then
    be caught by :func:`verify_chain`, and :func:`recover_log` must salvage
    exactly a chain-valid prefix of the pristine records.
    """
    checks: List[dict] = []
    ok = True
    workdir = tempfile.mkdtemp(prefix="vyrd-chain-")
    try:
        pristine_path = os.path.join(workdir, "pristine.vlog2")
        save_log(pristine_run.log, pristine_path, chained=True)
        pristine_report = verify_chain(pristine_path)
        expected_head = pristine_report.head_digest
        pristine = [repr(action) for action in load_log(pristine_path)]
        for index, fault in enumerate(plan.log_faults):
            victim = os.path.join(workdir, f"victim-{index}.vlog2")
            shutil.copyfile(pristine_path, victim)
            applied = apply_log_faults(
                victim, FaultPlan(seed=plan.seed, faults=(fault,))
            )
            report = verify_chain(victim, expected_head=expected_head)
            recovered = recover_log(victim)
            salvaged = [repr(action) for action in recovered.log]
            prefix_exact = salvaged == pristine[: len(salvaged)]
            entry = {
                "fault": applied[0] if applied else {"kind": fault.kind},
                "detected": report.tampered,
                "error_offset": report.error_offset,
                "error_record": report.error_record,
                "cause": report.cause,
                "head_match": report.head_match,
                "salvaged_records": len(salvaged),
                "total_records": len(pristine),
                "prefix_exact": prefix_exact,
            }
            entry["ok"] = report.tampered and prefix_exact
            ok = ok and entry["ok"]
            checks.append(entry)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
    return checks, ok


def _checkpoint_round(
    program: str,
    workload_seed: int,
    num_threads: int,
    calls_per_thread: int,
) -> tuple:
    """Kill the checker mid-log, resume from checkpoint bytes, compare verdicts.

    Both the clean and the seeded-bug workload variants are exercised: the
    resumed run must reproduce the straight-through verdict *byte for byte*
    (the violation records carry their sequence numbers, so any replay drift
    shows up in the comparison).  A corrupted checkpoint must raise
    :class:`~repro.core.CheckpointError` and the record-zero fallback must
    again match.
    """
    from ..core import Checkpoint, CheckpointError
    from ..serve.daemon import session_checkers

    checks: List[dict] = []
    ok = True
    for buggy in (False, True):
        run = run_program(
            program,
            buggy=buggy,
            num_threads=num_threads,
            calls_per_thread=calls_per_thread,
            seed=workload_seed,
        )
        log = list(run.log)
        make_checker, _ = session_checkers(program)

        def verdict_of(checker) -> str:
            return json.dumps(checker.finish().to_dict(), sort_keys=True)

        straight = make_checker()
        straight.feed(log)
        expected = verdict_of(straight)

        # "Kill" after half the log: checkpoint, serialize, restore into a
        # fresh checker from the bytes alone, feed the tail.
        cut = len(log) // 2
        killed = make_checker()
        killed.feed(log[:cut])
        blob = killed.checkpoint(meta={"program": program}).to_bytes()
        checkpoint = Checkpoint.from_bytes(blob)
        resumed = make_checker()
        resumed.restore(checkpoint)
        resumed.feed(log[checkpoint.resume_seq:])
        resumed_verdict = verdict_of(resumed)

        # Bit-flip the payload: the content hash must reject it...
        damaged = bytearray(blob)
        damaged[-1] ^= 0xFF
        rejection = None
        try:
            Checkpoint.from_bytes(bytes(damaged))
        except CheckpointError as exc:
            rejection = str(exc)
        # ...and the fallback is a full replay from record zero.
        fallback = make_checker()
        fallback.feed(log)
        fallback_verdict = verdict_of(fallback)

        entry = {
            "buggy": buggy,
            "records": len(log),
            "cut": cut,
            "resume_seq": checkpoint.resume_seq,
            "checkpoint_bytes": len(blob),
            "resumed_identical": resumed_verdict == expected,
            "corrupt_rejected": rejection is not None,
            "rejection": rejection,
            "fallback_identical": fallback_verdict == expected,
            "verdict_ok": straight.outcome.ok,
        }
        entry["ok"] = (
            entry["resumed_identical"]
            and entry["corrupt_rejected"]
            and entry["fallback_identical"]
        )
        ok = ok and entry["ok"]
        checks.append(entry)
    return checks, ok


def _latency_round(
    program: str,
    plan: FaultPlan,
    workload_seed: int,
    num_threads: int,
    calls_per_thread: int,
    pristine_run,
) -> Optional[bool]:
    """Re-run under LatencyTracer; the log must be action-identical."""
    if not plan.tracer_faults:
        return None
    slowed = run_program(
        program,
        num_threads=num_threads,
        calls_per_thread=calls_per_thread,
        seed=workload_seed,
        faults=plan,
    )
    before = [repr(action) for action in pristine_run.log]
    after = [repr(action) for action in slowed.log]
    return before == after


def run_fault_campaign(
    program: str = "multiset-vector",
    seed: int = 0,
    plan: Optional[FaultPlan] = None,
    jobs: int = 2,
    num_runs: int = 12,
    num_threads: int = 2,
    calls_per_thread: int = 3,
    workload_seed: int = 0,
    timeout: float = 5.0,
    max_retries: int = 2,
    backoff_base: float = 0.02,
    buggy: bool = False,
    slow_ios: int = 1,
    obs=None,
) -> FaultCampaignReport:
    """Run one complete fault campaign (see the module docstring).

    ``plan=None`` generates a default mix from ``seed``: one worker crash,
    one worker hang (longer than ``timeout``, so the watchdog -- not the
    sleep -- ends it), one torn log, one bit-flipped log and ``slow_ios``
    latency faults, targeted at the chunk serials the swarm will actually
    dispatch.  Pass an explicit plan to replay a specific failure.

    ``obs`` (a :class:`repro.obs.Recorder`) records one span per campaign
    phase plus counters for incidents survived and records recovered --
    campaign-level cost attribution; the per-run pipeline metrics stay in
    the worker processes and are not collected here.
    """
    from ..obs import NULL_RECORDER

    obs = obs if obs is not None else NULL_RECORDER
    if plan is None:
        plan = FaultPlan.generate(
            seed,
            tasks=_expected_chunks(num_runs, jobs),
            hang_seconds=max(timeout * 6, 30.0),
            slow_ios=slow_ios,
        )
    report = FaultCampaignReport(
        program=program, seed=seed, jobs=jobs, num_runs=num_runs,
        plan=plan.describe(),
    )
    spec = ProgramSpec(
        program,
        buggy=buggy,
        num_threads=num_threads,
        calls_per_thread=calls_per_thread,
        workload_seed=workload_seed,
    )
    start = time.monotonic()
    with obs.span("campaign.baseline", cat="faults"):
        baseline = parallel_swarm(spec, num_runs=num_runs, jobs=1)
    report.baseline_seconds = time.monotonic() - start
    start = time.monotonic()
    with obs.span("campaign.faulted", cat="faults"):
        faulted = parallel_swarm(
            spec,
            num_runs=num_runs,
            jobs=jobs,
            faults=plan,
            timeout=timeout,
            max_retries=max_retries,
            backoff_base=backoff_base,
        )
    report.faulted_seconds = time.monotonic() - start
    report.baseline_signature = _digest(baseline.signature())
    report.faulted_signature = _digest(faulted.signature())
    report.signatures_match = (
        report.baseline_signature == report.faulted_signature
    )
    report.num_failures = len(faulted.failures)
    report.interruptions = list(faulted.interruptions)
    with obs.span("campaign.corruption", cat="faults"):
        report.recoveries, report.recovery_ok, pristine_run = _corruption_round(
            program, plan, workload_seed, num_threads, calls_per_thread
        )
    with obs.span("campaign.chain", cat="faults"):
        report.chain_checks, report.chain_ok = _chain_round(plan, pristine_run)
    with obs.span("campaign.latency", cat="faults"):
        report.tracer_log_identical = _latency_round(
            program, plan, workload_seed, num_threads, calls_per_thread,
            pristine_run,
        )
    with obs.span("campaign.checkpoint", cat="faults"):
        report.checkpoint_checks, report.checkpoint_ok = _checkpoint_round(
            program, workload_seed, num_threads, calls_per_thread
        )
    if obs.enabled:
        for kind, count in report.incident_counts.items():
            obs.count(f"pool.events.{kind}", count)
        obs.count(
            "recovery.salvaged_records",
            sum(entry["salvaged_records"] for entry in report.recoveries),
        )
    return report
